(** Blocking client for the provenance server, with per-call timeouts
    and jittered-exponential-backoff reconnect.

    A connection failure (refused, reset, timeout, protocol violation
    from the server side) tears the socket down and retries after a
    pause of [base * 2^k] capped at [cap] and scaled by a seeded jitter
    factor in [0.5, 1.0) — deterministic under test, desynchronized
    between clients via the seed. Requests are retried transparently up
    to [retries] times; all protocol requests here are idempotent
    except [Query] of DDL, which callers should not blindly retry
    through a failure — {!request} therefore reports the retry count so
    harnesses can account for duplicates. *)

type t = {
  cl_addr : Unix.sockaddr;
  cl_timeout : float;
  cl_retries : int;
  cl_base : float;
  cl_cap : float;
  mutable cl_jitter : int;
  mutable cl_fd : Unix.file_descr option;
  mutable cl_reconnects : int;
}

exception Client_error of string

let next_jitter cl =
  cl.cl_jitter <- (cl.cl_jitter * 1103515245 + 12345) land 0x3FFFFFFF;
  0.5 +. (0.5 *. (float_of_int cl.cl_jitter /. float_of_int 0x40000000))

(* Accept dotted quads and hostnames alike; resolution failures become
   Client_error rather than an untyped Failure from Unix. *)
let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> raise (Client_error ("cannot resolve host " ^ host)))

let create ?(timeout = 10.0) ?(retries = 5) ?(base = 0.02) ?(cap = 1.0)
    ?(seed = 0) ~host ~port () =
  {
    cl_addr = Unix.ADDR_INET (resolve host, port);
    cl_timeout = timeout;
    cl_retries = max 0 retries;
    cl_base = base;
    cl_cap = cap;
    cl_jitter = ((seed * 0x9E3779B1) lor 1) land 0x3FFFFFFF;
    cl_fd = None;
    cl_reconnects = 0;
  }

let disconnect cl =
  match cl.cl_fd with
  | Some fd ->
      (try Unix.close fd with _ -> ());
      cl.cl_fd <- None
  | None -> ()

let close = disconnect
let reconnects cl = cl.cl_reconnects

let ensure_connected cl =
  match cl.cl_fd with
  | Some fd -> fd
  | None ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         if cl.cl_timeout > 0. then begin
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO cl.cl_timeout;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO cl.cl_timeout
         end;
         Unix.connect fd cl.cl_addr
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      cl.cl_fd <- Some fd;
      fd

(* One attempt: connect if needed, send, await the response. Any
   failure mode maps to [Error reason] with the socket torn down. *)
let attempt cl req =
  match
    let fd = ensure_connected cl in
    Protocol.send_request fd req;
    Protocol.recv_response fd
  with
  | Protocol.Got resp -> Ok resp
  | Protocol.Closed ->
      disconnect cl;
      Error "connection closed by server"
  | Protocol.Violated v ->
      (* The server broke framing towards us — do not trust the stream. *)
      disconnect cl;
      Error (Protocol.violation_to_string v)
  | exception Unix.Unix_error (e, _, _) ->
      disconnect cl;
      Error (Unix.error_message e)
  | exception Sys_error m ->
      disconnect cl;
      Error m

let request cl req =
  let rec go k last =
    if k > cl.cl_retries then
      raise
        (Client_error
           (Printf.sprintf "request failed after %d attempts: %s" k last))
    else begin
      if k > 0 then begin
        cl.cl_reconnects <- cl.cl_reconnects + 1;
        let pause =
          Float.min cl.cl_cap (cl.cl_base *. (2. ** float_of_int (k - 1)))
          *. next_jitter cl
        in
        if pause > 0. then Unix.sleepf pause
      end;
      match attempt cl req with
      | Ok resp -> (resp, k)
      | Error reason -> go (k + 1) reason
    end
  in
  go 0 "no attempt made"
