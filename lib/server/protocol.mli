(** Length-prefixed request/response wire protocol for the provenance
    server: 4-byte big-endian frame length, then a versioned tagged
    payload. See protocol.ml for the layout. The decoder never raises
    on peer input: every deviation becomes a typed {!violation},
    {!fatal} ones costing the connection, recoverable ones costing one
    error response. *)

open Relalg

(** Current protocol version byte. *)
val version : int

(** Hard ceiling on payload size; larger declared frames are rejected
    before allocation. *)
val max_frame : int

type request =
  | Ping
  | Query of string  (** SQL, [SELECT PROVENANCE] included *)
  | Set_strategy of string  (** ["gen"|"left"|"move"|"unn"] *)
  | Set_engine of string  (** ["compiled"|"reference"|"vectorized"] *)
  | Set_budget of Guard.budget  (** session budget override *)
  | Load_snapshot of string  (** named snapshot — swaps the epoch *)
  | Stats

type response =
  | Pong
  | Ok_msg of string
  | Result of {
      r_cols : string list;
      r_rows : string list list;  (** values rendered as strings *)
      r_ladder : string option;
          (** how the fallback ladder concluded, when one ran *)
    }
  | Error_msg of { e_phase : string; e_kind : string; e_msg : string }
  | Overloaded of { retry_after : float }  (** admission control shed *)
  | Stats_msg of (string * float) list

type violation =
  | Oversized of int
  | Truncated
  | Bad_version of int
  | Bad_tag of int
  | Malformed of string

(** Whether the violation desynchronized the stream (connection must
    close). Recoverable violations consumed exactly one frame. *)
val fatal : violation -> bool

val violation_to_string : violation -> string

type 'a recv = Got of 'a | Violated of violation | Closed

(** {1 Pure encode/decode} — shared with the protocol fuzzer. *)

(** [encode_request r] / [encode_response r] is the complete frame
    (header included). *)
val encode_request : request -> bytes

val encode_response : response -> bytes

(** [decode_request payload] / [decode_response payload] parse a frame
    payload (header already stripped). *)
val decode_request : bytes -> (request, violation) result

val decode_response : bytes -> (response, violation) result

(** {1 Socket I/O} — blocking, [EINTR]-safe. *)

val send_frame : Unix.file_descr -> bytes -> unit

(** [recv_frame fd] is [Closed] on clean EOF at a frame boundary,
    [Violated Truncated] on EOF mid-frame, [Violated (Oversized _)] on
    an absurd length prefix. *)
val recv_frame : Unix.file_descr -> bytes recv

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit
val recv_request : Unix.file_descr -> request recv
val recv_response : Unix.file_descr -> response recv
