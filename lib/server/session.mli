(** Per-session state over shared immutable database snapshots with
    epoch-based swap: sessions rebase at query boundaries ({!pin}), so
    in-flight queries finish on the epoch they pinned. *)

open Relalg
open Core

(** {1 Snapshot store} *)

(** Publishes one frozen {!Database.t} at a time under a monotonically
    increasing epoch. Thread- and domain-safe. *)
type store

(** [store db] publishes [db] as epoch 1. [db] must not be mutated
    afterwards. *)
val store : Database.t -> store

(** Current [(epoch, snapshot)] pair, read atomically. *)
val snapshot : store -> int * Database.t

val epoch : store -> int

(** [swap st db] publishes [db] under a fresh epoch (returned). Running
    queries are unaffected; sessions adopt it at their next {!pin}. *)
val swap : store -> Database.t -> int

(** Number of swaps since creation. *)
val swaps : store -> int

(** {1 Sessions} *)

type t

(** [create ?strategy ?engine st ~id] opens a session on the store's
    current epoch. [engine = None] follows {!Eval.default_engine}. *)
val create : ?strategy:Strategy.t -> ?engine:Eval.engine -> store -> id:int -> t

val id : t -> int

(** Epoch of the session's current overlay. *)
val epoch_of : t -> int

val strategy : t -> Strategy.t
val set_strategy : t -> Strategy.t -> unit
val engine : t -> Eval.engine option
val set_engine : t -> Eval.engine option -> unit
val budget : t -> Guard.budget option
val set_budget : t -> Guard.budget option -> unit

(** [pin s] is the query-boundary rebase: adopt the store's latest
    snapshot if it moved (replaying this session's DDL on top) and
    return the overlay database and its epoch. The returned database
    stays valid for the whole query even if the store swaps meanwhile. *)
val pin : t -> Database.t * int

(** [db s] = [fst (pin s)]. *)
val db : t -> Database.t

(** [note s res] records a statement's DDL effect (created view/table,
    drop) so a later rebase replays it onto the new snapshot.
    Materialized tables are replayed as values, not re-run. *)
val note : t -> Perm.exec_result -> unit
