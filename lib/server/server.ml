(** The provenance server: a domain-per-connection accept loop with
    admission control and graceful degradation.

    Connections are handled one domain each, because Guard budget
    scopes are [Domain.DLS]-keyed — giving every in-flight request its
    own domain is what lets every request run under its own leased
    budget without interference.

    Admission control has three layers. (1) A session cap: accepted
    connections beyond [c_max_sessions] get a typed [Overloaded]
    response and are closed before a domain is spawned. (2) A token
    bucket on concurrent {e evaluations}: [c_eval_slots] tokens; a
    request finding none waits in a bounded queue, and beyond
    [c_queue_limit] waiters the request is shed with [Overloaded] and a
    retry-after hint. (3) Per-request budgets leased from a server-wide
    {!Guard.Pool}, so the total in-flight wall-clock allowance stays
    bounded no matter how many requests are admitted; a blown budget
    degrades through {!Resilience.run_ladder} (Unn → Move → Left → Gen)
    instead of killing the connection.

    Deterministic wire-fault injection ([c_faults]) fires at the
    accept/read/write/eval boundaries from a seeded PRNG, modelling
    peer resets and transient evaluation failures; the bench harness
    uses it to prove the server never wedges, never leaks sessions and
    never returns a wrong answer under faults.

    Graceful drain: {!drain} stops accepting, lets in-flight requests
    finish under a deadline, then force-closes what remains; every
    handler domain is joined before it returns, so no session can
    leak past it. *)

open Relalg
open Core

(* ------------------------------------------------------------------ *)
(* Deterministic wire faults                                           *)
(* ------------------------------------------------------------------ *)

type fault_site = F_accept | F_read | F_write | F_eval

let fault_site_to_string = function
  | F_accept -> "accept"
  | F_read -> "read"
  | F_write -> "write"
  | F_eval -> "eval"

type fault_plan = {
  fp_seed : int;
  fp_rate : float;  (** firing probability per boundary, in [0,1] *)
  fp_sites : fault_site list;
}

let fault_plan ?(rate = 0.05) ?(sites = [ F_accept; F_read; F_write; F_eval ])
    seed =
  { fp_seed = seed; fp_rate = Float.max 0. (Float.min 1. rate); fp_sites = sites }

(* Shared seeded LCG behind a mutex: boundary crossings from any domain
   draw from one deterministic stream, so a pinned seed pins the total
   fault mix (though not its assignment to connections, which depends
   on scheduling). *)
type fault_state = {
  fs_plan : fault_plan;
  fs_mu : Mutex.t;
  mutable fs_lcg : int;
  mutable fs_fired : int;
}

let fault_state plan =
  {
    fs_plan = plan;
    fs_mu = Mutex.create ();
    fs_lcg = ((plan.fp_seed * 0x9E3779B1) lor 1) land 0x3FFFFFFF;
    fs_fired = 0;
  }

let fault_fires st site =
  if not (List.mem site st.fs_plan.fp_sites) then false
  else begin
    Mutex.lock st.fs_mu;
    st.fs_lcg <- (st.fs_lcg * 1103515245 + 12345) land 0x3FFFFFFF;
    let u = float_of_int st.fs_lcg /. float_of_int 0x40000000 in
    let fire = u < st.fs_plan.fp_rate in
    if fire then st.fs_fired <- st.fs_fired + 1;
    Mutex.unlock st.fs_mu;
    fire
  end

exception Wire_fault of fault_site

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  c_host : string;
  c_port : int;  (** 0 picks an ephemeral port; see {!port} *)
  c_snapshot : Database.t;
  c_snapshots : (string * (unit -> Database.t)) list;
      (** named snapshots servable via [Load_snapshot] *)
  c_max_sessions : int;
  c_eval_slots : int;
  c_queue_limit : int;
  c_budget : Guard.budget option;
      (** template leased per request from a server-wide pool sized at
          [c_eval_slots]; a session's own budget override wins *)
  c_backoff : Resilience.backoff option;
  c_drain_deadline : float;
  c_max_result_rows : int;
  c_faults : fault_plan option;
  c_on_eval : (unit -> unit) option;
      (** test hook, called while holding an eval token *)
}

let config ?(host = "127.0.0.1") ?(port = 0) ?(snapshots = [])
    ?(max_sessions = 64) ?(eval_slots = 4) ?(queue_limit = 16) ?budget
    ?backoff ?(drain_deadline = 5.0) ?(max_result_rows = 10_000) ?faults
    ?on_eval snapshot =
  {
    c_host = host;
    c_port = port;
    c_snapshot = snapshot;
    c_snapshots = snapshots;
    c_max_sessions = max_sessions;
    c_eval_slots = max 1 eval_slots;
    c_queue_limit = max 0 queue_limit;
    c_budget = budget;
    c_backoff = backoff;
    c_drain_deadline = drain_deadline;
    c_max_result_rows = max_result_rows;
    c_faults = faults;
    c_on_eval = on_eval;
  }

(* ------------------------------------------------------------------ *)
(* Admission gate: token bucket + bounded wait queue                   *)
(* ------------------------------------------------------------------ *)

type gate = {
  ga_mu : Mutex.t;
  ga_cond : Condition.t;
  ga_slots : int;
  ga_queue_limit : int;
  mutable ga_tokens : int;
  mutable ga_waiting : int;
  mutable ga_open : bool;  (* closed during forced drain: waiters shed *)
}

let gate ~slots ~queue_limit =
  {
    ga_mu = Mutex.create ();
    ga_cond = Condition.create ();
    ga_slots = slots;
    ga_queue_limit = queue_limit;
    ga_tokens = slots;
    ga_waiting = 0;
    ga_open = true;
  }

(* Deterministic hint: half a slot-time guess per queued request ahead
   of the shed one. Clients treat it as a floor for their backoff. *)
let retry_after_hint g = 0.02 *. float_of_int (g.ga_waiting + 1)

let gate_admit g =
  Mutex.lock g.ga_mu;
  let r =
    if not g.ga_open then `Shed 0.1
    else if g.ga_tokens > 0 then begin
      g.ga_tokens <- g.ga_tokens - 1;
      `Admitted
    end
    else if g.ga_waiting >= g.ga_queue_limit then `Shed (retry_after_hint g)
    else begin
      g.ga_waiting <- g.ga_waiting + 1;
      while g.ga_tokens = 0 && g.ga_open do
        Condition.wait g.ga_cond g.ga_mu
      done;
      g.ga_waiting <- g.ga_waiting - 1;
      if not g.ga_open then `Shed 0.1
      else begin
        g.ga_tokens <- g.ga_tokens - 1;
        `Admitted
      end
    end
  in
  Mutex.unlock g.ga_mu;
  r

let gate_release g =
  Mutex.lock g.ga_mu;
  g.ga_tokens <- min g.ga_slots (g.ga_tokens + 1);
  Condition.signal g.ga_cond;
  Mutex.unlock g.ga_mu

(* Forced drain: shed every queued waiter so handler domains can be
   joined even if a token never frees. *)
let gate_close g =
  Mutex.lock g.ga_mu;
  g.ga_open <- false;
  Condition.broadcast g.ga_cond;
  Mutex.unlock g.ga_mu

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable n_accepted : int;
  mutable n_rejected_cap : int;
  mutable n_sessions_opened : int;
  mutable n_sessions_closed : int;
  mutable n_requests : int;
  mutable n_queries_ok : int;
  mutable n_queries_err : int;
  mutable n_shed : int;
  mutable n_degraded : int;  (* answered only after ladder fallback *)
  mutable n_violations : int;
  mutable n_faults : int;  (* wire faults actually applied *)
  mutable n_internal : int;  (* unexpected handler exceptions *)
}

type t = {
  sv_cfg : config;
  sv_listen : Unix.file_descr;
  sv_port : int;
  sv_store : Session.store;
  sv_gate : gate;
  sv_pool : Guard.Pool.t option;
  sv_faults : fault_state option;
  sv_mu : Mutex.t;
  sv_done : Condition.t;  (* signalled when a handler exits *)
  sv_ctr : counters;
  mutable sv_draining : bool;
  mutable sv_next_id : int;
  mutable sv_live : (int * Unix.file_descr) list;  (* open connections *)
  mutable sv_domains : unit Domain.t list;
  mutable sv_accept : unit Domain.t option;
}

let locked sv f =
  Mutex.lock sv.sv_mu;
  let r = f () in
  Mutex.unlock sv.sv_mu;
  r

let port sv = sv.sv_port
let store sv = sv.sv_store

let stats sv =
  locked sv (fun () ->
      let c = sv.sv_ctr in
      [
        ("accepted", float_of_int c.n_accepted);
        ("rejected_cap", float_of_int c.n_rejected_cap);
        ("sessions_opened", float_of_int c.n_sessions_opened);
        ("sessions_closed", float_of_int c.n_sessions_closed);
        ("sessions_active", float_of_int (c.n_sessions_opened - c.n_sessions_closed));
        ("requests", float_of_int c.n_requests);
        ("queries_ok", float_of_int c.n_queries_ok);
        ("queries_err", float_of_int c.n_queries_err);
        ("shed", float_of_int c.n_shed);
        ("degraded", float_of_int c.n_degraded);
        ("violations", float_of_int c.n_violations);
        ("faults_injected", float_of_int c.n_faults);
        ("internal_errors", float_of_int c.n_internal);
        ("epoch", float_of_int (Session.epoch sv.sv_store));
        ("epoch_swaps", float_of_int (Session.swaps sv.sv_store));
        ( "pool_leases",
          match sv.sv_pool with
          | Some p -> float_of_int (Guard.Pool.leased p)
          | None -> 0. );
      ])

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let detail_kind = function
  | Resilience.Message _ -> "message"
  | Resilience.Budget _ -> "budget"
  | Resilience.Fault _ -> "fault"
  | Resilience.Lint _ -> "lint"
  | Resilience.Unsupported _ -> "unsupported"
  | Resilience.Overloaded _ -> "overloaded"
  | Resilience.Violation _ -> "violation"

let error_response (e : Resilience.error) =
  match e.Resilience.e_detail with
  | Resilience.Overloaded { retry_after } -> Protocol.Overloaded { retry_after }
  | d ->
      Protocol.Error_msg
        {
          e_phase = Resilience.phase_to_string e.Resilience.e_phase;
          e_kind = detail_kind d;
          e_msg = Resilience.error_to_string e;
        }

let render_result ~max_rows (r : Perm.result) =
  let rel = r.Perm.relation in
  let r_cols = Schema.names (Relation.schema rel) in
  let tuples = Relation.tuples rel in
  let n = List.length tuples in
  let tuples = if n > max_rows then List.filteri (fun i _ -> i < max_rows) tuples else tuples in
  let r_rows =
    List.map
      (fun t ->
        List.map Value.to_string (Array.to_list (t : Tuple.t :> Value.t array)))
      tuples
  in
  let r_ladder =
    match r.Perm.ladder with
    | Some l when l.Resilience.lad_abandoned <> [] ->
        Some (Resilience.ladder_to_string l)
    | _ -> None
  in
  Protocol.Result { r_cols; r_rows; r_ladder }

let bump sv f = locked sv (fun () -> f sv.sv_ctr)

(* Evaluate one SQL statement for [session] under admission control. *)
let eval_query sv session sql =
  match gate_admit sv.sv_gate with
  | `Shed retry_after ->
      bump sv (fun c -> c.n_shed <- c.n_shed + 1);
      Protocol.Overloaded { retry_after }
  | `Admitted ->
      Fun.protect
        ~finally:(fun () -> gate_release sv.sv_gate)
        (fun () ->
          (match sv.sv_cfg.c_on_eval with Some h -> h () | None -> ());
          let inject () =
            match sv.sv_faults with
            | Some fs when fault_fires fs F_eval ->
                bump sv (fun c -> c.n_faults <- c.n_faults + 1);
                (* Model a transient evaluation failure with the same
                   typed detail as Guard.Faults injections. *)
                raise
                  (Resilience.Perm_error
                     {
                       Resilience.e_phase = Resilience.Eval;
                       e_detail =
                         Resilience.Fault { f_site = "server"; f_path = [] };
                     })
            | _ -> ()
          in
          let db, _epoch = Session.pin session in
          let lease =
            match Session.budget session with
            | Some b -> `Own b
            | None -> (
                match sv.sv_pool with
                | Some p -> `Pool (p, Guard.Pool.lease p)
                | None -> `Free)
          in
          let budget =
            match lease with `Own b -> Some b | `Pool (_, b) -> Some b | `Free -> None
          in
          Fun.protect
            ~finally:(fun () ->
              match lease with `Pool (p, _) -> Guard.Pool.release p | _ -> ())
            (fun () ->
              let run () =
                inject ();
                Perm.exec db
                  ~strategy:(Session.strategy session)
                  ?engine:(Session.engine session)
                  ?budget ?backoff:sv.sv_cfg.c_backoff ~fallback:true sql
              in
              (* Pre-eval transient faults retry here with the same
                 capped pause discipline the ladder applies to faults
                 that fire mid-evaluation. *)
              let res =
                match sv.sv_cfg.c_backoff with
                | None -> run ()
                | Some bo ->
                    let rec go k =
                      try run () with
                      | Resilience.Perm_error e
                        when Resilience.transient e && k < bo.Resilience.bo_retries
                        ->
                          Unix.sleepf
                            (Float.min bo.Resilience.bo_cap
                               (bo.Resilience.bo_base *. (2. ** float_of_int k)));
                          go (k + 1)
                    in
                    go 0
              in
              Session.note session res;
              match res with
              | Perm.Rows r ->
                  (match r.Perm.ladder with
                  | Some l when l.Resilience.lad_abandoned <> [] ->
                      bump sv (fun c -> c.n_degraded <- c.n_degraded + 1)
                  | _ -> ());
                  render_result ~max_rows:sv.sv_cfg.c_max_result_rows r
              | Perm.Created_view n -> Protocol.Ok_msg ("created view " ^ n)
              | Perm.Created_table (n, k) ->
                  Protocol.Ok_msg (Printf.sprintf "created table %s (%d rows)" n k)
              | Perm.Dropped n -> Protocol.Ok_msg ("dropped " ^ n)))

let handle_request sv session (req : Protocol.request) =
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats -> Protocol.Stats_msg (stats sv)
  | Protocol.Set_strategy s -> (
      match Strategy.of_string s with
      | st ->
          Session.set_strategy session st;
          Protocol.Ok_msg ("strategy " ^ s)
      | exception Invalid_argument m ->
          Protocol.Error_msg { e_phase = "protocol"; e_kind = "message"; e_msg = m })
  | Protocol.Set_engine e -> (
      match Eval.engine_of_string e with
      | eng ->
          Session.set_engine session (Some eng);
          Protocol.Ok_msg ("engine " ^ e)
      | exception Invalid_argument m ->
          Protocol.Error_msg { e_phase = "protocol"; e_kind = "message"; e_msg = m })
  | Protocol.Set_budget b ->
      Session.set_budget session
        (if Guard.is_unlimited b then None else Some b);
      Protocol.Ok_msg ("budget " ^ Guard.budget_to_string b)
  | Protocol.Load_snapshot name -> (
      match List.assoc_opt name sv.sv_cfg.c_snapshots with
      | None ->
          Protocol.Error_msg
            {
              e_phase = "protocol";
              e_kind = "message";
              e_msg = "unknown snapshot " ^ name;
            }
      | Some build -> (
          match build () with
          | db ->
              let e = Session.swap sv.sv_store db in
              Protocol.Ok_msg (Printf.sprintf "snapshot %s at epoch %d" name e)
          | exception exn ->
              Protocol.Error_msg
                {
                  e_phase = "load";
                  e_kind = "message";
                  e_msg = Printexc.to_string exn;
                }))
  | Protocol.Query sql -> (
      match eval_query sv session sql with
      | resp -> resp
      | exception Resilience.Perm_error e ->
          bump sv (fun c -> c.n_queries_err <- c.n_queries_err + 1);
          error_response e)

(* ------------------------------------------------------------------ *)
(* Connection handler                                                  *)
(* ------------------------------------------------------------------ *)

let faulty_recv sv fd =
  match sv.sv_faults with
  | Some fs when fault_fires fs F_read ->
      bump sv (fun c -> c.n_faults <- c.n_faults + 1);
      raise (Wire_fault F_read)
  | _ -> Protocol.recv_request fd

let faulty_send sv fd resp =
  match sv.sv_faults with
  | Some fs when fault_fires fs F_write ->
      bump sv (fun c -> c.n_faults <- c.n_faults + 1);
      raise (Wire_fault F_write)
  | _ -> Protocol.send_response fd resp

let handle_connection sv id fd =
  let session = Session.create sv.sv_store ~id in
  bump sv (fun c -> c.n_sessions_opened <- c.n_sessions_opened + 1);
  let rec loop () =
    match faulty_recv sv fd with
    | Protocol.Closed -> ()
    | Protocol.Violated v ->
        bump sv (fun c -> c.n_violations <- c.n_violations + 1);
        let resp =
          Protocol.Error_msg
            {
              e_phase = "protocol";
              e_kind = "violation";
              e_msg = Protocol.violation_to_string v;
            }
        in
        (* Best effort even on fatal violations — the peer may already
           be gone. *)
        (try faulty_send sv fd resp with _ -> ());
        if not (Protocol.fatal v) then loop ()
    | Protocol.Got req ->
        bump sv (fun c -> c.n_requests <- c.n_requests + 1);
        let resp =
          match handle_request sv session req with
          | resp ->
              (match req with
              | Protocol.Query _ ->
                  (match resp with
                  | Protocol.Overloaded _ | Protocol.Error_msg _ -> ()
                  | _ -> bump sv (fun c -> c.n_queries_ok <- c.n_queries_ok + 1))
              | _ -> ());
              resp
          | exception Wire_fault s -> raise (Wire_fault s)
          | exception exn ->
              (* A handler bug must cost one request, not the server. *)
              bump sv (fun c ->
                  c.n_internal <- c.n_internal + 1;
                  c.n_queries_err <- c.n_queries_err + 1);
              Protocol.Error_msg
                {
                  e_phase = "eval";
                  e_kind = "internal";
                  e_msg = Printexc.to_string exn;
                }
        in
        faulty_send sv fd resp;
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      locked sv (fun () ->
          sv.sv_ctr.n_sessions_closed <- sv.sv_ctr.n_sessions_closed + 1;
          sv.sv_live <- List.filter (fun (i, _) -> i <> id) sv.sv_live;
          Condition.broadcast sv.sv_done))
    (fun () ->
      try loop () with
      | Wire_fault _ -> () (* injected reset: drop the connection *)
      | Unix.Unix_error _ | Sys_error _ -> () (* real peer reset *))

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop sv =
  let rec loop () =
    match Unix.accept sv.sv_listen with
    | exception
        Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
        () (* listener shut down: drain started *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | fd, _addr ->
        if sv.sv_draining then (try Unix.close fd with _ -> ())
        else begin
          bump sv (fun c -> c.n_accepted <- c.n_accepted + 1);
          (match sv.sv_faults with
          | Some fs when fault_fires fs F_accept ->
              (* Injected accept-time reset. *)
              bump sv (fun c -> c.n_faults <- c.n_faults + 1);
              (try Unix.close fd with _ -> ())
          | _ ->
              let active =
                locked sv (fun () -> List.length sv.sv_live)
              in
              if active >= sv.sv_cfg.c_max_sessions then begin
                bump sv (fun c -> c.n_rejected_cap <- c.n_rejected_cap + 1);
                (try
                   Protocol.send_response fd
                     (Protocol.Overloaded { retry_after = 0.1 })
                 with _ -> ());
                try Unix.close fd with _ -> ()
              end
              else begin
                let id =
                  locked sv (fun () ->
                      let id = sv.sv_next_id in
                      sv.sv_next_id <- id + 1;
                      sv.sv_live <- (id, fd) :: sv.sv_live;
                      id)
                in
                let d = Domain.spawn (fun () -> handle_connection sv id fd) in
                locked sv (fun () -> sv.sv_domains <- d :: sv.sv_domains)
              end);
          loop ()
        end
  in
  loop ()

let start cfg =
  let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.c_host, cfg.c_port) in
  Unix.bind listen addr;
  Unix.listen listen 64;
  let sv_port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.c_port
  in
  let sv =
    {
      sv_cfg = cfg;
      sv_listen = listen;
      sv_port;
      sv_store = Session.store cfg.c_snapshot;
      sv_gate = gate ~slots:cfg.c_eval_slots ~queue_limit:cfg.c_queue_limit;
      sv_pool =
        Option.map (fun b -> Guard.Pool.create ~slots:cfg.c_eval_slots b) cfg.c_budget;
      sv_faults = Option.map fault_state cfg.c_faults;
      sv_mu = Mutex.create ();
      sv_done = Condition.create ();
      sv_ctr =
        {
          n_accepted = 0;
          n_rejected_cap = 0;
          n_sessions_opened = 0;
          n_sessions_closed = 0;
          n_requests = 0;
          n_queries_ok = 0;
          n_queries_err = 0;
          n_shed = 0;
          n_degraded = 0;
          n_violations = 0;
          n_faults = 0;
          n_internal = 0;
        };
      sv_draining = false;
      sv_next_id = 1;
      sv_live = [];
      sv_domains = [];
      sv_accept = None;
    }
  in
  sv.sv_accept <- Some (Domain.spawn (fun () -> accept_loop sv));
  sv

let faults_injected sv =
  match sv.sv_faults with
  | Some fs ->
      Mutex.lock fs.fs_mu;
      let n = fs.fs_fired in
      Mutex.unlock fs.fs_mu;
      n
  | None -> 0

(* [drain sv] stops accepting and waits for in-flight sessions under
   the drain deadline; leftovers are force-closed (their handlers exit
   on the resulting I/O error). Returns [true] when everything finished
   within the deadline. All handler domains are joined either way. *)
let drain sv =
  locked sv (fun () -> sv.sv_draining <- true);
  (* shutdown (not close) wakes the blocked accept on Linux; the fd is
     closed only after the acceptor has been joined, so it cannot race
     with fd reuse. *)
  (try Unix.shutdown sv.sv_listen Unix.SHUTDOWN_ALL with _ -> ());
  let acceptor = locked sv (fun () -> let a = sv.sv_accept in sv.sv_accept <- None; a) in
  Option.iter Domain.join acceptor;
  (try Unix.close sv.sv_listen with _ -> ());
  let deadline = Unix.gettimeofday () +. sv.sv_cfg.c_drain_deadline in
  let clean = ref true in
  Mutex.lock sv.sv_mu;
  while sv.sv_live <> [] && Unix.gettimeofday () < deadline do
    (* Coarse poll: Condition has no timed wait. *)
    Mutex.unlock sv.sv_mu;
    Unix.sleepf 0.02;
    Mutex.lock sv.sv_mu
  done;
  if sv.sv_live <> [] then begin
    clean := false;
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      sv.sv_live
  end;
  let domains = sv.sv_domains in
  sv.sv_domains <- [];
  Mutex.unlock sv.sv_mu;
  if not !clean then gate_close sv.sv_gate;
  List.iter Domain.join domains;
  !clean

let stop sv = ignore (drain sv)
