(** Length-prefixed request/response wire protocol for the provenance
    server.

    Frame layout: a 4-byte big-endian payload length, then the payload.
    Payload layout: one version byte ({!version}), one tag byte, then
    tag-specific fields (strings are 4-byte-length-prefixed, floats are
    IEEE-754 bits big-endian, options are a presence byte). The frame
    length is bounded by {!max_frame}; anything larger is rejected
    before allocation.

    The decoder is tolerant by construction: every way a peer can
    deviate — truncated stream, oversized or absurd length prefix,
    unknown version or tag, fields overrunning the payload — maps to a
    typed {!violation} instead of an exception. Violations that leave
    the framing intact (the frame was fully consumed) are {e
    recoverable}: the server answers with a typed error and keeps the
    connection. Violations that desynchronize the stream ([Oversized],
    [Truncated]) are fatal to the connection, never to the server. *)

open Relalg

let version = 1
let max_frame = 1 lsl 20 (* 1 MiB *)

type request =
  | Ping
  | Query of string
  | Set_strategy of string
  | Set_engine of string
  | Set_budget of Guard.budget
  | Load_snapshot of string
  | Stats

type response =
  | Pong
  | Ok_msg of string
  | Result of {
      r_cols : string list;
      r_rows : string list list;
      r_ladder : string option;
    }
  | Error_msg of { e_phase : string; e_kind : string; e_msg : string }
  | Overloaded of { retry_after : float }
  | Stats_msg of (string * float) list

type violation =
  | Oversized of int  (** declared frame length beyond {!max_frame} *)
  | Truncated  (** the peer vanished mid-frame *)
  | Bad_version of int
  | Bad_tag of int
  | Malformed of string  (** fields inconsistent with the frame length *)

(* A violation is fatal when the byte stream can no longer be framed:
   an oversized declaration or a mid-frame disconnect leaves no safe
   resynchronization point. Everything else consumed exactly one frame
   and the next frame can be parsed normally. *)
let fatal = function
  | Oversized _ | Truncated -> true
  | Bad_version _ | Bad_tag _ | Malformed _ -> false

let violation_to_string = function
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds %d" n max_frame
  | Truncated -> "stream truncated mid-frame"
  | Bad_version v -> Printf.sprintf "unknown protocol version %d" v
  | Bad_tag t -> Printf.sprintf "unknown message tag 0x%02x" t
  | Malformed m -> "malformed frame: " ^ m

type 'a recv = Got of 'a | Violated of violation | Closed

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let add_u32 b n = Buffer.add_int32_be b (Int32.of_int n)
let add_f64 b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let add_string b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_opt b add = function
  | None -> add_u8 b 0
  | Some v ->
      add_u8 b 1;
      add v

let add_list b add xs =
  add_u32 b (List.length xs);
  List.iter add xs

let frame payload_of =
  let b = Buffer.create 64 in
  add_u8 b version;
  payload_of b;
  let payload = Buffer.contents b in
  let out = Buffer.create (String.length payload + 4) in
  add_u32 out (String.length payload);
  Buffer.add_string out payload;
  Buffer.to_bytes out

let encode_request r =
  frame (fun b ->
      match r with
      | Ping -> add_u8 b 0x01
      | Query sql ->
          add_u8 b 0x02;
          add_string b sql
      | Set_strategy s ->
          add_u8 b 0x03;
          add_string b s
      | Set_engine e ->
          add_u8 b 0x04;
          add_string b e
      | Set_budget g ->
          add_u8 b 0x05;
          add_opt b (add_f64 b) g.Guard.g_timeout;
          add_opt b (fun n -> add_u32 b n) g.Guard.g_max_rows;
          add_opt b (fun n -> add_u32 b n) g.Guard.g_max_pairs;
          add_opt b (add_f64 b) g.Guard.g_max_alloc_mb
      | Load_snapshot name ->
          add_u8 b 0x06;
          add_string b name
      | Stats -> add_u8 b 0x07)

let encode_response r =
  frame (fun b ->
      match r with
      | Pong -> add_u8 b 0x81
      | Ok_msg m ->
          add_u8 b 0x82;
          add_string b m
      | Result { r_cols; r_rows; r_ladder } ->
          add_u8 b 0x83;
          add_list b (add_string b) r_cols;
          add_list b (fun row -> add_list b (add_string b) row) r_rows;
          add_opt b (add_string b) r_ladder
      | Error_msg { e_phase; e_kind; e_msg } ->
          add_u8 b 0x84;
          add_string b e_phase;
          add_string b e_kind;
          add_string b e_msg
      | Overloaded { retry_after } ->
          add_u8 b 0x85;
          add_f64 b retry_after
      | Stats_msg kvs ->
          add_u8 b 0x86;
          add_list b
            (fun (k, v) ->
              add_string b k;
              add_f64 b v)
            kvs)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of violation

type cursor = { c_buf : bytes; mutable c_pos : int }

let need c n =
  if c.c_pos + n > Bytes.length c.c_buf then
    raise (Bad (Malformed "field overruns frame"))

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.c_buf c.c_pos) in
  c.c_pos <- c.c_pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.c_buf c.c_pos) land 0xffffffff in
  c.c_pos <- c.c_pos + 4;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_be c.c_buf c.c_pos) in
  c.c_pos <- c.c_pos + 8;
  v

let get_string c =
  let n = get_u32 c in
  if n > max_frame then raise (Bad (Malformed "string length absurd"));
  need c n;
  let s = Bytes.sub_string c.c_buf c.c_pos n in
  c.c_pos <- c.c_pos + n;
  s

let get_opt c get = if get_u8 c = 0 then None else Some (get c)

let get_list c get =
  let n = get_u32 c in
  if n > max_frame then raise (Bad (Malformed "list length absurd"));
  List.init n (fun _ -> get c)

let finish c v =
  if c.c_pos <> Bytes.length c.c_buf then
    raise (Bad (Malformed "trailing bytes after message"));
  v

let with_cursor payload k =
  let c = { c_buf = payload; c_pos = 0 } in
  match
    let v = get_u8 c in
    if v <> version then Error (Bad_version v) else Result.Ok (k c)
  with
  | r -> r
  | exception Bad viol -> Error viol

let decode_request payload =
  with_cursor payload (fun c ->
      let tag = get_u8 c in
      finish c
        (match tag with
        | 0x01 -> Ping
        | 0x02 -> Query (get_string c)
        | 0x03 -> Set_strategy (get_string c)
        | 0x04 -> Set_engine (get_string c)
        | 0x05 ->
            let g_timeout = get_opt c get_f64 in
            let g_max_rows = get_opt c get_u32 in
            let g_max_pairs = get_opt c get_u32 in
            let g_max_alloc_mb = get_opt c get_f64 in
            Set_budget { Guard.g_timeout; g_max_rows; g_max_pairs; g_max_alloc_mb }
        | 0x06 -> Load_snapshot (get_string c)
        | 0x07 -> Stats
        | t -> raise (Bad (Bad_tag t))))

let decode_response payload =
  with_cursor payload (fun c ->
      let tag = get_u8 c in
      finish c
        (match tag with
        | 0x81 -> Pong
        | 0x82 -> Ok_msg (get_string c)
        | 0x83 ->
            let r_cols = get_list c get_string in
            let r_rows = get_list c (fun c -> get_list c get_string) in
            let r_ladder = get_opt c get_string in
            Result { r_cols; r_rows; r_ladder }
        | 0x84 ->
            let e_phase = get_string c in
            let e_kind = get_string c in
            let e_msg = get_string c in
            Error_msg { e_phase; e_kind; e_msg }
        | 0x85 -> Overloaded { retry_after = get_f64 c }
        | 0x86 ->
            Stats_msg
              (get_list c (fun c ->
                   let k = get_string c in
                   let v = get_f64 c in
                   (k, v)))
        | t -> raise (Bad (Bad_tag t))))

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

(* [really_read fd buf] fills [buf] completely. [`Eof n] reports how
   many bytes had arrived before the peer vanished. *)
let really_read fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then `Full
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let really_write fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_frame fd bytes = really_write fd bytes

let recv_frame fd =
  let header = Bytes.create 4 in
  match really_read fd header with
  | `Eof 0 -> Closed
  | `Eof _ -> Violated Truncated
  | `Full -> (
      let len = Int32.to_int (Bytes.get_int32_be header 0) land 0xffffffff in
      if len > max_frame then Violated (Oversized len)
      else
        let payload = Bytes.create len in
        match really_read fd payload with
        | `Eof _ -> Violated Truncated
        | `Full -> Got payload)

let recv_with decode fd =
  match recv_frame fd with
  | Closed -> Closed
  | Violated v -> Violated v
  | Got payload -> (
      match decode payload with
      | Result.Ok r -> Got r
      | Result.Error v -> Violated v)

let recv_request fd = recv_with decode_request fd
let recv_response fd = recv_with decode_response fd
let send_request fd r = send_frame fd (encode_request r)
let send_response fd r = send_frame fd (encode_response r)
