(** Per-session state over shared immutable database snapshots.

    The {!store} publishes one snapshot at a time, identified by a
    monotonically increasing {e epoch}. A snapshot is a {!Database.t}
    treated as frozen: the server never mutates it after publication,
    and {!Relation.t} values (with their lazy memos) are safe to share
    across domains, so handing a snapshot to a session costs nothing.

    Each session evaluates against a private {e overlay} database:
    snapshot tables and views shared by reference, plus the session's
    own DDL (views and materialized tables) replayed on top. Queries
    therefore run without any lock — the overlay is confined to the
    session's connection domain.

    Epoch swap semantics: {!swap} publishes a new snapshot and bumps
    the epoch. Sessions notice at the {e next query boundary} ({!pin})
    and rebase their overlay — rebuild from the new snapshot, replay
    their DDL log. A query already running keeps the overlay it pinned,
    so in-flight queries finish on their epoch; nothing blocks the
    swap. *)

open Relalg
open Core

(* ------------------------------------------------------------------ *)
(* Snapshot store                                                      *)
(* ------------------------------------------------------------------ *)

type store = {
  st_mu : Mutex.t;
  mutable st_epoch : int;
  mutable st_db : Database.t;
  mutable st_swaps : int;
}

let store db = { st_mu = Mutex.create (); st_epoch = 1; st_db = db; st_swaps = 0 }

let snapshot st =
  Mutex.lock st.st_mu;
  let r = (st.st_epoch, st.st_db) in
  Mutex.unlock st.st_mu;
  r

let epoch st = fst (snapshot st)

let swap st db =
  Mutex.lock st.st_mu;
  st.st_epoch <- st.st_epoch + 1;
  st.st_db <- db;
  st.st_swaps <- st.st_swaps + 1;
  let e = st.st_epoch in
  Mutex.unlock st.st_mu;
  e

let swaps st =
  Mutex.lock st.st_mu;
  let n = st.st_swaps in
  Mutex.unlock st.st_mu;
  n

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* One replayable DDL effect. Tables store the materialized relation —
   a CREATE TABLE AS is a value, not a recipe, so a rebase must not
   re-run the (possibly snapshot-dependent) query. *)
type op =
  | Op_table of string * Relation.t
  | Op_view of string * Algebra.query
  | Op_drop of string

type t = {
  s_id : int;
  s_store : store;
  mutable s_epoch : int;
  mutable s_db : Database.t;
  mutable s_ops : op list;  (* newest first; replayed in reverse *)
  mutable s_strategy : Strategy.t;
  mutable s_engine : Eval.engine option;
  mutable s_budget : Guard.budget option;
}

let overlay_of (snap : Database.t) ops =
  let db = Database.create () in
  List.iter (fun n -> Database.add db n (Database.find snap n)) (Database.names snap);
  List.iter
    (fun v ->
      match Database.find_view snap v with
      | Some q -> Database.add_view db v q
      | None -> ())
    (Database.view_names snap);
  List.iter
    (function
      | Op_table (n, r) -> Database.add db n r
      | Op_view (n, q) -> Database.add_view db n q
      | Op_drop n -> ignore (Database.drop db n))
    (List.rev ops);
  db

let create ?(strategy = Strategy.Gen) ?engine st ~id =
  let epoch, snap = snapshot st in
  {
    s_id = id;
    s_store = st;
    s_epoch = epoch;
    s_db = overlay_of snap [];
    s_ops = [];
    s_strategy = strategy;
    s_engine = engine;
    s_budget = None;
  }

let id s = s.s_id
let epoch_of s = s.s_epoch
let strategy s = s.s_strategy
let set_strategy s v = s.s_strategy <- v
let engine s = s.s_engine
let set_engine s v = s.s_engine <- v
let budget s = s.s_budget
let set_budget s v = s.s_budget <- v

(* Query-boundary rebase: adopt the latest snapshot if the store moved
   on, replaying this session's DDL on the new base. The rebuilt
   overlay is a fresh [Database.t] (fresh uid), so the {!Stats} cache
   can never serve it the old overlay's statistics; dropping the dead
   overlay's entry here just frees the memory eagerly. (DDL on a live
   overlay bumps its version, which the cache revalidates against, so
   session-local CREATE/DROP invalidate statistics automatically.) *)
let pin s =
  let epoch, snap = snapshot s.s_store in
  if epoch <> s.s_epoch then begin
    Stats.invalidate s.s_db;
    s.s_epoch <- epoch;
    s.s_db <- overlay_of snap s.s_ops
  end;
  (s.s_db, s.s_epoch)

let db s = fst (pin s)

(* Record a statement's DDL effect for replay across rebases. *)
let note s = function
  | Perm.Rows _ -> ()
  | Perm.Created_view n -> (
      match Database.find_view s.s_db n with
      | Some q -> s.s_ops <- Op_view (n, q) :: s.s_ops
      | None -> ())
  | Perm.Created_table (n, _) ->
      s.s_ops <- Op_table (n, Database.find s.s_db n) :: s.s_ops
  | Perm.Dropped n -> s.s_ops <- Op_drop n :: s.s_ops
