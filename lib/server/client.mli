(** Blocking client with per-call timeouts and jittered-exponential
    reconnect (seeded, deterministic under test). *)

type t

exception Client_error of string

(** [create ?timeout ?retries ?base ?cap ?seed ~host ~port ()] builds a
    lazily connecting client: [timeout] bounds each send/receive,
    reconnect pause [k] is [base * 2^k] capped at [cap] and jittered by
    the PRNG seeded with [seed]. *)
val create :
  ?timeout:float ->
  ?retries:int ->
  ?base:float ->
  ?cap:float ->
  ?seed:int ->
  host:string ->
  port:int ->
  unit ->
  t

(** [request cl req] sends [req], reconnecting and retrying on
    connection failure; returns the response and the number of retries
    it took (0 = first attempt). Raises {!Client_error} once [retries]
    attempts are exhausted. Note a retried [Query] carrying DDL may
    execute twice if the failure hit after the server applied it. *)
val request : t -> Protocol.request -> Protocol.response * int

(** Total reconnect attempts so far. *)
val reconnects : t -> int

val close : t -> unit
