(** The provenance server: domain-per-connection accept loop, admission
    control (session cap, eval token bucket with a bounded wait queue,
    server-wide budget pool), per-request strategy degradation via
    {!Resilience.run_ladder}, deterministic wire-fault injection, and
    graceful drain. See server.ml for the design notes. *)

open Relalg
open Core

(** {1 Deterministic wire faults} *)

type fault_site = F_accept | F_read | F_write | F_eval

val fault_site_to_string : fault_site -> string

type fault_plan

(** [fault_plan ?rate ?sites seed]: at each boundary of a kind in
    [sites], a seeded PRNG fires with probability [rate] (default 5%).
    Accept/read/write faults model peer resets (connection dropped);
    eval faults model transient evaluation failures (typed
    {!Resilience.Fault}, retried under the configured backoff). *)
val fault_plan : ?rate:float -> ?sites:fault_site list -> int -> fault_plan

(** {1 Configuration} *)

type config = {
  c_host : string;
  c_port : int;  (** 0 picks an ephemeral port; see {!port} *)
  c_snapshot : Database.t;  (** initial snapshot, frozen at publication *)
  c_snapshots : (string * (unit -> Database.t)) list;
  c_max_sessions : int;
  c_eval_slots : int;
  c_queue_limit : int;
  c_budget : Guard.budget option;
  c_backoff : Resilience.backoff option;
  c_drain_deadline : float;
  c_max_result_rows : int;
  c_faults : fault_plan option;
  c_on_eval : (unit -> unit) option;
}

val config :
  ?host:string ->
  ?port:int ->
  ?snapshots:(string * (unit -> Database.t)) list ->
  ?max_sessions:int ->
  ?eval_slots:int ->
  ?queue_limit:int ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?drain_deadline:float ->
  ?max_result_rows:int ->
  ?faults:fault_plan ->
  ?on_eval:(unit -> unit) ->
  Database.t ->
  config

(** {1 Lifecycle} *)

type t

(** [start cfg] binds, listens and spawns the accept domain. *)
val start : config -> t

(** The actually bound port (useful with [c_port = 0]). *)
val port : t -> int

val store : t -> Session.store

(** Counter snapshot, as served by the [Stats] request: accepted,
    sessions opened/closed/active, requests, queries ok/err, shed,
    degraded, violations, faults injected, internal errors, epoch,
    epoch swaps, pool leases. *)
val stats : t -> (string * float) list

(** Wire faults fired so far (0 without a fault plan). *)
val faults_injected : t -> int

(** [drain sv] stops accepting, waits for in-flight sessions up to
    [c_drain_deadline], then force-closes the rest; all handler domains
    are joined before returning. [true] when everything finished within
    the deadline. *)
val drain : t -> bool

(** [stop sv] = [ignore (drain sv)]. *)
val stop : t -> unit
