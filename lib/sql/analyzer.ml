(** Name resolution and translation from the SQL AST to the algebra of
    {!Relalg.Algebra}.

    Every attribute an operator produces is given a qualified, unique
    name ("alias.column"), which makes name-based correlation resolution
    in the evaluator unambiguous. A scope is a stack of frames, one per
    query nesting level; resolution is innermost-first, so a reference
    that does not resolve in the current query level becomes a
    correlated reference to an enclosing level (Section 2.2). *)

open Relalg

exception Analyze_error of string

let err fmt = Format.kasprintf (fun s -> raise (Analyze_error s)) fmt

type frame =
  | From_frame of (string * string list) list
      (** visible FROM items: alias -> unqualified column names *)
  | Agg_frame of agg_frame
      (** a query level that has been aggregated *)

and agg_frame = {
  af_groups : (Algebra.expr * string) list;
      (** analyzed group expression -> output attribute *)
  af_aggs : (Ast.expr * string) list;
      (** aggregate call (AST) -> output attribute *)
  af_hidden : frame;  (** the pre-aggregation FROM frame of this level *)
}

type scopes = frame list

let qualify alias col = if alias = "" then col else alias ^ "." ^ col

(* Resolve a possibly-qualified column against one FROM frame. *)
let resolve_in_items items qual col =
  match qual with
  | Some alias -> (
      match List.assoc_opt alias items with
      | Some cols when List.mem col cols -> Some (qualify alias col)
      | _ -> None)
  | None -> (
      let hits =
        List.filter_map
          (fun (alias, cols) ->
            if List.mem col cols then Some (qualify alias col) else None)
          items
      in
      match hits with
      | [] -> None
      | [ name ] -> Some name
      | _ -> err "ambiguous column reference %S" col)

let rec resolve_in_frame frame qual col =
  match frame with
  | From_frame items -> resolve_in_items items qual col
  | Agg_frame af -> (
      (* Inside an aggregated level, a column is visible iff it is one of
         the grouping expressions. *)
      match resolve_in_frame af.af_hidden qual col with
      | Some name
        when List.exists
               (fun (g, _) -> g = Algebra.Attr name)
               af.af_groups ->
          (* The group output attribute carries the same qualified name. *)
          let _, out = List.find (fun (g, _) -> g = Algebra.Attr name) af.af_groups in
          Some out
      | Some name ->
          err "column %S must appear in the GROUP BY clause or be used in an aggregate"
            name
      | None -> None)

(* Every column name visible in a frame — bare and alias-qualified —
   for the unknown-column did-you-mean hint. *)
let rec frame_candidates = function
  | From_frame items ->
      List.concat_map
        (fun (alias, cols) -> cols @ List.map (qualify alias) cols)
        items
  | Agg_frame af -> List.map snd af.af_groups @ frame_candidates af.af_hidden

let did_you_mean_hint name candidates =
  match Typecheck.did_you_mean name candidates with
  | [] -> ""
  | cands ->
      Printf.sprintf "; did you mean %s?"
        (String.concat " or " (List.map (Printf.sprintf "%S") cands))

(* Resolve through the scope stack; innermost frame first. *)
let resolve (scopes : scopes) qual col =
  let rec go = function
    | [] ->
        let name = match qual with Some q -> qualify q col | None -> col in
        err "unknown column %S%s" name
          (did_you_mean_hint name (List.concat_map frame_candidates scopes))
    | frame :: rest -> (
        match resolve_in_frame frame qual col with
        | Some name -> name
        | None -> go rest)
  in
  go scopes

let binop_of : Ast.binop -> Algebra.binop = function
  | Ast.Plus -> Algebra.Add
  | Ast.Minus -> Algebra.Sub
  | Ast.Times -> Algebra.Mul
  | Ast.Div -> Algebra.Div
  | Ast.Mod -> Algebra.Mod
  | Ast.Concat -> Algebra.Concat

let cmpop_of : Ast.cmpop -> Algebra.cmpop = function
  | Ast.CEq -> Algebra.Eq
  | Ast.CNeq -> Algebra.Neq
  | Ast.CLt -> Algebra.Lt
  | Ast.CLeq -> Algebra.Leq
  | Ast.CGt -> Algebra.Gt
  | Ast.CGeq -> Algebra.Geq

(* Fold [f] over the direct children of an AST expression, not
   descending into sublink queries (a sublink's aggregates belong to the
   sublink's own SELECT). *)
let fold_children : 'a. (Ast.expr -> 'a -> 'a) -> Ast.expr -> 'a -> 'a =
 fun f e acc ->
  match e with
  | Ast.ENull | Ast.EInt _ | Ast.EFloat _ | Ast.EString _ | Ast.EBool _
  | Ast.EColumn _ ->
      acc
  | Ast.EBinop (_, a, b) | Ast.ECmp (_, a, b) | Ast.EAnd (a, b) | Ast.EOr (a, b) ->
      f b (f a acc)
  | Ast.ENot a | Ast.EIsNull { arg = a; _ } | Ast.ELike { arg = a; _ } -> f a acc
  | Ast.EBetween { arg; lo; hi; _ } -> f hi (f lo (f arg acc))
  | Ast.EInList { arg; elems; _ } -> List.fold_left (fun acc e -> f e acc) (f arg acc) elems
  | Ast.ECase (whens, els) ->
      let acc = List.fold_left (fun acc (c, x) -> f x (f c acc)) acc whens in
      Option.fold ~none:acc ~some:(fun e -> f e acc) els
  | Ast.EFun { args; _ } -> List.fold_left (fun acc e -> f e acc) acc args
  | Ast.ESub (kind, _) -> (
      match kind with
      | Ast.SIn (lhs, _) | Ast.SAnyCmp (_, lhs) | Ast.SAllCmp (_, lhs) -> f lhs acc
      | Ast.SExists _ | Ast.SScalar -> acc)

(* Aggregate occurrences in an expression, outermost only. *)
let rec collect_aggregates (e : Ast.expr) (acc : Ast.expr list) : Ast.expr list =
  match e with
  | Ast.EFun { name; args; _ } when Builtin.is_aggregate name ->
      List.iter check_no_aggregate args;
      if List.mem e acc then acc else acc @ [ e ]
  | _ -> fold_children collect_aggregates e acc

and check_no_aggregate e =
  ignore
    (fold_children
       (fun e () ->
         match e with
         | Ast.EFun { name; _ } when Builtin.is_aggregate name ->
             err "aggregate calls cannot be nested"
         | _ ->
             check_no_aggregate e;
             ())
       e ())

(* ------------------------------------------------------------------ *)
(* Expression analysis                                                  *)
(* ------------------------------------------------------------------ *)

(* [analyze_expr db scopes e] translates [e]; aggregate calls are only
   legal where an [Agg_frame] is in scope (SELECT/HAVING/ORDER BY of an
   aggregated query), in which case they resolve to the aggregate output
   attribute. *)
let rec analyze_expr db (scopes : scopes) (e : Ast.expr) : Algebra.expr =
  match group_match db scopes e with
  | Some attr -> attr
  | None -> (
      match e with
      | Ast.ENull -> Algebra.Const Value.Null
      | Ast.EInt i -> Algebra.Const (Value.Int i)
      | Ast.EFloat f -> Algebra.Const (Value.Float f)
      | Ast.EString s -> Algebra.Const (Value.String s)
      | Ast.EBool b -> Algebra.Const (Value.Bool b)
      | Ast.EColumn (qual, col) -> Algebra.Attr (resolve scopes qual col)
      | Ast.EBinop (op, a, b) ->
          Algebra.Binop (binop_of op, analyze_expr db scopes a, analyze_expr db scopes b)
      | Ast.ECmp (op, a, b) ->
          Algebra.Cmp (cmpop_of op, analyze_expr db scopes a, analyze_expr db scopes b)
      | Ast.EAnd (a, b) -> Algebra.And (analyze_expr db scopes a, analyze_expr db scopes b)
      | Ast.EOr (a, b) -> Algebra.Or (analyze_expr db scopes a, analyze_expr db scopes b)
      | Ast.ENot a -> Algebra.Not (analyze_expr db scopes a)
      | Ast.EIsNull { negated; arg } ->
          let inner = Algebra.IsNull (analyze_expr db scopes arg) in
          if negated then Algebra.Not inner else inner
      | Ast.EBetween { negated; arg; lo; hi } ->
          let a = analyze_expr db scopes arg in
          let between =
            Algebra.And
              ( Algebra.Cmp (Algebra.Geq, a, analyze_expr db scopes lo),
                Algebra.Cmp (Algebra.Leq, a, analyze_expr db scopes hi) )
          in
          if negated then Algebra.Not between else between
      | Ast.EInList { negated; arg; elems } ->
          let inner =
            Algebra.InList
              (analyze_expr db scopes arg, List.map (analyze_expr db scopes) elems)
          in
          if negated then Algebra.Not inner else inner
      | Ast.ELike { negated; arg; pattern } ->
          let inner = Algebra.Like (analyze_expr db scopes arg, pattern) in
          if negated then Algebra.Not inner else inner
      | Ast.ECase (whens, els) ->
          Algebra.Case
            ( List.map
                (fun (c, x) -> (analyze_expr db scopes c, analyze_expr db scopes x))
                whens,
              Option.map (analyze_expr db scopes) els )
      | Ast.EFun { name; distinct; star; args } ->
          if Builtin.is_aggregate name then
            aggregate_ref db scopes e name
          else begin
            if distinct || star then err "%s: DISTINCT/* only valid in aggregates" name;
            Algebra.FunCall (name, List.map (analyze_expr db scopes) args)
          end
      | Ast.ESub (kind, sub) -> analyze_sublink db scopes kind sub)

(* A sub-expression of an aggregated query that is (syntactically equal
   to) a grouping expression resolves to the group output attribute. *)
and group_match db (scopes : scopes) (e : Ast.expr) : Algebra.expr option =
  match scopes with
  | Agg_frame af :: rest -> (
      match
        try Some (analyze_expr db (af.af_hidden :: rest) e) with
        | Analyze_error _ -> None
      with
      | Some analyzed when not (Algebra.has_sublink analyzed) -> (
          match List.assoc_opt analyzed af.af_groups with
          | Some name -> Some (Algebra.Attr name)
          | None -> None)
      | _ -> None)
  | _ -> None

and aggregate_ref db (scopes : scopes) (e : Ast.expr) name : Algebra.expr =
  ignore db;
  let rec find = function
    | [] -> err "aggregate %s not allowed in this context" name
    | Agg_frame af :: _ -> (
        match List.assoc_opt e af.af_aggs with
        | Some attr -> Algebra.Attr attr
        | None ->
            err
              "aggregate %s used here must also appear in the aggregation (internal)"
              name)
    | From_frame _ :: rest -> find rest
  in
  find scopes

and analyze_sublink db (scopes : scopes) (kind : Ast.sub_kind) (sub : Ast.select) :
    Algebra.expr =
  if sub.Ast.sel_provenance then
    err "PROVENANCE is only supported on the top-level query";
  let subq = analyze_select db scopes sub in
  match kind with
  | Ast.SExists negated ->
      let e = Algebra.exists subq in
      if negated then Algebra.Not e else e
  | Ast.SScalar -> Algebra.scalar subq
  | Ast.SIn (lhs, negated) ->
      let e = Algebra.any_op Algebra.Eq (analyze_expr db scopes lhs) subq in
      if negated then Algebra.Not e else e
  | Ast.SAnyCmp (op, lhs) ->
      Algebra.any_op (cmpop_of op) (analyze_expr db scopes lhs) subq
  | Ast.SAllCmp (op, lhs) ->
      Algebra.all_op (cmpop_of op) (analyze_expr db scopes lhs) subq

(* ------------------------------------------------------------------ *)
(* FROM clause                                                          *)
(* ------------------------------------------------------------------ *)

and analyze_from_item db (outer : scopes) (item : Ast.from_item) :
    Algebra.query * (string * string list) list =
  match item with
  | Ast.FTable { table; alias } ->
      let alias = Option.value ~default:table alias in
      let source, cols =
        match Database.find_opt db table with
        | Some rel -> (Algebra.Base table, Schema.names (Relation.schema rel))
        | None -> (
            (* not a base table: try the view catalog and inline *)
            match Database.find_view db table with
            | Some q -> (q, Scope.out_names db q)
            | None ->
                err "unknown table or view %S%s" table
                  (did_you_mean_hint table
                     (Database.names db @ Database.view_names db)))
      in
      let renamed =
        Algebra.project
          (List.map (fun c -> (Algebra.Attr c, qualify alias c)) cols)
          source
      in
      (renamed, [ (alias, cols) ])
  | Ast.FSubquery { sub; alias } ->
      if sub.Ast.sel_provenance then
        err "PROVENANCE is only supported on the top-level query";
      let q = analyze_select db outer sub in
      let cols = Scope.out_names db q in
      let renamed =
        Algebra.project (List.map (fun c -> (Algebra.Attr c, qualify alias c)) cols) q
      in
      (renamed, [ (alias, cols) ])
  | Ast.FJoin { kind; left; right; on } -> (
      let lq, litems = analyze_from_item db outer left in
      let rq, ritems = analyze_from_item db outer right in
      List.iter
        (fun (a, _) ->
          if List.mem_assoc a litems then err "duplicate table alias %S" a)
        ritems;
      let items = litems @ ritems in
      let cond () =
        match on with
        | Some c -> analyze_expr db (From_frame items :: outer) c
        | None -> Algebra.Const Value.vtrue
      in
      match kind with
      | Ast.JCross -> (Algebra.Cross (lq, rq), items)
      | Ast.JInner -> (Algebra.Join (cond (), lq, rq), items)
      | Ast.JLeft -> (Algebra.LeftJoin (cond (), lq, rq), items))

and analyze_from db (outer : scopes) (items : Ast.from_item list) :
    Algebra.query * (string * string list) list =
  match items with
  | [] ->
      (* FROM-less SELECT: a unit relation with one empty tuple. *)
      (Algebra.TableExpr (Relation.make (Schema.of_list []) [ [||] ]), [])
  | first :: rest ->
      List.fold_left
        (fun (q, items) item ->
          let q', items' = analyze_from_item db outer item in
          List.iter
            (fun (a, _) ->
              if List.mem_assoc a items then err "duplicate table alias %S" a)
            items';
          (Algebra.Cross (q, q'), items @ items'))
        (analyze_from_item db outer first)
        rest

(* ------------------------------------------------------------------ *)
(* SELECT                                                               *)
(* ------------------------------------------------------------------ *)

(* Derive an output column name from a select item, uniquified later. *)
and output_name idx (item : Ast.select_item) =
  match item with
  | Ast.ItemExpr (_, Some alias) -> alias
  | Ast.ItemExpr (Ast.EColumn (_, col), None) -> col
  | Ast.ItemExpr (Ast.EFun { name; _ }, None) -> name
  | _ -> Printf.sprintf "col_%d" idx

and uniquify names =
  let seen = Hashtbl.create 16 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
          Hashtbl.add seen n 0;
          n
      | Some k ->
          Hashtbl.replace seen n (k + 1);
          Printf.sprintf "%s_%d" n (k + 1))
    names

and analyze_select db (outer : scopes) (sel : Ast.select) : Algebra.query =
  match sel.Ast.sel_setop with
  | Some (kind, all, rhs) ->
      let left = analyze_select db outer { sel with Ast.sel_setop = None } in
      let right = analyze_select db outer rhs in
      if List.length (Scope.out_names db left) <> List.length (Scope.out_names db right)
      then err "set operation arms have different numbers of columns";
      let sem = if all then Algebra.Bag else Algebra.SetSem in
      let combine =
        match kind with
        | Ast.SUnion -> Algebra.Union (sem, left, right)
        | Ast.SIntersect -> Algebra.Inter (sem, left, right)
        | Ast.SExcept -> Algebra.Diff (sem, left, right)
      in
      combine
  | None -> analyze_plain_select db outer sel

and analyze_plain_select db (outer : scopes) (sel : Ast.select) : Algebra.query =
  let from_q, from_items = analyze_from db outer sel.Ast.sel_from in
  let from_frame = From_frame from_items in
  let from_scopes = from_frame :: outer in
  (* WHERE *)
  let filtered =
    match sel.Ast.sel_where with
    | None -> from_q
    | Some w ->
        check_no_aggregate_in "WHERE" w;
        Algebra.Select (analyze_expr db from_scopes w, from_q)
  in
  (* Aggregation detection *)
  let item_exprs =
    List.filter_map
      (function Ast.ItemExpr (e, _) -> Some e | _ -> None)
      sel.Ast.sel_items
  in
  let scan_exprs =
    item_exprs
    @ (match sel.Ast.sel_having with Some h -> [ h ] | None -> [])
    @ List.map fst sel.Ast.sel_order_by
  in
  let agg_occurrences = List.fold_left (fun acc e -> collect_aggregates e acc) [] scan_exprs in
  let has_agg = sel.Ast.sel_group_by <> [] || agg_occurrences <> [] in
  if not has_agg then begin
    if sel.Ast.sel_having <> None then err "HAVING requires GROUP BY or aggregates";
    analyze_projection db outer from_scopes from_items sel filtered
  end
  else begin
    if
      List.exists
        (function Ast.ItemStar | Ast.ItemQualStar _ -> true | _ -> false)
        sel.Ast.sel_items
    then err "* is not allowed in the select list of an aggregated query";
    (* group-by expressions *)
    let group_cols =
      List.mapi
        (fun i g ->
          check_no_aggregate_in "GROUP BY" g;
          let analyzed = analyze_expr db from_scopes g in
          if Algebra.has_sublink analyzed then
            err "sublinks in GROUP BY are not supported";
          let name =
            match analyzed with
            | Algebra.Attr n -> n
            | _ -> Printf.sprintf "group_%d" i
          in
          (analyzed, name))
        sel.Ast.sel_group_by
    in
    (* aggregate calls *)
    let agg_cols =
      List.mapi
        (fun i ast_call ->
          match ast_call with
          | Ast.EFun { name; distinct; star; args } ->
              let arg =
                if star then None
                else
                  match args with
                  | [ a ] -> Some (analyze_expr db from_scopes a)
                  | _ -> err "%s takes exactly one argument" name
              in
              ( ast_call,
                {
                  Algebra.agg_func = name;
                  agg_distinct = distinct;
                  agg_arg = arg;
                  agg_name = Printf.sprintf "agg_%d" i;
                } )
          | _ -> assert false)
        agg_occurrences
    in
    let agg_node =
      Algebra.aggregate ~group_by:group_cols
        ~aggs:(List.map snd agg_cols)
        filtered
    in
    let af =
      Agg_frame
        {
          af_groups = group_cols;
          af_aggs = List.map (fun (ast, c) -> (ast, c.Algebra.agg_name)) agg_cols;
          af_hidden = from_frame;
        }
    in
    let agg_scopes = af :: outer in
    let with_having =
      match sel.Ast.sel_having with
      | None -> agg_node
      | Some h -> Algebra.Select (analyze_expr db agg_scopes h, agg_node)
    in
    analyze_projection db outer agg_scopes from_items sel with_having
  end

and check_no_aggregate_in clause e =
  ignore
    (fold_children
       (fun x () ->
         (match x with
         | Ast.EFun { name; _ } when Builtin.is_aggregate name ->
             err "aggregate not allowed in %s" clause
         | _ -> ());
         check_no_aggregate_in clause x)
       e ())

(* Projection, DISTINCT, ORDER BY, LIMIT — common to both paths.
   [scopes] is the scope stack in which select items are analyzed. *)
and analyze_projection db (outer : scopes) (scopes : scopes) from_items sel input :
    Algebra.query =
  let expand_star alias_filter =
    List.concat_map
      (fun (alias, cols) ->
        if alias_filter = None || alias_filter = Some alias then
          List.map (fun c -> (Algebra.Attr (qualify alias c), c)) cols
        else [])
      from_items
  in
  let cols_raw =
    List.concat
      (List.mapi
         (fun i item ->
           match item with
           | Ast.ItemStar -> expand_star None
           | Ast.ItemQualStar alias ->
               let expanded = expand_star (Some alias) in
               if expanded = [] then err "unknown alias %S in %s.*" alias alias;
               expanded
           | Ast.ItemExpr (e, _) ->
               [ (analyze_expr db scopes e, output_name i item) ])
         sel.Ast.sel_items)
  in
  let names = uniquify (List.map snd cols_raw) in
  let cols = List.map2 (fun (e, _) n -> (e, n)) cols_raw names in
  let projected = Algebra.project ~distinct:sel.Ast.sel_distinct cols input in
  (* ORDER BY keys may be output column names, 1-based positions, or
     expressions; an expression that coincides with a select item (e.g.
     ORDER BY count of rows when that aggregate is selected) resolves to that
     item's output column. *)
  let ordered =
    match sel.Ast.sel_order_by with
    | [] -> projected
    | keys ->
        let out_frame = From_frame [ ("", names) ] in
        let analyze_key (e, dir) =
          let direction =
            match dir with Ast.OAsc -> Algebra.Asc | Ast.ODesc -> Algebra.Desc
          in
          match e with
          | Ast.EInt k ->
              if k < 1 || k > List.length names then
                err "ORDER BY position %d out of range" k;
              (Algebra.Attr (List.nth names (k - 1)), direction)
          | _ -> (
              (* output names shadow everything else *)
              match analyze_expr db (out_frame :: outer) e with
              | analyzed -> (analyzed, direction)
              | exception Analyze_error _ -> (
                  (* else: an expression over the pre-projection scope
                     that must match a select item *)
                  let analyzed = analyze_expr db scopes e in
                  match
                    List.find_opt
                      (fun (ce, _) ->
                        (not (Algebra.has_sublink ce)) && ce = analyzed)
                      cols
                  with
                  | Some (_, out_name) -> (Algebra.Attr out_name, direction)
                  | None ->
                      err
                        "ORDER BY expression must be an output column or match \
                         a select item"))
        in
        Algebra.Order (List.map analyze_key keys, projected)
  in
  match sel.Ast.sel_limit with
  | None -> ordered
  | Some n -> Algebra.Limit (n, ordered)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

type analyzed = {
  query : Algebra.query;
  wants_provenance : bool;  (** the SELECT carried the PROVENANCE marker *)
}

(** [analyze db sel] resolves and translates a parsed statement. *)
let analyze db (sel : Ast.select) : analyzed =
  let query = analyze_select db [] sel in
  Typecheck.check db query;
  { query; wants_provenance = sel.Ast.sel_provenance }

(** [analyze_string db sql] parses and analyzes [sql]. *)
let analyze_string db (sql : string) : analyzed = analyze db (Parser.parse sql)
