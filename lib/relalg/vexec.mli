(** Vectorized columnar execution engine: batch-at-a-time kernels over
    {!Vector} batches with morsel-driven multicore parallelism
    ({!Morsel}), lowered from the same type-checked {!Algebra.query}
    the compiled engine consumes.

    Results are row-identical to the reference and compiled engines
    (schema names, row order, error messages — property-tested in the
    suite); governor checkpoints run at batch granularity with the
    compiled engine's operator paths. Row-wise fallbacks and all
    non-columnar expressions reuse {!Compile}'s closures, so the
    engines share one expression semantics and one per-execution
    sublink memo/summary cache. *)

(** Worker domains per query (including the coordinator); 1 runs
    sequentially. Workers come from the process-wide {!Morsel} pool. *)
val domains : int ref

(** Rows per columnar batch (conversion granularity, selection/probe
    kernel unit, and the governor's row-accounting granularity). *)
val batch_rows : int ref

(** Test-only override: run on this pool regardless of {!domains} and
    of the core-count clamp in [Morsel.get] — multi-domain schedule
    tests and the race-fuzz campaign need real parallelism even on
    single-core hosts. [None] (the default) selects the cached pool
    from {!domains}. *)
val pool_override : Morsel.pool option ref

(** Drop the columnar base-relation cache (identity-keyed; tests use
    this to measure cold conversions). *)
val clear_cache : unit -> unit

(** [query db q] — execute vectorized; [env] pairs each outer frame's
    schema with its tuple, innermost first (the compiled engine's
    convention). *)
val query :
  ?env:(Schema.t * Tuple.t) list -> Database.t -> Algebra.query -> Relation.t

(** [query_stats db q] also reports the execution counters. *)
val query_stats :
  ?env:(Schema.t * Tuple.t) list ->
  Database.t ->
  Algebra.query ->
  Relation.t * Sem.stats
