(** Morsel-driven parallel scheduler for the vectorized engine.

    A pool of [size] workers — [size - 1] OCaml 5 domains plus the
    calling (coordinator) domain — executes a set of integer-indexed
    tasks ("morsels": batch indices / row ranges chosen by the caller).
    Tasks are distributed as contiguous chunks into one work-stealing
    deque per worker: the owner pops from the bottom of its own deque,
    an idle worker steals from the top of another's, so skew in morsel
    cost balances out while each worker mostly walks a cache-friendly
    contiguous range.

    Determinism: the scheduler only decides {e which worker} runs a
    task, never what the task writes — callers give each task its own
    result slot (indexed by the task id) and merge slots in task order
    after {!run} returns, so results are bit-identical across runs and
    worker counts.

    The pool is coordinator-driven: {!run} publishes a job, wakes the
    workers, participates itself, and returns only when every task has
    finished (a barrier). Worker domains touch global engine state only
    through explicitly synchronized paths (a {!Guard} scope adopted
    with [Guard.with_scope], {!Relation}'s memo caches); the
    coordinator merges result slots after the barrier. Task bodies may
    raise; the first exception is re-raised from {!run} after the
    barrier.

    When the {!Race} detector is armed, the scheduler publishes its
    real synchronization as happens-before edges: the pool lock
    (job publish → pickup), each deque's lock (push → pop/steal), and
    the job-join edge (task completion → the coordinator's barrier
    exit). Accesses two domains make without one of those edges (or an
    engine-level one) between them are exactly the ones the detector
    reports.

    {!set_chaos} arms a PCT-style test-mode scheduler: seeded random
    steal priorities and forced preemption points (spin bursts at
    pop/steal boundaries) perturb the schedule deterministically per
    (seed, worker, job), so a racy interleaving found by the fuzzer is
    replayable from its seed alone — modulo the OS scheduler, which the
    spin windows merely bias.

    Re-entrant {!run} calls (a task body calling {!run} on the same
    pool) and single-worker pools degrade to sequential in-caller
    execution. Pools are cached per size and per process — a pool
    inherited through [fork] is invalid (only the forking thread
    survives in the child), so the cache is keyed on the pid and the
    child transparently builds fresh domains. *)

(* ---- chaos mode (schedule fuzzing) --------------------------------- *)

(* 0 = off; otherwise the seed shifted left with a set low bit, so the
   armed check is one atomic load. Armed only by tests and the racefuzz
   campaign. *)
let chaos = Atomic.make 0

let set_chaos = function
  | None -> Atomic.set chaos 0
  | Some s -> Atomic.set chaos ((s lsl 1) lor 1)

let chaos_seed () =
  let c = Atomic.get chaos in
  if c land 1 = 1 then Some (c lsr 1) else None

(* xorshift; never 0, positive. *)
let chaos_next r =
  let x = !r in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x2545F491 else x in
  r := x;
  x

(* ---- deques --------------------------------------------------------- *)

(* A mutex-guarded deque of task ids. Morsels are coarse (hundreds of
   rows each), so a lock per pop/steal is noise; the deque discipline
   is what matters for locality and balance. *)
type deque = {
  items : int array;
  mutable top : int;  (* next index to steal *)
  mutable bot : int;  (* one past the owner's end *)
  dq_lock : Mutex.t;
  dq_edge : string;  (* per-deque happens-before edge name *)
}

let deque_pop dq =
  Race.with_lock dq.dq_lock dq.dq_edge (fun () ->
      if dq.bot > dq.top then begin
        dq.bot <- dq.bot - 1;
        if Race.is_armed () then begin
          Race.write (dq.dq_edge ^ ".bot");
          Race.read (dq.dq_edge ^ ".top")
        end;
        Some dq.items.(dq.bot)
      end
      else None)

let deque_steal dq =
  Race.with_lock dq.dq_lock dq.dq_edge (fun () ->
      if dq.bot > dq.top then begin
        let t = dq.items.(dq.top) in
        dq.top <- dq.top + 1;
        if Race.is_armed () then begin
          Race.write (dq.dq_edge ^ ".top");
          Race.read (dq.dq_edge ^ ".bot")
        end;
        Some t
      end
      else None)

type job = {
  j_id : int;
  j_f : int -> int -> unit;  (* worker id, task id *)
  j_deques : deque array;
  j_remaining : int Atomic.t;
  j_done_edge : string;  (* task completion → coordinator barrier *)
  mutable j_exn : exn option;
}

let job_counter = Atomic.make 0

type pool = {
  p_size : int;
  p_lock : Mutex.t;
  p_work : Condition.t;  (* a new job was published *)
  p_done : Condition.t;  (* the last task of a job finished *)
  mutable p_epoch : int;
  mutable p_job : job option;  (* the job of the current epoch *)
  mutable p_busy : bool;
  mutable p_shutdown : bool;
  mutable p_domains : unit Domain.t list;
}

let size p = p.p_size

(* The pool lock as a happens-before edge: job publish → pickup, and
   exception recording → the coordinator's post-barrier read. The
   acquire/release pairs bracket every lock/unlock {e and} every
   [Condition.wait] (which unlocks and relocks internally). *)
let pool_edge = "morsel.pool"

let lock_pool pool =
  Mutex.lock pool.p_lock;
  Race.acquire pool_edge

let unlock_pool pool =
  Race.release pool_edge;
  Mutex.unlock pool.p_lock

let wait_pool cond pool =
  Race.release pool_edge;
  Condition.wait cond pool.p_lock;
  Race.acquire pool_edge

let record_exn pool job e =
  lock_pool pool;
  if job.j_exn = None then job.j_exn <- Some e;
  unlock_pool pool

(* Drain the job: own deque first, then steal sweeps; exit when every
   deque is empty (in-flight tasks on other workers finish there).
   Under chaos mode, a per-(seed, worker, job) PRNG injects forced
   preemption windows (spin bursts) at pop/steal boundaries and
   occasionally inverts the pop-own-first priority into a steal from a
   random victim — PCT-style schedule perturbation. *)
let participate pool job w =
  let nd = Array.length job.j_deques in
  let rng =
    match chaos_seed () with
    | None -> None
    | Some s ->
        let z =
          (s * 0x9E3779B1)
          lxor ((w + 1) * 0x85EBCA77)
          lxor ((job.j_id + 1) * 0xC2B2AE3D)
        in
        Some (ref ((z land max_int) lor 1))
  in
  let preempt () =
    match rng with
    | None -> ()
    | Some r ->
        if chaos_next r land 3 = 0 then
          for _ = 1 to chaos_next r land 255 do
            Domain.cpu_relax ()
          done
  in
  let run_task t =
    (try job.j_f w t with e -> record_exn pool job e);
    (* Publish this task's effects before the decrement the coordinator
       waits on; the barrier acquires the edge after seeing zero. *)
    Race.release job.j_done_edge;
    if Atomic.fetch_and_add job.j_remaining (-1) = 1 then begin
      lock_pool pool;
      Condition.broadcast pool.p_done;
      unlock_pool pool
    end
  in
  let rec own () =
    preempt ();
    (match rng with
    | Some r when nd > 1 && chaos_next r land 7 = 0 -> (
        (* forced steal point: serve a random victim before ourselves *)
        let v = (w + 1 + (chaos_next r mod (nd - 1))) mod nd in
        match deque_steal job.j_deques.(v) with
        | Some t -> run_task t
        | None -> ())
    | _ -> ());
    match deque_pop job.j_deques.(w) with
    | Some t ->
        run_task t;
        own ()
    | None -> steal 1
  and steal k =
    if k < nd then begin
      preempt ();
      match deque_steal job.j_deques.((w + k) mod nd) with
      | Some t ->
          run_task t;
          own ()
      | None -> steal (k + 1)
    end
  in
  own ()

let worker_loop pool w =
  let my_epoch = ref 0 in
  let rec loop () =
    lock_pool pool;
    while (not pool.p_shutdown) && pool.p_epoch = !my_epoch do
      wait_pool pool.p_work pool
    done;
    if pool.p_shutdown then unlock_pool pool
    else begin
      my_epoch := pool.p_epoch;
      let job = pool.p_job in
      unlock_pool pool;
      (match job with Some j -> participate pool j w | None -> ());
      loop ()
    end
  in
  loop ()

let create n =
  let n = max 1 (min 128 n) in
  let pool =
    {
      p_size = n;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_epoch = 0;
      p_job = None;
      p_busy = false;
      p_shutdown = false;
      p_domains = [];
    }
  in
  pool.p_domains <-
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let shutdown pool =
  lock_pool pool;
  pool.p_shutdown <- true;
  Condition.broadcast pool.p_work;
  unlock_pool pool;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

(* Contiguous chunk per worker: worker [w] owns tasks
   [w*q + min w r .. ) — balanced to within one task. *)
let partition ~job_id ~tasks ~workers =
  let q = tasks / workers and r = tasks mod workers in
  Array.init workers (fun w ->
      let lo = (w * q) + min w r in
      let len = q + if w < r then 1 else 0 in
      {
        items = Array.init len (fun i -> lo + i);
        top = 0;
        bot = len;
        dq_lock = Mutex.create ();
        dq_edge = Printf.sprintf "morsel.job%d.dq%d" job_id w;
      })

let run pool ~tasks (f : int -> int -> unit) =
  if tasks > 0 then
    if pool.p_size = 1 || pool.p_busy then
      for t = 0 to tasks - 1 do
        f 0 t
      done
    else begin
      let job_id = Atomic.fetch_and_add job_counter 1 in
      let job =
        {
          j_id = job_id;
          j_f = f;
          j_deques = partition ~job_id ~tasks ~workers:pool.p_size;
          j_remaining = Atomic.make tasks;
          j_done_edge = Printf.sprintf "morsel.job%d.done" job_id;
          j_exn = None;
        }
      in
      lock_pool pool;
      pool.p_job <- Some job;
      pool.p_epoch <- pool.p_epoch + 1;
      pool.p_busy <- true;
      Condition.broadcast pool.p_work;
      unlock_pool pool;
      participate pool job 0;
      lock_pool pool;
      while Atomic.get job.j_remaining > 0 do
        wait_pool pool.p_done pool
      done;
      pool.p_busy <- false;
      unlock_pool pool;
      (* every task released the edge before its decrement; joining it
         here orders all task effects before the merge that follows *)
      Race.acquire job.j_done_edge;
      match job.j_exn with Some e -> raise e | None -> ()
    end

(* ------------------------------------------------------------------ *)
(* Process-wide pool cache                                             *)
(* ------------------------------------------------------------------ *)

(* Keyed on (size, pid): a pool inherited through [fork] has no live
   worker domains in the child (fork preserves only the calling
   thread), so a pid mismatch discards the entry and builds fresh.
   The benchmark harness forks a child per measurement; each child
   lazily creates its own pool on first vectorized run. *)
let cache : (int, int * pool) Hashtbl.t = Hashtbl.create 4
let cache_lock = Mutex.create ()

let default_domains () = Domain.recommended_domain_count ()

(* Clamped to the hardware parallelism the runtime reports: domains
   beyond the available cores cannot run anything in parallel, but
   every one of them still joins each stop-the-world section, so an
   oversubscribed pool makes the whole process slower (dramatically so
   on single-core hosts). [create] stays unclamped for tests that
   exercise cross-domain scheduling regardless of core count. *)
let get n =
  let n = max 1 (min 128 (min n (default_domains ()))) in
  Race.with_lock cache_lock "morsel.cache_lock" (fun () ->
      let pid = Unix.getpid () in
      match Hashtbl.find_opt cache n with
      | Some (p, pool) when p = pid -> pool
      | _ ->
          let pool = create n in
          Hashtbl.replace cache n (pid, pool);
          pool)
