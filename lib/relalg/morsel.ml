(** Morsel-driven parallel scheduler for the vectorized engine.

    A pool of [size] workers — [size - 1] OCaml 5 domains plus the
    calling (coordinator) domain — executes a set of integer-indexed
    tasks ("morsels": batch indices / row ranges chosen by the caller).
    Tasks are distributed as contiguous chunks into one work-stealing
    deque per worker: the owner pops from the bottom of its own deque,
    an idle worker steals from the top of another's, so skew in morsel
    cost balances out while each worker mostly walks a cache-friendly
    contiguous range.

    Determinism: the scheduler only decides {e which worker} runs a
    task, never what the task writes — callers give each task its own
    result slot (indexed by the task id) and merge slots in task order
    after {!run} returns, so results are bit-identical across runs and
    worker counts.

    The pool is coordinator-driven: {!run} publishes a job, wakes the
    workers, participates itself, and returns only when every task has
    finished (a barrier). Worker domains never touch the {!Guard}
    governor or any other global engine state — the coordinator does
    all accounting at merge points. Task bodies are expected not to
    raise; if one does, the first exception is re-raised from {!run}
    after the barrier.

    Re-entrant {!run} calls (a task body calling {!run} on the same
    pool) and single-worker pools degrade to sequential in-caller
    execution. Pools are cached per size and per process — a pool
    inherited through [fork] is invalid (only the forking thread
    survives in the child), so the cache is keyed on the pid and the
    child transparently builds fresh domains. *)

(* A mutex-guarded deque of task ids. Morsels are coarse (hundreds of
   rows each), so a lock per pop/steal is noise; the deque discipline
   is what matters for locality and balance. *)
type deque = {
  items : int array;
  mutable top : int;  (* next index to steal *)
  mutable bot : int;  (* one past the owner's end *)
  dq_lock : Mutex.t;
}

let deque_pop dq =
  Mutex.lock dq.dq_lock;
  let r =
    if dq.bot > dq.top then begin
      dq.bot <- dq.bot - 1;
      Some dq.items.(dq.bot)
    end
    else None
  in
  Mutex.unlock dq.dq_lock;
  r

let deque_steal dq =
  Mutex.lock dq.dq_lock;
  let r =
    if dq.bot > dq.top then begin
      let t = dq.items.(dq.top) in
      dq.top <- dq.top + 1;
      Some t
    end
    else None
  in
  Mutex.unlock dq.dq_lock;
  r

type job = {
  j_f : int -> int -> unit;  (* worker id, task id *)
  j_deques : deque array;
  j_remaining : int Atomic.t;
  mutable j_exn : exn option;
}

type pool = {
  p_size : int;
  p_lock : Mutex.t;
  p_work : Condition.t;  (* a new job was published *)
  p_done : Condition.t;  (* the last task of a job finished *)
  mutable p_epoch : int;
  mutable p_job : job option;  (* the job of the current epoch *)
  mutable p_busy : bool;
  mutable p_shutdown : bool;
  mutable p_domains : unit Domain.t list;
}

let size p = p.p_size

let record_exn pool job e =
  Mutex.lock pool.p_lock;
  if job.j_exn = None then job.j_exn <- Some e;
  Mutex.unlock pool.p_lock

(* Drain the job: own deque first, then steal sweeps; exit when every
   deque is empty (in-flight tasks on other workers finish there). *)
let participate pool job w =
  let nd = Array.length job.j_deques in
  let run_task t =
    (try job.j_f w t with e -> record_exn pool job e);
    if Atomic.fetch_and_add job.j_remaining (-1) = 1 then begin
      Mutex.lock pool.p_lock;
      Condition.broadcast pool.p_done;
      Mutex.unlock pool.p_lock
    end
  in
  let rec own () =
    match deque_pop job.j_deques.(w) with
    | Some t ->
        run_task t;
        own ()
    | None -> steal 1
  and steal k =
    if k < nd then
      match deque_steal job.j_deques.((w + k) mod nd) with
      | Some t ->
          run_task t;
          own ()
      | None -> steal (k + 1)
  in
  own ()

let worker_loop pool w =
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock pool.p_lock;
    while (not pool.p_shutdown) && pool.p_epoch = !my_epoch do
      Condition.wait pool.p_work pool.p_lock
    done;
    if pool.p_shutdown then Mutex.unlock pool.p_lock
    else begin
      my_epoch := pool.p_epoch;
      let job = pool.p_job in
      Mutex.unlock pool.p_lock;
      (match job with Some j -> participate pool j w | None -> ());
      loop ()
    end
  in
  loop ()

let create n =
  let n = max 1 (min 128 n) in
  let pool =
    {
      p_size = n;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_epoch = 0;
      p_job = None;
      p_busy = false;
      p_shutdown = false;
      p_domains = [];
    }
  in
  pool.p_domains <-
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.p_lock;
  pool.p_shutdown <- true;
  Condition.broadcast pool.p_work;
  Mutex.unlock pool.p_lock;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

(* Contiguous chunk per worker: worker [w] owns tasks
   [w*q + min w r .. ) — balanced to within one task. *)
let partition ~tasks ~workers =
  let q = tasks / workers and r = tasks mod workers in
  Array.init workers (fun w ->
      let lo = (w * q) + min w r in
      let len = q + if w < r then 1 else 0 in
      {
        items = Array.init len (fun i -> lo + i);
        top = 0;
        bot = len;
        dq_lock = Mutex.create ();
      })

let run pool ~tasks (f : int -> int -> unit) =
  if tasks > 0 then
    if pool.p_size = 1 || pool.p_busy then
      for t = 0 to tasks - 1 do
        f 0 t
      done
    else begin
      let job =
        {
          j_f = f;
          j_deques = partition ~tasks ~workers:pool.p_size;
          j_remaining = Atomic.make tasks;
          j_exn = None;
        }
      in
      Mutex.lock pool.p_lock;
      pool.p_job <- Some job;
      pool.p_epoch <- pool.p_epoch + 1;
      pool.p_busy <- true;
      Condition.broadcast pool.p_work;
      Mutex.unlock pool.p_lock;
      participate pool job 0;
      Mutex.lock pool.p_lock;
      while Atomic.get job.j_remaining > 0 do
        Condition.wait pool.p_done pool.p_lock
      done;
      pool.p_busy <- false;
      Mutex.unlock pool.p_lock;
      match job.j_exn with Some e -> raise e | None -> ()
    end

(* ------------------------------------------------------------------ *)
(* Process-wide pool cache                                             *)
(* ------------------------------------------------------------------ *)

(* Keyed on (size, pid): a pool inherited through [fork] has no live
   worker domains in the child (fork preserves only the calling
   thread), so a pid mismatch discards the entry and builds fresh.
   The benchmark harness forks a child per measurement; each child
   lazily creates its own pool on first vectorized run. *)
let cache : (int, int * pool) Hashtbl.t = Hashtbl.create 4
let cache_lock = Mutex.create ()

let default_domains () = Domain.recommended_domain_count ()

(* Clamped to the hardware parallelism the runtime reports: domains
   beyond the available cores cannot run anything in parallel, but
   every one of them still joins each stop-the-world section, so an
   oversubscribed pool makes the whole process slower (dramatically so
   on single-core hosts). [create] stays unclamped for tests that
   exercise cross-domain scheduling regardless of core count. *)
let get n =
  let n = max 1 (min 128 (min n (default_domains ()))) in
  Mutex.protect cache_lock (fun () ->
      let pid = Unix.getpid () in
      match Hashtbl.find_opt cache n with
      | Some (p, pool) when p = pid -> pool
      | _ ->
          let pool = create n in
          Hashtbl.replace cache n (pid, pool);
          pool)
