(** Static sharing lint: the engine's shared-state inventory and the
    source scan that keeps it honest. See share_lint.mli. *)

type discipline =
  | DomainLocal
  | LockProtected of string
  | AtomicOnly
  | Immutable
  | InitOnce

let discipline_to_string = function
  | DomainLocal -> "domain-local"
  | LockProtected l -> "lock-protected(" ^ l ^ ")"
  | AtomicOnly -> "atomic-only"
  | Immutable -> "immutable"
  | InitOnce -> "init-once"

type entry = {
  e_module : string;
  e_name : string;
  e_kind : string;
  e_discipline : discipline;
  e_note : string;
}

let entry m n k d note =
  { e_module = m; e_name = n; e_kind = k; e_discipline = d; e_note = note }

(* The declared inventory. Every toplevel mutable in the scanned
   modules must appear here with the discipline its accesses follow;
   the scan rules below fail the build on an unregistered one, so
   adding shared state without deciding its discipline is a lint
   error, not a code review hope. *)
let inventory =
  [
    (* guard *)
    entry "guard" "tls" "dls" DomainLocal
      "scope registry: each domain's view ref of the innermost budget \
       scope; shared totals inside the state are Atomic";
    entry "guard" "Faults.state" "ref" DomainLocal
      "fault-injection config; armed and fired on the coordinator \
       domain only (fire points sit on coordinator-side operator paths)";
    entry "guard" "Faults.armed_flag" "ref" DomainLocal
      "fast-path gate for Faults.state; coordinator domain only";
    (* morsel *)
    entry "morsel" "chaos" "atomic" AtomicOnly
      "chaos-scheduler seed; armed by tests, read by every worker";
    entry "morsel" "job_counter" "atomic" AtomicOnly
      "job ids for per-job race-detector edge names";
    entry "morsel" "cache" "hashtbl" (LockProtected "morsel.cache_lock")
      "process-wide pool cache keyed (size, pid)";
    entry "morsel" "cache_lock" "mutex" Immutable "orders morsel.cache";
    (* vexec *)
    entry "vexec" "domains" "ref" InitOnce
      "worker count; set by the CLI before execution, quiescent while \
       queries run";
    entry "vexec" "batch_rows" "ref" InitOnce
      "batch granularity; set by the CLI before execution";
    entry "vexec" "pool_override" "ref" InitOnce
      "test-only pool hook; set while quiescent";
    entry "vexec" "cache" "ref" (LockProtected "vexec.cache_lock")
      "columnar base-relation cache, identity-keyed";
    entry "vexec" "cache_lock" "mutex" Immutable "orders vexec.cache";
    entry "vexec" "probe_counter" "atomic" AtomicOnly
      "probe ids for per-probe race-detector locations";
    (* relation *)
    entry "relation" "memo_lock" "mutex" Immutable
      "serializes memo builds; the memo cells themselves are Atomic \
       fields published per relation (relation[id].* detector locations)";
    entry "relation" "next_id" "atomic" AtomicOnly
      "relation ids for race-detector locations";
    (* race (the detector's own state; lock is a leaf) *)
    entry "race" "armed_flag" "atomic" AtomicOnly
      "detector gate; one atomic load on every disarmed entry point";
    entry "race" "lock" "mutex" Immutable
      "leaf lock for all detector state; nothing is acquired under it";
    entry "race" "slot_key" "dls" DomainLocal "per-domain detector slot";
    entry "race" "next_slot" "ref" (LockProtected "race.lock") "slot counter";
    entry "race" "clocks" "ref" (LockProtected "race.lock") "vector clocks";
    entry "race" "edges" "hashtbl" (LockProtected "race.lock")
      "published happens-before edges";
    entry "race" "locs" "hashtbl" (LockProtected "race.lock")
      "last write / recent reads per instrumented location";
    entry "race" "reports_acc" "ref" (LockProtected "race.lock") "reports";
    entry "race" "reported" "hashtbl" (LockProtected "race.lock")
      "report dedup set";
    entry "race" "seed_ref" "ref" (LockProtected "race.lock")
      "schedule seed carried into reports";
    (* compile *)
    entry "compile" "ctx_counter" "atomic" AtomicOnly
      "ctx tags for per-execution race-detector locations";
    entry "compile" "cur_compile_path" "ref" DomainLocal
      "operator path during compilation; compile runs on the \
       coordinator before any fan-out";
    (* eval *)
    entry "eval" "default_engine" "ref" InitOnce
      "engine selection; set by the CLI before execution";
    (* rewrite_trace *)
    entry "rewrite_trace" "hook" "ref" DomainLocal
      "process-local tracer hook; installed and fired on the \
       coordinator (rewrites run before execution fans out)";
    entry "rewrite_trace" "mutation" "ref" DomainLocal
      "test-only mutation switch; coordinator only";
  ]

let find ~module_ name =
  List.find_opt (fun e -> e.e_module = module_ && e.e_name = name) inventory

(* ------------------------------------------------------------------ *)
(* Source scanning                                                     *)
(* ------------------------------------------------------------------ *)

type decl = { d_name : string; d_line : int; d_kind : string }

(* Blank out string-literal and comment contents (keeping newlines, so
   line numbers survive): creation tokens inside prose or notes must
   not look like declarations. Char literals are skipped so '"' cannot
   open a string. *)
let strip src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  let blank i = if Bytes.get b i <> '\n' then Bytes.set b i ' ' in
  let i = ref 0 and com = ref 0 and instr = ref false in
  while !i < n do
    let c = Bytes.get b !i in
    if !instr then
      if c = '\\' && !i + 1 < n then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '"' then begin
        instr := false;
        incr i
      end
      else begin
        blank !i;
        incr i
      end
    else if !com > 0 then
      if c = '(' && !i + 1 < n && Bytes.get b (!i + 1) = '*' then begin
        incr com;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && Bytes.get b (!i + 1) = ')' then begin
        decr com;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && Bytes.get b (!i + 1) = '*' then begin
      com := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then begin
      instr := true;
      blank !i;
      incr i
    end
    else if c = '\'' && !i + 2 < n && Bytes.get b (!i + 1) <> '\\'
            && Bytes.get b (!i + 2) = '\''
    then begin
      blank (!i + 1);
      i := !i + 3
    end
    else if c = '\'' && !i + 1 < n && Bytes.get b (!i + 1) = '\\' then begin
      let j = ref (!i + 2) in
      while !j < n && Bytes.get b !j <> '\'' do
        blank !j;
        incr j
      done;
      i := !j + 1
    end
    else incr i
  done;
  Bytes.to_string b

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '.'

(* [tok] present in [s] with non-identifier characters (or edges) on
   both sides — '.' counts as an identifier character, so "Foo.ref"
   and "prefix" do not match token "ref". *)
let has_token s tok =
  let ls = String.length s and lt = String.length tok in
  let rec go i =
    if i + lt > ls then false
    else
      let ok =
        String.sub s i lt = tok
        && (i = 0 || not (is_ident_char s.[i - 1]))
        && (i + lt = ls || not (is_ident_char s.[i + lt]))
      in
      ok || go (i + 1)
  in
  go 0

(* First matching creation token decides the kind; order matters
   (a DLS key's initializer usually allocates a ref too). *)
let kind_of_rhs rhs =
  if has_token rhs "Domain.DLS.new_key" then Some "dls"
  else if has_token rhs "Atomic.make" then Some "atomic"
  else if has_token rhs "Mutex.create" then Some "mutex"
  else if has_token rhs "Condition.create" then Some "condition"
  else if has_token rhs "Hashtbl.create" then Some "hashtbl"
  else if has_token rhs "Queue.create" || has_token rhs "Buffer.create" then
    Some "buffer"
  else if
    has_token rhs "Array.make" || has_token rhs "Array.init"
    || has_token rhs "Bytes.create"
    || has_token rhs "Bigarray.Array1.create"
    || has_token rhs "Bigarray.Array2.create"
  then Some "array"
  else if has_token rhs "ref" then Some "ref"
  else None

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go 0

let is_blank line = String.trim line = ""

(* Parse "let [rec] name" where what follows [name] is at most a type
   annotation before the [=] — i.e. a value binding, not a function.
   Returns (name, rhs-on-this-line). *)
let value_binding_header trimmed =
  let after_let =
    if String.length trimmed > 4 && String.sub trimmed 0 4 = "let " then
      Some (String.sub trimmed 4 (String.length trimmed - 4))
    else None
  in
  match after_let with
  | None -> None
  | Some rest -> (
      let rest =
        if String.length rest > 4 && String.sub rest 0 4 = "rec " then
          String.sub rest 4 (String.length rest - 4)
        else rest
      in
      let n = String.length rest in
      let rec name_end i =
        if i < n && is_ident_char rest.[i] && rest.[i] <> '.' then
          name_end (i + 1)
        else i
      in
      let ne = name_end 0 in
      if ne = 0 || not (rest.[0] >= 'a' && rest.[0] <= 'z' || rest.[0] = '_')
      then None
      else
        let name = String.sub rest 0 ne in
        let tail = String.trim (String.sub rest ne (n - ne)) in
        if name = "_" then None
        else if tail = "" then None (* "let x" alone: not a binding *)
        else if tail.[0] = '=' then
          Some (name, String.sub tail 1 (String.length tail - 1))
        else if tail.[0] = ':' then
          match String.index_opt tail '=' with
          | Some e -> Some (name, String.sub tail (e + 1) (String.length tail - e - 1))
          | None -> Some (name, "")
        else None (* parameters: a function binding *))

let ends_with_in line =
  let t = String.trim line in
  let n = String.length t in
  n >= 3 && String.sub t (n - 3) 3 = " in"

(* Scan stripped source [src] for toplevel (structure-item) mutable
   declarations. Submodules are tracked by indentation ("module X =
   struct" ... "end" at the same indent), and a declaration inside one
   is reported as "X.name". *)
let scan src : decl list =
  let lines = String.split_on_char '\n' (strip src) in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let rec collect_rhs i base acc =
    if i >= n then acc
    else
      let l = arr.(i) in
      if is_blank l then collect_rhs (i + 1) base acc
      else if indent_of l > base then collect_rhs (i + 1) base (acc ^ "\n" ^ l)
      else acc
  in
  let rec go i depth stack acc =
    if i >= n then List.rev acc
    else
      let line = arr.(i) in
      let ind = indent_of line in
      let trimmed = String.trim line in
      if is_blank line then go (i + 1) depth stack acc
      else if
        ind = 2 * depth
        && String.length trimmed > 7
        && String.sub trimmed 0 7 = "module "
        && has_token trimmed "struct"
      then
        let rest = String.sub trimmed 7 (String.length trimmed - 7) in
        let ne =
          let rec e j =
            if j < String.length rest && is_ident_char rest.[j] then e (j + 1)
            else j
          in
          e 0
        in
        go (i + 1) (depth + 1) (String.sub rest 0 ne :: stack) acc
      else if depth > 0 && ind = 2 * (depth - 1) && trimmed = "end" then
        go (i + 1) (depth - 1) (List.tl stack) acc
      else if ind = 2 * depth && not (ends_with_in line) then (
        match value_binding_header trimmed with
        | Some (name, rhs0) -> (
            let rhs = collect_rhs (i + 1) ind rhs0 in
            match kind_of_rhs rhs with
            | Some kind ->
                let qual =
                  String.concat "." (List.rev_append stack [ name ])
                in
                go (i + 1) depth stack
                  ({ d_name = qual; d_line = i + 1; d_kind = kind } :: acc)
            | None -> go (i + 1) depth stack acc)
        | None -> go (i + 1) depth stack acc)
      else go (i + 1) depth stack acc
  in
  go 0 0 [] []

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let err ~rule ~path msg = Lint.diag Lint.Error ~rule ~path msg
let warn ~rule ~path msg = Lint.diag Lint.Warning ~rule ~path msg

(* Inventory self-consistency, checkable without sources. *)
let check_inventory () =
  List.concat_map
    (fun e ->
      let path = [ e.e_module; e.e_name ] in
      let mism msg = err ~rule:"share-discipline-mismatch" ~path msg in
      let locks =
        match e.e_discipline with
        | LockProtected l -> (
            match
              List.find_opt
                (fun m ->
                  m.e_kind = "mutex" && m.e_module ^ "." ^ m.e_name = l)
                inventory
            with
            | Some _ -> []
            | None ->
                [
                  err ~rule:"share-unknown-lock" ~path
                    (Printf.sprintf
                       "guarding lock %S is not a mutex in the inventory" l);
                ])
        | _ -> []
      in
      let shape =
        match (e.e_kind, e.e_discipline) with
        | "atomic", AtomicOnly -> []
        | "atomic", _ ->
            [ mism "an Atomic.t cell must be declared atomic-only" ]
        | _, AtomicOnly ->
            [ mism "atomic-only discipline requires an Atomic.t cell" ]
        | ("mutex" | "condition"), Immutable -> []
        | ("mutex" | "condition"), _ ->
            [
              mism
                "a lock object is itself immutable — it orders other \
                 cells, it is not data";
            ]
        | _, LockProtected _ | _, (DomainLocal | Immutable | InitOnce) -> []
      in
      locks @ shape)
    inventory

(* Compare one module's scanned declarations against the inventory. *)
let check_module ~module_ src =
  let decls = scan src in
  let undeclared =
    List.filter_map
      (fun d ->
        match find ~module_ d.d_name with
        | Some e ->
            if e.e_kind <> d.d_kind then
              Some
                (err ~rule:"share-kind-mismatch"
                   ~path:[ module_; d.d_name ]
                   (Printf.sprintf
                      "%s.ml:%d declares a %s but the inventory registered \
                       a %s"
                      module_ d.d_line d.d_kind e.e_kind))
            else None
        | None ->
            Some
              (err ~rule:"share-undeclared-mutable"
                 ~path:[ module_; d.d_name ]
                 (Printf.sprintf
                    "%s.ml:%d: toplevel mutable %s (%s) is not registered \
                     in the sharing inventory — declare its discipline in \
                     share_lint.ml"
                    module_ d.d_line d.d_name d.d_kind)))
      decls
  in
  let stale =
    List.filter_map
      (fun e ->
        if e.e_module <> module_ then None
        else if List.exists (fun d -> d.d_name = e.e_name) decls then None
        else
          Some
            (warn ~rule:"share-stale-inventory"
               ~path:[ module_; e.e_name ]
               (Printf.sprintf
                  "inventory entry %s.%s matches no toplevel mutable in \
                   %s.ml — remove or rename it"
                  module_ e.e_name module_)))
      inventory
  in
  undeclared @ stale

(* The modules the inventory covers (and the scan walks). [share_lint]
   itself is scanned too, so state sneaked into the linter is flagged
   like anywhere else. *)
let modules =
  [
    "compile";
    "eval";
    "guard";
    "morsel";
    "race";
    "relation";
    "rewrite_trace";
    "share_lint";
    "vexec";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_sources ~root =
  check_inventory ()
  @ List.concat_map
      (fun m ->
        let path = Filename.concat root (m ^ ".ml") in
        match read_file path with
        | src -> check_module ~module_:m src
        | exception Sys_error e ->
            [ err ~rule:"share-missing-source" ~path:[ m ] e ])
      modules

let default_root () =
  List.find_opt
    (fun r -> Sys.file_exists (Filename.concat r "share_lint.ml"))
    [
      "lib/relalg";
      Filename.concat ".." "lib/relalg";
      Filename.concat "../.." "lib/relalg";
      Filename.concat "../../.." "lib/relalg";
    ]

(* ------------------------------------------------------------------ *)
(* Race reports as diagnostics, and the JSON surface                   *)
(* ------------------------------------------------------------------ *)

let diagnostic_of_race (r : Race.report) =
  Lint.diag Lint.Error ~rule:"race-unordered-access" ~path:[ r.Race.r_loc ]
    (Race.report_to_string r)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diagnostic_json (d : Lint.diagnostic) =
  Printf.sprintf
    {|{"severity":"%s","rule":"%s","path":"%s","message":"%s"}|}
    (json_escape (Lint.severity_to_string d.Lint.severity))
    (json_escape d.Lint.rule)
    (json_escape (Lint.path_to_string d.Lint.path))
    (json_escape d.Lint.message)

let diagnostics_json diags =
  Printf.sprintf {|{"diagnostics":[%s],"errors":%d}|}
    (String.concat "," (List.map diagnostic_json diags))
    (List.length (Lint.errors diags))
