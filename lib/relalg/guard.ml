(** Execution governor: resource budgets with cooperative checkpoints,
    and a deterministic fault-injection harness.

    The engines call {!count_row} / {!count_rows} / {!count_pairs} /
    {!tick} at operator boundaries and {!Faults.fire_point} at scan,
    join and sublink boundaries. Both are designed for a near-free
    disabled path: a single domain-local load guards each, so unguarded
    execution pays one load-and-branch per checkpoint.

    A budget is installed dynamically with {!with_budget} rather than
    threaded through the evaluator signatures: one scope then governs
    everything that runs inside it — both engines, sublink
    re-evaluation, optimizer-produced plans. Scopes nest lexically, but
    only the innermost scope is enforced: while an inner scope is
    active the outer scope's counters and deadline are suspended
    (neither advanced nor checked), and they resume where they left off
    when the inner scope exits. The strategy-fallback ladder in [Core]
    builds its per-attempt sub-budgets on this — it re-splits the
    remaining {e wall-clock} allowance across attempts itself, while
    each attempt's row/pair/allocation ceilings are per-attempt, fresh
    allowances.

    Domain safety: the governor used to keep the innermost scope in
    plain global [ref]s, which worker domains could not safely tick.
    The scope registry is now [Domain.DLS]-backed: each domain holds a
    private {e view} of a scope — local row/pair counters, fuel, and a
    per-domain [Gc.allocated_bytes] baseline — over a shared [state]
    whose totals are [Atomic] and flushed on each slow checkpoint and
    at view exit. Worker domains adopt the coordinator's scope with
    {!with_scope} (the vectorized engine does this per morsel task), so
    ceilings trip with correct aggregated totals no matter which domain
    crosses the line. The cheap per-row path stays non-atomic: a local
    increment plus one plain atomic load for the ceiling compare. *)

(* ------------------------------------------------------------------ *)
(* Paths (same rendering as Lint's diagnostics)                        *)
(* ------------------------------------------------------------------ *)

let op_label (q : Algebra.query) =
  match q with
  | Algebra.Base name -> "Base(" ^ name ^ ")"
  | TableExpr _ -> "Table"
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Cross _ -> "Cross"
  | Join _ -> "Join"
  | LeftJoin _ -> "LeftJoin"
  | Agg _ -> "Agg"
  | Union _ -> "Union"
  | Inter _ -> "Inter"
  | Diff _ -> "Diff"
  | Order _ -> "Order"
  | Limit _ -> "Limit"

let path_to_string = function
  | [] -> "plan"
  | path -> String.concat "/" path

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

type budget = {
  g_timeout : float option;
  g_max_rows : int option;
  g_max_pairs : int option;
  g_max_alloc_mb : float option;
}

let budget ?timeout ?max_rows ?max_pairs ?max_alloc_mb () =
  {
    g_timeout = timeout;
    g_max_rows = max_rows;
    g_max_pairs = max_pairs;
    g_max_alloc_mb = max_alloc_mb;
  }

let unlimited =
  { g_timeout = None; g_max_rows = None; g_max_pairs = None; g_max_alloc_mb = None }

let is_unlimited b =
  b.g_timeout = None && b.g_max_rows = None && b.g_max_pairs = None
  && b.g_max_alloc_mb = None

let budget_to_string b =
  if is_unlimited b then "unlimited"
  else
    String.concat ", "
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "timeout=%gs") b.g_timeout;
           Option.map (Printf.sprintf "max-rows=%d") b.g_max_rows;
           Option.map (Printf.sprintf "max-pairs=%d") b.g_max_pairs;
           Option.map (Printf.sprintf "max-alloc=%gMB") b.g_max_alloc_mb;
         ])

type counters = {
  c_rows : int;
  c_pairs : int;
  c_elapsed : float;
  c_alloc_mb : float;
}

type reason =
  | Timed_out of float
  | Rows_exceeded of int
  | Pairs_exceeded of int
  | Alloc_exceeded of float

type trip = { t_path : string list; t_reason : reason; t_counters : counters }

exception Budget_exceeded of trip

let reason_to_string = function
  | Timed_out s -> Printf.sprintf "wall-clock timeout (%g s)" s
  | Rows_exceeded n -> Printf.sprintf "row ceiling (%d rows)" n
  | Pairs_exceeded n -> Printf.sprintf "join-pair ceiling (%d pairs)" n
  | Alloc_exceeded mb -> Printf.sprintf "allocation ceiling (%g MB)" mb

let trip_to_string t =
  Printf.sprintf
    "budget exceeded at %s: %s; %d rows, %d pairs, %.2f s, %.1f MB allocated"
    (path_to_string t.t_path)
    (reason_to_string t.t_reason)
    t.t_counters.c_rows t.t_counters.c_pairs t.t_counters.c_elapsed
    t.t_counters.c_alloc_mb

(* How many cheap checkpoints between time/allocation re-checks. *)
let fuel_interval = 512

(* The scope proper, shared by every domain that adopted it. Totals are
   [Atomic] so views flush without a lock; ceilings/deadline/baselines
   are immutable. *)
type state = {
  st_budget : budget;
  st_deadline : float option;
  st_t0 : float;
  (* ceilings flattened to ints ([max_int] = none) so the per-push
     checkpoint compares without an option match *)
  st_row_limit : int;
  st_pair_limit : int;
  st_rows : int Atomic.t;  (* rows flushed by all views *)
  st_pairs : int Atomic.t;  (* pairs flushed by all views *)
  st_alloc : int Atomic.t;
      (* bytes flushed by all views; [Gc.allocated_bytes] is per-domain,
         so each view folds its own delta in at slow checkpoints and at
         view exit — this is how parallel sections share one budget *)
}

(* A domain's private view of a scope: unflushed counter deltas, fuel,
   and the domain's own allocation baseline. Single-writer (the owning
   domain), so the cheap checkpoints stay plain loads and stores. *)
type dview = {
  dv_state : state;
  mutable dv_rows : int;
  mutable dv_pairs : int;
  mutable dv_fuel : int;
  mutable dv_alloc0 : float;
}

(* The innermost active view of the calling domain. DLS-backed: worker
   domains adopt a scope with [with_scope] without racing the
   coordinator's own bookkeeping. *)
let tls : dview option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let cur () = !(Domain.DLS.get tls)

(* Fold this view's unflushed deltas into the shared totals and reset
   the local allocation baseline. *)
let flush dv =
  let st = dv.dv_state in
  if dv.dv_rows <> 0 then begin
    ignore (Atomic.fetch_and_add st.st_rows dv.dv_rows);
    dv.dv_rows <- 0
  end;
  if dv.dv_pairs <> 0 then begin
    ignore (Atomic.fetch_and_add st.st_pairs dv.dv_pairs);
    dv.dv_pairs <- 0
  end;
  let now = Gc.allocated_bytes () in
  let delta = now -. dv.dv_alloc0 in
  if delta <> 0.0 then begin
    ignore (Atomic.fetch_and_add st.st_alloc (int_of_float delta));
    dv.dv_alloc0 <- now
  end

let snapshot dv =
  flush dv;
  let st = dv.dv_state in
  {
    c_rows = Atomic.get st.st_rows;
    c_pairs = Atomic.get st.st_pairs;
    c_elapsed = Unix.gettimeofday () -. st.st_t0;
    c_alloc_mb = float_of_int (Atomic.get st.st_alloc) /. 1_048_576.0;
  }

let trip dv path reason =
  raise (Budget_exceeded { t_path = path; t_reason = reason; t_counters = snapshot dv })

let is_active () = cur () <> None

(* Bulk row counting walks an O(n) [Relation.cardinality] at every
   operator exit, so call sites skip it unless a row ceiling is armed;
   per-push counting (streaming operators) stays on under any budget. *)
let counts_rows () =
  match cur () with
  | Some dv -> dv.dv_state.st_budget.g_max_rows <> None
  | None -> false

let observed () =
  match cur () with
  | None -> { c_rows = 0; c_pairs = 0; c_elapsed = 0.0; c_alloc_mb = 0.0 }
  | Some dv -> snapshot dv

(* Re-check the clock and the allocation counter; called once every
   [fuel_interval] cheap checkpoints, and on every bulk checkpoint.
   Flushing here is also what keeps the shared totals fresh enough for
   the other domains' ceiling compares. *)
let slow_check dv path =
  dv.dv_fuel <- fuel_interval;
  flush dv;
  let st = dv.dv_state in
  (match st.st_deadline with
  | Some d when Unix.gettimeofday () > d ->
      trip dv path (Timed_out (Option.get st.st_budget.g_timeout))
  | _ -> ());
  match st.st_budget.g_max_alloc_mb with
  | Some mb when float_of_int (Atomic.get st.st_alloc) /. 1_048_576.0 > mb ->
      trip dv path (Alloc_exceeded mb)
  | _ -> ()

(* Ceiling compares read the shared total (a plain load on the cheap
   path — no fetch-and-add) plus the local unflushed delta: exact when
   one domain runs (the common case), at worst [fuel_interval] late per
   extra domain otherwise. *)
let count_row_slow dv path =
  let st = dv.dv_state in
  dv.dv_rows <- dv.dv_rows + 1;
  if Atomic.get st.st_rows + dv.dv_rows > st.st_row_limit then
    trip dv path (Rows_exceeded st.st_row_limit);
  let f = dv.dv_fuel - 1 in
  dv.dv_fuel <- f;
  if f <= 0 then slow_check dv path

let count_row path =
  match cur () with None -> () | Some dv -> count_row_slow dv path

let count_rows path n =
  match cur () with
  | None -> ()
  | Some dv ->
      let st = dv.dv_state in
      dv.dv_rows <- dv.dv_rows + n;
      if Atomic.get st.st_rows + dv.dv_rows > st.st_row_limit then
        trip dv path (Rows_exceeded st.st_row_limit);
      slow_check dv path

let count_pairs path n =
  match cur () with
  | None -> ()
  | Some dv ->
      let st = dv.dv_state in
      dv.dv_pairs <- dv.dv_pairs + n;
      if Atomic.get st.st_pairs + dv.dv_pairs > st.st_pair_limit then
        trip dv path (Pairs_exceeded st.st_pair_limit);
      let f = dv.dv_fuel - 1 in
      dv.dv_fuel <- f;
      if f <= 0 then slow_check dv path

let cross_guard path ~left ~right =
  match cur () with
  | None -> ()
  | Some dv -> (
      let st = dv.dv_state in
      match st.st_budget.g_max_pairs with
      | Some m
        when float_of_int left *. float_of_int right
             > float_of_int
                 (max 0 (m - (Atomic.get st.st_pairs + dv.dv_pairs))) ->
          trip dv path (Pairs_exceeded m)
      | _ -> ())

let tick path =
  match cur () with
  | None -> ()
  | Some dv ->
      dv.dv_fuel <- dv.dv_fuel - 1;
      if dv.dv_fuel <= 0 then slow_check dv path

(* [note_alloc path bytes] folds externally measured worker-domain
   bytes into the active scope. Kept for callers that measure worker
   allocation themselves instead of adopting the scope ({!with_scope}
   now subsumes it for the vectorized engine). *)
let note_alloc path bytes =
  match cur () with
  | None -> ()
  | Some dv ->
      ignore (Atomic.fetch_and_add dv.dv_state.st_alloc (int_of_float bytes));
      if dv.dv_state.st_budget.g_max_alloc_mb <> None then slow_check dv path

let mk_view st =
  {
    dv_state = st;
    dv_rows = 0;
    dv_pairs = 0;
    dv_fuel = fuel_interval;
    dv_alloc0 = Gc.allocated_bytes ();
  }

(** [with_budget b f] runs [f] governed by [b] ([None] = unchanged).
    Installing a scope inside another {e suspends} the outer scope: its
    counters and deadline are neither advanced nor checked until the
    inner scope exits — callers that want a shared ceiling across
    nested runs (the fallback ladder's wall clock) must split it into
    the sub-budgets themselves. *)
let with_budget b f =
  match b with
  | None -> f ()
  | Some b ->
      let now = Unix.gettimeofday () in
      let st =
        {
          st_budget = b;
          st_deadline = Option.map (fun s -> now +. s) b.g_timeout;
          st_t0 = now;
          st_row_limit = Option.value ~default:max_int b.g_max_rows;
          st_pair_limit = Option.value ~default:max_int b.g_max_pairs;
          st_rows = Atomic.make 0;
          st_pairs = Atomic.make 0;
          st_alloc = Atomic.make 0;
        }
      in
      let r = Domain.DLS.get tls in
      let saved = !r in
      r := Some (mk_view st);
      Fun.protect ~finally:(fun () -> r := saved) f

(* ------------------------------------------------------------------ *)
(* Scope adoption across domains                                       *)
(* ------------------------------------------------------------------ *)

type scope = state option

let no_scope : scope = None
let current_scope () : scope = Option.map (fun dv -> dv.dv_state) (cur ())

(* [with_scope sc f] runs [f] ticking against [sc] from the calling
   domain: a fresh view (own fuel, own allocation baseline) over the
   shared totals, flushed at exit so the coordinator's barrier-time
   counters include this domain's contribution. Re-adopting the scope a
   domain is already viewing is a no-op wrapper — the existing view
   keeps the allocation baseline chain intact. *)
let with_scope (sc : scope) f =
  match sc with
  | None -> f ()
  | Some st -> (
      let r = Domain.DLS.get tls in
      match !r with
      | Some dv when dv.dv_state == st -> f ()
      | saved ->
          let dv = mk_view st in
          r := Some dv;
          Fun.protect
            ~finally:(fun () ->
              flush dv;
              r := saved)
            f)

(* ------------------------------------------------------------------ *)
(* Budget pool                                                         *)
(* ------------------------------------------------------------------ *)

(* A server-wide allowance from which concurrent requests lease
   per-request budgets. The pool is sized for [slots] concurrent
   requests at the template budget; while the pool is oversubscribed
   (more outstanding leases than slots) the leased wall-clock allowance
   shrinks proportionally — total in-flight wall-clock stays bounded by
   [slots × template timeout] — while row/pair/allocation ceilings are
   per-request invariants and lease out unchanged. Mutex-protected:
   leases are taken from the accept loop and connection domains
   concurrently. *)
module Pool = struct
  type t = {
    p_template : budget;
    p_slots : int;
    p_mu : Mutex.t;
    mutable p_active : int;
    mutable p_leased : int;  (* total leases ever granted *)
  }

  let create ?(slots = 1) template =
    {
      p_template = template;
      p_slots = max 1 slots;
      p_mu = Mutex.create ();
      p_active = 0;
      p_leased = 0;
    }

  let lease t =
    Mutex.lock t.p_mu;
    t.p_active <- t.p_active + 1;
    t.p_leased <- t.p_leased + 1;
    let active = t.p_active in
    Mutex.unlock t.p_mu;
    let g_timeout =
      Option.map
        (fun s ->
          if active <= t.p_slots then s
          else Float.max 0.05 (s *. float_of_int t.p_slots /. float_of_int active))
        t.p_template.g_timeout
    in
    { t.p_template with g_timeout }

  let release t =
    Mutex.lock t.p_mu;
    t.p_active <- max 0 (t.p_active - 1);
    Mutex.unlock t.p_mu

  let with_lease t f =
    let b = lease t in
    Fun.protect ~finally:(fun () -> release t) (fun () -> f b)

  let active t =
    Mutex.lock t.p_mu;
    let a = t.p_active in
    Mutex.unlock t.p_mu;
    a

  let leased t =
    Mutex.lock t.p_mu;
    let n = t.p_leased in
    Mutex.unlock t.p_mu;
    n

  let slots t = t.p_slots
end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  type site = Scan | Join | Sublink

  type trigger = Countdown of int | At_path of string | Seeded of int

  exception Injected of { i_site : site; i_path : string list }

  let site_to_string = function
    | Scan -> "scan"
    | Join -> "join"
    | Sublink -> "sublink"

  type config = {
    f_sites : site list;
    f_trigger : trigger;
    mutable f_remaining : int;
    mutable f_rng : int;
    mutable f_events : int;
    mutable f_fired : int;
  }

  let state : config option ref = ref None
  let armed_flag = ref false

  let arm ?(sites = [ Scan; Join; Sublink ]) trigger =
    state :=
      Some
        {
          f_sites = sites;
          f_trigger = trigger;
          f_remaining = (match trigger with Countdown n -> n | _ -> 0);
          f_rng = (match trigger with Seeded s -> s land 0x3FFFFFFF | _ -> 0);
          f_events = 0;
          f_fired = 0;
        };
    armed_flag := true

  let disarm () =
    state := None;
    armed_flag := false

  let armed () = !armed_flag
  let events () = match !state with None -> 0 | Some c -> c.f_events
  let fired () = match !state with None -> 0 | Some c -> c.f_fired

  let fire_slow site path =
    match !state with
    | None -> ()
    | Some c ->
        if List.mem site c.f_sites then begin
          c.f_events <- c.f_events + 1;
          let fire =
            match c.f_trigger with
            | Countdown _ ->
                c.f_remaining <- c.f_remaining - 1;
                c.f_remaining = 0
            | At_path p ->
                let r = path_to_string path in
                String.equal r p
                || String.length r > String.length p
                   && String.sub r 0 (String.length p + 1) = p ^ "/"
            | Seeded _ ->
                c.f_rng <- ((c.f_rng * 1103515245) + 12345) land 0x3FFFFFFF;
                (c.f_rng lsr 7) mod 10 = 0
          in
          if fire then begin
            c.f_fired <- c.f_fired + 1;
            raise (Injected { i_site = site; i_path = path })
          end
        end

  let fire_point site path = if !armed_flag then fire_slow site path
end
