(** Execution governor: resource budgets with cooperative checkpoints,
    and a deterministic fault-injection harness.

    The engines call {!count_row} / {!count_rows} / {!count_pairs} /
    {!tick} at operator boundaries and {!Faults.fire_point} at scan,
    join and sublink boundaries. Both are designed for a near-free
    disabled path: a single [bool ref] load guards each, so unguarded
    execution pays one load-and-branch per checkpoint.

    A budget is installed dynamically with {!with_budget} rather than
    threaded through the evaluator signatures: one scope then governs
    everything that runs inside it — both engines, sublink
    re-evaluation, optimizer-produced plans. Scopes nest lexically, but
    only the innermost scope is enforced: while an inner scope is
    active the outer scope's counters and deadline are suspended
    (neither advanced nor checked), and they resume where they left off
    when the inner scope exits. The strategy-fallback ladder in [Core]
    builds its per-attempt sub-budgets on this — it re-splits the
    remaining {e wall-clock} allowance across attempts itself, while
    each attempt's row/pair/allocation ceilings are per-attempt, fresh
    allowances. *)

(* ------------------------------------------------------------------ *)
(* Paths (same rendering as Lint's diagnostics)                        *)
(* ------------------------------------------------------------------ *)

let op_label (q : Algebra.query) =
  match q with
  | Algebra.Base name -> "Base(" ^ name ^ ")"
  | TableExpr _ -> "Table"
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Cross _ -> "Cross"
  | Join _ -> "Join"
  | LeftJoin _ -> "LeftJoin"
  | Agg _ -> "Agg"
  | Union _ -> "Union"
  | Inter _ -> "Inter"
  | Diff _ -> "Diff"
  | Order _ -> "Order"
  | Limit _ -> "Limit"

let path_to_string = function
  | [] -> "plan"
  | path -> String.concat "/" path

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

type budget = {
  g_timeout : float option;
  g_max_rows : int option;
  g_max_pairs : int option;
  g_max_alloc_mb : float option;
}

let budget ?timeout ?max_rows ?max_pairs ?max_alloc_mb () =
  {
    g_timeout = timeout;
    g_max_rows = max_rows;
    g_max_pairs = max_pairs;
    g_max_alloc_mb = max_alloc_mb;
  }

let unlimited =
  { g_timeout = None; g_max_rows = None; g_max_pairs = None; g_max_alloc_mb = None }

let is_unlimited b =
  b.g_timeout = None && b.g_max_rows = None && b.g_max_pairs = None
  && b.g_max_alloc_mb = None

let budget_to_string b =
  if is_unlimited b then "unlimited"
  else
    String.concat ", "
      (List.filter_map Fun.id
         [
           Option.map (Printf.sprintf "timeout=%gs") b.g_timeout;
           Option.map (Printf.sprintf "max-rows=%d") b.g_max_rows;
           Option.map (Printf.sprintf "max-pairs=%d") b.g_max_pairs;
           Option.map (Printf.sprintf "max-alloc=%gMB") b.g_max_alloc_mb;
         ])

type counters = {
  c_rows : int;
  c_pairs : int;
  c_elapsed : float;
  c_alloc_mb : float;
}

type reason =
  | Timed_out of float
  | Rows_exceeded of int
  | Pairs_exceeded of int
  | Alloc_exceeded of float

type trip = { t_path : string list; t_reason : reason; t_counters : counters }

exception Budget_exceeded of trip

let reason_to_string = function
  | Timed_out s -> Printf.sprintf "wall-clock timeout (%g s)" s
  | Rows_exceeded n -> Printf.sprintf "row ceiling (%d rows)" n
  | Pairs_exceeded n -> Printf.sprintf "join-pair ceiling (%d pairs)" n
  | Alloc_exceeded mb -> Printf.sprintf "allocation ceiling (%g MB)" mb

let trip_to_string t =
  Printf.sprintf
    "budget exceeded at %s: %s; %d rows, %d pairs, %.2f s, %.1f MB allocated"
    (path_to_string t.t_path)
    (reason_to_string t.t_reason)
    t.t_counters.c_rows t.t_counters.c_pairs t.t_counters.c_elapsed
    t.t_counters.c_alloc_mb

(* How many cheap checkpoints between time/allocation re-checks. *)
let fuel_interval = 512

type state = {
  st_budget : budget;
  st_deadline : float option;
  st_t0 : float;
  st_alloc0 : float;
  (* ceilings flattened to ints ([max_int] = none) so the per-push
     checkpoint compares without an option match *)
  st_row_limit : int;
  st_pair_limit : int;
  mutable st_rows : int;
  mutable st_pairs : int;
  mutable st_fuel : int;
  mutable st_alloc_extra : float;
      (* bytes allocated on worker domains, reported by the coordinator
         at merge points; [Gc.allocated_bytes] is per-domain, so this is
         how parallel sections fold into the shared allocation budget *)
}

(* The innermost active scope. [active] mirrors [current <> None] so the
   disabled checkpoint path is a single load-and-branch. *)
let current : state option ref = ref None
let active = ref false

let scope_alloc_bytes st =
  Gc.allocated_bytes () -. st.st_alloc0 +. st.st_alloc_extra

let snapshot st =
  {
    c_rows = st.st_rows;
    c_pairs = st.st_pairs;
    c_elapsed = Unix.gettimeofday () -. st.st_t0;
    c_alloc_mb = scope_alloc_bytes st /. 1_048_576.0;
  }

let trip st path reason =
  raise (Budget_exceeded { t_path = path; t_reason = reason; t_counters = snapshot st })

let is_active () = !active

(* Bulk row counting walks an O(n) [Relation.cardinality] at every
   operator exit, so call sites skip it unless a row ceiling is armed;
   per-push counting (streaming operators) stays on under any budget. *)
let counts_rows () =
  !active
  &&
  match !current with
  | Some st -> st.st_budget.g_max_rows <> None
  | None -> false

let observed () =
  match !current with
  | None -> { c_rows = 0; c_pairs = 0; c_elapsed = 0.0; c_alloc_mb = 0.0 }
  | Some st -> snapshot st

(* Re-check the clock and the allocation counter; called once every
   [fuel_interval] cheap checkpoints, and on every bulk checkpoint. *)
let slow_check st path =
  st.st_fuel <- fuel_interval;
  (match st.st_deadline with
  | Some d when Unix.gettimeofday () > d ->
      trip st path (Timed_out (Option.get st.st_budget.g_timeout))
  | _ -> ());
  match st.st_budget.g_max_alloc_mb with
  | Some mb when scope_alloc_bytes st /. 1_048_576.0 > mb ->
      trip st path (Alloc_exceeded mb)
  | _ -> ()

let count_row_slow path =
  match !current with
  | None -> ()
  | Some st ->
      let r = st.st_rows + 1 in
      st.st_rows <- r;
      if r > st.st_row_limit then trip st path (Rows_exceeded st.st_row_limit);
      let f = st.st_fuel - 1 in
      st.st_fuel <- f;
      if f <= 0 then slow_check st path

let count_row path = if !active then count_row_slow path

let count_rows path n =
  if !active then
    match !current with
    | None -> ()
    | Some st ->
        let r = st.st_rows + n in
        st.st_rows <- r;
        if r > st.st_row_limit then
          trip st path (Rows_exceeded st.st_row_limit);
        slow_check st path

let count_pairs path n =
  if !active then
    match !current with
    | None -> ()
    | Some st ->
        let p = st.st_pairs + n in
        st.st_pairs <- p;
        if p > st.st_pair_limit then
          trip st path (Pairs_exceeded st.st_pair_limit);
        let f = st.st_fuel - 1 in
        st.st_fuel <- f;
        if f <= 0 then slow_check st path

let cross_guard path ~left ~right =
  if !active then
    match !current with
    | None -> ()
    | Some st -> (
        match st.st_budget.g_max_pairs with
        | Some m
          when float_of_int left *. float_of_int right
               > float_of_int (max 0 (m - st.st_pairs)) ->
            trip st path (Pairs_exceeded m)
        | _ -> ())

let tick path =
  if !active then
    match !current with
    | None -> ()
    | Some st ->
        st.st_fuel <- st.st_fuel - 1;
        if st.st_fuel <= 0 then slow_check st path

(* [note_alloc path bytes] folds bytes allocated on {e worker} domains
   into the active scope's allocation accounting. Called only by the
   parallel coordinator at morsel merge points — the governor's state
   is coordinator-private, so workers never touch it directly. *)
let note_alloc path bytes =
  if !active then
    match !current with
    | None -> ()
    | Some st ->
        st.st_alloc_extra <- st.st_alloc_extra +. bytes;
        if st.st_budget.g_max_alloc_mb <> None then slow_check st path

(** [with_budget b f] runs [f] governed by [b] ([None] = unchanged).
    Installing a scope inside another {e suspends} the outer scope: its
    counters and deadline are neither advanced nor checked until the
    inner scope exits — callers that want a shared ceiling across
    nested runs (the fallback ladder's wall clock) must split it into
    the sub-budgets themselves. *)
let with_budget b f =
  match b with
  | None -> f ()
  | Some b ->
      let now = Unix.gettimeofday () in
      let st =
        {
          st_budget = b;
          st_deadline = Option.map (fun s -> now +. s) b.g_timeout;
          st_t0 = now;
          st_alloc0 = Gc.allocated_bytes ();
          st_row_limit = Option.value ~default:max_int b.g_max_rows;
          st_pair_limit = Option.value ~default:max_int b.g_max_pairs;
          st_rows = 0;
          st_pairs = 0;
          st_fuel = fuel_interval;
          st_alloc_extra = 0.0;
        }
      in
      let saved = !current in
      current := Some st;
      active := true;
      Fun.protect
        ~finally:(fun () ->
          current := saved;
          active := saved <> None)
        f

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  type site = Scan | Join | Sublink

  type trigger = Countdown of int | At_path of string | Seeded of int

  exception Injected of { i_site : site; i_path : string list }

  let site_to_string = function
    | Scan -> "scan"
    | Join -> "join"
    | Sublink -> "sublink"

  type config = {
    f_sites : site list;
    f_trigger : trigger;
    mutable f_remaining : int;
    mutable f_rng : int;
    mutable f_events : int;
    mutable f_fired : int;
  }

  let state : config option ref = ref None
  let armed_flag = ref false

  let arm ?(sites = [ Scan; Join; Sublink ]) trigger =
    state :=
      Some
        {
          f_sites = sites;
          f_trigger = trigger;
          f_remaining = (match trigger with Countdown n -> n | _ -> 0);
          f_rng = (match trigger with Seeded s -> s land 0x3FFFFFFF | _ -> 0);
          f_events = 0;
          f_fired = 0;
        };
    armed_flag := true

  let disarm () =
    state := None;
    armed_flag := false

  let armed () = !armed_flag
  let events () = match !state with None -> 0 | Some c -> c.f_events
  let fired () = match !state with None -> 0 | Some c -> c.f_fired

  let fire_slow site path =
    match !state with
    | None -> ()
    | Some c ->
        if List.mem site c.f_sites then begin
          c.f_events <- c.f_events + 1;
          let fire =
            match c.f_trigger with
            | Countdown _ ->
                c.f_remaining <- c.f_remaining - 1;
                c.f_remaining = 0
            | At_path p ->
                let r = path_to_string path in
                String.equal r p
                || String.length r > String.length p
                   && String.sub r 0 (String.length p + 1) = p ^ "/"
            | Seeded _ ->
                c.f_rng <- ((c.f_rng * 1103515245) + 12345) land 0x3FFFFFFF;
                (c.f_rng lsr 7) mod 10 = 0
          in
          if fire then begin
            c.f_fired <- c.f_fired + 1;
            raise (Injected { i_site = site; i_path = path })
          end
        end

  let fire_point site path = if !armed_flag then fire_slow site path
end
