(** Scope analysis: output names and free (correlated) references.

    A name is free in a sublink query when no scope created inside the
    sublink binds it — it is a correlation (Section 2.2). The evaluator
    uses the free-name set as the memoization key for sublink results. *)

(** Output attribute names of a query (no type information needed). *)
val out_names : Database.t -> Algebra.query -> string list

(** Free attribute names of a query: sorted, duplicate-free. *)
val free_of_query : Database.t -> Algebra.query -> string list

(** Free names of an expression under an operator whose input provides
    [input_names]. *)
val free_of_expr : Database.t -> string list -> Algebra.expr -> string list

(** All names referenced by an expression with no local scope at all
    (used by the optimizer to decide pushdown). *)
val refs_of_expr : Database.t -> Algebra.expr -> string list

(** [is_uncorrelated db s]: the applicability condition of the Left,
    Move and Unn strategies (Section 3.6). *)
val is_uncorrelated : Database.t -> Algebra.sublink -> bool

(** [split_equi db ~left ~right cond] classifies each top-level
    conjunct of a join condition as a hashable equi-pair
    [(left_expr, right_expr, null_safe)] or as a residual condition.
    [left]/[right] are the attribute names of the two join inputs.
    Shared by both execution engines; the compiled engine runs it once
    per join operator instead of once per evaluation. *)
val split_equi :
  Database.t ->
  left:string list ->
  right:string list ->
  Algebra.expr ->
  (Algebra.expr * Algebra.expr * bool) list * Algebra.expr list
