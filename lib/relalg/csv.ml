(** Minimal CSV import/export for relations.

    The first line is the header. Types are inferred per column from the
    data rows (int if every non-empty cell parses as an int, else float,
    else bool, else string); empty cells are NULL. Quoting follows RFC
    4180: fields may be enclosed in double quotes, with [""] escaping. *)

exception
  Csv_error of { file : string option; line : int option; msg : string }

let csv_error ?file ?line fmt =
  Format.kasprintf (fun s -> raise (Csv_error { file; line; msg = s })) fmt

(** [error_to_string e] renders ["file:line: msg"] with the known
    parts. *)
let error_to_string ~file ~line ~msg =
  match (file, line) with
  | Some f, Some l -> Printf.sprintf "%s:%d: %s" f l msg
  | Some f, None -> Printf.sprintf "%s: %s" f msg
  | None, Some l -> Printf.sprintf "line %d: %s" l msg
  | None, None -> msg

(* Split one CSV record into fields; [file]/[line] attribute errors. *)
let split_record ?file ?line str =
  let line_no = line and line = str in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n || line.[i] = ',' then finish i
    else begin
      Buffer.add_char buf line.[i];
      plain (i + 1)
    end
  and quoted i =
    if i >= n then csv_error ?file ?line:line_no "unterminated quoted field"
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else plain (i + 1)
    else begin
      Buffer.add_char buf line.[i];
      quoted (i + 1)
    end
  and finish i =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    if i < n && line.[i] = ',' then field (i + 1)
  in
  if n = 0 then fields := [ "" ] else field 0;
  List.rev !fields

let infer_type cells : Vtype.t =
  let non_empty = List.filter (fun c -> c <> "") cells in
  let all p = non_empty <> [] && List.for_all p non_empty in
  if all (fun c -> int_of_string_opt c <> None) then Vtype.TInt
  else if all (fun c -> float_of_string_opt c <> None) then Vtype.TFloat
  else if all (fun c -> c = "true" || c = "false") then Vtype.TBool
  else Vtype.TString

let cell_value ty (c : string) : Value.t =
  if c = "" then Value.Null
  else
    match ty with
    | Vtype.TInt -> Value.Int (int_of_string c)
    | Vtype.TFloat -> Value.Float (float_of_string c)
    | Vtype.TBool -> Value.Bool (c = "true")
    | Vtype.TString -> Value.String c

(* Parse a header plus data rows, each paired with its original line
   number in the source file (so diagnostics survive blank-line
   skipping). *)
let of_numbered_lines ?file = function
  | [] -> csv_error ?file "empty CSV input"
  | (header, hline) :: data ->
      let names = split_record ?file ~line:hline header in
      let rows =
        List.map (fun (l, ln) -> (split_record ?file ~line:ln l, ln)) data
      in
      let ncols = List.length names in
      List.iter
        (fun (row, ln) ->
          if List.length row <> ncols then
            csv_error ?file ~line:ln "row has %d fields, expected %d"
              (List.length row) ncols)
        rows;
      let columns =
        List.mapi
          (fun i _ -> List.map (fun (row, _) -> List.nth row i) rows)
          names
      in
      let types = List.map infer_type columns in
      let schema =
        match
          Schema.of_list (List.map2 (fun n ty -> Schema.attr n ty) names types)
        with
        | s -> s
        | exception Schema.Schema_error msg -> csv_error ?file ~line:hline "%s" msg
      in
      let tuples =
        List.map
          (fun (row, ln) ->
            match Tuple.of_list (List.map2 cell_value types row) with
            | t -> t
            | exception (Failure _ | Value.Type_clash _) ->
                csv_error ?file ~line:ln "cell does not fit the inferred column type")
          rows
      in
      Relation.make schema tuples

(** [of_lines lines] parses a header plus data rows; line numbers in
    errors count from 1 at the header. *)
let of_lines ?file lines =
  of_numbered_lines ?file (List.mapi (fun i l -> (l, i + 1)) lines)

(** [load path] reads a relation from a CSV file. Malformed rows raise
    {!Csv_error} carrying the file name and 1-based line number. *)
let load path =
  let ic =
    try open_in path
    with Sys_error msg -> csv_error ~file:path "cannot open: %s" msg
  in
  let lines = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line =
         (* tolerate CRLF *)
         if String.length line > 0 && line.[String.length line - 1] = '\r' then
           String.sub line 0 (String.length line - 1)
         else line
       in
       if line <> "" then lines := (line, !lineno) :: !lines
     done
   with End_of_file -> close_in ic);
  of_numbered_lines ~file:path (List.rev !lines)

let quote_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** [to_string rel] renders a relation as CSV text (NULL = empty cell). *)
let to_string rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map quote_field (Schema.names (Relation.schema rel))));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      let cells =
        List.map
          (fun v -> if Value.is_null v then "" else quote_field (Value.to_string v))
          (Tuple.to_list t)
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    (Relation.tuples rel);
  Buffer.contents buf

(** [save path rel] writes a relation to a CSV file. *)
let save path rel =
  let oc = open_out path in
  output_string oc (to_string rel);
  close_out oc
