(** Bag relations: a schema plus a multiset of tuples.

    The multiset is a list in which a tuple's multiplicity is its number
    of occurrences, mirroring the bag algebra of Figure 1 in the paper.
    Both bag and duplicate-removing (set) variants of the operations are
    provided.

    The per-tuple multiplicity table is computed lazily and cached in
    the relation (relations are immutable once built), so repeated
    multiplicity queries — the access pattern of the bag set-operations
    and of [equal_bag] — pay the O(n) table build once.

    The lazy caches are domain-safe: the memo fields are [Atomic.t]
    (so publishing a fully built table establishes the happens-before
    edge a concurrent reader needs to see the table's internals), and
    initialization is serialized by a mutex so two domains racing on
    first use cannot both build — the vectorized engine's parallel
    probe workers read these caches concurrently. *)

type t = {
  rel_id : int;
      (* process-unique, for stable race-detector location names *)
  schema : Schema.t;
  rows_memo : Tuple.t list option Atomic.t;
      (* the tuple list; [None] until the producer has run *)
  producer : (unit -> Tuple.t list) option;
      (* late materialization: how to build the rows on first use.
         [None] iff [rows_memo] was seeded eagerly. *)
  known_card : int option;
      (* cardinality promised by a lazy producer, so [cardinality]
         never forces the rows *)
  counts_memo : int Tuple.Tbl.t option Atomic.t;
      (* lazily built multiplicity table; never mutated after exposure *)
  nullable_memo : bool array option Atomic.t;
      (* lazily built per-column "contains a NULL" flags *)
}

(* One lock for all relations: memo initialization is rare (once per
   relation per cache) and short, so contention is negligible and the
   per-relation footprint stays two words. *)
let memo_lock = Mutex.create ()

(* Relation ids only feed [Race] location names, so a contended
   fetch-and-add per construction is acceptable. *)
let next_id = Atomic.make 0

exception Relation_error of string

let relation_error fmt = Format.kasprintf (fun s -> raise (Relation_error s)) fmt

(** [make_unchecked schema tuples] builds a relation without the
    per-tuple arity check — for operators (e.g. the compiled engine)
    whose output arity is known correct by construction. *)
let make_unchecked schema tuples =
  {
    rel_id = Atomic.fetch_and_add next_id 1;
    schema;
    rows_memo = Atomic.make (Some tuples);
    producer = None;
    known_card = None;
    counts_memo = Atomic.make None;
    nullable_memo = Atomic.make None;
  }

let make schema tuples =
  List.iter
    (fun tup ->
      if Tuple.arity tup <> Schema.arity schema then
        relation_error "tuple arity %d does not match schema arity %d"
          (Tuple.arity tup) (Schema.arity schema))
    tuples;
  make_unchecked schema tuples

(** [make_lazy ~cardinality schema produce] — a relation whose rows are
    built by [produce ()] on first access (late materialization: the
    vectorized engine keeps results in batch form and only transposes
    to boxed rows if a consumer actually reads them). [cardinality]
    must equal the length of the produced list; it is served without
    forcing the rows. [produce] must be pure — it may run once on any
    domain, and the result is cached. *)
let make_lazy ~cardinality schema produce =
  {
    rel_id = Atomic.fetch_and_add next_id 1;
    schema;
    rows_memo = Atomic.make None;
    producer = Some produce;
    known_card = Some cardinality;
    counts_memo = Atomic.make None;
    nullable_memo = Atomic.make None;
  }

let empty schema = make_unchecked schema []
let schema r = r.schema

(** [of_values schema rows] builds a relation from value-list rows. *)
let of_values schema rows = make schema (List.map Tuple.of_list rows)

(** {1 Multiplicity bookkeeping} *)

(* Double-checked lazy initialization: the common path is one atomic
   load; a miss takes the lock, re-checks, builds privately and only
   then publishes — so concurrent readers either see [None] or a
   completely built value, never a table under construction.

   Race instrumentation (armed runs only): the built table is a plain
   mutable structure published through the [Atomic] cell, so the writer
   releases the cell's edge before [Atomic.set] and readers acquire it
   on a hit — the detector then proves every reader ordered after the
   build, and a memo published without that fence shows up as a race. *)
let memo_loc r name = "relation[" ^ string_of_int r.rel_id ^ "]." ^ name

let memo_init r name (cell : 'a option Atomic.t) (build : unit -> 'a) : 'a =
  match Atomic.get cell with
  | Some v ->
      if Race.is_armed () then begin
        let loc = memo_loc r name in
        Race.acquire loc;
        Race.read loc
      end;
      v
  | None ->
      Race.with_lock memo_lock "relation.memo_lock" (fun () ->
          match Atomic.get cell with
          | Some v ->
              if Race.is_armed () then begin
                let loc = memo_loc r name in
                Race.acquire loc;
                Race.read loc
              end;
              v
          | None ->
              let v = build () in
              if Race.is_armed () then begin
                let loc = memo_loc r name in
                Race.write loc;
                Race.release loc
              end;
              Atomic.set cell (Some v);
              v)

let tuples r =
  memo_init r "rows_memo" r.rows_memo (fun () ->
      match r.producer with
      | Some produce -> produce ()
      | None -> assert false (* eager relations seed [rows_memo] *))

let cardinality r =
  match r.known_card with
  | Some n -> n
  | None -> List.length (tuples r)

let is_empty r = cardinality r = 0

(** [counts r] maps each distinct tuple to its multiplicity; computed
    on first use and cached. Callers must not mutate the result. *)
let counts r =
  (* Force the rows before taking the memo lock — [tuples] uses the
     same lock, and it is not recursive. *)
  let rows = tuples r in
  memo_init r "counts_memo" r.counts_memo (fun () ->
      let tbl = Tuple.Tbl.create (max 16 (cardinality r)) in
      List.iter
        (fun t ->
          match Tuple.Tbl.find_opt tbl t with
          | Some n -> Tuple.Tbl.replace tbl t (n + 1)
          | None -> Tuple.Tbl.add tbl t 1)
        rows;
      tbl)

let multiplicity r t =
  match Tuple.Tbl.find_opt (counts r) t with Some n -> n | None -> 0

(** [nullable_columns r] flags, per column, whether any tuple holds a
    NULL there; computed on first use and cached. Callers must not
    mutate the result. *)
let nullable_columns r =
  (* Force the rows before taking the memo lock (see [counts]). *)
  let rows = tuples r in
  memo_init r "nullable_memo" r.nullable_memo (fun () ->
      let flags = Array.make (Schema.arity r.schema) false in
      List.iter
        (fun t ->
          Array.iteri
            (fun i v -> if Value.is_null v then flags.(i) <- true)
            t)
        rows;
      flags)

let column_nullable r i = (nullable_columns r).(i)

let mem r t = List.exists (Tuple.equal t) (tuples r)

(** [distinct r] removes duplicates, keeping first occurrences in order. *)
let distinct r =
  let seen = Tuple.Tbl.create (max 16 (cardinality r)) in
  let keep =
    List.filter
      (fun t ->
        if Tuple.Tbl.mem seen t then false
        else begin
          Tuple.Tbl.add seen t ();
          true
        end)
      (tuples r)
  in
  make_unchecked r.schema keep


let check_compatible op a b =
  if not (Schema.equal_types a.schema b.schema) then
    relation_error "%s: incompatible schemas %s vs %s" op
      (Schema.to_string a.schema) (Schema.to_string b.schema)

(** {1 Bag set-operations (Figure 1, right column)} *)

let union_bag a b =
  check_compatible "union" a b;
  make_unchecked a.schema (tuples a @ tuples b)

let inter_bag a b =
  check_compatible "intersect" a b;
  let cb = counts b in
  let taken = Tuple.Tbl.create 16 in
  let keep =
    List.filter
      (fun t ->
        let avail = match Tuple.Tbl.find_opt cb t with Some n -> n | None -> 0 in
        let used = match Tuple.Tbl.find_opt taken t with Some n -> n | None -> 0 in
        if used < avail then begin
          Tuple.Tbl.replace taken t (used + 1);
          true
        end
        else false)
      (tuples a)
  in
  make_unchecked a.schema keep

let diff_bag a b =
  check_compatible "except" a b;
  let cb = counts b in
  let removed = Tuple.Tbl.create 16 in
  let keep =
    List.filter
      (fun t ->
        let avail = match Tuple.Tbl.find_opt cb t with Some n -> n | None -> 0 in
        let used = match Tuple.Tbl.find_opt removed t with Some n -> n | None -> 0 in
        if used < avail then begin
          Tuple.Tbl.replace removed t (used + 1);
          false
        end
        else true)
      (tuples a)
  in
  make_unchecked a.schema keep

(** {1 Set semantics variants (Figure 1, left column)} *)

let union_set a b = distinct (union_bag a b)
let inter_set a b = distinct (inter_bag a b)

let diff_set a b =
  check_compatible "except" a b;
  let cb = counts b in
  distinct
    (make_unchecked a.schema
       (List.filter (fun t -> not (Tuple.Tbl.mem cb t)) (tuples a)))

(** {1 Comparison} *)

(** Bag equality: same schema types, same tuples with same multiplicities. *)
let equal_bag a b =
  Schema.equal_types a.schema b.schema
  && cardinality a = cardinality b
  &&
  let ca = counts a and cb = counts b in
  let ok = ref true in
  Tuple.Tbl.iter
    (fun t n -> if Tuple.Tbl.find_opt cb t <> Some n then ok := false)
    ca;
  !ok

(** Set equality: same distinct tuples, multiplicities ignored. *)
let equal_set a b =
  Schema.equal_types a.schema b.schema
  &&
  let ca = counts a and cb = counts b in
  Tuple.Tbl.length ca = Tuple.Tbl.length cb
  &&
  let ok = ref true in
  Tuple.Tbl.iter (fun t _ -> if not (Tuple.Tbl.mem cb t) then ok := false) ca;
  !ok

(** Canonical sorted tuple list — handy for deterministic test output. *)
let sorted_tuples r = List.sort Tuple.compare (tuples r)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    (Format.pp_print_list Tuple.pp)
    (sorted_tuples r)
