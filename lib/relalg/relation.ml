(** Bag relations: a schema plus a multiset of tuples.

    The multiset is a list in which a tuple's multiplicity is its number
    of occurrences, mirroring the bag algebra of Figure 1 in the paper.
    Both bag and duplicate-removing (set) variants of the operations are
    provided.

    The per-tuple multiplicity table is computed lazily and cached in
    the relation (relations are immutable once built), so repeated
    multiplicity queries — the access pattern of the bag set-operations
    and of [equal_bag] — pay the O(n) table build once. *)

type t = {
  schema : Schema.t;
  tuples : Tuple.t list;
  mutable counts_memo : int Tuple.Tbl.t option;
      (* lazily built multiplicity table; never mutated after exposure *)
  mutable nullable_memo : bool array option;
      (* lazily built per-column "contains a NULL" flags *)
}

exception Relation_error of string

let relation_error fmt = Format.kasprintf (fun s -> raise (Relation_error s)) fmt

(** [make_unchecked schema tuples] builds a relation without the
    per-tuple arity check — for operators (e.g. the compiled engine)
    whose output arity is known correct by construction. *)
let make_unchecked schema tuples =
  { schema; tuples; counts_memo = None; nullable_memo = None }

let make schema tuples =
  List.iter
    (fun tup ->
      if Tuple.arity tup <> Schema.arity schema then
        relation_error "tuple arity %d does not match schema arity %d"
          (Tuple.arity tup) (Schema.arity schema))
    tuples;
  make_unchecked schema tuples

let empty schema = make_unchecked schema []
let schema r = r.schema
let tuples r = r.tuples
let cardinality r = List.length r.tuples
let is_empty r = r.tuples = []

(** [of_values schema rows] builds a relation from value-list rows. *)
let of_values schema rows = make schema (List.map Tuple.of_list rows)

(** {1 Multiplicity bookkeeping} *)

(** [counts r] maps each distinct tuple to its multiplicity; computed
    on first use and cached. Callers must not mutate the result. *)
let counts r =
  match r.counts_memo with
  | Some tbl -> tbl
  | None ->
      let tbl = Tuple.Tbl.create (max 16 (cardinality r)) in
      List.iter
        (fun t ->
          match Tuple.Tbl.find_opt tbl t with
          | Some n -> Tuple.Tbl.replace tbl t (n + 1)
          | None -> Tuple.Tbl.add tbl t 1)
        r.tuples;
      r.counts_memo <- Some tbl;
      tbl

let multiplicity r t =
  match Tuple.Tbl.find_opt (counts r) t with Some n -> n | None -> 0

(** [nullable_columns r] flags, per column, whether any tuple holds a
    NULL there; computed on first use and cached. Callers must not
    mutate the result. *)
let nullable_columns r =
  match r.nullable_memo with
  | Some flags -> flags
  | None ->
      let flags = Array.make (Schema.arity r.schema) false in
      List.iter
        (fun t ->
          Array.iteri
            (fun i v -> if Value.is_null v then flags.(i) <- true)
            t)
        r.tuples;
      r.nullable_memo <- Some flags;
      flags

let column_nullable r i = (nullable_columns r).(i)

let mem r t = List.exists (Tuple.equal t) r.tuples

(** [distinct r] removes duplicates, keeping first occurrences in order. *)
let distinct r =
  let seen = Tuple.Tbl.create (max 16 (cardinality r)) in
  let keep =
    List.filter
      (fun t ->
        if Tuple.Tbl.mem seen t then false
        else begin
          Tuple.Tbl.add seen t ();
          true
        end)
      r.tuples
  in
  make_unchecked r.schema keep


let check_compatible op a b =
  if not (Schema.equal_types a.schema b.schema) then
    relation_error "%s: incompatible schemas %s vs %s" op
      (Schema.to_string a.schema) (Schema.to_string b.schema)

(** {1 Bag set-operations (Figure 1, right column)} *)

let union_bag a b =
  check_compatible "union" a b;
  make_unchecked a.schema (a.tuples @ b.tuples)

let inter_bag a b =
  check_compatible "intersect" a b;
  let cb = counts b in
  let taken = Tuple.Tbl.create 16 in
  let keep =
    List.filter
      (fun t ->
        let avail = match Tuple.Tbl.find_opt cb t with Some n -> n | None -> 0 in
        let used = match Tuple.Tbl.find_opt taken t with Some n -> n | None -> 0 in
        if used < avail then begin
          Tuple.Tbl.replace taken t (used + 1);
          true
        end
        else false)
      a.tuples
  in
  make_unchecked a.schema keep

let diff_bag a b =
  check_compatible "except" a b;
  let cb = counts b in
  let removed = Tuple.Tbl.create 16 in
  let keep =
    List.filter
      (fun t ->
        let avail = match Tuple.Tbl.find_opt cb t with Some n -> n | None -> 0 in
        let used = match Tuple.Tbl.find_opt removed t with Some n -> n | None -> 0 in
        if used < avail then begin
          Tuple.Tbl.replace removed t (used + 1);
          false
        end
        else true)
      a.tuples
  in
  make_unchecked a.schema keep

(** {1 Set semantics variants (Figure 1, left column)} *)

let union_set a b = distinct (union_bag a b)
let inter_set a b = distinct (inter_bag a b)

let diff_set a b =
  check_compatible "except" a b;
  let cb = counts b in
  distinct
    (make_unchecked a.schema
       (List.filter (fun t -> not (Tuple.Tbl.mem cb t)) a.tuples))

(** {1 Comparison} *)

(** Bag equality: same schema types, same tuples with same multiplicities. *)
let equal_bag a b =
  Schema.equal_types a.schema b.schema
  && cardinality a = cardinality b
  &&
  let ca = counts a and cb = counts b in
  let ok = ref true in
  Tuple.Tbl.iter
    (fun t n -> if Tuple.Tbl.find_opt cb t <> Some n then ok := false)
    ca;
  !ok

(** Set equality: same distinct tuples, multiplicities ignored. *)
let equal_set a b =
  Schema.equal_types a.schema b.schema
  &&
  let ca = counts a and cb = counts b in
  Tuple.Tbl.length ca = Tuple.Tbl.length cb
  &&
  let ok = ref true in
  Tuple.Tbl.iter (fun t _ -> if not (Tuple.Tbl.mem cb t) then ok := false) ca;
  !ok

(** Canonical sorted tuple list — handy for deterministic test output. *)
let sorted_tuples r = List.sort Tuple.compare r.tuples

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    (Format.pp_print_list Tuple.pp)
    (sorted_tuples r)
