(** Symbolic 3VL predicate solver — see symbolic.mli for the contract.

    Architecture: a predicate question ("can [e] be TRUE?") is compiled
    into a classical proposition over theory literals by tracking, per
    sub-expression, the three propositions "evaluates to TRUE" /
    "to FALSE" / "to NULL" simultaneously ({!tv3} — one recursion, so
    shared subtrees stay shared). A backtracking search ({!solve})
    explores the proposition; asserting a literal updates a persistent
    constraint state (interval + congruence + null facts) and conflicts
    prune the branch. Only genuine contradictions conflict, so an
    exhausted search is a real unsatisfiability proof; a surviving
    branch may be spurious (opaque atoms are freer than the expressions
    they stand for). Fuel bounds both compilation and search; running
    out raises {!Give_up} and the query answers [Unknown]. *)

open Algebra

type verdict = Proved | Refuted | Unknown

let verdict_to_string = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Unknown -> "unknown"

type ctx = {
  c_fuel : int;
  c_types : string -> Vtype.t option;
  c_notnull : string list;
}

let default_fuel = 4096

let ctx ?(fuel = default_fuel) ?(types = fun _ -> None) ?(notnull = []) () =
  { c_fuel = fuel; c_types = types; c_notnull = notnull }

(* Raised when the goal leaves the decidable fragment (incomparable
   bound types) or exhausts its fuel; the query answers [Unknown]. *)
exception Give_up

(* Raised by literal assertion on a genuine contradiction; caught at
   the branch point in [solve]. *)
exception Conflict

let burn fuel = decr fuel; if !fuel <= 0 then raise Give_up

(* ------------------------------------------------------------------ *)
(* Constant folding (pure — deliberately independent of [Simplify],    *)
(* whose rules carry test-only mutation hooks)                         *)
(* ------------------------------------------------------------------ *)

let apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Mod -> Value.modulo a b
  | Concat -> Value.concat a b

(* The value of a constant expression; [None] if it mentions a column
   or its evaluation raises (the error must stay a runtime error). *)
let rec static_value (e : expr) : Value.t option =
  match e with
  | Const v -> Some v
  | TypedNull _ -> Some Value.Null
  | Binop (op, a, b) -> (
      match (static_value a, static_value b) with
      | Some va, Some vb -> (
          match apply_binop op va vb with
          | v -> Some v
          | exception (Value.Type_clash _ | Division_by_zero) -> None)
      | _ -> None)
  | Not a -> Option.map Value.not3 (static_value a)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Literals and propositions                                           *)
(* ------------------------------------------------------------------ *)

type tv = T3 | F3 | U3

type term = TAttr of string | TConst of Value.t

type lit =
  | LCmp of cmpop * term * term
      (* both operands non-null and the comparison holds; the
         operator is never [EqNull] (desugared at compilation) *)
  | LNull of string
  | LNotNull of string
  | LOpaque of expr * tv
      (* an out-of-theory sub-expression pinned to a truth value;
         keyed by structural equality *)

type prop =
  | PTrue
  | PFalse
  | PLit of lit
  | PAnd of prop * prop
  | POr of prop * prop

(* Structural equality tolerant of closures buried in [TableExpr]
   relations inside sublink plans. *)
let safe_equal (a : expr) (b : expr) =
  try a = b with Invalid_argument _ -> false

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Geq
  | Leq -> Gt
  | Gt -> Leq
  | Geq -> Lt
  | EqNull -> invalid_arg "Symbolic.negate_cmp: EqNull"

let flip_cmp = function
  | Lt -> Gt
  | Leq -> Geq
  | Gt -> Lt
  | Geq -> Leq
  | (Eq | Neq) as op -> op
  | EqNull -> invalid_arg "Symbolic.flip_cmp: EqNull"

(* ------------------------------------------------------------------ *)
(* Compilation: pos/neg/unk propositions per sub-expression            *)
(* ------------------------------------------------------------------ *)

let of_truth (v : Value.t) =
  match v with
  | Value.Bool true -> (PTrue, PFalse, PFalse)
  | Value.Bool false -> (PFalse, PTrue, PFalse)
  | Value.Null -> (PFalse, PFalse, PTrue)
  | _ -> raise Not_found (* non-boolean constant condition: opaque *)

let term_of (e : expr) : term option =
  match e with
  | Attr n -> Some (TAttr n)
  | _ -> Option.map (fun v -> TConst v) (static_value e)

let t_null = function
  | TConst v -> if Value.is_null v then PTrue else PFalse
  | TAttr n -> PLit (LNull n)

let t_notnull = function
  | TConst v -> if Value.is_null v then PFalse else PTrue
  | TAttr n -> PLit (LNotNull n)

let rec tv3 fuel (e : expr) : prop * prop * prop =
  burn fuel;
  let opaque () = (PLit (LOpaque (e, T3)), PLit (LOpaque (e, F3)), PLit (LOpaque (e, U3))) in
  match e with
  | Const v -> (try of_truth v with Not_found -> opaque ())
  | TypedNull _ -> (PFalse, PFalse, PTrue)
  | Attr n ->
      (* a boolean column used directly as a condition *)
      ( PAnd (PLit (LNotNull n), PLit (LOpaque (e, T3))),
        PAnd (PLit (LNotNull n), PLit (LOpaque (e, F3))),
        PLit (LNull n) )
  | And (a, b) ->
      let pa, na, ua = tv3 fuel a and pb, nb, ub = tv3 fuel b in
      ( PAnd (pa, pb),
        POr (na, nb),
        POr (PAnd (ua, POr (pb, ub)), PAnd (ub, POr (pa, ua))) )
  | Or (a, b) ->
      let pa, na, ua = tv3 fuel a and pb, nb, ub = tv3 fuel b in
      ( POr (pa, pb),
        PAnd (na, nb),
        POr (PAnd (ua, POr (nb, ub)), PAnd (ub, POr (na, ua))) )
  | Not a ->
      let pa, na, ua = tv3 fuel a in
      (na, pa, ua)
  | IsNull inner -> (
      match static_value inner with
      | Some v ->
          if Value.is_null v then (PTrue, PFalse, PFalse)
          else (PFalse, PTrue, PFalse)
      | None -> (
          match inner with
          | Attr n -> (PLit (LNull n), PLit (LNotNull n), PFalse)
          | _ -> (PLit (LOpaque (e, T3)), PLit (LOpaque (e, F3)), PFalse)))
  | Cmp (op, a, b) -> (
      match (static_value a, static_value b) with
      | Some va, Some vb -> (
          match Eval.cmp3 op va vb with
          | v -> (try of_truth v with Not_found -> opaque ())
          | exception Value.Type_clash _ -> opaque ())
      | _ -> (
          match (term_of a, term_of b) with
          | Some ta, Some tb when op = EqNull ->
              (* =n is two-valued: TRUE iff both NULL or both non-null
                 and equal *)
              ( POr (PAnd (t_null ta, t_null tb), PLit (LCmp (Eq, ta, tb))),
                POr
                  ( PAnd (t_null ta, t_notnull tb),
                    POr
                      ( PAnd (t_notnull ta, t_null tb),
                        PLit (LCmp (Neq, ta, tb)) ) ),
                PFalse )
          | Some ta, Some tb ->
              ( PLit (LCmp (op, ta, tb)),
                PLit (LCmp (negate_cmp op, ta, tb)),
                POr (t_null ta, t_null tb) )
          | _ -> opaque ()))
  | InList (x, es) when List.length es <= 8 ->
      (* x IN (e1..ek) evaluates as FALSE or3 (x = e1) or3 ... *)
      tv3 fuel
        (List.fold_left
           (fun acc el -> Or (acc, Cmp (Eq, x, el)))
           (Const Value.vfalse) es)
  | Like (arg, pattern) -> (
      match static_value arg with
      | Some (Value.String s) ->
          if Builtin.like_match ~pattern s then (PTrue, PFalse, PFalse)
          else (PFalse, PTrue, PFalse)
      | Some Value.Null -> (PFalse, PFalse, PTrue)
      | _ -> opaque ())
  | Binop _ | Case _ | InList _ | FunCall _ | Sublink _ -> opaque ()

(* ------------------------------------------------------------------ *)
(* Constraint state                                                    *)
(* ------------------------------------------------------------------ *)

module SM = Map.Make (String)

type nullity = NMust | NMustNot | NMay

type cls = {
  k_lo : (Value.t * bool) option;  (* bound value, strict? *)
  k_hi : (Value.t * bool) option;
  k_neqs : Value.t list;  (* constants the class is disequal to *)
  k_null : nullity;
  k_int : bool;  (* every member column is statically TInt *)
}

type state = {
  s_parent : string SM.t;  (* union-find: non-representatives only *)
  s_classes : cls SM.t;  (* by representative *)
  s_diseq : (string * string) list;  (* column pairs asserted disequal *)
  s_opaques : (expr * tv) list;
}

let init_state =
  { s_parent = SM.empty; s_classes = SM.empty; s_diseq = []; s_opaques = [] }

let rec find st n =
  match SM.find_opt n st.s_parent with None -> n | Some p -> find st p

let default_cls c n =
  {
    k_lo = None;
    k_hi = None;
    k_neqs = [];
    k_null = (if List.mem n c.c_notnull then NMustNot else NMay);
    k_int = c.c_types n = Some Vtype.TInt;
  }

let cls_of c st rep =
  match SM.find_opt rep st.s_classes with
  | Some k -> k
  | None -> default_cls c rep

let set_cls st rep k = { st with s_classes = SM.add rep k st.s_classes }

(* Comparison of two non-null bound values; incomparable types leave
   the fragment. *)
let vcmp a b =
  match Value.cmp_sql a b with Some c -> c | None -> raise Give_up

(* Integer bound tightening: a strict bound on an int column moves to
   the adjacent inclusive bound, enabling emptiness detection on
   e.g. [x > 1 AND x < 2]. *)
let tighten_lo is_int (v, strict) =
  match v with
  | Value.Int n when is_int && strict && n < max_int -> (Value.Int (n + 1), false)
  | _ -> (v, strict)

let tighten_hi is_int (v, strict) =
  match v with
  | Value.Int n when is_int && strict && n > min_int -> (Value.Int (n - 1), false)
  | _ -> (v, strict)

(* The tighter of two lower (resp. upper) bounds. *)
let max_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, sa), Some (vb, sb) ->
      let c = vcmp va vb in
      if c > 0 then a
      else if c < 0 then b
      else Some (va, sa || sb)

let min_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (va, sa), Some (vb, sb) ->
      let c = vcmp va vb in
      if c < 0 then a
      else if c > 0 then b
      else Some (va, sa || sb)

let pinned k =
  match (k.k_lo, k.k_hi) with
  | Some (v, false), Some (w, false) when vcmp v w = 0 -> Some v
  | _ -> None

(* Genuine-contradiction check after an interval/disequality update. *)
let check_cls k =
  (match (k.k_lo, k.k_hi) with
  | Some (lo, slo), Some (hi, shi) ->
      let c = vcmp lo hi in
      if c > 0 || (c = 0 && (slo || shi)) then raise Conflict
  | _ -> ());
  (match pinned k with
  | Some v -> if List.exists (fun w -> vcmp w v = 0) k.k_neqs then raise Conflict
  | None -> ());
  k

let assert_null c st n =
  let rep = find st n in
  let k = cls_of c st rep in
  match k.k_null with
  | NMustNot -> raise Conflict
  | NMust -> st
  | NMay -> set_cls st rep { k with k_null = NMust }

let assert_notnull c st n =
  let rep = find st n in
  let k = cls_of c st rep in
  match k.k_null with
  | NMust -> raise Conflict
  | NMustNot -> st
  | NMay -> set_cls st rep { k with k_null = NMustNot }

(* [op] between a column (class [rep]) and a non-null constant [v];
   non-null of the column has already been asserted. *)
let assert_attr_const c st rep op v =
  let k = cls_of c st rep in
  let k =
    match op with
    | Eq ->
        if List.exists (fun w -> vcmp w v = 0) k.k_neqs then raise Conflict;
        {
          k with
          k_lo = max_lo k.k_lo (Some (v, false));
          k_hi = min_hi k.k_hi (Some (v, false));
        }
    | Neq ->
        (match pinned k with
        | Some w when vcmp w v = 0 -> raise Conflict
        | _ -> ());
        { k with k_neqs = v :: k.k_neqs }
    | Lt -> { k with k_hi = min_hi k.k_hi (Some (tighten_hi k.k_int (v, true))) }
    | Leq -> { k with k_hi = min_hi k.k_hi (Some (v, false)) }
    | Gt -> { k with k_lo = max_lo k.k_lo (Some (tighten_lo k.k_int (v, true))) }
    | Geq -> { k with k_lo = max_lo k.k_lo (Some (v, false)) }
    | EqNull -> assert false
  in
  set_cls st rep (check_cls k)

let diseq_conflict st =
  if List.exists (fun (a, b) -> String.equal (find st a) (find st b)) st.s_diseq
  then raise Conflict

let union c st rx ry =
  if String.equal rx ry then st
  else begin
    let kx = cls_of c st rx and ky = cls_of c st ry in
    let merged =
      check_cls
        {
          k_lo = max_lo kx.k_lo ky.k_lo;
          k_hi = min_hi kx.k_hi ky.k_hi;
          k_neqs = kx.k_neqs @ ky.k_neqs;
          k_null = NMustNot;  (* equality asserted TRUE: both non-null *)
          k_int = kx.k_int && ky.k_int;
        }
    in
    let st =
      {
        st with
        s_parent = SM.add ry rx st.s_parent;
        s_classes = SM.add rx merged (SM.remove ry st.s_classes);
      }
    in
    diseq_conflict st;
    st
  end

let assert_attr_attr c st x y op =
  let rx = find st x and ry = find st y in
  let kx = cls_of c st rx and ky = cls_of c st ry in
  match op with
  | Eq -> union c st rx ry
  | Neq -> (
      if String.equal rx ry then raise Conflict;
      match (pinned kx, pinned ky) with
      | Some v, Some w when vcmp v w = 0 -> raise Conflict
      | _ -> { st with s_diseq = (x, y) :: st.s_diseq })
  | (Lt | Gt) when String.equal rx ry -> raise Conflict
  | (Leq | Geq) when String.equal rx ry -> st
  | (Lt | Leq | Gt | Geq) as op -> (
      (* order constraints across classes: only the pinned cases feed
         the interval domain; the rest is (soundly) ignored *)
      match (pinned kx, pinned ky) with
      | _, Some w -> assert_attr_const c st rx op w
      | Some v, _ -> assert_attr_const c st ry (flip_cmp op) v
      | None, None -> st)
  | EqNull -> assert false

let assert_cmp c st op t1 t2 =
  match (t1, t2) with
  | TConst a, TConst b -> (
      (* both operands non-null and the comparison holds *)
      if Value.is_null a || Value.is_null b then raise Conflict;
      match Eval.cmp3 op a b with
      | Value.Bool true -> st
      | Value.Bool false -> raise Conflict
      | _ -> raise Conflict
      | exception Value.Type_clash _ -> raise Give_up)
  | TAttr n, TConst v | TConst v, TAttr n ->
      if Value.is_null v then raise Conflict;
      let op = match t1 with TConst _ -> flip_cmp op | _ -> op in
      let st = assert_notnull c st n in
      assert_attr_const c st (find st n) op v
  | TAttr x, TAttr y ->
      let st = assert_notnull c st x in
      let st = assert_notnull c st y in
      assert_attr_attr c st x y op

let assert_opaque st e tv =
  match List.find_opt (fun (e', _) -> safe_equal e e') st.s_opaques with
  | Some (_, tv') -> if tv = tv' then st else raise Conflict
  | None -> { st with s_opaques = (e, tv) :: st.s_opaques }

let assert_lit c st = function
  | LNull n -> assert_null c st n
  | LNotNull n -> assert_notnull c st n
  | LCmp (op, t1, t2) -> assert_cmp c st op t1 t2
  | LOpaque (e, tv) -> assert_opaque st e tv

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* [solve c fuel st goals]: is the conjunction of [goals] consistent
   with state [st]? [false] only when every branch hit a genuine
   conflict — a real unsatisfiability proof. *)
let rec solve c fuel st (goals : prop list) : bool =
  burn fuel;
  match goals with
  | [] -> true
  | PTrue :: rest -> solve c fuel st rest
  | PFalse :: _ -> false
  | PAnd (a, b) :: rest -> solve c fuel st (a :: b :: rest)
  | POr (a, b) :: rest ->
      solve c fuel st (a :: rest) || solve c fuel st (b :: rest)
  | PLit l :: rest -> (
      match assert_lit c st l with
      | st' -> solve c fuel st' rest
      | exception Conflict -> false)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* [Some true]: a consistent abstract assignment exists; [Some false]:
   proved unsatisfiable; [None]: out of fuel / fragment. *)
let consistent c (mk : int ref -> prop list) : bool option =
  let fuel = ref c.c_fuel in
  match solve c fuel init_state (mk fuel) with
  | sat -> Some sat
  | exception Give_up -> None

let satisfiable c e =
  match
    consistent c (fun fuel ->
        let p, _, _ = tv3 fuel e in
        [ p ])
  with
  | Some true -> Proved
  | Some false -> Refuted
  | None -> Unknown

let falsifiable c e =
  match
    consistent c (fun fuel ->
        let _, n, _ = tv3 fuel e in
        [ n ])
  with
  | Some true -> Proved
  | Some false -> Refuted
  | None -> Unknown

let never_true c e =
  match satisfiable c e with
  | Proved -> Refuted
  | Refuted -> Proved
  | Unknown -> Unknown

let implies c a b =
  match
    consistent c (fun fuel ->
        let pa, _, _ = tv3 fuel a in
        let _, nb, ub = tv3 fuel b in
        [ pa; POr (nb, ub) ])
  with
  | Some true -> Refuted
  | Some false -> Proved
  | None -> Unknown

let always_true c e =
  match
    consistent c (fun fuel ->
        let _, n, u = tv3 fuel e in
        [ POr (n, u) ])
  with
  | Some true -> Refuted
  | Some false -> Proved
  | None -> Unknown

let equiv c a b =
  match (implies c a b, implies c b a) with
  | Proved, Proved -> Proved
  | Refuted, _ | _, Refuted -> Refuted
  | _ -> Unknown

let simplify c e =
  match never_true c e with
  | Proved -> Const Value.vfalse
  | Refuted | Unknown -> (
      let cs = conjuncts e in
      let rec drop kept = function
        | [] -> List.rev kept
        | x :: rest ->
            let others = List.rev_append kept rest in
            if implies c (conj others) x = Proved then drop kept rest
            else drop (x :: kept) rest
      in
      match drop [] cs with
      | [] -> Const Value.vtrue
      | cs' when List.length cs' = List.length cs -> e
      | cs' -> conj cs')
