(** Static plan diagnostics: a rule registry over {!Algebra.query}.

    The linter walks a plan once, building the same innermost-first
    scope stack the type checker and the compiled engine use
    ({!Typecheck.env}), and runs every registered rule against each
    operator {e site}. Diagnostics carry a severity, the rule name, an
    operator path such as [Project/Join[left]/Select] and a message, so
    a rewrite or optimizer defect is reported at the operator that
    exhibits it instead of as a wrong answer deep in a test run.

    The provenance-contract rules over rewritten plans live in
    [Core.Provcheck] and reuse this module's site walker and
    diagnostic type. *)

type severity = Info | Warning | Error

type diagnostic = {
  severity : severity;
  rule : string;  (** registry name of the rule that fired *)
  path : string list;  (** operator path, root first *)
  message : string;
}

val severity_to_string : severity -> string

(** ["Project/Join[left]/Select"]. An empty path renders as ["plan"]. *)
val path_to_string : string list -> string

(** ["error[rule] at Project/Select: message"]. *)
val diagnostic_to_string : diagnostic -> string

(** Build a diagnostic (used by [Core.Provcheck] to report through the
    same channel). *)
val diag : severity -> rule:string -> path:string list -> string -> diagnostic

(** {1 Sites} — the shared plan walk *)

(** One operator of the plan, with everything a rule needs: its path,
    the scope stack of the enclosing sublinks ([s_outer]), the schemas
    of its direct inputs ([s_inputs]), the environment its expressions
    are checked under ([s_env] = concatenated input schemas ::
    [s_outer]) and its labelled root expressions. [None] environments
    mean schema inference failed somewhere below or in an enclosing
    scope; rules needing names/types skip such sites (the root cause is
    reported where inference still succeeds). *)
type site = {
  s_path : string list;
  s_outer : Schema.t list option;
  s_inputs : Schema.t list option;
  s_env : Typecheck.env option;
  s_query : Algebra.query;
  s_exprs : (string * Algebra.expr) list;
}

(** Every operator of [q], root first, including operators inside
    sublink queries (path segment [sublink[k]]). *)
val sites : Database.t -> Algebra.query -> site list

(** {1 The registry} *)

(** [(name, doc)] of every registered rule, in report order. *)
val rules : (string * string) list

(** Rule names that make sense on provenance-rewritten plans: the
    rewrite-support rules are excluded, since a rewritten plan
    legitimately contains constructs (sublinks in outer-join
    conditions) that the rewriter could not process {e again}. *)
val plan_rules : string list

(** {1 Running} *)

(** [lint ?rules db q] runs the registered rules (restricted to
    [rules] when given) over every site of [q], severest first. *)
val lint : ?rules:string list -> Database.t -> Algebra.query -> diagnostic list

(** Error-severity diagnostics only. *)
val errors : diagnostic list -> diagnostic list

exception Lint_error of diagnostic list

(** [fail_on ?werror diags] raises {!Lint_error} with the offending
    subset when [diags] contains an error — or, with [~werror:true], a
    warning. *)
val fail_on : ?werror:bool -> diagnostic list -> unit

(** [report diags] renders one diagnostic per line. *)
val report : diagnostic list -> string
