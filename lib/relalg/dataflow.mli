(** Plan dataflow: bottom-up per-operator fact analyses over
    {!Algebra.query} — nullability, attribute lineage and cardinality
    bounds — memoized per physical subplan and sublink-aware (facts flow
    into sublink queries through an environment of enclosing-scope
    facts, so correlated references resolve like the evaluator's).

    All analyses are total on broken plans: unknown relations or
    attributes yield top elements (maybe-null, empty lineage, unbounded
    cardinality) instead of raising. *)

(** Sets of [(relation, column)] base-column sources. *)
module Deps : Set.S with type elt = string * string

(** {1 Facts} *)

type null_fact = {
  n_names : string list;  (** output attribute names, in schema order *)
  n_maybe : bool list;  (** pointwise: may this attribute be NULL? *)
}

type lin_fact = {
  l_names : string list;
  l_deps : Deps.t list;  (** pointwise base-column dependency sets *)
}

type bound = Fin of int | Inf

type card = { c_lo : int; c_hi : bound }
(** Row-count interval; [c_lo] is clamped to {0, 1} (zero/one/many). *)

val pp_card : Format.formatter -> card -> unit

(** Direct input queries of an operator, in schema order (sublink
    queries excluded — they live in expressions and are analysed under
    extended environments). Shared by the fact-consuming walks in
    [Lint] and [Core.Advisor]. *)
val inputs : Algebra.query -> Algebra.query list

(** {1 The generic engine}

    New analyses (e.g. {!Estimate}'s cardinality/cost interpretation)
    are written as domains and instantiated through {!Engine}, sharing
    the framework's memoization and sublink-aware environment
    propagation. *)

(** A client analysis: one lattice of per-subplan facts plus a transfer
    function. [transfer] receives the already-computed facts of the
    operator's direct input queries and a [recurse] callback for
    analysing sublink queries under an extended environment. *)
module type DOMAIN = sig
  type fact

  (** Widen two facts for the same physical subplan reached under
      different correlation environments. *)
  val join : fact -> fact -> fact

  val transfer :
    Database.t ->
    recurse:(env:fact list -> Algebra.query -> fact) ->
    env:fact list ->
    inputs:fact list ->
    Algebra.query ->
    fact
end

module Engine (D : DOMAIN) : sig
  type t

  val create : Database.t -> t
  val query : t -> ?env:D.fact list -> Algebra.query -> D.fact
end

(** Operator label used by the fact dump ([Base(name)], [Select], ...). *)
val op_name : Algebra.query -> string

(** [index_of name names]: position of [name], if present. *)
val index_of : string -> string list -> int option

(** [map2_padded f top a b]: pointwise combination tolerating arity
    mismatches of broken plans — missing positions default to [top]. *)
val map2_padded : ('a -> 'a -> 'a) -> 'a -> 'a list -> 'a list -> 'a list

(** {1 Analysis handle}

    One handle shares the three per-subplan memo tables, so repeated
    queries against the same plan (e.g. one per lint rule) reuse the
    first pass's facts. *)

type t

val create : Database.t -> t

(** [nullability t ?env q] is the maybe-null fact of [q]'s output.
    [env] supplies facts for enclosing correlation scopes, innermost
    first (as when [q] is a sublink query). *)
val nullability : t -> ?env:null_fact list -> Algebra.query -> null_fact

(** [lineage t ?env q]: which base columns each output attribute of [q]
    transitively depends on. *)
val lineage : t -> ?env:lin_fact list -> Algebra.query -> lin_fact

(** [cardinality t q]: a zero/one/many row-count interval for [q]. *)
val cardinality : t -> Algebra.query -> card

(** [expr_nullable t ~env e]: may [e] evaluate to NULL when its
    attribute references resolve against [env] (innermost first)? *)
val expr_nullable : t -> env:null_fact list -> Algebra.expr -> bool

(** [expr_lineage t ~env e]: base columns the value of [e] depends on. *)
val expr_lineage : t -> env:lin_fact list -> Algebra.expr -> Deps.t

(** {1 Fact accessors and combinators} *)

(** [attr_nullable f name]; unknown attributes are maybe-null. *)
val attr_nullable : null_fact -> string -> bool

(** [attr_deps f name]; unknown attributes have empty lineage. *)
val attr_deps : lin_fact -> string -> Deps.t

(** Juxtapose facts of two join inputs into one scope-shaped fact. *)
val concat_null : null_fact -> null_fact -> null_fact

val concat_lin : lin_fact -> lin_fact -> lin_fact

(** {1 Diagnostics} *)

(** [dump t q] renders every operator of [q] (sublink queries included)
    with its cardinality interval and, per output attribute, the
    maybe-null flag and base-column lineage — the [\analyze] output. *)
val dump : t -> Algebra.query -> string
