(** Rule-based plan rewrites, mirroring the PostgreSQL facilities the
    paper's measurements rely on:

    - split conjunctive selections and push each conjunct as deep as its
      attribute references allow (into the sides of products and joins);
    - merge a residual selection over a product into a join, so the
      evaluator can run it as a hash join / streaming nested loop.

    The rewrites never look inside [Project]/[Agg] (no renaming-aware
    pushdown) — enough for the plans produced by the provenance rewriter,
    whose hot paths are selections over products and joins.

    Every applied rule instance is reported through {!Rewrite_trace}
    with a rule name and a Lint-style operator path, so the translation
    validator ({!Certify}) can discharge a proof obligation per
    application. Paths locate the node the rule fired at in the tree it
    matched (selection-pushdown cascades are attributed to the
    outermost selection they started from). Deliberately broken rule
    variants sit behind the test-only [Rewrite_trace.mutant] hook — see
    [test/test_certify.ml]. *)

open Algebra

let sublink_seg k = Printf.sprintf "sublink[%d]" k

(* A conjunct can move to a side of a binary operator when all its
   attribute references are produced by that side. References to
   attributes of neither side are correlated (bound by an enclosing
   sublink scope) and do not block the move. *)
let movable_to db side_names e =
  let refs = Scope.refs_of_expr db e in
  ignore refs;
  (* A conjunct is movable to [side] iff none of its references belong to
     the opposite side; the caller passes the names of the opposite side. *)
  not (List.exists (fun n -> List.mem n side_names) (Scope.refs_of_expr db e))

(* Rewrite attribute references through a projection's renaming map.
   Only valid on sublink-free expressions whose references are all in
   the map. *)
let rec rename_attrs map (e : expr) : expr =
  match e with
  | Attr n -> (
      match List.assoc_opt n map with Some src -> Attr src | None -> Attr n)
  | Const _ | TypedNull _ -> e
  | Binop (op, a, b) -> Binop (op, rename_attrs map a, rename_attrs map b)
  | Cmp (op, a, b) -> Cmp (op, rename_attrs map a, rename_attrs map b)
  | And (a, b) -> And (rename_attrs map a, rename_attrs map b)
  | Or (a, b) -> Or (rename_attrs map a, rename_attrs map b)
  | Not a -> Not (rename_attrs map a)
  | IsNull a -> IsNull (rename_attrs map a)
  | Case (whens, els) ->
      Case
        ( List.map (fun (c, x) -> (rename_attrs map c, rename_attrs map x)) whens,
          Option.map (rename_attrs map) els )
  | Like (a, p) -> Like (rename_attrs map a, p)
  | InList (a, es) -> InList (rename_attrs map a, List.map (rename_attrs map) es)
  | FunCall (f, es) -> FunCall (f, List.map (rename_attrs map) es)
  | Sublink _ -> invalid_arg "rename_attrs: sublink"

(* ------------------------------------------------------------------ *)
(* Solver-driven predicate passes                                      *)
(* ------------------------------------------------------------------ *)

let static_schema db q =
  match Typecheck.infer_query_env db [] q with
  | s -> Some s
  | exception _ -> None

(* Solver context for predicates over [q]'s output columns: static
   column types only (they enable integer bound tightening), never
   witness-data facts like observed nullability — the passes' claims
   must hold on every database, or {!Certify} would refute them on its
   NULL-rich witness variants. *)
let pred_ctx db q =
  match static_schema db q with
  | Some s ->
      let assoc =
        List.map2 (fun n t -> (n, t)) (Schema.names s) (Schema.types s)
      in
      Symbolic.ctx ~types:(fun n -> List.assoc_opt n assoc) ()
  | None -> Symbolic.ctx ()

(* Conjuncts of every Select/Join condition in a Select/Cross/Join
   tree, plus the leaf subplans below them (mirrors the flattening the
   Certify discharge uses). *)
let rec flat_conjuncts (q : query) : expr list * query list =
  match q with
  | Select (c, q1) ->
      let cs, ls = flat_conjuncts q1 in
      (conjuncts c @ cs, ls)
  | Cross (a, b) ->
      let ca, la = flat_conjuncts a and cb, lb = flat_conjuncts b in
      (ca @ cb, la @ lb)
  | Join (c, a, b) ->
      let ca, la = flat_conjuncts a and cb, lb = flat_conjuncts b in
      (conjuncts c @ ca @ cb, la @ lb)
  | _ -> ([], [ q ])

(* Mixing conjuncts from different tree levels into one solver query is
   only sound when every name binds to the same column at every level:
   leaf output names pairwise distinct and disjoint from the plan's
   correlated (free) references. *)
let flat_namespace db before leaves =
  match
    ( List.concat_map (fun l -> Scope.out_names db l) leaves,
      Scope.free_of_query db before )
  with
  | names, frees ->
      List.length (List.sort_uniq String.compare names) = List.length names
      && List.for_all (fun f -> not (List.mem f names)) frees
  | exception _ -> false

(* [symbolic_conds db prefix conds q] runs the solver-driven passes on
   the conjuncts accumulated at a selection site over [q]:
   - {b unsat-fold}: the conjunction (together with the conditions
     already inside [q], when the namespace is flat) provably never
     holds — fold the whole subplan to the empty relation;
   - {b taut-fold}: the conjunction provably holds on every row — drop
     the selection;
   - {b drop-implied}: a conjunct implied by the remaining ones is
     redundant — drop it.
   Each change is emitted as its own obligation whose before/after
   differ only in the predicate, so Certify can usually re-prove it
   symbolically. Returns [Error folded] when the site folded to an
   empty relation, [Ok conds'] otherwise. *)
let symbolic_conds db (prefix : string list) (conds : expr list) (q : query) :
    (expr list, query) result =
  if conds = [] then Ok conds
  else begin
    let ctx = pred_ctx db q in
    let sel cs = Select (conj cs, q) in
    let emit rule before after =
      Rewrite_trace.emit ~rule ~path:(prefix @ [ Guard.op_label before ])
        ~before ~after
    in
    (* --- unsatisfiable selection: fold to the empty relation -------- *)
    let unsat =
      if Rewrite_trace.mutant "sym-unsat-null-ok" then
        (* mutant: wrong polarity — "never FALSE" also holds for
           tautologies and always-NULL predicates *)
        Symbolic.falsifiable ctx (conj conds) = Symbolic.Refuted
      else
        let ctx =
          (* mutant: assumes base columns are never NULL, a witness-data
             fact the NULL-rich databases refute *)
          if Rewrite_trace.mutant "sym-unsat-notnull-db" then
            Symbolic.ctx ~notnull:(Scope.refs_of_expr db (conj conds)) ()
          else ctx
        in
        let deep_cs, leaves = flat_conjuncts q in
        let full =
          if deep_cs <> [] && flat_namespace db (sel conds) leaves then
            conds @ deep_cs
          else conds
        in
        Symbolic.never_true ctx (conj full) = Symbolic.Proved
    in
    match (if unsat then static_schema db (sel conds) else None) with
    | Some schema ->
        let after = TableExpr (Relation.empty schema) in
        emit "unsat-fold" (sel conds) after;
        Error after
    | None ->
        (* --- tautological selection: drop it ------------------------ *)
        let taut =
          if Rewrite_trace.mutant "sym-taut-not-false" then
            (* mutant: "never FALSE" is not "always TRUE" — the classic
               3VL bug, [p OR NOT p] is NULL on NULL rows *)
            Symbolic.falsifiable ctx (conj conds) = Symbolic.Refuted
          else Symbolic.always_true ctx (conj conds) = Symbolic.Proved
        in
        if taut then begin
          emit "taut-fold" (sel conds) q;
          Ok []
        end
        else begin
          (* --- redundant conjuncts: drop what the rest implies ------ *)
          let implied others x =
            if Rewrite_trace.mutant "sym-drop-implicant" then
              (* mutant: implication tested backwards — drops the
                 stronger conjunct and keeps the weaker one *)
              Symbolic.implies ctx x (conj others) = Symbolic.Proved
            else Symbolic.implies ctx (conj others) x = Symbolic.Proved
          in
          let rec drop kept = function
            | [] -> List.rev kept
            | x :: rest ->
                let others = List.rev_append kept rest in
                if others <> [] && implied others x then drop kept rest
                else drop (x :: kept) rest
          in
          let conds' = drop [] conds in
          if List.length conds' <> List.length conds then
            emit "drop-implied" (sel conds) (sel conds');
          Ok conds'
        end
  end

(* [derive_implied db path before ~wrap all]: transitive implied-
   predicate propagation. Columns equated by [=]/[=n] conjuncts form
   congruence classes; a constant comparison on one member is implied
   for every other member, and the derived copy — unlike the original —
   is movable into that member's side of the join, where it prunes
   rows early (the range predicates the provenance rewrite's added
   joins otherwise evaluate late). Every candidate is re-checked with
   {!Symbolic.implies} before it is added; [wrap derived] rebuilds the
   after plan for the trace entry. *)
let derive_implied path before ~wrap (all : expr list) : expr list =
  let through_neq = Rewrite_trace.mutant "sym-implied-through-neq" in
  let flip_op = Rewrite_trace.mutant "sym-implied-op-flip" in
  let edges =
    List.filter_map
      (fun e ->
        match e with
        | Cmp ((Eq | EqNull), Attr x, Attr y) -> Some (x, y)
        (* mutant: treats a disequality as an equality edge *)
        | Cmp (Neq, Attr x, Attr y) when through_neq -> Some (x, y)
        | _ -> None)
      all
  in
  if edges = [] then all
  else begin
    let parent = Hashtbl.create 8 in
    let rec find n =
      match Hashtbl.find_opt parent n with Some p -> find p | None -> n
    in
    List.iter
      (fun (x, y) ->
        let rx = find x and ry = find y in
        if rx <> ry then Hashtbl.replace parent rx ry)
      edges;
    let cols =
      List.sort_uniq String.compare
        (List.concat_map (fun (x, y) -> [ x; y ]) edges)
    in
    (* mutant: derives the comparison with its operator flipped *)
    let flip = function
      | Lt -> Gt
      | Leq -> Geq
      | Gt -> Lt
      | Geq -> Leq
      | op -> op
    in
    let ctx = Symbolic.ctx () in
    let validate d =
      (* the broken variants skip validation — the point of the mutants
         is an unsound derivation reaching the plan *)
      flip_op || through_neq
      || Symbolic.implies ctx (conj all) d = Symbolic.Proved
    in
    let candidate op x k y =
      if String.equal y x || find y <> find x then None
      else
        let op = if flip_op then flip op else op in
        let d = Cmp (op, Attr y, k) in
        if List.exists (fun e -> e = d) all then None
        else if validate d then Some d
        else None
    in
    let derived =
      List.concat_map
        (fun e ->
          match e with
          | Cmp (op, Attr x, (Const _ as k)) when op <> EqNull ->
              List.filter_map (fun y -> candidate op x k y) cols
          | Cmp (op, (Const _ as k), Attr x) when op <> EqNull ->
              (* normalize [k op x] to [x op' k] before deriving *)
              let op' =
                match op with
                | Lt -> Gt
                | Leq -> Geq
                | Gt -> Lt
                | Geq -> Leq
                | op -> op
              in
              List.filter_map (fun y -> candidate op' x k y) cols
          | _ -> [])
        all
    in
    let derived =
      let rec dedup acc = function
        | [] -> List.rev acc
        | d :: rest ->
            if List.exists (fun e -> e = d) acc then dedup acc rest
            else dedup (d :: acc) rest
      in
      List.filteri (fun i _ -> i < 8) (dedup [] derived)
    in
    if derived = [] then all
    else begin
      Rewrite_trace.emit ~rule:"implied-predicate" ~path ~before
        ~after:(wrap derived);
      all @ derived
    end
  end

(* [push_select db prefix conds q] pushes the accumulated conjuncts
   [conds] into [q]. The subplan being rewritten — the proof
   obligation's before side — is [Select (conj conds, q)] (or [q] when
   no conjuncts accumulated); [prefix] is the path prefix of that
   subplan's root. *)
let rec push_select db (prefix : string list) (conds : expr list) (q : query) :
    query =
  match q with
  | Select (c, input) -> push_select db prefix (conds @ conjuncts c) input
  | _ -> (
      match symbolic_conds db prefix conds q with
      | Error folded -> folded
      | Ok conds -> push_conds db prefix conds q)

and push_conds db (prefix : string list) (conds : expr list) (q : query) :
    query =
      let before = if conds = [] then q else Select (conj conds, q) in
      let here = prefix @ [ Guard.op_label before ] in
      (* prefix of [q] itself: below the accumulated selection, if any *)
      let qprefix = if conds = [] then prefix else here in
      let qchild qual = qprefix @ [ Guard.op_label q ^ qual ] in
      let emit rule after =
        Rewrite_trace.emit ~rule ~path:here ~before ~after;
        after
      in
      (match q with
      | Cross (a, b) | Join (Const (Value.Bool true), a, b) ->
          let conds =
            derive_implied here before
              ~wrap:(fun ds -> Select (conj (conds @ ds), q))
              conds
          in
          (* The motion obligation's before side includes any derived
             conjuncts: the [implied-predicate] entry already justified
             adding them, so this entry stays a pure conjunct motion. *)
          let before_m = if conds = [] then q else Select (conj conds, q) in
          distribute db ~left:(qchild "[left]") ~right:(qchild "[right]")
            ~motion:(fun after ->
              Rewrite_trace.emit ~rule:"pushdown-into-cross" ~path:here
                ~before:before_m ~after)
            conds a b
            ~mk:(fun residual a b ->
              match residual with
              | [] -> Cross (a, b)
              | cs -> Join (conj cs, a, b))
      | Join (c, a, b) ->
          let all0 = conds @ conjuncts c in
          let all =
            derive_implied here before
              ~wrap:(fun ds ->
                let j = Join (And (c, conj ds), a, b) in
                if conds = [] then j else Select (conj conds, j))
              all0
          in
          let before_m =
            if List.length all = List.length all0 then before
            else
              let ds = List.filteri (fun i _ -> i >= List.length all0) all in
              let j = Join (And (c, conj ds), a, b) in
              if conds = [] then j else Select (conj conds, j)
          in
          distribute db ~left:(qchild "[left]") ~right:(qchild "[right]")
            ~motion:(fun after ->
              Rewrite_trace.emit ~rule:"pushdown-into-join" ~path:here
                ~before:before_m ~after)
            all a b
            ~mk:(fun residual a b -> Join (conj residual, a, b))
      | LeftJoin (c, a, b) ->
          (* Only push into the left (preserved) side: conditions on the
             nullable side would change outer-join semantics. The join
             condition itself stays put. *)
          let a_names = Scope.out_names db a in
          let b_names = Scope.out_names db b in
          ignore a_names;
          let to_left, residual =
            List.partition (fun e -> movable_to db b_names e) conds
          in
          (* mutant: pushes conditions into the nullable side too, the
             classic outer-join pushdown bug *)
          let to_right, residual =
            if Rewrite_trace.mutant "opt-leftjoin-push-right" then
              List.partition (fun e -> movable_to db a_names e) residual
            else ([], residual)
          in
          (* Emit the pure motion step (sides untouched) before
             recursing — the sides' rewrites are their own entries. *)
          let wrap cs p = if cs = [] then p else Select (conj cs, p) in
          Rewrite_trace.emit ~rule:"pushdown-into-leftjoin" ~path:here ~before
            ~after:(wrap residual (LeftJoin (c, wrap to_left a, wrap to_right b)));
          let left = qchild "[left]" and right = qchild "[right]" in
          let a' = push_select db left to_left (optimize db left a) in
          let b' = optimize db right b in
          let b' =
            if to_right = [] then b' else push_select db right to_right b'
          in
          let inner = LeftJoin (c, a', b') in
          if residual = [] then inner else Select (conj residual, inner)
      | Project p ->
          (* Push conjuncts whose references all map to rename-only columns
             through the projection (filtering before or after a pure
             rename/dedup is equivalent). Sublink conjuncts stay above: the
             substitution cannot see into sublink scopes. *)
          let rename_map =
            List.filter_map
              (fun (e, n) -> match e with Attr src -> Some (n, src) | _ -> None)
              p.cols
          in
          let pushable, rest =
            List.partition
              (fun c ->
                (not (has_sublink c))
                && ((* mutant: pushes through computed columns as if they
                       were renames *)
                    Rewrite_trace.mutant "opt-push-nonrename"
                   || List.for_all
                        (fun n -> List.mem_assoc n rename_map)
                        (Scope.refs_of_expr db c)))
              conds
          in
          let renamed = List.map (rename_attrs rename_map) pushable in
          let phere = qprefix @ [ Guard.op_label q ] in
          let inner = push_select db (qchild "") renamed p.proj_input in
          let counter = ref 0 in
          let cols =
            List.map
              (fun (e, n) ->
                ( map_expr_query
                    (fun sq ->
                      incr counter;
                      optimize db (phere @ [ sublink_seg !counter ]) sq)
                    e,
                  n ))
              p.cols
          in
          let projected = Project { p with cols; proj_input = inner } in
          emit "pushdown-through-project"
            (if rest = [] then projected else Select (conj rest, projected))
      | _ ->
          let q' = optimize_children db qprefix q in
          if conds = [] then q'
          else emit "pushdown-residual" (Select (conj conds, q')))

and distribute db ~left ~right ~motion conds a b ~mk =
  let a_names = Scope.out_names db a and b_names = Scope.out_names db b in
  let to_a, rest = List.partition (fun e -> movable_to db b_names e) conds in
  (* mutant: loses the first conjunct headed for the left side *)
  let to_a =
    if Rewrite_trace.mutant "opt-drop-conjunct" then
      match to_a with _ :: t -> t | [] -> []
    else to_a
  in
  let to_b, residual = List.partition (fun e -> movable_to db a_names e) rest in
  (* mutant: forgets the residual join condition *)
  let residual =
    if Rewrite_trace.mutant "opt-residual-drop" then [] else residual
  in
  (* Announce the pure predicate-motion step with the sides untouched:
     the obligation differs from its before plan only in where the
     conjuncts sit, so Certify can discharge it symbolically. The
     sides' own rewrites below are emitted as their own entries. *)
  let wrap cs q = if cs = [] then q else Select (conj cs, q) in
  motion (mk residual (wrap to_a a) (wrap to_b b));
  let a' = push_select db left to_a (optimize db left a) in
  let b' = push_select db right to_b (optimize db right b) in
  mk residual a' b'

and optimize_children db prefix q =
  let here = prefix @ [ Guard.op_label q ] in
  let child qual i = optimize db (prefix @ [ Guard.op_label q ^ qual ]) i in
  let counter = ref 0 in
  let sub e =
    map_expr_query
      (fun sq ->
        incr counter;
        optimize db (here @ [ sublink_seg !counter ]) sq)
      e
  in
  match q with
  | Base _ | TableExpr _ -> q
  | Select (c, i) ->
      let c = sub c in
      Select (c, child "" i)
  | Project p ->
      let cols = List.map (fun (e, n) -> (sub e, n)) p.cols in
      Project { p with cols; proj_input = child "" p.proj_input }
  | Cross (a, b) ->
      let a = child "[left]" a in
      Cross (a, child "[right]" b)
  | Join (c, a, b) ->
      let c = sub c in
      let a = child "[left]" a in
      Join (c, a, child "[right]" b)
  | LeftJoin (c, a, b) ->
      let c = sub c in
      let a = child "[left]" a in
      LeftJoin (c, a, child "[right]" b)
  | Agg a ->
      let group_by = List.map (fun (e, n) -> (sub e, n)) a.group_by in
      let aggs =
        List.map
          (fun call -> { call with agg_arg = Option.map sub call.agg_arg })
          a.aggs
      in
      Agg { group_by; aggs; agg_input = child "" a.agg_input }
  | Union (s, a, b) ->
      let a = child "[left]" a in
      Union (s, a, child "[right]" b)
  | Inter (s, a, b) ->
      let a = child "[left]" a in
      Inter (s, a, child "[right]" b)
  | Diff (s, a, b) ->
      let a = child "[left]" a in
      Diff (s, a, child "[right]" b)
  | Order (keys, i) ->
      let keys = List.map (fun (e, d) -> (sub e, d)) keys in
      Order (keys, child "" i)
  | Limit (n, i) -> Limit (n, child "" i)

(* Merge Project-over-Project when the outer projection only reorders,
   renames or drops columns (plain attribute references) and the inner
   one performs no duplicate elimination. The provenance rewriter's
   final normalization projection creates exactly this pattern. *)
and merge_projects prefix q =
  match q with
  | Project
      ({ cols = outer_cols; proj_input = Project inner; distinct = _ } as outer)
    when ((not inner.distinct)
         (* mutant: merges through a DISTINCT inner projection, losing
            its duplicate elimination *)
         || Rewrite_trace.mutant "opt-merge-distinct")
         && List.for_all (fun (e, _) -> match e with Attr _ -> true | _ -> false)
              outer_cols ->
      let resolve = function
        | Attr n, out_name -> (
            match List.assoc_opt n (List.map (fun (e, m) -> (m, e)) inner.cols) with
            | Some e -> (e, out_name)
            | None -> (Attr n, out_name) (* correlated reference *))
        | other -> other
      in
      let after =
        Project
          {
            outer with
            cols = List.map resolve outer_cols;
            proj_input = inner.proj_input;
          }
      in
      Rewrite_trace.emit ~rule:"merge-projects"
        ~path:(prefix @ [ Guard.op_label q ])
        ~before:q ~after;
      merge_projects prefix after
  | q -> q

(** [optimize db prefix q] rewrites [q] into an equivalent, typically
    faster plan. Sublink queries embedded in conditions are optimized
    too. *)
and optimize db (prefix : string list) (q : query) : query =
  match merge_projects prefix q with
  | Select (c, input) ->
      let here = prefix @ [ Guard.op_label (Select (c, input)) ] in
      let counter = ref 0 in
      let c =
        map_expr_query
          (fun sq ->
            incr counter;
            optimize db (here @ [ sublink_seg !counter ]) sq)
          c
      in
      push_select db prefix (conjuncts c) input
  | (Cross _ | Join _ | LeftJoin _) as q -> push_select db prefix [] q
  | q -> optimize_children db prefix q

(** {1 Dead-column pruning}

    A backward needed-column pass driven by the same dependency facts
    the {!Dataflow} lineage analysis computes: each operator receives
    the set of output names its parent may read and narrows itself and
    its inputs accordingly. The provenance rewrites (G1/L1/T1) widen
    every tuple with CrossBase/Tsub+ columns that downstream operators
    never read, and the SQL frontend scans every base table through an
    all-columns renaming projection — both leave dead columns that cost
    the compiled engine per-tuple work in every operator above.

    Invariants, per node: [needed ∩ out(q) ⊆ out(q') ⊆ out(q)] with
    relative order preserved (superset semantics — exact narrowing
    happens only at bag [Project] nodes and base scans). Columns are
    never dropped where they carry semantics:
    - DISTINCT projections and set operations dedup/match on all
      columns, so their width is untouched (pruning still descends into
      their sublink conditions and below set-operation arms);
    - [Agg] keeps every GROUP BY column and, with no GROUP BY, at least
      one aggregate so the one-row-on-empty-input semantics survives;
    - EXISTS sublink queries need no columns at all and collapse to
      zero-width plans; scalar/ANY/ALL sublinks keep their single value
      column.
    The root is pruned with its full output, so plan schemas — and the
    provenance contract checked by [Provcheck] — are unchanged.

    Each node the pass narrows (directly or below) yields a [prune]
    obligation: before the whole original subtree, after the pruned
    one. {!Certify} checks those with projected equivalence — the
    before side projected onto the surviving columns must equal the
    after side as a bag. *)

module SS = Set.Make (String)

let refs db e = SS.of_list (Scope.refs_of_expr db e)

let refs_of_exprs db es =
  List.fold_left (fun acc e -> SS.union acc (refs db e)) SS.empty es

let all_out db q = SS.of_list (Scope.out_names db q)

(* [prune_expr db here counter e] prunes the sublink queries of [e];
   [counter] numbers sublinks across all expressions of the node at
   path [here], in Lint's enumeration order. *)
let rec prune_expr db here counter (e : expr) : expr =
  let go = prune_expr db here counter in
  match e with
  | Const _ | TypedNull _ | Attr _ -> e
  | Binop (op, a, b) ->
      let a = go a in
      Binop (op, a, go b)
  | Cmp (op, a, b) ->
      let a = go a in
      Cmp (op, a, go b)
  | And (a, b) ->
      let a = go a in
      And (a, go b)
  | Or (a, b) ->
      let a = go a in
      Or (a, go b)
  | Not a -> Not (go a)
  | IsNull a -> IsNull (go a)
  | Case (whens, els) ->
      let whens =
        List.map
          (fun (c, x) ->
            let c = go c in
            (c, go x))
          whens
      in
      Case (whens, Option.map go els)
  | Like (a, p) -> Like (go a, p)
  | InList (a, es) ->
      let a = go a in
      InList (a, List.map go es)
  | FunCall (f, es) -> FunCall (f, List.map go es)
  | Sublink s ->
      incr counter;
      let spfx = here @ [ sublink_seg !counter ] in
      let kind, needed =
        match s.kind with
        | Exists -> (Exists, SS.empty)
        | Scalar -> (Scalar, all_out db s.query)
        | AnyOp (op, lhs) -> (AnyOp (op, go lhs), all_out db s.query)
        | AllOp (op, lhs) -> (AllOp (op, go lhs), all_out db s.query)
      in
      Sublink { s with kind; query = prune_query db spfx needed s.query }

and prune_query db prefix (needed : SS.t) (q : query) : query =
  let here = prefix @ [ Guard.op_label q ] in
  let child qual i needed =
    prune_query db (prefix @ [ Guard.op_label q ^ qual ]) needed i
  in
  let counter = ref 0 in
  let pexpr e = prune_expr db here counter e in
  let after =
    match q with
    | Base name -> (
        match Database.find_opt db name with
        | None -> q
        | Some r ->
            let names = Schema.names (Relation.schema r) in
            let kept = List.filter (fun n -> SS.mem n needed) names in
            if List.length kept = List.length names then q
            else project (List.map (fun n -> (Attr n, n)) kept) q)
    | TableExpr _ -> q
    | Select (c, input) ->
        let below = SS.union needed (refs db c) in
        let c = pexpr c in
        Select (c, child "" input below)
    | Project p when p.distinct && not (Rewrite_trace.mutant "prune-distinct")
      ->
        let below = refs_of_exprs db (List.map fst p.cols) in
        let cols = List.map (fun (e, n) -> (pexpr e, n)) p.cols in
        Project { p with cols; proj_input = child "" p.proj_input below }
    | Project p ->
        (* the [prune-distinct] mutant routes DISTINCT projections here,
           narrowing the column set they deduplicate on *)
        let cols = List.filter (fun (_, n) -> SS.mem n needed) p.cols in
        let below = refs_of_exprs db (List.map fst cols) in
        let cols = List.map (fun (e, n) -> (pexpr e, n)) cols in
        Project { p with cols; proj_input = child "" p.proj_input below }
    | Cross (a, b) ->
        let a = child "[left]" a needed in
        Cross (a, child "[right]" b needed)
    | Join (c, a, b) ->
        let below = SS.union needed (refs db c) in
        let c = pexpr c in
        let a = child "[left]" a below in
        Join (c, a, child "[right]" b below)
    | LeftJoin (c, a, b) ->
        let below = SS.union needed (refs db c) in
        let c = pexpr c in
        let a = child "[left]" a below in
        LeftJoin (c, a, child "[right]" b below)
    | Agg a ->
        let aggs = List.filter (fun c -> SS.mem c.agg_name needed) a.aggs in
        let aggs =
          (* an aggregation with no GROUP BY returns exactly one row; keep
             one aggregate so the empty-input behaviour is preserved *)
          if aggs = [] && a.group_by = [] && a.aggs <> [] then [ List.hd a.aggs ]
          else aggs
        in
        (* mutant: drops GROUP BY columns nothing above reads, merging
           groups that were distinct *)
        let group_by =
          if Rewrite_trace.mutant "prune-group-by" then
            List.filter (fun (_, n) -> SS.mem n needed) a.group_by
          else a.group_by
        in
        let below =
          SS.union
            (refs_of_exprs db (List.map fst group_by))
            (refs_of_exprs db (List.filter_map (fun c -> c.agg_arg) aggs))
        in
        let group_by = List.map (fun (e, n) -> (pexpr e, n)) group_by in
        let aggs =
          List.map
            (fun c -> { c with agg_arg = Option.map pexpr c.agg_arg })
            aggs
        in
        Agg { group_by; aggs; agg_input = child "" a.agg_input below }
    | Union (s, a, b) ->
        (* positional semantics: arms keep their full width, but pruning
           still reaches sublink conditions and scans below them. The
           [prune-setop] mutant narrows the arms to [needed], changing
           what set-semantics operators deduplicate/match on. *)
        let arm qual q =
          let keep =
            if Rewrite_trace.mutant "prune-setop" then needed else all_out db q
          in
          child qual q keep
        in
        let a = arm "[left]" a in
        Union (s, a, arm "[right]" b)
    | Inter (s, a, b) ->
        let arm qual q =
          let keep =
            if Rewrite_trace.mutant "prune-setop" then needed else all_out db q
          in
          child qual q keep
        in
        let a = arm "[left]" a in
        Inter (s, a, arm "[right]" b)
    | Diff (s, a, b) ->
        let arm qual q =
          let keep =
            if Rewrite_trace.mutant "prune-setop" then needed else all_out db q
          in
          child qual q keep
        in
        let a = arm "[left]" a in
        Diff (s, a, arm "[right]" b)
    | Order (keys, input) ->
        let below = SS.union needed (refs_of_exprs db (List.map fst keys)) in
        let keys = List.map (fun (e, d) -> (pexpr e, d)) keys in
        Order (keys, child "" input below)
    | Limit (n, input) -> Limit (n, child "" input needed)
  in
  Rewrite_trace.emit ~rule:"prune" ~path:here ~before:q ~after;
  after

(** [prune db q] drops dead columns everywhere below the root; the
    root's own schema is preserved. *)
let prune db q = prune_query db [] (all_out db q) q

(** {1 Cost-based join reorder}

    A pre-pass over maximal Select/Cross/Join clusters (the flattening
    {!Certify}'s symbolic discharge uses): with at least three leaves
    and a flat namespace, the leaves are re-joined greedily by
    {!Estimate} cardinality — start from the smallest leaf, repeatedly
    adjoin the leaf minimizing the estimated size of the joined prefix,
    attaching each sublink-free conjunct at the lowest node where its
    references are in scope. Sublink conjuncts stay in a residual
    selection on top, and an identity projection restores the original
    column order, so the rewrite preserves the cluster's exact output
    schema — the shape {!Certify}'s schema stage demands. The reordered
    plan is kept only when its estimated cost strictly improves; every
    application is emitted as a [join-reorder] obligation, discharged
    by Certify's witness comparison (the leaf order changes, so the
    symbolic flattening argument does not apply). *)

let reorder_min_leaves = 3

let try_reorder db est (prefix : string list) (q : query) : query option =
  let conds, leaves = flat_conjuncts q in
  if List.length leaves < reorder_min_leaves then None
  else if not (flat_namespace db q leaves) then None
  else
    match Scope.out_names db q with
    | exception _ -> None
    | out_before ->
        let arr =
          Array.of_list (List.map (fun l -> (l, Scope.out_names db l)) leaves)
        in
        let cluster_names = List.concat_map snd (Array.to_list arr) in
        let plain, linked = List.partition (fun e -> not (has_sublink e)) conds in
        (* mutant: the rebuilt cluster silently loses one conjunct *)
        let plain =
          if Rewrite_trace.mutant "reorder-drop-conjunct" then
            match plain with _ :: t -> t | [] -> []
          else plain
        in
        let refs = List.map (fun e -> (e, Scope.refs_of_expr db e)) plain in
        (* a conjunct is placeable once every reference that the cluster
           produces is available; references outside the cluster are
           correlated and never block *)
        let placeable avail (_, rs) =
          List.for_all
            (fun r -> List.mem r avail || not (List.mem r cluster_names))
            rs
        in
        let n = Array.length arr in
        let used = Array.make n false in
        let best_free score =
          let bi = ref (-1) and bs = ref infinity in
          for k = 0 to n - 1 do
            if not used.(k) then begin
              let s = score k in
              if !bi < 0 || s < !bs then begin
                bi := k;
                bs := s
              end
            end
          done;
          !bi
        in
        let start = best_free (fun k -> Estimate.rows est (fst arr.(k))) in
        used.(start) <- true;
        let acc_plan = ref (fst arr.(start)) in
        let acc_names = ref (snd arr.(start)) in
        let remaining = ref refs in
        (* conjuncts over the starting leaf alone (or fully correlated)
           wrap it immediately *)
        let app, rest = List.partition (placeable !acc_names) !remaining in
        if app <> [] then acc_plan := Select (conj (List.map fst app), !acc_plan);
        remaining := rest;
        let candidate k =
          let leaf, lnames = arr.(k) in
          let avail = !acc_names @ lnames in
          let app, rest = List.partition (placeable avail) !remaining in
          let plan =
            match app with
            | [] -> Cross (!acc_plan, leaf)
            | cs -> Join (conj (List.map fst cs), !acc_plan, leaf)
          in
          (plan, rest, lnames)
        in
        for _ = 2 to n do
          let bi =
            best_free (fun k ->
                let plan, _, _ = candidate k in
                Estimate.rows est plan)
          in
          let plan, rest, lnames = candidate bi in
          used.(bi) <- true;
          acc_plan := plan;
          acc_names := !acc_names @ lnames;
          remaining := rest
        done;
        let tree =
          match linked with
          | [] -> !acc_plan
          | cs -> Select (conj cs, !acc_plan)
        in
        let after =
          if !acc_names = out_before then tree
          else project (List.map (fun nm -> (Attr nm, nm)) out_before) tree
        in
        let unchanged = try after = q with Invalid_argument _ -> false in
        if unchanged then None
        else if Estimate.cost est after < 0.99 *. Estimate.cost est q then begin
          Rewrite_trace.emit ~rule:"join-reorder"
            ~path:(prefix @ [ Guard.op_label q ])
            ~before:q ~after;
          Some after
        end
        else None

(* The walk: attempt a reorder at every maximal cluster root, then
   descend — through the (possibly rebuilt) cluster spine without
   re-attempting, and into leaves, sublink queries and every other
   operator with the standard path scheme. *)
let rec reorder_query db est (prefix : string list) (q : query) : query =
  match q with
  | Select _ | Cross _ | Join _ ->
      let q =
        match try_reorder db est prefix q with Some q' -> q' | None -> q
      in
      reorder_spine db est prefix q
  | _ -> reorder_spine db est prefix q

and reorder_spine db est prefix q =
  let here = prefix @ [ Guard.op_label q ] in
  let counter = ref 0 in
  let sub e =
    map_expr_query
      (fun sq ->
        incr counter;
        reorder_query db est (here @ [ sublink_seg !counter ]) sq)
      e
  in
  let child qual i =
    reorder_query db est (prefix @ [ Guard.op_label q ^ qual ]) i
  in
  let spine qual i =
    reorder_spine db est (prefix @ [ Guard.op_label q ^ qual ]) i
  in
  match q with
  | Base _ | TableExpr _ -> q
  | Select (c, i) ->
      let c = sub c in
      Select (c, spine "" i)
  | Cross (a, b) ->
      let a = spine "[left]" a in
      Cross (a, spine "[right]" b)
  | Join (c, a, b) ->
      let c = sub c in
      let a = spine "[left]" a in
      Join (c, a, spine "[right]" b)
  | LeftJoin (c, a, b) ->
      let c = sub c in
      let a = child "[left]" a in
      LeftJoin (c, a, child "[right]" b)
  | Project p ->
      let cols = List.map (fun (e, nm) -> (sub e, nm)) p.cols in
      Project { p with cols; proj_input = child "" p.proj_input }
  | Agg a ->
      let group_by = List.map (fun (e, nm) -> (sub e, nm)) a.group_by in
      let aggs =
        List.map
          (fun call -> { call with agg_arg = Option.map sub call.agg_arg })
          a.aggs
      in
      Agg { group_by; aggs; agg_input = child "" a.agg_input }
  | Union (s, a, b) ->
      let a = child "[left]" a in
      Union (s, a, child "[right]" b)
  | Inter (s, a, b) ->
      let a = child "[left]" a in
      Inter (s, a, child "[right]" b)
  | Diff (s, a, b) ->
      let a = child "[left]" a in
      Diff (s, a, child "[right]" b)
  | Order (keys, i) ->
      let keys = List.map (fun (e, d) -> (sub e, d)) keys in
      Order (keys, child "" i)
  | Limit (k, i) -> Limit (k, child "" i)

(* Entry point: simplify first (constant folding may expose TRUE/FALSE
   selections and negation-free comparisons), reorder join clusters by
   estimated cost, push selections, then simplify again — the pushdown
   phase's unsat-fold can leave sublink atoms over empty literal
   relations, which the second pass folds to constants (emitting its
   usual traced, certified rule applications) — and finally drop the
   columns nothing above reads. *)
let optimize ?(prune = true) ?(reorder = true) db q =
  let q = Simplify.query q in
  let q = if reorder then reorder_query db (Estimate.create db) [] q else q in
  let q' = optimize db [] q in
  let q' = Simplify.query q' in
  if prune then prune_query db [] (all_out db q') q' else q'
