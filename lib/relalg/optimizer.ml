(** Rule-based plan rewrites, mirroring the PostgreSQL facilities the
    paper's measurements rely on:

    - split conjunctive selections and push each conjunct as deep as its
      attribute references allow (into the sides of products and joins);
    - merge a residual selection over a product into a join, so the
      evaluator can run it as a hash join / streaming nested loop.

    The rewrites never look inside [Project]/[Agg] (no renaming-aware
    pushdown) — enough for the plans produced by the provenance rewriter,
    whose hot paths are selections over products and joins. *)

open Algebra

(* A conjunct can move to a side of a binary operator when all its
   attribute references are produced by that side. References to
   attributes of neither side are correlated (bound by an enclosing
   sublink scope) and do not block the move. *)
let movable_to db side_names e =
  let refs = Scope.refs_of_expr db e in
  ignore refs;
  (* A conjunct is movable to [side] iff none of its references belong to
     the opposite side; the caller passes the names of the opposite side. *)
  not (List.exists (fun n -> List.mem n side_names) (Scope.refs_of_expr db e))

(* Rewrite attribute references through a projection's renaming map.
   Only valid on sublink-free expressions whose references are all in
   the map. *)
let rec rename_attrs map (e : expr) : expr =
  match e with
  | Attr n -> (
      match List.assoc_opt n map with Some src -> Attr src | None -> Attr n)
  | Const _ | TypedNull _ -> e
  | Binop (op, a, b) -> Binop (op, rename_attrs map a, rename_attrs map b)
  | Cmp (op, a, b) -> Cmp (op, rename_attrs map a, rename_attrs map b)
  | And (a, b) -> And (rename_attrs map a, rename_attrs map b)
  | Or (a, b) -> Or (rename_attrs map a, rename_attrs map b)
  | Not a -> Not (rename_attrs map a)
  | IsNull a -> IsNull (rename_attrs map a)
  | Case (whens, els) ->
      Case
        ( List.map (fun (c, x) -> (rename_attrs map c, rename_attrs map x)) whens,
          Option.map (rename_attrs map) els )
  | Like (a, p) -> Like (rename_attrs map a, p)
  | InList (a, es) -> InList (rename_attrs map a, List.map (rename_attrs map) es)
  | FunCall (f, es) -> FunCall (f, List.map (rename_attrs map) es)
  | Sublink _ -> invalid_arg "rename_attrs: sublink"

let rec push_select db (conds : expr list) (q : query) : query =
  match q with
  | Cross (a, b) | Join (Const (Value.Bool true), a, b) ->
      distribute db conds a b ~mk:(fun residual a b ->
          match residual with
          | [] -> Cross (a, b)
          | cs -> Join (conj cs, a, b))
  | Join (c, a, b) ->
      distribute db (conds @ conjuncts c) a b ~mk:(fun residual a b ->
          Join (conj residual, a, b))
  | LeftJoin (c, a, b) ->
      (* Only push into the left (preserved) side: conditions on the
         nullable side would change outer-join semantics. The join
         condition itself stays put. *)
      let a_names = Scope.out_names db a in
      let b_names = Scope.out_names db b in
      ignore a_names;
      let to_left, residual =
        List.partition (fun e -> movable_to db b_names e) conds
      in
      let a' = push_select db to_left (optimize db a) in
      let b' = optimize db b in
      let inner = LeftJoin (c, a', b') in
      if residual = [] then inner else Select (conj residual, inner)
  | Select (c, input) -> push_select db (conds @ conjuncts c) input
  | Project p ->
      (* Push conjuncts whose references all map to rename-only columns
         through the projection (filtering before or after a pure
         rename/dedup is equivalent). Sublink conjuncts stay above: the
         substitution cannot see into sublink scopes. *)
      let rename_map =
        List.filter_map
          (fun (e, n) -> match e with Attr src -> Some (n, src) | _ -> None)
          p.cols
      in
      let pushable, rest =
        List.partition
          (fun c ->
            (not (has_sublink c))
            && List.for_all
                 (fun n -> List.mem_assoc n rename_map)
                 (Scope.refs_of_expr db c))
          conds
      in
      let renamed = List.map (rename_attrs rename_map) pushable in
      let inner = push_select db renamed p.proj_input in
      let cols =
        List.map (fun (e, n) -> (map_expr_query (optimize db) e, n)) p.cols
      in
      let projected = Project { p with cols; proj_input = inner } in
      if rest = [] then projected else Select (conj rest, projected)
  | _ ->
      let q' = optimize_children db q in
      if conds = [] then q' else Select (conj conds, q')

and distribute db conds a b ~mk =
  let a_names = Scope.out_names db a and b_names = Scope.out_names db b in
  let to_a, rest = List.partition (fun e -> movable_to db b_names e) conds in
  let to_b, residual = List.partition (fun e -> movable_to db a_names e) rest in
  let a' = push_select db to_a (optimize db a) in
  let b' = push_select db to_b (optimize db b) in
  mk residual a' b'

and optimize_children db q = map_queries (optimize db) q

(* Merge Project-over-Project when the outer projection only reorders,
   renames or drops columns (plain attribute references) and the inner
   one performs no duplicate elimination. The provenance rewriter's
   final normalization projection creates exactly this pattern. *)
and merge_projects q =
  match q with
  | Project
      ({ cols = outer_cols; proj_input = Project inner; distinct = _ } as outer)
    when (not inner.distinct)
         && List.for_all (fun (e, _) -> match e with Attr _ -> true | _ -> false)
              outer_cols ->
      let resolve = function
        | Attr n, out_name -> (
            match List.assoc_opt n (List.map (fun (e, m) -> (m, e)) inner.cols) with
            | Some e -> (e, out_name)
            | None -> (Attr n, out_name) (* correlated reference *))
        | other -> other
      in
      merge_projects
        (Project
           {
             outer with
             cols = List.map resolve outer_cols;
             proj_input = inner.proj_input;
           })
  | q -> q

(** [optimize db q] rewrites [q] into an equivalent, typically faster
    plan. Sublink queries embedded in conditions are optimized too. *)
and optimize db (q : query) : query =
  match merge_projects q with
  | Select (c, input) ->
      let c = map_expr_query (optimize db) c in
      push_select db (conjuncts c) input
  | (Cross _ | Join _ | LeftJoin _) as q -> push_select db [] q
  | q -> optimize_children db q

(** {1 Dead-column pruning}

    A backward needed-column pass driven by the same dependency facts
    the {!Dataflow} lineage analysis computes: each operator receives
    the set of output names its parent may read and narrows itself and
    its inputs accordingly. The provenance rewrites (G1/L1/T1) widen
    every tuple with CrossBase/Tsub+ columns that downstream operators
    never read, and the SQL frontend scans every base table through an
    all-columns renaming projection — both leave dead columns that cost
    the compiled engine per-tuple work in every operator above.

    Invariants, per node: [needed ∩ out(q) ⊆ out(q') ⊆ out(q)] with
    relative order preserved (superset semantics — exact narrowing
    happens only at bag [Project] nodes and base scans). Columns are
    never dropped where they carry semantics:
    - DISTINCT projections and set operations dedup/match on all
      columns, so their width is untouched (pruning still descends into
      their sublink conditions and below set-operation arms);
    - [Agg] keeps every GROUP BY column and, with no GROUP BY, at least
      one aggregate so the one-row-on-empty-input semantics survives;
    - EXISTS sublink queries need no columns at all and collapse to
      zero-width plans; scalar/ANY/ALL sublinks keep their single value
      column.
    The root is pruned with its full output, so plan schemas — and the
    provenance contract checked by [Provcheck] — are unchanged. *)

module SS = Set.Make (String)

let refs db e = SS.of_list (Scope.refs_of_expr db e)

let refs_of_exprs db es =
  List.fold_left (fun acc e -> SS.union acc (refs db e)) SS.empty es

let all_out db q = SS.of_list (Scope.out_names db q)

let rec prune_expr db (e : expr) : expr =
  match e with
  | Const _ | TypedNull _ | Attr _ -> e
  | Binop (op, a, b) -> Binop (op, prune_expr db a, prune_expr db b)
  | Cmp (op, a, b) -> Cmp (op, prune_expr db a, prune_expr db b)
  | And (a, b) -> And (prune_expr db a, prune_expr db b)
  | Or (a, b) -> Or (prune_expr db a, prune_expr db b)
  | Not a -> Not (prune_expr db a)
  | IsNull a -> IsNull (prune_expr db a)
  | Case (whens, els) ->
      Case
        ( List.map (fun (c, x) -> (prune_expr db c, prune_expr db x)) whens,
          Option.map (prune_expr db) els )
  | Like (a, p) -> Like (prune_expr db a, p)
  | InList (a, es) -> InList (prune_expr db a, List.map (prune_expr db) es)
  | FunCall (f, es) -> FunCall (f, List.map (prune_expr db) es)
  | Sublink s ->
      let kind, needed =
        match s.kind with
        | Exists -> (Exists, SS.empty)
        | Scalar -> (Scalar, all_out db s.query)
        | AnyOp (op, lhs) -> (AnyOp (op, prune_expr db lhs), all_out db s.query)
        | AllOp (op, lhs) -> (AllOp (op, prune_expr db lhs), all_out db s.query)
      in
      Sublink { s with kind; query = prune_query db needed s.query }

and prune_query db (needed : SS.t) (q : query) : query =
  match q with
  | Base name -> (
      match Database.find_opt db name with
      | None -> q
      | Some r ->
          let names = Schema.names (Relation.schema r) in
          let kept = List.filter (fun n -> SS.mem n needed) names in
          if List.length kept = List.length names then q
          else project (List.map (fun n -> (Attr n, n)) kept) q)
  | TableExpr _ -> q
  | Select (c, input) ->
      let below = SS.union needed (refs db c) in
      Select (prune_expr db c, prune_query db below input)
  | Project p when p.distinct ->
      let below = refs_of_exprs db (List.map fst p.cols) in
      Project
        {
          p with
          cols = List.map (fun (e, n) -> (prune_expr db e, n)) p.cols;
          proj_input = prune_query db below p.proj_input;
        }
  | Project p ->
      let cols = List.filter (fun (_, n) -> SS.mem n needed) p.cols in
      let below = refs_of_exprs db (List.map fst cols) in
      Project
        {
          p with
          cols = List.map (fun (e, n) -> (prune_expr db e, n)) cols;
          proj_input = prune_query db below p.proj_input;
        }
  | Cross (a, b) -> Cross (prune_query db needed a, prune_query db needed b)
  | Join (c, a, b) ->
      let below = SS.union needed (refs db c) in
      Join (prune_expr db c, prune_query db below a, prune_query db below b)
  | LeftJoin (c, a, b) ->
      let below = SS.union needed (refs db c) in
      LeftJoin (prune_expr db c, prune_query db below a, prune_query db below b)
  | Agg a ->
      let aggs = List.filter (fun c -> SS.mem c.agg_name needed) a.aggs in
      let aggs =
        (* an aggregation with no GROUP BY returns exactly one row; keep
           one aggregate so the empty-input behaviour is preserved *)
        if aggs = [] && a.group_by = [] && a.aggs <> [] then [ List.hd a.aggs ]
        else aggs
      in
      let below =
        SS.union
          (refs_of_exprs db (List.map fst a.group_by))
          (refs_of_exprs db (List.filter_map (fun c -> c.agg_arg) aggs))
      in
      Agg
        {
          group_by = List.map (fun (e, n) -> (prune_expr db e, n)) a.group_by;
          aggs =
            List.map
              (fun c -> { c with agg_arg = Option.map (prune_expr db) c.agg_arg })
              aggs;
          agg_input = prune_query db below a.agg_input;
        }
  | Union (s, a, b) ->
      (* positional semantics: arms keep their full width, but pruning
         still reaches sublink conditions and scans below them *)
      Union (s, prune_query db (all_out db a) a, prune_query db (all_out db b) b)
  | Inter (s, a, b) ->
      Inter (s, prune_query db (all_out db a) a, prune_query db (all_out db b) b)
  | Diff (s, a, b) ->
      Diff (s, prune_query db (all_out db a) a, prune_query db (all_out db b) b)
  | Order (keys, input) ->
      let below = SS.union needed (refs_of_exprs db (List.map fst keys)) in
      Order
        ( List.map (fun (e, d) -> (prune_expr db e, d)) keys,
          prune_query db below input )
  | Limit (n, input) -> Limit (n, prune_query db needed input)

(** [prune db q] drops dead columns everywhere below the root; the
    root's own schema is preserved. *)
let prune db q = prune_query db (all_out db q) q

(* Entry point: simplify first (constant folding may expose TRUE/FALSE
   selections and negation-free comparisons), push selections, then
   drop the columns nothing above reads. *)
let optimize ?(prune = true) db q =
  let q' = optimize db (Simplify.query q) in
  if prune then prune_query db (all_out db q') q' else q'
