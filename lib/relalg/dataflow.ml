(** Plan dataflow: a bottom-up fact framework over {!Algebra.query}.

    The framework runs per-operator transfer functions over a plan,
    memoizing facts per physical subplan (the provenance rewriter shares
    subtrees — e.g. [Csub+] embeds the original sublink query both under
    its [EXISTS] member test and its empty-case — so plans are DAGs, not
    trees). Facts are propagated {e sublink-aware}: when a transfer
    function meets a sublink inside a condition or projection it analyses
    the sublink query under an environment extended with the operator's
    input fact, so correlated references resolve to facts of the scope
    that binds them, exactly mirroring the evaluator's scoping rules.

    Queries are structurally acyclic, so the fixpoint of the transfer
    functions degenerates to a single bottom-up pass; the lattice
    [join] is still exercised when one physical subplan is reached under
    two different correlation environments, in which case the memoized
    fact is widened to cover both (a sound over-approximation for the
    may-facts computed here).

    Three client analyses are provided:
    - {b nullability} — per-attribute maybe-null flags, modelling the
      null introduction of left outer joins (Left/Move rewrites) and of
      Gen's all-NULL [CrossBase] extension tuple;
    - {b attribute lineage} — which base-relation columns each output
      attribute transitively depends on;
    - {b cardinality} — zero/one/many row-count intervals per subplan.

    Every transfer function is total: unknown relations or unresolvable
    attributes yield top elements (maybe-null, empty lineage, unbounded
    cardinality) instead of raising, so the analyses can run on the same
    broken plans the linter tolerates. *)

open Algebra

(** Sets of [(relation, column)] provenance sources. *)
module Deps = Set.Make (struct
  type t = string * string

  let compare = Stdlib.compare
end)

(** {1 Fact lattices} *)

type null_fact = {
  n_names : string list;  (** output attribute names, in schema order *)
  n_maybe : bool list;  (** pointwise: may this attribute be NULL? *)
}

type lin_fact = {
  l_names : string list;
  l_deps : Deps.t list;  (** pointwise base-column dependency sets *)
}

type bound = Fin of int | Inf

type card = { c_lo : int; c_hi : bound }
(** Row-count interval; [c_lo] is clamped to {0, 1} (zero/one/many). *)

let card_top = { c_lo = 0; c_hi = Inf }
let card_exactly n = { c_lo = (if n = 0 then 0 else 1); c_hi = Fin n }

let bound_min a b =
  match (a, b) with
  | Inf, x | x, Inf -> x
  | Fin a, Fin b -> Fin (min a b)

let bound_max a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Fin a, Fin b -> Fin (max a b)

let bound_add a b =
  match (a, b) with Fin a, Fin b -> Fin (a + b) | _ -> Inf

let bound_mul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin a, Fin b -> Fin (a * b)
  | _ -> Inf

let pp_bound ppf = function
  | Fin n -> Format.pp_print_int ppf n
  | Inf -> Format.pp_print_string ppf "*"

let pp_card ppf c = Format.fprintf ppf "%d..%a" c.c_lo pp_bound c.c_hi

(** Direct input queries of an operator (sublink queries excluded —
    they are analysed under extended environments by the transfer
    functions). *)
let inputs = function
  | Base _ | TableExpr _ -> []
  | Select (_, i) | Order (_, i) | Limit (_, i) -> [ i ]
  | Project { proj_input; _ } -> [ proj_input ]
  | Agg { agg_input; _ } -> [ agg_input ]
  | Cross (a, b)
  | Join (_, a, b)
  | LeftJoin (_, a, b)
  | Union (_, a, b)
  | Inter (_, a, b)
  | Diff (_, a, b) ->
      [ a; b ]

(** {1 The generic engine} *)

(** A client analysis: one lattice of per-subplan facts plus a transfer
    function. [transfer] receives the already-computed facts of the
    operator's direct input queries and a [recurse] callback for
    analysing sublink queries under an extended environment. *)
module type DOMAIN = sig
  type fact

  val join : fact -> fact -> fact
  (** Widen two facts for the same physical subplan reached under
      different correlation environments. *)

  val transfer :
    Database.t ->
    recurse:(env:fact list -> query -> fact) ->
    env:fact list ->
    inputs:fact list ->
    query ->
    fact
end

module Engine (D : DOMAIN) : sig
  type t

  val create : Database.t -> t
  val query : t -> ?env:D.fact list -> query -> D.fact
end = struct
  (* Memoization is keyed on physical node identity: structural hashing
     (depth-bounded) narrows the bucket, pointer equality decides. *)
  module H = Hashtbl.Make (struct
    type t = query

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  type t = { db : Database.t; memo : (D.fact list * D.fact) H.t }

  let create db = { db; memo = H.create 64 }

  let same_env a b =
    List.length a = List.length b && List.for_all2 ( == ) a b

  let rec query t ?(env = []) q =
    match H.find_opt t.memo q with
    | Some (env0, fact) when same_env env0 env -> fact
    | previous ->
        let recurse ~env q = query t ~env q in
        let inputs = List.map (fun i -> query t ~env i) (inputs q) in
        let fact = D.transfer t.db ~recurse ~env ~inputs q in
        let fact =
          match previous with
          | Some (_, f0) -> D.join f0 fact
          | None -> fact
        in
        H.replace t.memo q (env, fact);
        fact
end

(* Shared helpers *)

let index_of name names =
  let rec go i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 names

(* Combine two pointwise fact lists even when a broken plan makes the
   arities disagree: missing positions default to [top]. *)
let map2_padded f top a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> []
    | x :: xs, y :: ys -> f x y :: go xs ys
    | x :: xs, [] -> f x top :: go xs []
    | [], y :: ys -> f top y :: go [] ys
  in
  go a b

(** {1 Nullability} *)

module Null_domain = struct
  type fact = null_fact

  let join a b =
    { a with n_maybe = map2_padded ( || ) true a.n_maybe b.n_maybe }

  let concat a b =
    { n_names = a.n_names @ b.n_names; n_maybe = a.n_maybe @ b.n_maybe }

  let lookup env name =
    let rec go = function
      | [] -> true (* unknown attribute: conservatively maybe-null *)
      | f :: rest -> (
          match index_of name f.n_names with
          | Some i -> List.nth f.n_maybe i
          | None -> go rest)
    in
    go env

  (* Maybe-null of an expression under [env] (innermost fact first).
     [recurse] analyses sublink queries under the same environment. *)
  let rec expr ~recurse ~env e =
    let nullable e = expr ~recurse ~env e in
    match e with
    | Const v -> Value.is_null v
    | TypedNull _ -> true
    | Attr n -> lookup env n
    | Binop (_, a, b) -> nullable a || nullable b
    | Cmp (EqNull, _, _) -> false (* =n is two-valued by construction *)
    | Cmp (_, a, b) -> nullable a || nullable b
    | And (a, b) | Or (a, b) -> nullable a || nullable b
    | Not a -> nullable a
    | IsNull _ -> false
    | Case (whens, els) ->
        (match els with None -> true | Some e -> nullable e)
        || List.exists (fun (_, v) -> nullable v) whens
    | Like (a, _) -> nullable a
    | InList (a, es) -> nullable a || List.exists nullable es
    | FunCall _ -> true (* unknown builtin: conservative *)
    | Sublink s -> (
        match s.kind with
        | Exists -> false
        | Scalar -> (
            (* NULL on empty result — except an argument-less GROUP BY
               collapse, which returns exactly one row, so only the
               aggregate column's own nullability remains (count: never
               NULL; min/max/sum: NULL on empty input, which their
               transfer already reports) *)
            match s.query with
            | Agg { group_by = []; _ } ->
                List.exists Fun.id (recurse ~env s.query).n_maybe
            | _ -> true)
        | AnyOp (_, lhs) | AllOp (_, lhs) ->
            (* three-valued quantified comparison: NULL only if some
               comparison is NULL, i.e. an operand may be NULL *)
            nullable lhs
            || List.exists Fun.id (recurse ~env s.query).n_maybe)

  let base_fact db name =
    match Database.find_opt db name with
    | None -> { n_names = []; n_maybe = [] }
    | Some r ->
        {
          n_names = Schema.names (Relation.schema r);
          n_maybe = Array.to_list (Relation.nullable_columns r);
        }

  let relation_fact r =
    {
      n_names = Schema.names (Relation.schema r);
      n_maybe = Array.to_list (Relation.nullable_columns r);
    }

  let transfer db ~recurse ~env ~inputs q =
    let input_fact () =
      match inputs with
      | [] -> { n_names = []; n_maybe = [] }
      | [ f ] -> f
      | f :: rest -> List.fold_left concat f rest
    in
    match q with
    | Base name -> base_fact db name
    | TableExpr r -> relation_fact r
    | Select (_, _) | Order (_, _) | Limit (_, _) -> input_fact ()
    | Project p ->
        let env = input_fact () :: env in
        {
          n_names = List.map snd p.cols;
          n_maybe = List.map (fun (e, _) -> expr ~recurse ~env e) p.cols;
        }
    | Cross (_, _) | Join (_, _, _) -> input_fact ()
    | LeftJoin (_, _, _) -> (
        match inputs with
        | [ a; b ] ->
            (* unmatched left rows pad the right side with NULLs *)
            concat a { b with n_maybe = List.map (fun _ -> true) b.n_maybe }
        | _ -> input_fact ())
    | Agg a ->
        let genv = input_fact () :: env in
        let group_maybe =
          List.map (fun (e, _) -> expr ~recurse ~env:genv e) a.group_by
        in
        let agg_maybe =
          List.map
            (fun c ->
              (* count never yields NULL; other aggregates do on empty or
                 all-NULL groups *)
              not (String.equal c.agg_func "count"))
            a.aggs
        in
        {
          n_names = List.map snd a.group_by @ List.map (fun c -> c.agg_name) a.aggs;
          n_maybe = group_maybe @ agg_maybe;
        }
    | Union (_, _, _) -> (
        match inputs with
        | [ a; b ] -> { a with n_maybe = map2_padded ( || ) true a.n_maybe b.n_maybe }
        | _ -> input_fact ())
    | Inter (_, _, _) -> (
        match inputs with
        (* an intersection tuple occurs in both sides, so a NULL in the
           result needs a NULL in each *)
        | [ a; b ] -> { a with n_maybe = map2_padded ( && ) true a.n_maybe b.n_maybe }
        | _ -> input_fact ())
    | Diff (_, _, _) -> (
        match inputs with [ a; _ ] -> a | _ -> input_fact ())
end

module Null_engine = Engine (Null_domain)

(** {1 Attribute lineage} *)

module Lin_domain = struct
  type fact = lin_fact

  let join a b =
    { a with l_deps = map2_padded Deps.union Deps.empty a.l_deps b.l_deps }

  let concat a b =
    { l_names = a.l_names @ b.l_names; l_deps = a.l_deps @ b.l_deps }

  let lookup env name =
    let rec go = function
      | [] -> Deps.empty (* unknown attribute: no traceable sources *)
      | f :: rest -> (
          match index_of name f.l_names with
          | Some i -> List.nth f.l_deps i
          | None -> go rest)
    in
    go env

  (* Base columns an expression's value depends on. A quantified or
     scalar sublink contributes the lineage of its output column(s);
     EXISTS contributes none (its value reflects presence, not values). *)
  let rec expr ~recurse ~env e =
    let deps e = expr ~recurse ~env e in
    match e with
    | Const _ | TypedNull _ -> Deps.empty
    | Attr n -> lookup env n
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        Deps.union (deps a) (deps b)
    | Not a | IsNull a | Like (a, _) -> deps a
    | Case (whens, els) ->
        let acc =
          List.fold_left
            (fun acc (c, v) -> Deps.union acc (Deps.union (deps c) (deps v)))
            Deps.empty whens
        in
        Option.fold ~none:acc ~some:(fun e -> Deps.union acc (deps e)) els
    | InList (a, es) ->
        List.fold_left (fun acc e -> Deps.union acc (deps e)) (deps a) es
    | FunCall (_, es) ->
        List.fold_left (fun acc e -> Deps.union acc (deps e)) Deps.empty es
    | Sublink s -> (
        let sub () =
          let f = recurse ~env s.query in
          List.fold_left Deps.union Deps.empty f.l_deps
        in
        match s.kind with
        | Exists -> Deps.empty
        | Scalar -> sub ()
        | AnyOp (_, lhs) | AllOp (_, lhs) -> Deps.union (deps lhs) (sub ()))

  let transfer db ~recurse ~env ~inputs q =
    let input_fact () =
      match inputs with
      | [] -> { l_names = []; l_deps = [] }
      | [ f ] -> f
      | f :: rest -> List.fold_left concat f rest
    in
    match q with
    | Base name -> (
        match Database.find_opt db name with
        | None -> { l_names = []; l_deps = [] }
        | Some r ->
            let names = Schema.names (Relation.schema r) in
            {
              l_names = names;
              l_deps = List.map (fun n -> Deps.singleton (name, n)) names;
            })
    | TableExpr r ->
        let names = Schema.names (Relation.schema r) in
        { l_names = names; l_deps = List.map (fun _ -> Deps.empty) names }
    | Select (_, _) | Order (_, _) | Limit (_, _) -> input_fact ()
    | Project p ->
        let env = input_fact () :: env in
        {
          l_names = List.map snd p.cols;
          l_deps = List.map (fun (e, _) -> expr ~recurse ~env e) p.cols;
        }
    | Cross (_, _) | Join (_, _, _) | LeftJoin (_, _, _) -> input_fact ()
    | Agg a ->
        let genv = input_fact () :: env in
        let group_deps =
          List.map (fun (e, _) -> expr ~recurse ~env:genv e) a.group_by
        in
        let agg_deps =
          List.map
            (fun c ->
              match c.agg_arg with
              | None -> Deps.empty (* COUNT( * ) *)
              | Some e -> expr ~recurse ~env:genv e)
            a.aggs
        in
        {
          l_names = List.map snd a.group_by @ List.map (fun c -> c.agg_name) a.aggs;
          l_deps = group_deps @ agg_deps;
        }
    | Union (_, _, _) -> (
        match inputs with
        | [ a; b ] ->
            { a with l_deps = map2_padded Deps.union Deps.empty a.l_deps b.l_deps }
        | _ -> input_fact ())
    | Inter (_, _, _) | Diff (_, _, _) -> (
        (* result tuples are drawn from the left input *)
        match inputs with [ a; _ ] -> a | _ -> input_fact ())
end

module Lin_engine = Engine (Lin_domain)

(** {1 Cardinality} *)

module Card_domain = struct
  type fact = card

  let join a b =
    { c_lo = min a.c_lo b.c_lo; c_hi = bound_max a.c_hi b.c_hi }

  let transfer db ~recurse:_ ~env:_ ~inputs q =
    let one () = match inputs with [ f ] -> f | _ -> card_top in
    let two () = match inputs with [ a; b ] -> (a, b) | _ -> (card_top, card_top) in
    match q with
    | Base name -> (
        match Database.find_opt db name with
        | None -> card_top
        | Some r -> card_exactly (Relation.cardinality r))
    | TableExpr r -> card_exactly (Relation.cardinality r)
    | Select (_, _) -> { (one ()) with c_lo = 0 }
    (* bag projection preserves cardinality; DISTINCT only shrinks, and
       a nonempty input stays nonempty, so the interval carries over *)
    | Project _ -> one ()
    | Cross (_, _) ->
        let a, b = two () in
        { c_lo = min a.c_lo b.c_lo; c_hi = bound_mul a.c_hi b.c_hi }
    | Join (_, _, _) ->
        let a, b = two () in
        { c_lo = 0; c_hi = bound_mul a.c_hi b.c_hi }
    | LeftJoin (_, _, _) ->
        let a, b = two () in
        (* every left row survives at least once *)
        { c_lo = a.c_lo; c_hi = bound_mul a.c_hi (bound_max (Fin 1) b.c_hi) }
    | Agg a ->
        if a.group_by = [] then { c_lo = 1; c_hi = Fin 1 }
          (* no GROUP BY: exactly one row, even on empty input *)
        else one ()
    | Union (_, _, _) ->
        let a, b = two () in
        { c_lo = min 1 (a.c_lo + b.c_lo); c_hi = bound_add a.c_hi b.c_hi }
    | Inter (_, _, _) ->
        let a, b = two () in
        { c_lo = 0; c_hi = bound_min a.c_hi b.c_hi }
    | Diff (_, _, _) ->
        let a, _ = two () in
        { c_lo = 0; c_hi = a.c_hi }
    | Order (_, _) -> one ()
    | Limit (n, _) ->
        let f = one () in
        {
          c_lo = (if n = 0 then 0 else min f.c_lo 1);
          c_hi = bound_min (Fin n) f.c_hi;
        }
end

module Card_engine = Engine (Card_domain)

(** {1 Combined analysis handle} *)

type t = {
  db : Database.t;
  nulls : Null_engine.t;
  lins : Lin_engine.t;
  cards : Card_engine.t;
}

let create db =
  {
    db;
    nulls = Null_engine.create db;
    lins = Lin_engine.create db;
    cards = Card_engine.create db;
  }

let nullability t ?(env = []) q = Null_engine.query t.nulls ~env q
let lineage t ?(env = []) q = Lin_engine.query t.lins ~env q
let cardinality t q = Card_engine.query t.cards q

let expr_nullable t ~env e =
  Null_domain.expr ~recurse:(fun ~env q -> Null_engine.query t.nulls ~env q) ~env e

let expr_lineage t ~env e =
  Lin_domain.expr ~recurse:(fun ~env q -> Lin_engine.query t.lins ~env q) ~env e

let concat_null = Null_domain.concat
let concat_lin = Lin_domain.concat

let attr_nullable f name =
  match index_of name f.n_names with
  | Some i -> List.nth f.n_maybe i
  | None -> true

let attr_deps f name =
  match index_of name f.l_names with
  | Some i -> List.nth f.l_deps i
  | None -> Deps.empty

(** {1 Per-operator fact dump} *)

let op_name = function
  | Base name -> Printf.sprintf "Base(%s)" name
  | TableExpr r -> Printf.sprintf "TableExpr[%d]" (Relation.cardinality r)
  | Select _ -> "Select"
  | Project { distinct = true; _ } -> "Project distinct"
  | Project _ -> "Project"
  | Cross _ -> "Cross"
  | Join _ -> "Join"
  | LeftJoin _ -> "LeftJoin"
  | Agg _ -> "Agg"
  | Union _ -> "Union"
  | Inter _ -> "Inter"
  | Diff _ -> "Diff"
  | Order _ -> "Order"
  | Limit (n, _) -> Printf.sprintf "Limit(%d)" n

let deps_to_string deps =
  match Deps.elements deps with
  | [] -> "-"
  | elems ->
      "{"
      ^ String.concat ", " (List.map (fun (r, c) -> r ^ "." ^ c) elems)
      ^ "}"

(** [dump t q] renders every operator of [q] (sublink queries included)
    with its cardinality interval and, per output attribute, the
    maybe-null flag and base-column lineage. *)
let dump t q =
  let buf = Buffer.create 1024 in
  let rec walk indent ~nenv ~lenv q =
    let pad = String.make indent ' ' in
    let nf = nullability t ~env:nenv q in
    let lf = lineage t ~env:lenv q in
    let c = cardinality t q in
    Buffer.add_string buf
      (Format.asprintf "%s%s  rows %a\n" pad (op_name q) pp_card c);
    List.iteri
      (fun i name ->
        let maybe = try List.nth nf.n_maybe i with _ -> true in
        let deps = try List.nth lf.l_deps i with _ -> Deps.empty in
        Buffer.add_string buf
          (Printf.sprintf "%s  %-24s %-9s %s\n" pad name
             (if maybe then "null?" else "not-null")
             (deps_to_string deps)))
      nf.n_names;
    let children = inputs q in
    let child_nf =
      List.fold_left
        (fun acc i -> Null_domain.concat acc (nullability t ~env:nenv i))
        { n_names = []; n_maybe = [] }
        children
    in
    let child_lf =
      List.fold_left
        (fun acc i -> Lin_domain.concat acc (lineage t ~env:lenv i))
        { l_names = []; l_deps = [] }
        children
    in
    List.iteri
      (fun k s ->
        let kind =
          match s.kind with
          | Exists -> "exists"
          | Scalar -> "scalar"
          | AnyOp (_, _) -> "any"
          | AllOp (_, _) -> "all"
        in
        Buffer.add_string buf (Printf.sprintf "%s  sublink[%d] %s:\n" pad k kind);
        walk (indent + 4)
          ~nenv:(child_nf :: nenv)
          ~lenv:(child_lf :: lenv)
          s.query)
      (List.concat_map sublinks_of_expr (root_exprs q));
    List.iter (walk (indent + 2) ~nenv ~lenv) children
  in
  walk 0 ~nenv:[] ~lenv:[] q;
  Buffer.contents buf
