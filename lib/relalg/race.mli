(** Dynamic data-race detector: a vector-clock happens-before checker
    over explicitly instrumented access points.

    The engines name their shared mutable cells with stable string
    locations ([vexec.cache], [relation[7].counts_memo], ...) and call
    {!read}/{!write} at each access; synchronization points publish
    happens-before edges with {!release}/{!acquire} (a released edge
    carries the releasing domain's vector clock; acquiring joins it
    into the acquirer's clock). Two accesses to the same location where
    at least one is a write and neither happens-before the other is a
    race: a {!report} carrying both access paths plus the schedule seed
    is recorded (execution is not interrupted).

    The disabled path is near-free — every entry point is gated on a
    single {!Atomic.t} flag load, the same pattern as [Guard.active] —
    so instrumentation stays compiled into the production engine and
    is armed only by tests, [bench racefuzz] and [permcli --race-check].

    Detection is sound for what is instrumented and published: an edge
    the scheduler does not publish (e.g. a raw [Domain.join]) does not
    order accesses, so test harnesses can model {e missing}
    synchronization simply by omitting the edge. *)

type kind = Read | Write

(** One instrumented access, as recorded. *)
type access = {
  a_loc : string;  (** instrumented location (the shared cell) *)
  a_path : string;  (** access-site path / context, may be [""] *)
  a_domain : int;  (** detector slot of the accessing domain *)
  a_kind : kind;
  a_clock : int;  (** accessing domain's own clock component *)
}

type report = {
  r_loc : string;  (** the location both accesses touched *)
  r_first : access;  (** the earlier-recorded access *)
  r_second : access;  (** the conflicting access that exposed the race *)
  r_seed : int option;  (** schedule seed armed at detection time *)
}

val report_to_string : report -> string

(** {1 Arming} *)

(** [arm ?seed ()] clears previous edges, access history and reports,
    records [seed] (the schedule seed, carried into reports) and
    enables the detector. *)
val arm : ?seed:int -> unit -> unit

val disarm : unit -> unit
val is_armed : unit -> bool

(** Reports recorded since {!arm}, in detection order (capped; each
    distinct (location, domain pair, kind pair) is reported once). *)
val reports : unit -> report list

(** {1 Access points} — called by the instrumented engines. *)

(** [read loc] / [write loc] record an access to the shared cell named
    [loc] by the calling domain. No-ops (one flag load) when disarmed. *)
val read : string -> unit

val write : string -> unit

(** Like {!read}/{!write} with an access-site path for the report. *)
val read_at : string -> path:string -> unit

val write_at : string -> path:string -> unit

(** {1 Happens-before edges} — published by the scheduler and the
    synchronization wrappers. *)

(** [release edge] publishes the calling domain's vector clock under
    [edge] (joined with any previous publication) and advances the
    domain's clock: accesses before the release happen-before accesses
    of any domain that subsequently {!acquire}s [edge]. *)
val release : string -> unit

(** [acquire edge] joins the published clock of [edge] (if any) into
    the calling domain's clock. *)
val acquire : string -> unit

(** [with_lock m edge f] is [Mutex.protect m f] that also models the
    mutex as a happens-before edge: acquire after locking, release
    before unlocking. Disarmed cost: exactly [Mutex.protect]. *)
val with_lock : Mutex.t -> string -> (unit -> 'a) -> 'a
