(** Expression and plan simplification: constant folding, boolean
    identities and comparison negation, all chosen to be exact under
    SQL's three-valued logic (e.g. [NOT (a < b)] is [a >= b] even for
    NULLs, and [x AND FALSE] is [FALSE] regardless of [x]).

    The provenance rewrites are fertile ground for these rules: the Gen
    and Left strategies build conditions like
    [(C =n true) OR NOT (... =n true)] around constant sub-terms, and
    the [Jsub] of an EXISTS sublink is the constant [true].

    Every applied rule instance is reported through {!Rewrite_trace}
    (rule name plus Lint-style operator path), so the translation
    validator ({!Certify}) can discharge a proof obligation per
    application. A few deliberately broken rule variants are embedded
    behind the test-only [Rewrite_trace.mutant] hook — see the mutation
    harness in [test/test_certify.ml]. *)

open Algebra

let vtrue = Const Value.vtrue
let vfalse = Const Value.vfalse

let is_const = function Const _ | TypedNull _ -> true | _ -> false

let const_value = function
  | Const v -> v
  | TypedNull _ -> Value.Null
  | _ -> invalid_arg "const_value"

(* Constant-fold a pure operation, keeping the original expression if
   evaluation raises (e.g. division by zero must stay a runtime error
   for rows that actually reach it). *)
let try_fold original f = try f () with Value.Type_clash _ -> original

let negate_cmp = function
  | Eq -> Some Neq
  | Neq -> Some Eq
  | Lt -> Some Geq
  | Leq -> Some Gt
  | Gt -> Some Leq
  | Geq -> Some Lt
  | EqNull ->
      (* =n is two-valued; NOT (a =n b) has no cmpop form. The mutant
         pretends it negates like plain equality — wrong under NULLs. *)
      if Rewrite_trace.mutant "simp-not-eqnull" then Some Neq else None

let rec expr (e : Algebra.expr) : Algebra.expr =
  match e with
  | Const _ | TypedNull _ | Attr _ -> e
  | Binop (op, a, b) -> (
      let a = expr a and b = expr b in
      let folded = Binop (op, a, b) in
      match (a, b) with
      | (Const _ | TypedNull _), (Const _ | TypedNull _) ->
          try_fold folded (fun () ->
              let va = const_value a and vb = const_value b in
              Const
                (match op with
                | Add -> Value.add va vb
                | Sub -> Value.sub va vb
                | Mul -> Value.mul va vb
                | Div -> Value.div va vb
                | Mod -> Value.modulo va vb
                | Concat -> Value.concat va vb))
      | _ -> folded)
  | Cmp (op, a, b) -> (
      let a = expr a and b = expr b in
      let folded = Cmp (op, a, b) in
      match (a, b) with
      | (Const _ | TypedNull _), (Const _ | TypedNull _) ->
          try_fold folded (fun () ->
              Const (Eval.cmp3 op (const_value a) (const_value b)))
      | _ -> folded)
  | And (a, b) -> (
      match (expr a, expr b) with
      (* mutant: treats [x AND NULL] as [x] — wrong when x is TRUE *)
      | (Const Value.Null | TypedNull _), x
        when Rewrite_trace.mutant "simp-and-null" ->
          x
      | x, (Const Value.Null | TypedNull _)
        when Rewrite_trace.mutant "simp-and-null" ->
          x
      | Const (Value.Bool false), _ | _, Const (Value.Bool false) -> vfalse
      | Const (Value.Bool true), x | x, Const (Value.Bool true) -> x
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (expr a, expr b) with
      | Const (Value.Bool true), _ | _, Const (Value.Bool true) -> vtrue
      | Const (Value.Bool false), x | x, Const (Value.Bool false) -> x
      | a, b -> Or (a, b))
  | Not a -> (
      match expr a with
      | Const v -> try_fold (Not (Const v)) (fun () -> Const (Value.not3 v))
      | Not inner -> inner
      | Cmp (op, x, y) as cmp -> (
          match negate_cmp op with
          | Some op' -> Cmp (op', x, y)
          | None -> Not cmp)
      | a -> Not a)
  | IsNull a -> (
      match expr a with
      | (Const _ | TypedNull _) as c -> Const (Value.Bool (Value.is_null (const_value c)))
      | a -> IsNull a)
  | Case (whens, els) -> (
      let els = Option.map expr els in
      (* drop branches with constant-false conditions; stop at the first
         constant-true condition *)
      let rec prune = function
        | [] -> ([], els)
        | (c, x) :: rest -> (
            match expr c with
            | Const (Value.Bool true) -> ([], Some (expr x))
            | Const (Value.Bool false) | Const Value.Null | TypedNull _ -> prune rest
            | c ->
                let whens, final = prune rest in
                ((c, expr x) :: whens, final))
      in
      match prune whens with
      | [], Some e -> e
      | [], None -> Const Value.Null
      | whens, final -> Case (whens, final))
  | Like (a, pattern) -> (
      match expr a with
      | Const (Value.String s) -> Const (Value.Bool (Builtin.like_match ~pattern s))
      | Const Value.Null | TypedNull _ -> Const Value.Null
      | a -> Like (a, pattern))
  | InList (a, es) -> (
      let a = expr a and es = List.map expr es in
      let folded = InList (a, es) in
      if is_const a && List.for_all is_const es then
        try_fold folded (fun () ->
            let x = const_value a in
            Const
              (List.fold_left
                 (fun acc e -> Value.or3 acc (Eval.cmp3 Eq x (const_value e)))
                 Value.vfalse es))
      else folded)
  | FunCall (name, args) -> FunCall (name, List.map expr args)
  | Sublink ({ query; _ } as s) when produces_no_rows query -> (
      (* A sublink whose body provably produces no rows is a constant
         under 3VL, even for a NULL left-hand side: EXISTS is FALSE,
         [op ANY] is FALSE, [op ALL] is TRUE, and a scalar sublink is
         NULL typed by its single output column. The optimizer's
         unsat-fold exposes such bodies (e.g. when a correlated body's
         condition is proved never TRUE, possibly under rename
         projections), and folding the atom keeps the plan free of
         vestigial correlation. *)
      match s.kind with
      | Exists -> vfalse
      | AnyOp _ -> vfalse
      | AllOp _ -> vtrue
      | Scalar -> (
          match query with
          | TableExpr rel -> (
              match Schema.types (Relation.schema rel) with
              | [ ty ] -> TypedNull ty
              | _ -> Sublink s)
          | _ -> Sublink s))
  | Sublink s -> Sublink { s with kind = sublink_kind s.kind }

(* Emptiness evident from the plan shape alone: an empty literal
   relation, possibly under projections or selections (which cannot add
   rows). Grouping aggregation is deliberately absent: an [Agg] without
   group keys emits one row even over empty input. *)
and produces_no_rows = function
  | TableExpr rel -> Relation.cardinality rel = 0
  | Project { proj_input; _ } -> produces_no_rows proj_input
  | Select ((Const (Value.Bool false) | Const Value.Null | TypedNull _), _) ->
      (* a selection keeps a row only when its condition is TRUE *)
      true
  | Select (_, input) -> produces_no_rows input
  | _ -> false

and sublink_kind = function
  | (Exists | Scalar) as k -> k
  | AnyOp (op, lhs) -> AnyOp (op, expr lhs)
  | AllOp (op, lhs) -> AllOp (op, expr lhs)

let sublink_seg k = Printf.sprintf "sublink[%d]" k

(* Path-carrying plan recursion, matching Lint's path conventions:
   [op_label] segments, ["[left]"]/["[right]"] qualifiers on binary
   operators, and [sublink[k]] segments counted across the node's
   expressions in Lint's enumeration order. *)
let rec query_at (prefix : string list) (q : Algebra.query) : Algebra.query =
  let here = prefix @ [ Guard.op_label q ] in
  let child qual i = query_at (prefix @ [ Guard.op_label q ^ qual ]) i in
  let counter = ref 0 in
  let sub e =
    map_expr_query
      (fun sq ->
        incr counter;
        query_at (here @ [ sublink_seg !counter ]) sq)
      e
  in
  (* Phase 1: recurse into child queries and sublink queries. *)
  let q1 =
    match q with
    | Base _ | TableExpr _ -> q
    | Select (c, i) ->
        let c = sub c in
        Select (c, child "" i)
    | Project p ->
        let cols = List.map (fun (e, n) -> (sub e, n)) p.cols in
        Project { p with cols; proj_input = child "" p.proj_input }
    | Cross (a, b) ->
        let a = child "[left]" a in
        Cross (a, child "[right]" b)
    | Join (c, a, b) ->
        let c = sub c in
        let a = child "[left]" a in
        Join (c, a, child "[right]" b)
    | LeftJoin (c, a, b) ->
        let c = sub c in
        let a = child "[left]" a in
        LeftJoin (c, a, child "[right]" b)
    | Agg a ->
        let group_by = List.map (fun (e, n) -> (sub e, n)) a.group_by in
        let aggs =
          List.map
            (fun call -> { call with agg_arg = Option.map sub call.agg_arg })
            a.aggs
        in
        Agg { group_by; aggs; agg_input = child "" a.agg_input }
    | Union (s, a, b) ->
        let a = child "[left]" a in
        Union (s, a, child "[right]" b)
    | Inter (s, a, b) ->
        let a = child "[left]" a in
        Inter (s, a, child "[right]" b)
    | Diff (s, a, b) ->
        let a = child "[left]" a in
        Diff (s, a, child "[right]" b)
    | Order (keys, i) ->
        let keys = List.map (fun (e, d) -> (sub e, d)) keys in
        Order (keys, child "" i)
    | Limit (n, i) -> Limit (n, child "" i)
  in
  (* Phase 2: fold the node's own expressions. *)
  let q2 =
    match q1 with
    | Select (c, i) -> Select (expr c, i)
    | Project p ->
        Project { p with cols = List.map (fun (e, n) -> (expr e, n)) p.cols }
    | Join (c, a, b) -> Join (expr c, a, b)
    | LeftJoin (c, a, b) -> LeftJoin (expr c, a, b)
    | Agg a ->
        Agg
          {
            a with
            group_by = List.map (fun (e, n) -> (expr e, n)) a.group_by;
            aggs =
              List.map
                (fun call -> { call with agg_arg = Option.map expr call.agg_arg })
                a.aggs;
          }
    | Order (keys, i) -> Order (List.map (fun (e, d) -> (expr e, d)) keys, i)
    | q -> q
  in
  Rewrite_trace.emit ~rule:"fold-exprs" ~path:here ~before:q1 ~after:q2;
  (* Phase 3: structural rules enabled by the folding. *)
  match q2 with
  | Select (Const (Value.Bool true), input) ->
      Rewrite_trace.emit ~rule:"select-true" ~path:here ~before:q2 ~after:input;
      input
  | Select ((Const Value.Null | TypedNull _), input)
    when Rewrite_trace.mutant "simp-select-null" ->
      (* mutant: drops a selection whose condition folded to NULL,
         treating UNKNOWN as TRUE *)
      Rewrite_trace.emit ~rule:"select-true" ~path:here ~before:q2 ~after:input;
      input
  | Join (Const (Value.Bool true), a, b) ->
      let after = Cross (a, b) in
      Rewrite_trace.emit ~rule:"join-true-to-cross" ~path:here ~before:q2 ~after;
      after
  | q -> q

(** [query q] simplifies every expression in the plan (including inside
    sublink queries) and drops selections whose condition folded to
    [TRUE]. *)
let query (q : Algebra.query) : Algebra.query = query_at [] q
