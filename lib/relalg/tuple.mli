(** Tuples: arrays of values, treated as immutable.

    Tuple identity ({!equal}, {!hash}) treats [Null] as equal to [Null]
    and numerically equal ints/floats as equal — the SQL notion used by
    DISTINCT, GROUP BY and bag counting. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t
val concat : t -> t -> t

(** [project t positions] keeps the values at [positions], in order. *)
val project : t -> int list -> t

(** [project_arr t positions] is {!project} over a precomputed
    positions array — the form hot per-row paths use, avoiding the
    per-call list-to-array conversion. *)
val project_arr : t -> int array -> t

(** All-NULL tuple of arity [n] — the [null(R)] padding tuple of the
    Gen strategy (Section 3.3). *)
val nulls : int -> t

val equal : t -> t -> bool

(** Total order (lexicographic over {!Value.compare_total}). *)
val compare : t -> t -> int

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hashtbl key module over tuple identity. *)
module Key : Hashtbl.HashedType with type t = t

module Tbl : Hashtbl.S with type key = t
