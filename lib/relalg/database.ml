(** A database: a catalog of named base relations, plus a catalog of
    named views (stored algebra queries, inlined by the SQL analyzer —
    which is how Perm lets provenance queries be stored and reused). *)

type t = {
  catalog : (string, Relation.t) Hashtbl.t;
  views : (string, Algebra.query) Hashtbl.t;
  uid : int;  (** globally unique per [create]d database *)
  mutable version : int;  (** bumped by every catalog mutation *)
}

exception Unknown_relation of string

(* [uid]/[version] together identify a catalog state: statistics caches
   (see Stats) key on the pair, so a mutated or freshly rebuilt catalog
   never serves stale statistics. The counter is atomic because server
   sessions build overlay databases from multiple domains. *)
let next_uid = Atomic.make 0

let create () =
  {
    catalog = Hashtbl.create 16;
    views = Hashtbl.create 4;
    uid = Atomic.fetch_and_add next_uid 1;
    version = 0;
  }

let uid db = db.uid
let version db = db.version

(** [add db name rel] registers or replaces relation [name]. *)
let add db name rel =
  db.version <- db.version + 1;
  Hashtbl.replace db.catalog name rel

let of_list pairs =
  let db = create () in
  List.iter (fun (name, rel) -> add db name rel) pairs;
  db

let mem db name = Hashtbl.mem db.catalog name

let find db name =
  match Hashtbl.find_opt db.catalog name with
  | Some rel -> rel
  | None -> raise (Unknown_relation name)

let find_opt db name = Hashtbl.find_opt db.catalog name

let names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.catalog [] |> List.sort compare

(** {1 Views} *)

(** [add_view db name q] registers or replaces view [name]. *)
let add_view db name q =
  db.version <- db.version + 1;
  Hashtbl.replace db.views name q

let find_view db name = Hashtbl.find_opt db.views name
let mem_view db name = Hashtbl.mem db.views name

let view_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.views [] |> List.sort compare

(** [drop db name] removes a table or view; [false] when neither exists. *)
let drop db name =
  if Hashtbl.mem db.catalog name then begin
    db.version <- db.version + 1;
    Hashtbl.remove db.catalog name;
    true
  end
  else if Hashtbl.mem db.views name then begin
    db.version <- db.version + 1;
    Hashtbl.remove db.views name;
    true
  end
  else false

(** Total number of tuples across all relations (bench reporting). *)
let total_tuples db =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinality rel) db.catalog 0
