(** Translation validation for the rewrite pipeline.

    The {!Simplify} and {!Optimizer} passes report every applied rule
    instance through {!Rewrite_trace}; this module turns each report
    into a proof obligation — "the before and after subplans are
    equivalent" (or, for the dead-column [prune] rule, "the after plan
    is the before plan projected onto its remaining columns") — and
    discharges it — symbolically where possible, by bounded testing
    otherwise.

    The symbolic stage ({!Symbolic}) proves filter-equivalence of the
    two sides' flattened selection/join conditions, or that a folded
    condition never holds; a [Proved] verdict is an actual proof,
    recorded in the report's [r_proved] list. Obligations the solver
    cannot settle fall back to static checks plus bounded equivalence
    on small witness databases derived from the subplans' own
    constants.

    The dynamic check is {e small-scope}: agreement on the witness
    databases is strong evidence, not a proof (see DESIGN.md §10 and
    §12 for the soundness caveats). A reported failure, however, is a
    concrete counterexample: the certificate carries the rule name, the
    operator path, the witness database and the differing rows. *)

(** One applied rewrite to validate. *)
type obligation = {
  ob_rule : string;  (** e.g. ["pushdown-into-join"], ["prune"] *)
  ob_path : string list;  (** Lint-style operator path of the site *)
  ob_before : Algebra.query;
  ob_after : Algebra.query;
}

(** A refuted (or statically rejected) obligation. *)
type failure = {
  f_rule : string;
  f_path : string list;
  f_stage : string;
      (** which check failed: ["schema"], ["typecheck"], ["dataflow"]
          or ["witness"] *)
  f_message : string;
  f_witness : (string * Relation.t) list;
      (** the refuting witness database; empty for static failures *)
  f_only_before : Tuple.t list;
  f_only_after : Tuple.t list;
}

type report = {
  r_total : int;  (** proof obligations checked *)
  r_predicates : int;
      (** the subset that are predicate obligations — applications of
          rules that only fold, move or derive selection/join
          conditions over an unchanged operator tree; the denominator
          for the symbolic discharge rate *)
  r_compared : int;  (** witness evaluations actually compared *)
  r_proved : (string * string) list;
      (** obligations discharged symbolically (rule, rendered path) —
          proofs on all databases, not bounded evidence; these skip
          witness testing entirely *)
  r_skips : (string * string) list;
      (** dynamic checks skipped (rendered path, reason) — e.g.
          untypable correlation guesses or budget trips *)
  r_failures : failure list;  (** deepest path first *)
}

(** The rules classified as predicate obligations, with one name per
    entry of {!Rewrite_trace.rules} they cover. *)
val predicate_rules : string list

val is_predicate_rule : string -> bool
val empty_report : report
val merge : report -> report -> report

(** No failed obligations (skips do not count as failures). *)
val ok : report -> bool

exception Certify_error of report

(** Raise {!Certify_error} if the report has failures. *)
val fail_on : report -> unit

(** Validate a list of trace entries (deduplicated structurally)
    against [db]. [budget] bounds each witness evaluation; on a trip
    the witness is skipped, never failed. *)
val check_entries :
  ?budget:Guard.budget -> Database.t -> Rewrite_trace.entry list -> report

(** Run the stock optimizer pipeline ({!Simplify}, selection pushdown,
    dead-column pruning) under a tracer and certify every applied rule.
    Returns the optimized plan together with the certificate. *)
val optimize :
  ?prune:bool ->
  ?budget:Guard.budget ->
  Database.t ->
  Algebra.query ->
  Algebra.query * report

(** The small witness databases the validator derives for a plan:
    value pools seeded from the plan's constants (each constant also
    contributes its boundary neighbours), NULL-rich variants, a
    duplicated row for bag sensitivity, and one all-empty variant.
    Exposed so provenance-level oracle checks can reuse the
    derivation. Empty if the plan references a non-stored relation. *)
val witness_databases :
  Database.t -> Algebra.query -> (string * Relation.t) list list

val failure_to_string : ?verbose:bool -> failure -> string
val report_to_string : ?verbose:bool -> report -> string
