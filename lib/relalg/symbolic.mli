(** A small symbolic constraint solver for {!Algebra} predicates under
    SQL's three-valued logic.

    The solver decides questions about the {e truth value} a predicate
    can take over any row — TRUE, FALSE or NULL — by a DPLL-style case
    split over the boolean structure, backed by a conjunction theory of

    - one interval domain per column (comparisons against constants,
      with integer bound tightening when the column's type is known),
    - an equality congruence closure (union-find) over the columns
      joined by [=] / [=n] conjuncts, sharing each class's interval,
    - explicit null / not-null facts per column — comparisons assert
      their operands non-null, [IS NULL] pins them, and externally
      known never-null columns (from the {!Dataflow} nullability
      lattice) seed the state.

    Sub-expressions outside this theory (arithmetic over columns,
    [LIKE], [CASE], function calls, sublinks) are treated as {e opaque
    atoms}: free three-valued variables keyed by structural equality,
    so purely propositional facts about them still hold
    ([P AND x < 1 AND x > 2] is unsatisfiable whatever [P] means).

    {b Soundness asymmetry.} The abstraction over-approximates
    satisfiability: a "satisfying assignment" may be spurious (opaque
    atoms are freer than the expressions they stand for), but a
    reported {e contradiction} is genuine. Consequently only one
    direction of each verdict is a theorem:

    - {!satisfiable} / {!falsifiable}: [Refuted] is a theorem ("no row
      makes this TRUE/FALSE"); [Proved] merely reports a consistent
      abstract assignment.
    - {!implies} / {!equiv} / {!always_true} / {!never_true}: [Proved]
      is a theorem; [Refuted] merely reports an abstract countermodel.

    Every query is bounded by a fuel budget; overbudget or
    out-of-theory goals (e.g. incomparably typed bounds) return
    [Unknown], never a wrong answer. *)

type verdict = Proved | Refuted | Unknown

val verdict_to_string : verdict -> string

(** Solver context: fuel plus the external facts the state is seeded
    with. *)
type ctx

(** [ctx ?fuel ?types ?notnull ()]:
    - [fuel] bounds the total number of case-split steps and literal
      assertions per query (default [4096]);
    - [types] gives the static type of a column where known — enables
      integer bound tightening ([x > 1 AND x < 2] is unsatisfiable for
      an [TInt] column, satisfiable for a float);
    - [notnull] lists columns proved never-null (e.g. by the
      {!Dataflow} nullability analysis); [IS NULL] on them refutes. *)
val ctx :
  ?fuel:int ->
  ?types:(string -> Vtype.t option) ->
  ?notnull:string list ->
  unit ->
  ctx

(** Can the predicate evaluate to TRUE on some row? [Refuted] means it
    never does — a selection with this condition keeps no rows. *)
val satisfiable : ctx -> Algebra.expr -> verdict

(** Can the predicate evaluate to FALSE on some row? [Refuted] together
    with [satisfiable = Refuted] means the predicate is always NULL. *)
val falsifiable : ctx -> Algebra.expr -> verdict

(** [implies ctx a b]: on every row where [a] is TRUE, is [b] TRUE?
    This is implication between {e filters} (NULL on the right refutes
    it), so [Proved] licenses dropping [b] from a conjunction
    containing [a]. *)
val implies : ctx -> Algebra.expr -> Algebra.expr -> verdict

(** Filter equivalence: [implies a b] and [implies b a] — the two
    predicates select exactly the same rows. *)
val equiv : ctx -> Algebra.expr -> Algebra.expr -> verdict

(** Is the predicate TRUE on every row? ([Proved] licenses dropping the
    enclosing selection.) *)
val always_true : ctx -> Algebra.expr -> verdict

(** Is the predicate never TRUE on any row? (= [satisfiable] refuted;
    [Proved] licenses folding the enclosing selection to the empty
    relation.) *)
val never_true : ctx -> Algebra.expr -> verdict

(** [simplify ctx e] is a filter-equivalent simplification of [e]:
    [Const false] when unsatisfiable, [Const true] when tautological,
    otherwise [e] with conjuncts implied by the remaining ones dropped.
    Only valid where [e] is used as a filter (selection / join
    condition) — TRUE-equivalence, not value equivalence. *)
val simplify : ctx -> Algebra.expr -> Algebra.expr
