(** Cardinality and cost estimation: an abstract interpretation over
    {!Algebra.query} run as a {!Dataflow} domain.

    The fact of a subplan is its estimated output row count plus
    per-attribute distinct-value counts and null fractions (seeded from
    {!Stats} at base relations and propagated through every operator),
    and the cumulative cost — in tuples touched — of evaluating the
    subtree.

    Selectivity of a predicate routes each conjunct through the
    {!Symbolic} interval solver first — a proved-unsatisfiable
    condition estimates exactly 0 rows, a proved tautology passes the
    input through — and falls back to histogram lookups (equality and
    range comparisons against constants), NDV containment (equality
    between attributes), null fractions ([IS NULL]) and fixed guesses
    for the opaque remainder.

    Sublinks cost one evaluation of their query per distinct binding of
    their free attributes (mirroring the evaluator's memoization):
    uncorrelated sublinks are paid once, correlated ones
    [min(rows, Π ndv(free))] times. The per-strategy cost differences
    the Advisor ranks — Gen's CrossBase pair count, Left's outer-join
    fanout, Move/Unn's rewrite sizes — all fall out of estimating each
    strategy's rewritten plan with these operator formulas.

    Everything is total: unknown relations and attributes fall back to
    defaults; no plan makes the estimator raise.

    A per-process feedback table maps plan fingerprints to observed
    outcomes (actual row counts, or Guard budget trips): the Advisor
    consults it to re-rank repeated queries whose estimates proved
    wrong — re-ranking only, never mid-query re-optimization. *)

open Algebra

type colinfo = {
  ci_ndv : float;  (** estimated distinct values of this attribute *)
  ci_null : float;  (** estimated null fraction *)
  ci_stats : Stats.column option;
      (** histogram-bearing base statistics, where still traceable *)
}

type fact = {
  e_names : string list;
  e_cols : colinfo list;
  e_rows : float;  (** estimated output rows *)
  e_cost : float;  (** cumulative tuples-touched cost of the subtree *)
}

let top_col = { ci_ndv = 1000.0; ci_null = 0.5; ci_stats = None }
let default_rows = 1000.0

(* Selectivity guesses for predicates outside the statistics theory —
   the classic System R defaults. *)
let sel_range = 1.0 /. 3.0
let sel_opaque = 1.0 /. 3.0
let sel_like = 0.25
let sel_sublink = 0.5

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let col_of_stats (c : Stats.column) =
  { ci_ndv = c.Stats.c_ndv; ci_null = c.Stats.c_null_frac; ci_stats = Some c }

let fact_of_table (t : Stats.table) =
  let rows = float_of_int t.Stats.t_rows in
  {
    e_names = List.map (fun c -> c.Stats.c_name) t.Stats.t_cols;
    e_cols = List.map col_of_stats t.Stats.t_cols;
    e_rows = rows;
    e_cost = rows;
  }

(* ------------------------------------------------------------------ *)
(* The domain                                                          *)
(* ------------------------------------------------------------------ *)

module Est_domain = struct
  type nonrec fact = fact

  let join a b =
    let widen x y =
      {
        ci_ndv = Float.max x.ci_ndv y.ci_ndv;
        ci_null = Float.max x.ci_null y.ci_null;
        ci_stats = x.ci_stats;
      }
    in
    {
      a with
      e_cols = Dataflow.map2_padded widen top_col a.e_cols b.e_cols;
      e_rows = Float.max a.e_rows b.e_rows;
      e_cost = Float.max a.e_cost b.e_cost;
    }

  let concat a b =
    {
      e_names = a.e_names @ b.e_names;
      e_cols = a.e_cols @ b.e_cols;
      e_rows = a.e_rows;
      e_cost = a.e_cost;
    }

  let lookup env name =
    let rec go = function
      | [] -> top_col
      | f :: rest -> (
          match Dataflow.index_of name f.e_names with
          | Some i -> List.nth f.e_cols i
          | None -> go rest)
    in
    go env

  let to_num = function
    | Value.Int i -> Some (float_of_int i)
    | Value.Float f -> Some f
    | Value.Bool b -> Some (if b then 1.0 else 0.0)
    | _ -> None

  (* Selectivity of one conjunct against an environment of facts
     (innermost scope first). Sublink queries are estimated through
     [recurse]; their evaluation cost is accounted separately by
     [sublinks_cost], not here. *)
  let rec conjunct_sel ~recurse ~env c =
    let sel e = conjunct_sel ~recurse ~env e in
    let eq_sel ci v =
      (1.0 -. ci.ci_null)
      *.
      match (ci.ci_stats, Option.bind v to_num) with
      | Some st, Some x -> Stats.frac_eq st x
      | _ -> 1.0 /. Float.max 1.0 ci.ci_ndv
    in
    let cmp_const op ci v =
      match (op, ci.ci_stats, Option.bind v to_num) with
      | (Eq | EqNull), _, _ -> eq_sel ci v
      | Neq, _, _ -> clamp01 ((1.0 -. ci.ci_null) *. (1.0 -. (1.0 /. Float.max 1.0 ci.ci_ndv)))
      | Leq, Some st, Some x -> (1.0 -. ci.ci_null) *. Stats.frac_le st x
      | Lt, Some st, Some x ->
          (1.0 -. ci.ci_null)
          *. Float.max 0.0 (Stats.frac_le st x -. Stats.frac_eq st x)
      | Gt, Some st, Some x ->
          (1.0 -. ci.ci_null) *. (1.0 -. Stats.frac_le st x)
      | Geq, Some st, Some x ->
          (1.0 -. ci.ci_null)
          *. Float.min 1.0 (1.0 -. Stats.frac_le st x +. Stats.frac_eq st x)
      | _ -> (1.0 -. ci.ci_null) *. sel_range
    in
    match c with
    | Const (Value.Bool true) -> 1.0
    | Const (Value.Bool false) | Const Value.Null | TypedNull _ -> 0.0
    | And (a, b) -> sel a *. sel b
    | Or (a, b) ->
        let sa = sel a and sb = sel b in
        clamp01 (sa +. sb -. (sa *. sb))
    | Not (IsNull (Attr n)) -> clamp01 (1.0 -. (lookup env n).ci_null)
    | Not a -> clamp01 (1.0 -. sel a)
    | IsNull (Attr n) -> (lookup env n).ci_null
    | IsNull _ -> 0.1
    | Cmp (op, Attr n, Const v) -> cmp_const op (lookup env n) (Some v)
    | Cmp (op, Const v, Attr n) ->
        let flip = function
          | Lt -> Gt
          | Leq -> Geq
          | Gt -> Lt
          | Geq -> Leq
          | o -> o
        in
        cmp_const (flip op) (lookup env n) (Some v)
    | Cmp ((Eq | EqNull), Attr a, Attr b) ->
        (* NDV containment: the smaller domain is assumed contained in
           the larger, so each pairing matches with 1/max(ndv) *)
        let ca = lookup env a and cb = lookup env b in
        (1.0 -. ca.ci_null) *. (1.0 -. cb.ci_null)
        /. Float.max 1.0 (Float.max ca.ci_ndv cb.ci_ndv)
    | Cmp (_, Attr _, Attr _) -> sel_range
    | Cmp ((Eq | EqNull), _, _) -> sel_opaque /. 3.0
    | Cmp (_, _, _) -> sel_range
    | InList (Attr n, es) ->
        let ci = lookup env n in
        clamp01 (float_of_int (List.length es) *. (1.0 /. Float.max 1.0 ci.ci_ndv))
        *. (1.0 -. ci.ci_null)
    | InList (_, es) ->
        clamp01 (float_of_int (List.length es) *. (sel_opaque /. 3.0))
    | Like (_, _) -> sel_like
    | Sublink s -> (
        match s.kind with
        | Exists ->
            (* nonempty estimate ⇒ most outer rows find a witness *)
            if (recurse ~env s.query).e_rows >= 1.0 then 0.75 else 0.1
        | Scalar -> sel_sublink
        | AnyOp ((Eq | EqNull), lhs) ->
            (* containment: the outer value hits the sublink's value
               set with probability min(1, ndv_sub / ndv_lhs) *)
            let sub = recurse ~env s.query in
            if sub.e_rows = 0.0 then 0.0
            else
              let sub_ndv =
                match sub.e_cols with
                | c :: _ -> Float.min c.ci_ndv sub.e_rows
                | [] -> sub.e_rows
              in
              let lhs_ndv =
                match lhs with
                | Attr n -> (lookup env n).ci_ndv
                | Const _ -> 1.0
                | _ -> default_rows
              in
              clamp01 (sub_ndv /. Float.max 1.0 lhs_ndv)
        | AnyOp (_, _) -> if (recurse ~env s.query).e_rows = 0.0 then 0.0 else sel_sublink
        | AllOp (_, _) ->
            (* vacuously true on an empty sublink *)
            if (recurse ~env s.query).e_rows = 0.0 then 1.0 else sel_sublink)
    | Case _ | FunCall _ | Binop _ | Attr _ | Const _ -> sel_opaque

  (* Selectivity of a whole condition: the Symbolic solver first (its
     verdicts are theorems — see symbolic.mli), then the per-conjunct
     product. A cross-conjunct contradiction ([x < 1 AND x > 2]) is
     caught by the whole-condition query even though each conjunct
     alone looks innocent. *)
  let selectivity ~recurse ~env cond =
    let sctx = Symbolic.ctx () in
    match Symbolic.never_true sctx cond with
    | Symbolic.Proved -> 0.0
    | _ -> (
        match Symbolic.always_true sctx cond with
        | Symbolic.Proved -> 1.0
        | _ ->
            List.fold_left
              (fun acc c ->
                let s =
                  match Symbolic.never_true sctx c with
                  | Symbolic.Proved -> 0.0
                  | _ -> (
                      match Symbolic.always_true sctx c with
                      | Symbolic.Proved -> 1.0
                      | _ -> conjunct_sel ~recurse ~env c)
                in
                acc *. s)
              1.0 (conjuncts cond))

  (* Evaluation cost of the sublinks of [exprs]: one evaluation of the
     sublink plan per distinct binding of its free attributes, capped
     at [rows] (the evaluator memoizes per binding); an uncorrelated
     sublink has no frees and is paid exactly once. *)
  let sublinks_cost db ~recurse ~env ~rows exprs =
    List.fold_left
      (fun acc (s : sublink) ->
        let sub = recurse ~env s.query in
        let frees = Scope.free_of_query db s.query in
        let bindings =
          if frees = [] then Float.min 1.0 rows
          else
            Float.min rows
              (List.fold_left
                 (fun acc n -> acc *. Float.max 1.0 (lookup env n).ci_ndv)
                 1.0 frees)
        in
        acc +. (bindings *. sub.e_cost) +. rows)
      0.0
      (List.concat_map sublinks_of_expr exprs)

  (* Scale a column's NDV down when the operator keeps [kept] of [of_]
     input rows (no value correlation assumed: min(ndv, kept)). *)
  let shrink rows cols =
    List.map (fun c -> { c with ci_ndv = Float.min c.ci_ndv (Float.max 1.0 rows) }) cols

  let has_equi_conjunct db left_names right_names cond =
    let all_in names e =
      List.for_all (fun n -> List.mem n names) (Scope.refs_of_expr db e)
    in
    List.exists
      (fun c ->
        match c with
        | Cmp ((Eq | EqNull), a, b) when not (has_sublink c) ->
            (all_in left_names a && all_in right_names b)
            || (all_in right_names a && all_in left_names b)
        | _ -> false)
      (conjuncts cond)

  let transfer db ~recurse ~env ~inputs q =
    let input_fact () =
      match inputs with
      | [] -> { e_names = []; e_cols = []; e_rows = default_rows; e_cost = 0.0 }
      | [ f ] -> f
      | f :: rest -> List.fold_left concat f rest
    in
    let pair () =
      match inputs with
      | [ a; b ] -> (a, b)
      | _ -> (input_fact (), input_fact ())
    in
    match q with
    | Base name -> (
        let stats = Stats.of_db db in
        match Stats.table stats name with
        | Some t -> fact_of_table t
        | None ->
            { e_names = []; e_cols = []; e_rows = default_rows; e_cost = default_rows })
    | TableExpr r -> fact_of_table (Stats.of_relation r)
    | Select (cond, _) ->
        let f = input_fact () in
        let env' = f :: env in
        let s = selectivity ~recurse ~env:env' cond in
        let rows = f.e_rows *. s in
        let sub = sublinks_cost db ~recurse ~env:env' ~rows:f.e_rows [ cond ] in
        {
          e_names = f.e_names;
          e_cols = shrink rows f.e_cols;
          e_rows = rows;
          e_cost = f.e_cost +. f.e_rows +. sub;
        }
    | Project p ->
        let f = input_fact () in
        let env' = f :: env in
        let cols =
          List.map
            (fun (e, _) ->
              match e with
              | Attr n -> lookup env' n
              | Const _ | TypedNull _ -> { ci_ndv = 1.0; ci_null = 0.0; ci_stats = None }
              | _ ->
                  { ci_ndv = Float.max 1.0 f.e_rows; ci_null = 0.0; ci_stats = None })
            p.cols
        in
        let rows =
          if not p.distinct then f.e_rows
          else
            (* distinct groups bounded by the product of column NDVs *)
            Float.min f.e_rows
              (List.fold_left (fun acc c -> acc *. Float.max 1.0 c.ci_ndv) 1.0 cols)
        in
        let sub =
          sublinks_cost db ~recurse ~env:env' ~rows:f.e_rows
            (List.map fst p.cols)
        in
        {
          e_names = List.map snd p.cols;
          e_cols = shrink rows cols;
          e_rows = rows;
          e_cost = f.e_cost +. f.e_rows +. sub;
        }
    | Cross (_, _) ->
        let a, b = pair () in
        let rows = a.e_rows *. b.e_rows in
        {
          e_names = a.e_names @ b.e_names;
          e_cols = a.e_cols @ b.e_cols;
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. rows;
        }
    | Join (cond, _, _) ->
        let a, b = pair () in
        let joined = concat a b in
        let env' = joined :: env in
        let s = selectivity ~recurse ~env:env' cond in
        let rows = a.e_rows *. b.e_rows *. s in
        let pairs =
          if has_equi_conjunct db a.e_names b.e_names cond then
            (* hash join: build + probe + output *)
            a.e_rows +. b.e_rows +. rows
          else a.e_rows *. b.e_rows
        in
        let sub =
          sublinks_cost db ~recurse ~env:env' ~rows:(a.e_rows *. b.e_rows)
            [ cond ]
        in
        {
          e_names = joined.e_names;
          e_cols = shrink rows joined.e_cols;
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. pairs +. sub;
        }
    | LeftJoin (cond, _, _) ->
        let a, b = pair () in
        let joined = concat a b in
        let env' = joined :: env in
        let s = selectivity ~recurse ~env:env' cond in
        let matched = a.e_rows *. b.e_rows *. s in
        (* every left row survives at least once — the outer-join
           fanout the Left strategy pays *)
        let rows = Float.max a.e_rows matched in
        let match_prob = Float.min 1.0 (b.e_rows *. s) in
        let right_cols =
          List.map
            (fun c -> { c with ci_null = Float.max c.ci_null (1.0 -. match_prob) })
            b.e_cols
        in
        let pairs =
          if has_equi_conjunct db a.e_names b.e_names cond then
            a.e_rows +. b.e_rows +. rows
          else a.e_rows *. b.e_rows
        in
        let sub =
          sublinks_cost db ~recurse ~env:env' ~rows:(a.e_rows *. b.e_rows)
            [ cond ]
        in
        {
          e_names = joined.e_names;
          e_cols = shrink rows (a.e_cols @ right_cols);
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. pairs +. sub;
        }
    | Agg ag ->
        let f = input_fact () in
        let env' = f :: env in
        let group_cols =
          List.map
            (fun (e, _) ->
              match e with Attr n -> lookup env' n | _ -> top_col)
            ag.group_by
        in
        let rows =
          if ag.group_by = [] then 1.0
          else
            Float.min (Float.max 1.0 f.e_rows)
              (List.fold_left
                 (fun acc c -> acc *. Float.max 1.0 c.ci_ndv)
                 1.0 group_cols)
        in
        let agg_cols =
          List.map
            (fun c ->
              {
                ci_ndv = Float.max 1.0 rows;
                ci_null = (if String.equal c.agg_func "count" then 0.0 else 0.1);
                ci_stats = None;
              })
            ag.aggs
        in
        let sub =
          sublinks_cost db ~recurse ~env:env' ~rows:f.e_rows
            (List.map fst ag.group_by
            @ List.filter_map (fun c -> c.agg_arg) ag.aggs)
        in
        {
          e_names =
            List.map snd ag.group_by @ List.map (fun c -> c.agg_name) ag.aggs;
          e_cols = shrink rows group_cols @ agg_cols;
          e_rows = rows;
          e_cost = f.e_cost +. f.e_rows +. sub;
        }
    | Union (sem, _, _) ->
        let a, b = pair () in
        let rows =
          match sem with
          | Bag -> a.e_rows +. b.e_rows
          | SetSem ->
              Float.max a.e_rows b.e_rows +. (0.5 *. Float.min a.e_rows b.e_rows)
        in
        {
          e_names = a.e_names;
          e_cols = Dataflow.map2_padded
              (fun x y ->
                {
                  ci_ndv = Float.max x.ci_ndv y.ci_ndv;
                  ci_null = Float.max x.ci_null y.ci_null;
                  ci_stats = None;
                })
              top_col a.e_cols b.e_cols;
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. a.e_rows +. b.e_rows;
        }
    | Inter (_, _, _) ->
        let a, b = pair () in
        let rows = 0.5 *. Float.min a.e_rows b.e_rows in
        {
          e_names = a.e_names;
          e_cols = shrink rows a.e_cols;
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. a.e_rows +. b.e_rows;
        }
    | Diff (_, _, _) ->
        let a, b = pair () in
        let rows = Float.max 0.0 (a.e_rows -. (0.5 *. Float.min a.e_rows b.e_rows)) in
        {
          e_names = a.e_names;
          e_cols = shrink rows a.e_cols;
          e_rows = rows;
          e_cost = a.e_cost +. b.e_cost +. a.e_rows +. b.e_rows;
        }
    | Order (keys, _) ->
        let f = input_fact () in
        let sub =
          sublinks_cost db ~recurse ~env:(f :: env) ~rows:f.e_rows
            (List.map fst keys)
        in
        { f with e_cost = f.e_cost +. f.e_rows +. sub }
    | Limit (n, _) ->
        let f = input_fact () in
        let rows = Float.min (float_of_int n) f.e_rows in
        { f with e_rows = rows; e_cols = shrink rows f.e_cols }
end

module Est_engine = Dataflow.Engine (Est_domain)

type t = Est_engine.t

let create db = Est_engine.create db
let query t ?env q = Est_engine.query t ?env q
let rows t q = (query t q).e_rows
let cost t q = (query t q).e_cost

(* ------------------------------------------------------------------ *)
(* Per-operator annotation (\explain, Lint's estimate rules)           *)
(* ------------------------------------------------------------------ *)

type annot = {
  a_path : string list;  (** Lint-style operator path, root first *)
  a_query : query;  (** the operator this annotation describes *)
  a_rows : float;
  a_cost : float;  (** cumulative cost of the subtree *)
}

(** [annotate t q]: every operator of [q] (sublink queries included)
    with its estimated rows and cumulative subtree cost, on the same
    operator paths as {!Lint} diagnostics — root first. *)
let annotate t q : annot list =
  let acc = ref [] in
  let rec walk prefix ~env q =
    let here = prefix @ [ Guard.op_label q ] in
    let f = query t ~env q in
    acc := { a_path = here; a_query = q; a_rows = f.e_rows; a_cost = f.e_cost } :: !acc;
    let inputs = Dataflow.inputs q in
    let input_fact =
      match List.map (fun i -> query t ~env i) inputs with
      | [] -> { e_names = []; e_cols = []; e_rows = 0.0; e_cost = 0.0 }
      | [ x ] -> x
      | x :: rest -> List.fold_left Est_domain.concat x rest
    in
    let env' = input_fact :: env in
    let child_prefix qualifier = prefix @ [ Guard.op_label q ^ qualifier ] in
    (match inputs with
    | [] -> ()
    | [ i ] -> walk (child_prefix "") ~env i
    | [ a; b ] ->
        walk (child_prefix "[left]") ~env a;
        walk (child_prefix "[right]") ~env b
    | _ -> ());
    List.iteri
      (fun i s ->
        walk
          (here @ [ Printf.sprintf "sublink[%d]" (i + 1) ])
          ~env:env' s.Algebra.query)
      (List.concat_map sublinks_of_expr (root_exprs q))
  in
  walk [] ~env:[] q;
  List.rev !acc

let report t q =
  let buf = Buffer.create 256 in
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%-60s rows≈%-12.6g cost≈%.6g\n"
           (Guard.path_to_string a.a_path)
           a.a_rows a.a_cost))
    (annotate t q);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Feedback: observed outcomes keyed by plan fingerprint               *)
(* ------------------------------------------------------------------ *)

type feedback = {
  fb_est_rows : float;  (** what the estimator predicted *)
  fb_obs_rows : float;  (** rows actually observed (at trip time if tripped) *)
  fb_tripped : bool;  (** the Guard budget tripped on this plan *)
}

(* Fingerprints hash the pretty-printed plan, which is stable across
   re-parses (sublink ids are not printed), so a repeated query maps to
   the same entry. *)
let fingerprint q = Digest.to_hex (Digest.string (Pp.query_to_string q))

let feedback_tbl : (string, feedback) Hashtbl.t = Hashtbl.create 32
let feedback_mu = Mutex.create ()

let note_feedback ~fingerprint ~est_rows ~obs_rows ~tripped =
  Mutex.lock feedback_mu;
  Hashtbl.replace feedback_tbl fingerprint
    { fb_est_rows = est_rows; fb_obs_rows = obs_rows; fb_tripped = tripped };
  Mutex.unlock feedback_mu

let feedback ~fingerprint =
  Mutex.lock feedback_mu;
  let r = Hashtbl.find_opt feedback_tbl fingerprint in
  Mutex.unlock feedback_mu;
  r

let reset_feedback () =
  Mutex.lock feedback_mu;
  Hashtbl.reset feedback_tbl;
  Mutex.unlock feedback_mu

(** [corrected_cost ~fingerprint cost]: the estimate-correction the
    Advisor applies before ranking — a tripped plan is pushed to the
    back of the ranking, a completed plan's cost is scaled by the
    observed/estimated row ratio (clamped to [\[0.1, 100\]] so one
    noisy observation cannot invert the whole ranking). *)
let corrected_cost ~fingerprint cost =
  match feedback ~fingerprint with
  | None -> cost
  | Some fb when fb.fb_tripped -> cost *. 1e6
  | Some fb ->
      let ratio =
        fb.fb_obs_rows /. Float.max 1.0 fb.fb_est_rows
        |> Float.max 0.1 |> Float.min 100.0
      in
      cost *. ratio
