(** Rule-based plan rewrites mirroring the PostgreSQL facilities the
    paper's measurements rely on: conjunct splitting, selection pushdown
    (into join/product sides and through rename-only projections),
    selection-over-product to join conversion, and merging of adjacent
    projections. Semantics-preserving; property-tested against the
    unoptimized plans. *)

(** [optimize db q] rewrites [q] into an equivalent, typically faster
    plan. Sublink queries embedded in conditions are optimized too.
    [prune] (default [true]) additionally runs dead-column pruning;
    [reorder] (default [true]) runs the {!Estimate}-driven greedy join
    reorder over Select/Cross/Join clusters first. *)
val optimize :
  ?prune:bool -> ?reorder:bool -> Database.t -> Algebra.query -> Algebra.query

(** [prune db q] drops columns nothing above reads: a backward
    needed-column pass that narrows projections and base scans
    (including inside sublink queries — EXISTS sublinks collapse to
    zero-width plans) while preserving the root schema, DISTINCT and
    set-operation widths, and GROUP BY columns. Semantics-preserving;
    property-tested against unpruned plans under all four strategies. *)
val prune : Database.t -> Algebra.query -> Algebra.query
