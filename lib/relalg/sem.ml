(** Runtime semantics shared by both execution engines.

    The reference tree-walker ({!Eval}) and the compiling engine
    ({!Compile}) must agree exactly on three-valued comparison, on the
    [ANY]/[ALL] quantifier semantics (both the naive folds of Figure 1
    and the constant-size summary fast path), and on the execution
    counters they report. Keeping those pieces here — below both
    engines in the dependency order — is what lets the engines
    cross-check each other in the test suite without duplicating the
    semantics they are checked against. *)

open Algebra

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(** {1 Three-valued comparison} *)

(** [cmp3 op a b] is the truth value ([Bool]/[Null]) of [a op b]. *)
let cmp3 (op : cmpop) a b : Value.t =
  match op with
  | EqNull -> Value.Bool (Value.equal_null a b)
  | _ -> (
      match Value.cmp_sql a b with
      | None -> Value.Null
      | Some c ->
          Value.Bool
            (match op with
            | Eq -> c = 0
            | Neq -> c <> 0
            | Lt -> c < 0
            | Leq -> c <= 0
            | Gt -> c > 0
            | Geq -> c >= 0
            | EqNull -> assert false))

(** {1 ANY/ALL semantics}

    [naive_any]/[naive_all] are the reference 3VL folds from Figure 1
    (existential / universal quantification); the summary-based versions
    below are the fast path. Property tests check their agreement. *)

let naive_any op lhs values =
  List.fold_left (fun acc v -> Value.or3 acc (cmp3 op lhs v)) Value.vfalse values

let naive_all op lhs values =
  List.fold_left (fun acc v -> Value.and3 acc (cmp3 op lhs v)) Value.vtrue values

type summary = {
  s_empty : bool;
  s_has_null : bool;
  s_min : Value.t option;  (** min over non-null values *)
  s_max : Value.t option;
  s_set : unit Tuple.Tbl.t;  (** distinct non-null values, as 1-ary tuples *)
  s_distinct : int;
  s_sample : Value.t option;  (** an arbitrary non-null value *)
}

let summarize values =
  let set = Tuple.Tbl.create 64 in
  let has_null = ref false in
  let min_v = ref None and max_v = ref None and sample = ref None in
  List.iter
    (fun v ->
      if Value.is_null v then has_null := true
      else begin
        if !sample = None then sample := Some v;
        (match !min_v with
        | Some m when Value.cmp_sql v m <> Some (-1) -> ()
        | _ -> min_v := Some v);
        (match !max_v with
        | Some m when Value.cmp_sql v m <> Some 1 -> ()
        | _ -> max_v := Some v);
        let key = [| v |] in
        if not (Tuple.Tbl.mem set key) then Tuple.Tbl.add set key ()
      end)
    values;
  {
    s_empty = values = [];
    s_has_null = !has_null;
    s_min = !min_v;
    s_max = !max_v;
    s_set = set;
    s_distinct = Tuple.Tbl.length set;
    s_sample = !sample;
  }

let set_mem s v = Tuple.Tbl.mem s.s_set [| v |]

(* Read-only summary accessors for the vectorized probe kernels
   ({!Vexec}), which specialize the ANY-equality membership test to an
   unboxed integer set when every distinct value is an [Int]. *)
let summary_is_empty s = s.s_empty
let summary_has_null s = s.s_has_null

let summary_distinct_values s =
  Tuple.Tbl.fold (fun k () acc -> k.(0) :: acc) s.s_set []

let unknown_or s base = if s.s_has_null then Value.Null else base

(** [any_of_summary op lhs s] = [lhs op ANY Tsub] from the summary. *)
let any_of_summary op lhs s : Value.t =
  if s.s_empty then Value.vfalse
  else if op = EqNull then begin
    (* =n is two-valued: NULL matches NULL. *)
    if Value.is_null lhs then Value.Bool s.s_has_null
    else Value.Bool (set_mem s lhs)
  end
  else if Value.is_null lhs then Value.Null
  else
    match op with
    | Eq -> if set_mem s lhs then Value.vtrue else unknown_or s Value.vfalse
    | Neq ->
        if s.s_distinct >= 2 then Value.vtrue
        else if
          s.s_distinct = 1 && not (Value.equal_null (Option.get s.s_sample) lhs)
        then Value.vtrue
        else unknown_or s Value.vfalse
    | Lt | Leq ->
        (* exists v with lhs < v  <=>  lhs < max *)
        let sat =
          match s.s_max with
          | None -> false
          | Some m -> Value.is_true (cmp3 op lhs m)
        in
        if sat then Value.vtrue else unknown_or s Value.vfalse
    | Gt | Geq ->
        let sat =
          match s.s_min with
          | None -> false
          | Some m -> Value.is_true (cmp3 op lhs m)
        in
        if sat then Value.vtrue else unknown_or s Value.vfalse
    | EqNull -> assert false

(** [all_of_summary op lhs s] = [lhs op ALL Tsub] from the summary. *)
let all_of_summary op lhs s : Value.t =
  if s.s_empty then Value.vtrue
  else if op = EqNull then begin
    if Value.is_null lhs then Value.Bool (s.s_distinct = 0)
    else
      Value.Bool
        (s.s_distinct = 1
        && (not s.s_has_null)
        && Value.equal_null (Option.get s.s_sample) lhs)
  end
  else if Value.is_null lhs then Value.Null
  else
    match op with
    | Eq ->
        if s.s_distinct >= 2 then Value.vfalse
        else if
          s.s_distinct = 1 && not (Value.equal_null (Option.get s.s_sample) lhs)
        then Value.vfalse
        else if s.s_distinct = 0 then Value.Null (* only NULLs *)
        else unknown_or s Value.vtrue
    | Neq -> if set_mem s lhs then Value.vfalse else unknown_or s Value.vtrue
    | Lt | Leq ->
        (* forall v: lhs < v  <=>  lhs < min; a single violating v makes
           it definitely false regardless of NULLs. *)
        let violated =
          match s.s_min with
          | None -> false
          | Some m -> Value.is_false (cmp3 op lhs m)
        in
        if violated then Value.vfalse
        else if s.s_has_null || s.s_min = None then Value.Null
        else Value.vtrue
    | Gt | Geq ->
        let violated =
          match s.s_max with
          | None -> false
          | Some m -> Value.is_false (cmp3 op lhs m)
        in
        if violated then Value.vfalse
        else if s.s_has_null || s.s_max = None then Value.Null
        else Value.vtrue
    | EqNull -> assert false

(** {1 Execution counters}

    In the spirit of EXPLAIN ANALYZE: how a plan actually executed.
    Both engines report through the same record so their behavior is
    directly comparable. *)

type stats = {
  mutable st_hash_joins : int;  (** joins executed via hashing *)
  mutable st_nested_loop_joins : int;  (** joins without usable equi-pairs *)
  mutable st_nested_pairs : int;  (** tuple pairs examined by nested loops *)
  mutable st_sublink_evals : int;  (** sublink materializations (cache misses) *)
  mutable st_sublink_hits : int;  (** sublink memoization hits *)
  mutable st_rows_emitted : int;  (** rows produced by join operators *)
}

let fresh_stats () =
  {
    st_hash_joins = 0;
    st_nested_loop_joins = 0;
    st_nested_pairs = 0;
    st_sublink_evals = 0;
    st_sublink_hits = 0;
    st_rows_emitted = 0;
  }

let stats_to_string st =
  Printf.sprintf
    "hash joins: %d | nested-loop joins: %d (%d pairs) | sublink evals: %d (%d memo hits) | rows emitted: %d"
    st.st_hash_joins st.st_nested_loop_joins st.st_nested_pairs
    st.st_sublink_evals st.st_sublink_hits st.st_rows_emitted
