(** Morsel-driven parallel scheduler: a fixed pool of OCaml 5 domains
    (plus the calling coordinator) executing integer-indexed tasks from
    per-worker work-stealing deques.

    Determinism contract: the scheduler decides only {e which worker}
    runs a task. Callers give every task its own result slot (indexed
    by task id) and merge in task order after {!run} returns, so
    results are identical across runs and worker counts.

    Worker domains touch global engine state only through explicitly
    synchronized paths: a {!Guard} scope adopted with
    [Guard.with_scope], and the lock-protected / atomically published
    caches registered in [Share_lint]'s inventory. The coordinator
    merges result slots after the barrier.

    When the {!Race} detector is armed the scheduler publishes its real
    synchronization as happens-before edges (pool lock, per-deque
    locks, job-join), so an engine access two domains make without an
    ordering edge between them is reported as a race. *)

type pool

val create : int -> pool
(** [create n] — a pool of [n] workers total: [n - 1] spawned domains
    plus the caller. Clamped to [1..128]. *)

val size : pool -> int

val run : pool -> tasks:int -> (int -> int -> unit) -> unit
(** [run pool ~tasks f] executes [f worker_id task_id] for every
    [task_id] in [0..tasks-1] and returns when all have finished (a
    barrier). [worker_id 0] is the caller. The first exception raised
    by a task (e.g. a [Guard.Budget_exceeded] tripped on a worker
    domain) is re-raised here after the barrier. Re-entrant calls and
    single-worker pools execute sequentially in the caller (with
    [worker_id = 0]). *)

val set_chaos : int option -> unit
(** [set_chaos (Some seed)] arms the test-mode chaos scheduler: every
    subsequent job perturbs its schedule with seeded random steal
    priorities and forced preemption points (spin bursts at pop/steal
    boundaries), deterministically derived from
    [(seed, worker, job)] — PCT-style schedule fuzzing. The actual
    interleaving still depends on the OS scheduler; the seed makes the
    {e bias} replayable. [set_chaos None] disarms (the default); the
    armed check on the scheduler hot path is one atomic load. *)

val shutdown : pool -> unit
(** Stop and join the pool's domains. Cached pools normally live for
    the process; this is for tests. *)

val get : int -> pool
(** [get n] — the process-wide cached pool of [min n (default_domains
    ())] workers, created on first use. The clamp is deliberate:
    domains beyond the available cores cannot run anything in
    parallel, yet each one still joins every stop-the-world section,
    so an oversubscribed pool slows the whole process down ({!create}
    stays unclamped for scheduler tests). Safe across [fork]: the
    cache is keyed on the pid, so a child process builds fresh domains
    instead of trusting inherited (dead) ones. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)
