(** Morsel-driven parallel scheduler: a fixed pool of OCaml 5 domains
    (plus the calling coordinator) executing integer-indexed tasks from
    per-worker work-stealing deques.

    Determinism contract: the scheduler decides only {e which worker}
    runs a task. Callers give every task its own result slot (indexed
    by task id) and merge in task order after {!run} returns, so
    results are identical across runs and worker counts.

    Worker domains must not touch global engine state ({!Guard},
    compile caches, statistics) — the coordinator does all accounting
    at merge points. *)

type pool

val create : int -> pool
(** [create n] — a pool of [n] workers total: [n - 1] spawned domains
    plus the caller. Clamped to [1..128]. *)

val size : pool -> int

val run : pool -> tasks:int -> (int -> int -> unit) -> unit
(** [run pool ~tasks f] executes [f worker_id task_id] for every
    [task_id] in [0..tasks-1] and returns when all have finished (a
    barrier). [worker_id 0] is the caller. Tasks are expected not to
    raise; the first exception raised by a task is re-raised here after
    the barrier. Re-entrant calls and single-worker pools execute
    sequentially in the caller (with [worker_id = 0]). *)

val shutdown : pool -> unit
(** Stop and join the pool's domains. Cached pools normally live for
    the process; this is for tests. *)

val get : int -> pool
(** [get n] — the process-wide cached pool of [min n (default_domains
    ())] workers, created on first use. The clamp is deliberate:
    domains beyond the available cores cannot run anything in
    parallel, yet each one still joins every stop-the-world section,
    so an oversubscribed pool slows the whole process down ({!create}
    stays unclamped for scheduler tests). Safe across [fork]: the
    cache is keyed on the pid, so a child process builds fresh domains
    instead of trusting inherited (dead) ones. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)
