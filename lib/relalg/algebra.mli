(** The extended relational algebra of Figure 1: bag operators plus
    sublinks ([ANY], [ALL], [EXISTS] and scalar subqueries) embeddable
    in selection, projection and join conditions.

    Expressions and queries are mutually recursive because a sublink
    carries a whole query; each sublink has a unique [id] used by the
    evaluator for hashed-subplan memoization. *)

type binop = Add | Sub | Mul | Div | Mod | Concat

type cmpop =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | EqNull  (** the null-aware [=n] comparison of Section 3.3 *)

type expr =
  | Const of Value.t
  | TypedNull of Vtype.t
      (** NULL with an explicit static type — used by the provenance
          rewrites to pad provenance attributes *)
  | Attr of string
      (** resolved by name against the operator's input schema or — for
          correlation — an enclosing scope *)
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | IsNull of expr
  | Case of (expr * expr) list * expr option
      (** CASE WHEN...THEN... [ELSE]; missing ELSE is NULL *)
  | Like of expr * string
  | InList of expr * expr list
  | FunCall of string * expr list
  | Sublink of sublink

and sublink = {
  id : int;  (** unique id, for evaluator memoization *)
  kind : sublink_kind;
  query : query;  (** the sublink query [Tsub] *)
}

and sublink_kind =
  | Exists
  | Scalar  (** single-column; NULL on empty result *)
  | AnyOp of cmpop * expr  (** [A op ANY Tsub]; [A] in the outer scope *)
  | AllOp of cmpop * expr

and agg_call = {
  agg_func : string;
  agg_distinct : bool;
  agg_arg : expr option;  (** [None] encodes [count( * )] *)
  agg_name : string;
}

and query =
  | Base of string
  | TableExpr of Relation.t
  | Select of expr * query
  | Project of projection
  | Cross of query * query
  | Join of expr * query * query
  | LeftJoin of expr * query * query
  | Agg of aggregation
  | Union of semantics * query * query
  | Inter of semantics * query * query
  | Diff of semantics * query * query
  | Order of (expr * direction) list * query
  | Limit of int * query

and projection = {
  distinct : bool;
  cols : (expr * string) list;
  proj_input : query;
}

and aggregation = {
  group_by : (expr * string) list;
  aggs : agg_call list;
  agg_input : query;
}

and semantics = Bag | SetSem
and direction = Asc | Desc

(** {1 Constructors} *)

(** [mk_sublink kind query] allocates a sublink with a fresh id. *)
val mk_sublink : sublink_kind -> query -> sublink

val exists : query -> expr
val scalar : query -> expr
val any_op : cmpop -> expr -> query -> expr
val all_op : cmpop -> expr -> query -> expr

val int : int -> expr
val str : string -> expr
val flt : float -> expr
val bool : bool -> expr
val attr : string -> expr
val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val eq : expr -> expr -> expr
val lt : expr -> expr -> expr
val gt : expr -> expr -> expr

(** Conjunction of a condition list; empty list is [true]. *)
val conj : expr list -> expr

(** Top-level conjuncts of a condition. *)
val conjuncts : expr -> expr list

(** Identity projection columns for a schema. *)
val identity_cols : Schema.t -> (expr * string) list

val project : ?distinct:bool -> (expr * string) list -> query -> query

val aggregate :
  group_by:(expr * string) list -> aggs:agg_call list -> query -> query

(** {1 Traversals} *)

(** Rebuild an expression, applying [f] to every embedded sublink
    query (outermost sublinks only). [f] is applied in
    {!sublinks_of_expr} order, so callers may number sublinks with a
    counter. *)
val map_expr_query : (query -> query) -> expr -> expr

(** Fold over every sub-expression (including the root), not descending
    into sublink queries. *)
val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** Top-level sublinks of an expression, left to right (sublinks nested
    inside another sublink's query are not included — Section 2.7). *)
val sublinks_of_expr : expr -> sublink list

val has_sublink : expr -> bool

(** Replace sublinks (matched by id) with bound expressions — the Move
    strategy's hoisting substitution. *)
val replace_sublinks : (int * expr) list -> expr -> expr

(** Apply [f] to every direct child query (including sublink queries
    inside conditions). *)
val map_queries : (query -> query) -> query -> query

(** Expressions syntactically present in the root operator of a query. *)
val root_exprs : query -> expr list

(** Base relation names accessed anywhere in a query (including sublink
    queries), in the provenance rewriter's traversal order — operator
    inputs first, then sublinks left to right — with duplicates for
    multiple references (footnote 1). The provenance contract appends
    one provenance attribute group per entry of this list. *)
val base_relations : query -> string list
