(** Static checking and schema inference for algebra trees.

    An environment is a stack of schemas, innermost first; attribute
    references resolve against the innermost schema defining the name,
    mirroring evaluation-time correlation binding (Section 2.2). *)

exception Type_error of string

type env = Schema.t list

(** [did_you_mean name candidates] ranks [candidates] by closeness to
    [name] (case-insensitive edit distance; qualified-name suffix
    matches first), best first, at most three. Shared by {!resolve}'s
    failure message and the linter's unresolved-attribute rule. *)
val did_you_mean : string -> string list -> string list

(** [resolve env name] is the type of [name], innermost-first. The
    failure message lists in-scope candidate attributes. *)
val resolve : env -> string -> Vtype.t

(** [infer_expr db env e] is [e]'s type; [None] means statically unknown
    (a bare NULL literal), which unifies with every type. *)
val infer_expr : Database.t -> env -> Algebra.expr -> Vtype.t option

(** [projection_schema db env cols] is the output schema of a
    projection list under [env]; statically unknown (NULL-typed)
    expressions default to string, matching evaluation. *)
val projection_schema :
  Database.t -> env -> (Algebra.expr * string) list -> Schema.t

(** [aggregation_schema db env group_by aggs] is the output schema of
    an aggregation: group-by attributes, then aggregate results. *)
val aggregation_schema :
  Database.t ->
  env ->
  (Algebra.expr * string) list ->
  Algebra.agg_call list ->
  Schema.t

(** [infer_query_env db outer q] is the output schema of [q] with
    correlation scopes [outer] available. *)
val infer_query_env : Database.t -> env -> Algebra.query -> Schema.t

(** [infer db q] is the output schema of a top-level query. *)
val infer : Database.t -> Algebra.query -> Schema.t

(** [check db q] validates [q], raising {!Type_error} on failure. *)
val check : Database.t -> Algebra.query -> unit
