(** Evaluation entry points and the reference tree-walking evaluator
    for the extended algebra of Figure 1.

    Two engines implement the same semantics:

    - the {e compiled} engine ({!Compile}) — the default — lowers the
      plan once into offset-resolved closures and only moves values at
      run time;
    - the {e reference} engine (this module's tree walker) interprets
      the AST per tuple, resolving attributes by name. It is the
      executable specification the compiled engine is property-tested
      against ({!query_reference} et al.).

    Design points that matter for reproducing the paper's performance
    shape (these mirror what PostgreSQL gives the original Perm, and
    hold for both engines):
    - equi-join conjuncts (including the null-aware [=n]) are executed
      as hash joins;
    - sublink results are memoized per binding of their correlated
      attributes (PostgreSQL's hashed/materialized subplans);
    - [ANY]/[ALL] sublinks are answered from a constant-size summary
      (value set, min/max, null flags) instead of re-scanning the
      materialized sublink;
    - a selection directly above a cross product is evaluated as a join,
      streaming pairs instead of materializing the product.

    Everything else is naive: cross products enumerate, non-equi joins
    are nested loops — which is exactly why the Gen strategy's
    [CrossBase] plans are expensive here, as they are in the paper. *)

open Algebra

exception Eval_error = Sem.Eval_error

let eval_error fmt = Sem.eval_error fmt

(** {1 Environments} *)

type frame = { f_schema : Schema.t; f_tuple : Tuple.t }

type env = frame list

let frame schema tuple = { f_schema = schema; f_tuple = tuple }
let schemas_of_env env = List.map (fun f -> f.f_schema) env

(** [lookup env name] resolves an attribute innermost-first. *)
let lookup (env : env) name =
  let rec go = function
    | [] -> eval_error "unknown attribute %S at evaluation time" name
    | f :: rest -> (
        match Schema.find f.f_schema name with
        | Some i -> Tuple.get f.f_tuple i
        | None -> go rest)
  in
  go env

(** {1 Shared semantics} — re-exported from {!Sem} so existing callers
    keep their [Eval.]-qualified names. *)

let cmp3 = Sem.cmp3
let naive_any = Sem.naive_any
let naive_all = Sem.naive_all

type summary = Sem.summary

let summarize = Sem.summarize
let any_of_summary = Sem.any_of_summary
let all_of_summary = Sem.all_of_summary

type stats = Sem.stats = {
  mutable st_hash_joins : int;
  mutable st_nested_loop_joins : int;
  mutable st_nested_pairs : int;
  mutable st_sublink_evals : int;
  mutable st_sublink_hits : int;
  mutable st_rows_emitted : int;
}

let fresh_stats = Sem.fresh_stats
let stats_to_string = Sem.stats_to_string

(** {1 Evaluation context} *)

type ctx = {
  db : Database.t;
  sub_results : (int * Value.t list, Relation.t) Hashtbl.t;
  sub_summaries : (int * Value.t list, summary) Hashtbl.t;
  stats : stats;
  mutable cur_path : string list;
      (** {!Guard} path of the operator whose expressions are being
          evaluated — the prefix for sublink paths *)
}

let mk_ctx db =
  {
    db;
    sub_results = Hashtbl.create 64;
    sub_summaries = Hashtbl.create 64;
    stats = fresh_stats ();
    cur_path = [];
  }

(* Computed per occurrence, not cached per [s.id]: the optimizer's
   context-sensitive rules (e.g. unsat-fold under implied predicates)
   can rewrite one occurrence of a duplicated sublink body while an
   equivalent same-id copy elsewhere keeps its correlated form. The
   compiled engine resolves each occurrence's free variables at compile
   time, so the reference evaluator must key its memo the same way or
   the two engines' eval/hit counters drift apart. *)
let free_names ctx (s : sublink) = Scope.free_of_query ctx.db s.query

(** {1 Expression evaluation (reference engine)} *)

let rec eval_expr ctx (env : env) (e : expr) : Value.t =
  match e with
  | Const v -> v
  | TypedNull _ -> Value.Null
  | Attr name -> lookup env name
  | Binop (op, a, b) -> (
      let va = eval_expr ctx env a and vb = eval_expr ctx env b in
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.modulo va vb
      | Concat -> Value.concat va vb)
  | Cmp (op, a, b) -> cmp3 op (eval_expr ctx env a) (eval_expr ctx env b)
  | And (a, b) ->
      let va = eval_expr ctx env a in
      if Value.is_false va then Value.vfalse else Value.and3 va (eval_expr ctx env b)
  | Or (a, b) ->
      let va = eval_expr ctx env a in
      if Value.is_true va then Value.vtrue else Value.or3 va (eval_expr ctx env b)
  | Not a -> Value.not3 (eval_expr ctx env a)
  | IsNull a -> Value.Bool (Value.is_null (eval_expr ctx env a))
  | Case (whens, els) -> (
      let rec go = function
        | (c, e) :: rest ->
            if Value.is_true (eval_expr ctx env c) then eval_expr ctx env e
            else go rest
        | [] -> ( match els with Some e -> eval_expr ctx env e | None -> Value.Null)
      in
      go whens)
  | Like (a, pattern) -> (
      match eval_expr ctx env a with
      | Value.Null -> Value.Null
      | Value.String s -> Value.Bool (Builtin.like_match ~pattern s)
      | v -> eval_error "LIKE over non-string %s" (Value.to_string v))
  | InList (a, es) ->
      let x = eval_expr ctx env a in
      let rec go acc = function
        | [] -> acc
        | e :: rest ->
            let r = cmp3 Eq x (eval_expr ctx env e) in
            if Value.is_true r then Value.vtrue else go (Value.or3 acc r) rest
      in
      go Value.vfalse es
  | FunCall (name, args) ->
      if Builtin.is_aggregate name then
        eval_error "aggregate function %s in scalar context" name
      else Builtin.apply_scalar name (List.map (eval_expr ctx env) args)
  | Sublink s -> eval_sublink ctx env s

and eval_sublink ctx env (s : sublink) : Value.t =
  let key = (s.id, List.map (lookup env) (free_names ctx s)) in
  match s.kind with
  | Exists -> Value.Bool (not (Relation.is_empty (materialize ctx env key s)))
  | Scalar -> (
      let rel = materialize ctx env key s in
      match Relation.tuples rel with
      | [] -> Value.Null
      | [ t ] -> Tuple.get t 0
      | _ -> eval_error "scalar sublink returned more than one row")
  | AnyOp (op, lhs) ->
      any_of_summary op (eval_expr ctx env lhs) (summary ctx env key s)
  | AllOp (op, lhs) ->
      all_of_summary op (eval_expr ctx env lhs) (summary ctx env key s)

and materialize ctx env key (s : sublink) : Relation.t =
  match Hashtbl.find_opt ctx.sub_results key with
  | Some rel ->
      ctx.stats.st_sublink_hits <- ctx.stats.st_sublink_hits + 1;
      rel
  | None ->
      ctx.stats.st_sublink_evals <- ctx.stats.st_sublink_evals + 1;
      let saved = ctx.cur_path in
      let spath = saved @ [ Printf.sprintf "sublink[%d]" s.id ] in
      Guard.Faults.fire_point Guard.Faults.Sublink spath;
      let rel = eval_query ctx spath env s.query in
      ctx.cur_path <- saved;
      Hashtbl.add ctx.sub_results key rel;
      rel

and summary ctx env key s : summary =
  match Hashtbl.find_opt ctx.sub_summaries key with
  | Some sm -> sm
  | None ->
      let rel = materialize ctx env key s in
      let sm =
        summarize (List.map (fun t -> Tuple.get t 0) (Relation.tuples rel))
      in
      Hashtbl.add ctx.sub_summaries key sm;
      sm

(** {1 Query evaluation (reference engine)} *)

and eval_query ctx path (env : env) (q : query) : Relation.t =
  (* [here] mirrors Lint's diagnostic paths; children extend the parent
     segment with a [left]/[right] qualifier exactly like Lint does. *)
  let here = path @ [ Guard.op_label q ] in
  let child ?(qual = "") i = path @ [ Guard.op_label q ^ qual ] |> fun p -> eval_query ctx p env i in
  Guard.tick here;
  let rel =
    match q with
    | Base name ->
        Guard.Faults.fire_point Guard.Faults.Scan here;
        Database.find ctx.db name
    | TableExpr rel ->
        Guard.Faults.fire_point Guard.Faults.Scan here;
        rel
    (* Fuse a selection over a product/join so pairs stream instead of
       the product being materialized first. *)
    | Select (cond, Cross (a, b)) -> eval_join ctx here env ~outer:false cond a b
    | Select (cond, Join (c, a, b)) ->
        eval_join ctx here env ~outer:false (And (c, cond)) a b
    | Select (cond, input) ->
        let rel = child input in
        let schema = Relation.schema rel in
        ctx.cur_path <- here;
        let keep =
          List.filter
            (fun t ->
              Guard.tick here;
              Value.is_true (eval_expr ctx (frame schema t :: env) cond))
            (Relation.tuples rel)
        in
        Relation.make schema keep
    | Project { distinct; cols; proj_input } ->
        let rel = child proj_input in
        let in_schema = Relation.schema rel in
        let out_schema =
          Typecheck.projection_schema ctx.db (in_schema :: schemas_of_env env) cols
        in
        let exprs = List.map fst cols in
        ctx.cur_path <- here;
        let rows =
          List.map
            (fun t ->
              Guard.tick here;
              let fenv = frame in_schema t :: env in
              Tuple.of_list (List.map (eval_expr ctx fenv) exprs))
            (Relation.tuples rel)
        in
        let out = Relation.make out_schema rows in
        if distinct then Relation.distinct out else out
    | Cross (a, b) ->
        Guard.Faults.fire_point Guard.Faults.Join here;
        let ra = child ~qual:"[left]" a and rb = child ~qual:"[right]" b in
        if Guard.is_active () then begin
          let ca = Relation.cardinality ra and cb = Relation.cardinality rb in
          Guard.cross_guard here ~left:ca ~right:cb;
          Guard.count_pairs here (ca * cb)
        end;
        let schema = Schema.concat (Relation.schema ra) (Relation.schema rb) in
        let rows =
          List.concat_map
            (fun ta ->
              List.map
                (fun tb ->
                  Guard.tick here;
                  Tuple.concat ta tb)
                (Relation.tuples rb))
            (Relation.tuples ra)
        in
        Relation.make schema rows
    | Join (cond, a, b) -> eval_join ctx here env ~outer:false cond a b
    | LeftJoin (cond, a, b) -> eval_join ctx here env ~outer:true cond a b
    | Agg spec -> eval_agg ctx here env spec
    | Union (sem, a, b) ->
        let op = match sem with Bag -> Relation.union_bag | SetSem -> Relation.union_set in
        op (child ~qual:"[left]" a) (child ~qual:"[right]" b)
    | Inter (sem, a, b) ->
        let op = match sem with Bag -> Relation.inter_bag | SetSem -> Relation.inter_set in
        op (child ~qual:"[left]" a) (child ~qual:"[right]" b)
    | Diff (sem, a, b) ->
        let op = match sem with Bag -> Relation.diff_bag | SetSem -> Relation.diff_set in
        op (child ~qual:"[left]" a) (child ~qual:"[right]" b)
    | Order (keys, input) ->
        let rel = child input in
        let schema = Relation.schema rel in
        ctx.cur_path <- here;
        let decorated =
          List.map
            (fun t ->
              Guard.tick here;
              let fenv = frame schema t :: env in
              (List.map (fun (e, d) -> (eval_expr ctx fenv e, d)) keys, t))
            (Relation.tuples rel)
        in
        let cmp (ka, _) (kb, _) =
          let rec go = function
            | [] -> 0
            | ((va, d), (vb, _)) :: rest ->
                let c = Value.compare_total va vb in
                let c = match d with Asc -> c | Desc -> -c in
                if c <> 0 then c else go rest
          in
          go (List.combine ka kb)
        in
        Relation.make schema (List.map snd (List.stable_sort cmp decorated))
    | Limit (n, input) -> eval_limit ctx here env n input
  in
  if Guard.counts_rows () then
    Guard.count_rows here (Relation.cardinality rel);
  rel

and eval_limit ctx here env n input =
  let rel = eval_query ctx (here : string list) env input in
      (* tail-recursive: a large LIMIT must not overflow the stack *)
      let take n l =
        let rec go n acc = function
          | [] -> List.rev acc
          | _ when n = 0 -> List.rev acc
          | t :: rest -> go (n - 1) (t :: acc) rest
        in
        if n <= 0 then [] else go n [] l
      in
      Relation.make (Relation.schema rel) (take n (Relation.tuples rel))

(* ---------------- joins ---------------- *)

and eval_join ctx here env ~outer cond a b : Relation.t =
  Guard.Faults.fire_point Guard.Faults.Join here;
  let qual s =
    match List.rev here with
    | last :: rest -> List.rev ((last ^ s) :: rest)
    | [] -> [ s ]
  in
  let ra = eval_query ctx (qual "[left]") env a
  and rb = eval_query ctx (qual "[right]") env b in
  let sa = Relation.schema ra and sb = Relation.schema rb in
  let schema = Schema.concat sa sb in
  let pairs, residual =
    Scope.split_equi ctx.db ~left:(Schema.names sa) ~right:(Schema.names sb)
      cond
  in
  ctx.cur_path <- here;
  let rows =
    if pairs = [] then begin
      ctx.stats.st_nested_loop_joins <- ctx.stats.st_nested_loop_joins + 1;
      let ca = Relation.cardinality ra and cb = Relation.cardinality rb in
      ctx.stats.st_nested_pairs <- ctx.stats.st_nested_pairs + (ca * cb);
      Guard.cross_guard here ~left:ca ~right:cb;
      Guard.count_pairs here (ca * cb);
      nested_loop ctx env ~outer schema sa sb ra rb cond
    end
    else begin
      ctx.stats.st_hash_joins <- ctx.stats.st_hash_joins + 1;
      hash_join ctx env ~outer schema sa sb ra rb pairs residual
    end
  in
  ctx.stats.st_rows_emitted <- ctx.stats.st_rows_emitted + List.length rows;
  Relation.make schema rows

and hash_join ctx env ~outer schema sa sb ra rb pairs residual =
  (* per-row checkpoints: capture the operator path before expression
     evaluation can move [cur_path] into a sublink *)
  let path = ctx.cur_path in
  let residual_cond = conj residual in
  let key_of fschema t exprs =
    let fenv = frame fschema t :: env in
    List.map (fun e -> eval_expr ctx fenv e) exprs
  in
  let left_exprs = List.map (fun (e, _, _) -> e) pairs in
  let right_exprs = List.map (fun (_, e, _) -> e) pairs in
  let safe_flags = List.map (fun (_, _, s) -> s) pairs in
  (* A NULL in a non-null-safe key position can never match. *)
  let usable key = List.for_all2 (fun v safe -> safe || not (Value.is_null v)) key safe_flags in
  let table = Tuple.Tbl.create (max 16 (Relation.cardinality rb)) in
  List.iter
    (fun tb ->
      Guard.tick path;
      let key = key_of sb tb right_exprs in
      if usable key then begin
        let k = Tuple.of_list key in
        let existing = try Tuple.Tbl.find table k with Not_found -> [] in
        Tuple.Tbl.replace table k (tb :: existing)
      end)
    (Relation.tuples rb);
  let pad = Tuple.nulls (Schema.arity sb) in
  let emit_left acc ta =
    Guard.tick path;
    let key = key_of sa ta left_exprs in
    let matches =
      if usable key then
        match Tuple.Tbl.find_opt table (Tuple.of_list key) with
        | Some tbs -> List.rev tbs
        | None -> []
      else []
    in
    let hits =
      List.filter_map
        (fun tb ->
          Guard.tick path;
          let combined = Tuple.concat ta tb in
          if Value.is_true (eval_expr ctx (frame schema combined :: env) residual_cond)
          then Some combined
          else None)
        matches
    in
    match hits with
    | [] -> if outer then Tuple.concat ta pad :: acc else acc
    | hs -> List.rev_append hs acc
  in
  List.rev (List.fold_left emit_left [] (Relation.tuples ra))

and nested_loop ctx env ~outer schema sa sb ra rb cond =
  ignore sa;
  let path = ctx.cur_path in
  let pad = Tuple.nulls (Schema.arity sb) in
  ignore sb;
  let emit_left acc ta =
    let hits =
      List.filter_map
        (fun tb ->
          Guard.tick path;
          let combined = Tuple.concat ta tb in
          if Value.is_true (eval_expr ctx (frame schema combined :: env) cond) then
            Some combined
          else None)
        (Relation.tuples rb)
    in
    match hits with
    | [] -> if outer then Tuple.concat ta pad :: acc else acc
    | hs -> List.rev_append hs acc
  in
  List.rev (List.fold_left emit_left [] (Relation.tuples ra))

(* ---------------- aggregation ---------------- *)

and eval_agg ctx here env { group_by; aggs; agg_input } : Relation.t =
  let rel = eval_query ctx (here : string list) env agg_input in
  ctx.cur_path <- here;
  let in_schema = Relation.schema rel in
  let out_schema =
    Typecheck.aggregation_schema ctx.db
      (in_schema :: schemas_of_env env)
      group_by aggs
  in
  let group_exprs = List.map fst group_by in
  let groups = Tuple.Tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun t ->
      Guard.tick here;
      let fenv = frame in_schema t :: env in
      let key = Tuple.of_list (List.map (eval_expr ctx fenv) group_exprs) in
      match Tuple.Tbl.find_opt groups key with
      | Some members -> Tuple.Tbl.replace groups key (t :: members)
      | None ->
          Tuple.Tbl.add groups key [ t ];
          order := key :: !order)
    (Relation.tuples rel);
  let keys =
    if group_by = [] && Relation.is_empty rel then [ Tuple.of_list [] ]
    else List.rev !order
  in
  let compute_group key =
    let members =
      match Tuple.Tbl.find_opt groups key with
      | Some ms -> List.rev ms
      | None -> []
    in
    let agg_values =
      List.map
        (fun call ->
          let raw =
            match call.agg_arg with
            | None -> List.map (fun _ -> Value.Int 1) members (* COUNT( * ) *)
            | Some e ->
                List.filter_map
                  (fun t ->
                    let v = eval_expr ctx (frame in_schema t :: env) e in
                    if Value.is_null v then None else Some v)
                  members
          in
          Builtin.apply_aggregate call.agg_func ~distinct:call.agg_distinct raw)
        aggs
    in
    Tuple.concat key (Tuple.of_list agg_values)
  in
  Relation.make out_schema (List.map compute_group keys)

(** {1 Public API} *)

(** Which engine {!query}, {!query_stats} and {!expr} dispatch to.
    [Compiled] is the default; [Reference] selects the tree walker and
    [Vectorized] the columnar batch engine ({!Vexec}) — permcli's
    [--engine] and the benchmark harness flip this. *)
type engine = Compiled | Reference | Vectorized

let default_engine = ref Compiled

let engine_name = function
  | Compiled -> "compiled"
  | Reference -> "reference"
  | Vectorized -> "vectorized"

let engine_of_string = function
  | "compiled" -> Compiled
  | "reference" -> Reference
  | "vectorized" -> Vectorized
  | s ->
      invalid_arg
        (Printf.sprintf "unknown engine %S (compiled|reference|vectorized)" s)

let compile_env env = List.map (fun f -> (f.f_schema, f.f_tuple)) env

(** [query_reference db q] evaluates [q] with the reference tree walker. *)
let query_reference ?(env = []) db q = eval_query (mk_ctx db) [] env q

(** [query_compiled db q] compiles [q] to offset-resolved closures and
    runs the compiled plan. *)
let query_compiled ?(env = []) db q = Compile.query ~env:(compile_env env) db q

(** [query_vectorized db q] executes [q] with the columnar batch
    engine (worker count and batch size from {!Vexec.domains} /
    {!Vexec.batch_rows}). *)
let query_vectorized ?(env = []) db q = Vexec.query ~env:(compile_env env) db q

(** [query db q] evaluates [q] against [db] with a fresh context, using
    [engine] when given, else the engine selected by {!default_engine}
    (compiled by default); [env] supplies outer frames for correlated
    evaluation. The explicit parameter lets concurrent callers (the
    provenance server's sessions) pick an engine per request without
    mutating the shared default. *)
let query ?engine ?(env = []) db q =
  match Option.value engine ~default:!default_engine with
  | Compiled -> query_compiled ~env db q
  | Reference -> query_reference ~env db q
  | Vectorized -> query_vectorized ~env db q

let query_stats_reference ?(env = []) db q =
  let ctx = mk_ctx db in
  let rel = eval_query ctx [] env q in
  (rel, ctx.stats)

let query_stats_compiled ?(env = []) db q =
  Compile.query_stats ~env:(compile_env env) db q

let query_stats_vectorized ?(env = []) db q =
  Vexec.query_stats ~env:(compile_env env) db q

(** [query_stats db q] additionally reports the execution counters —
    an EXPLAIN-ANALYZE-style summary of how the plan ran. *)
let query_stats ?engine ?(env = []) db q =
  match Option.value engine ~default:!default_engine with
  | Compiled -> query_stats_compiled ~env db q
  | Reference -> query_stats_reference ~env db q
  | Vectorized -> query_stats_vectorized ~env db q

let expr_reference ?(env = []) db e = eval_expr (mk_ctx db) env e

let expr_compiled ?(env = []) db e = Compile.expr ~env:(compile_env env) db e

(** [expr db env e] evaluates a scalar expression (used by tests and the
    provenance oracle), dispatching like {!query}. Scalar expressions
    have no batches to vectorize, so [Vectorized] uses the compiled
    closures (the semantics the vectorized engine shares). *)
let expr ?engine ?(env = []) db e =
  match Option.value engine ~default:!default_engine with
  | Compiled | Vectorized -> expr_compiled ~env db e
  | Reference -> expr_reference ~env db e
