(** Runtime semantics shared by both execution engines ({!Eval}, the
    reference tree-walker, and {!Compile}, the closure-compiling
    engine): three-valued comparison, [ANY]/[ALL] quantifier semantics,
    and the execution counters both engines report. *)

exception Eval_error of string

(** [eval_error fmt ...] raises {!Eval_error} with a formatted message. *)
val eval_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Three-valued comparison} *)

(** [cmp3 op a b] is the truth value ([Bool _]/[Null]) of [a op b]. *)
val cmp3 : Algebra.cmpop -> Value.t -> Value.t -> Value.t

(** {1 ANY/ALL semantics}

    The naive folds are the reference semantics (Figure 1's existential
    and universal quantification under 3VL); the summary versions are
    the fast path. Their agreement is property-tested. *)

val naive_any : Algebra.cmpop -> Value.t -> Value.t list -> Value.t
val naive_all : Algebra.cmpop -> Value.t -> Value.t list -> Value.t

type summary

val summarize : Value.t list -> summary
val any_of_summary : Algebra.cmpop -> Value.t -> summary -> Value.t
val all_of_summary : Algebra.cmpop -> Value.t -> summary -> Value.t

(** Read-only summary accessors, used by the vectorized engine's probe
    kernels to build unboxed membership sets. *)
val summary_is_empty : summary -> bool

val summary_has_null : summary -> bool

(** Distinct non-null values of the summarized column (unordered). *)
val summary_distinct_values : summary -> Value.t list

(** {1 Execution counters} — in the spirit of EXPLAIN ANALYZE. *)

type stats = {
  mutable st_hash_joins : int;
  mutable st_nested_loop_joins : int;
  mutable st_nested_pairs : int;  (** tuple pairs examined by nested loops *)
  mutable st_sublink_evals : int;  (** sublink materializations (cache misses) *)
  mutable st_sublink_hits : int;  (** sublink memoization hits *)
  mutable st_rows_emitted : int;  (** rows produced by join operators *)
}

val fresh_stats : unit -> stats
val stats_to_string : stats -> string
