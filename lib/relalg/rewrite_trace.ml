(** Shared instrumentation channel between the rewrite passes
    ({!Simplify}, {!Optimizer}) and the translation validator
    ({!Certify}).

    The passes cannot depend on the validator (the validator drives the
    passes), so they report through this tiny module instead: each
    applied rule instance is announced as an {!entry} — the rule name,
    the Lint-style operator path of the node it fired at, and the
    before/after subplans. With no tracer installed ({!active} false)
    emission is a single flag load, so the stock optimizer pipeline
    pays nothing.

    The module also hosts the test-only mutation hook used by the
    validator's mutation harness: naming a mutant in {!mutation} makes
    the corresponding rewrite rule deliberately misbehave, so the tests
    can assert that {!Certify} catches it with the right rule name and
    path. *)

type entry = {
  e_rule : string;  (** rule identifier, e.g. ["pushdown-into-join"] *)
  e_path : string list;
      (** operator path of the rewritten node, root first — same syntax
          as {!Lint} diagnostics and {!Guard} trip reports *)
  e_before : Algebra.query;  (** the subplan before the rule fired *)
  e_after : Algebra.query;  (** the replacement subplan *)
}

(* The closed registry of rule identifiers the passes may emit. These
   are stable, machine-readable names: certificates, traces, JSON lint
   output and the mutation harness all key on them, so renaming one is
   a breaking change. [emit] enforces membership in test/tracer builds
   (a typo'd rule name would silently dodge its certificate). *)
let rules =
  [
    (* Simplify *)
    ("fold-exprs", "constant-fold every expression of one operator");
    ("select-true", "drop a selection whose condition folded to TRUE");
    ("join-true-to-cross", "turn a join on TRUE into a cross product");
    (* Optimizer: symbolic passes *)
    ("unsat-fold", "fold a provably never-TRUE selection to the empty relation");
    ("taut-fold", "drop a selection whose condition is provably always TRUE");
    ("drop-implied", "drop conjuncts implied by the remaining conjuncts");
    ( "implied-predicate",
      "derive a comparison for a column through join equalities" );
    (* Optimizer: cost-based join reorder *)
    ( "join-reorder",
      "reorder a join cluster greedily by estimated cardinality" );
    (* Optimizer: selection pushdown *)
    ("pushdown-into-cross", "distribute conjuncts over a cross product");
    ("pushdown-into-join", "merge conjuncts into / distribute over a join");
    ("pushdown-into-leftjoin", "push left-side-only conjuncts below a left join");
    ("pushdown-through-project", "push substituted conjuncts below a projection");
    ("pushdown-residual", "re-emit conjuncts that could not be pushed");
    (* Optimizer: projections and pruning *)
    ("merge-projects", "fuse adjacent projections by substitution");
    ("prune", "project dead columns out below an operator");
  ]

let known_rule name = List.mem_assoc name rules

let hook : (entry -> unit) option ref = ref None
let active () = Option.is_some !hook

(** [emit ~rule ~path ~before ~after] reports one rule application to
    the installed tracer, if any. Applications that left the subplan
    unchanged (physically or structurally) are filtered out here so the
    passes can emit unconditionally. *)
let emit ~rule ~path ~before ~after =
  match !hook with
  | None -> ()
  | Some f ->
      if not (known_rule rule) then
        invalid_arg
          (Printf.sprintf "Rewrite_trace.emit: unregistered rule %S" rule);
      if not (before == after || before = after) then
        f { e_rule = rule; e_path = path; e_before = before; e_after = after }

(** [with_tracer f body] installs [f] as the tracer for the duration of
    [body], restoring the previous tracer on exit (scopes nest). *)
let with_tracer f body =
  let saved = !hook in
  hook := Some f;
  Fun.protect ~finally:(fun () -> hook := saved) body

(** {1 Test-only mutation hook}

    [mutation := Some name] arms one deliberately broken variant of a
    rewrite rule (see the [Rewrite_trace.mutant] call sites in
    {!Simplify} and {!Optimizer} for the catalogue). Production code
    never sets this; the harness in [test/test_certify.ml] does, to
    prove the validator catches each breakage. *)
let mutation : string option ref = ref None

let mutant name = match !mutation with Some m -> String.equal m name | None -> false

(** [with_mutation name body] arms mutant [name] for the duration of
    [body] (exception-safe). *)
let with_mutation name body =
  let saved = !mutation in
  mutation := Some name;
  Fun.protect ~finally:(fun () -> mutation := saved) body
