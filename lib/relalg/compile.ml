(** Compiled query execution: offset-resolved closures instead of
    per-tuple AST interpretation.

    The reference evaluator ({!Eval}) walks the algebra AST for every
    tuple and resolves every attribute reference by *string lookup*
    through a stack of name→position tables. On the wide plans the
    provenance rewrites produce, that interpretation overhead dominates
    runtime and hides the plan-shape differences the paper's evaluation
    measures. This module removes it by lowering a type-checked
    {!Algebra.query} once into a tree of plain OCaml closures:

    - every [Attr] is resolved at compile time to a
      [(frame_depth, column_offset)] pair, so a runtime attribute
      access is a list walk of known depth (almost always 0, i.e. a
      single array read) with no hashing and no string comparison;
    - scalar expressions, predicates, projection lists, join keys and
      aggregate arguments become pre-built closures of type
      [ctx -> renv -> Value.t];
    - per-operator analyses — equi-conjunct classification
      ({!Scope.split_equi}), sublink free-variable sets, projection and
      aggregation output schemas — run once per operator at compile
      time instead of once per evaluation;
    - execution is *push-based*: row-at-a-time operators (select,
      project, join emission, limit) stream tuples straight into their
      consumer instead of materializing a list per operator, so only
      pipeline breakers (sort, aggregation, set operations, hash-join
      build sides, sublink memo entries) allocate intermediate
      relations;
    - a projection of bare attributes sitting on top of a join is fused
      into the join's emit step: output rows are gathered directly from
      the two input tuples, never building the concatenated tuple the
      projection would immediately tear apart.

    The runtime environment mirrors the reference evaluator exactly: a
    stack of tuples, innermost frame first, with one frame pushed per
    enclosing operator (and per enclosing sublink scope). The compile
    -time environment is the corresponding stack of schemas, so a name
    that resolves to [(d, i)] at compile time denotes column [i] of the
    [d]-th runtime frame — the correlation rules of Section 2.2, decided
    statically.

    Streaming changes *when* work happens, never *what* or *in which
    row order*: every operator pushes rows in exactly the order the
    reference evaluator lists them, [Limit] drains its whole input (the
    reference evaluator evaluates the child fully before taking), and
    the execution counters ({!Sem.stats}) are accumulated so their
    final values coincide with the reference engine's.

    Sublink execution keeps the reference evaluator's performance
    features: memoization per binding of the (pre-resolved) correlated
    attributes, and constant-size summaries answering [ANY]/[ALL]
    ({!Sem}). Compiled plans assume the catalog schemas seen at compile
    time; {!query}/{!query_stats} compile and run atomically, so this
    only matters when a {!compiled} plan is cached across DDL. *)

open Algebra

(** {1 Runtime representation} *)

(** Per-execution context: sublink memo tables and counters, exactly
    mirroring the reference evaluator's. *)
type ctx = {
  ctx_tag : int;
      (* process-unique, for per-execution race-detector locations *)
  db : Database.t;
  sub_results : (int * Value.t list, Relation.t) Hashtbl.t;
  sub_summaries : (int * Value.t list, Sem.summary) Hashtbl.t;
  stats : Sem.stats;
}

let ctx_counter = Atomic.make 0

let mk_ctx db =
  {
    ctx_tag = Atomic.fetch_and_add ctx_counter 1;
    db;
    sub_results = Hashtbl.create 64;
    sub_summaries = Hashtbl.create 64;
    stats = Sem.fresh_stats ();
  }

(* The sublink memo tables are per-execution and coordinator-confined:
   the vectorized engine preps every probe before fanning out, so a
   worker-domain access here is a bug the armed race detector reports.
   The location is per-ctx — two concurrent executions own disjoint
   tables and must not alias. *)
let memo_loc ctx = "compile.ctx[" ^ string_of_int ctx.ctx_tag ^ "].memo"
let memo_read ctx = if Race.is_armed () then Race.read (memo_loc ctx)
let memo_write ctx = if Race.is_armed () then Race.write (memo_loc ctx)

(** Runtime environment: tuple frames, innermost first. *)
type renv = Tuple.t list

(** A compiled scalar expression. *)
type cexpr = ctx -> renv -> Value.t

(** A compiled operator. [c_stream] pushes output rows, in the exact
    order the reference evaluator produces them, into a consumer;
    [c_run] materializes them as a relation. Each operator natively
    provides whichever form matches its execution shape and derives
    the other ({!streaming} / {!materialized}). *)
type cop = {
  c_schema : Schema.t;
  c_stream : ctx -> renv -> (Tuple.t -> unit) -> unit;
  c_run : ctx -> renv -> Relation.t;
}

let streaming c_schema c_stream =
  {
    c_schema;
    c_stream;
    c_run =
      (fun ctx env ->
        let acc = ref [] in
        c_stream ctx env (fun t -> acc := t :: !acc);
        Relation.make_unchecked c_schema (List.rev !acc));
  }

let materialized c_schema c_run =
  {
    c_schema;
    c_run;
    c_stream =
      (fun ctx env push ->
        List.iter push (Relation.tuples (c_run ctx env)));
  }

type compiled = { top : cop; cdb : Database.t }

(* ---- governor integration ----------------------------------------- *)

(* [Guard] checkpoints are baked into every operator at compile time:
   the operator's Lint-style path is a compile-time constant captured by
   the wrapper closures, so the run-time cost with no budget installed
   is one flag load per operator entry and one per emitted row. Exactly
   one of [c_stream]/[c_run] of the wrapped operator executes per
   operator run (the derived form delegates to the native one, which is
   captured unwrapped), so each produced row is counted exactly once per
   operator. *)
let guarded here (c : cop) : cop =
  {
    c_schema = c.c_schema;
    c_stream =
      (fun ctx env push ->
        Guard.tick here;
        c.c_stream ctx env (fun t ->
            Guard.count_row here;
            push t));
    c_run =
      (fun ctx env ->
        Guard.tick here;
        let rel = c.c_run ctx env in
        if Guard.counts_rows () then
          Guard.count_rows here (Relation.cardinality rel);
        rel);
  }

(* The operator path under compilation — read (at compile time only) by
   [compile_sublink] to place sublink boundaries without threading a
   path through every expression-compiler signature. [compile_query]
   updates it before compiling an operator's own expressions. *)
let cur_compile_path : string list ref = ref []

(** {1 Attribute access} *)

(* Resolution happens once, here; execution touches no strings. *)
let resolve_attr (cenv : Schema.t list) name : int * int =
  let rec go depth = function
    | [] -> Sem.eval_error "unknown attribute %S at evaluation time" name
    | s :: rest -> (
        match Schema.find s name with
        | Some i -> (depth, i)
        | None -> go (depth + 1) rest)
  in
  go 0 cenv

let attr_access (depth, off) : cexpr =
  match depth with
  | 0 -> (
      fun _ env ->
        match env with
        | t :: _ -> Tuple.get t off
        | [] -> Sem.eval_error "empty environment at depth 0")
  | 1 -> (
      fun _ env ->
        match env with
        | _ :: t :: _ -> Tuple.get t off
        | _ -> Sem.eval_error "missing frame at depth 1")
  | d -> fun _ env -> Tuple.get (List.nth env d) off

(* Syntactically boolean-valued expressions: the top constructor alone
   guarantees a [Bool]/[Null] result on well-typed input. *)
let is_boolean_shape = function
  | Cmp _ | And _ | Or _ | Not _ | IsNull _ | Like _ | InList _
  | Const (Value.Bool _)
  | Sublink { kind = Exists | AnyOp _ | AllOp _; _ } ->
      true
  | _ -> false

(* Attribute names an expression's evaluation can read: its own [Attr]
   nodes plus the free (correlated) variables of its sublink queries.
   Sublink query *internals* resolve inside their own scopes and cannot
   reach a frame their free-variable set does not mention. *)
let expr_deps db (e : expr) : string list =
  let rec go acc = function
    | Attr n -> n :: acc
    | Const _ | TypedNull _ -> acc
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go (go acc a) b
    | Not a | IsNull a | Like (a, _) -> go acc a
    | Case (whens, els) ->
        let acc =
          List.fold_left (fun acc (c, e) -> go (go acc c) e) acc whens
        in
        (match els with Some e -> go acc e | None -> acc)
    | InList (a, es) -> List.fold_left go (go acc a) es
    | FunCall (_, args) -> List.fold_left go acc args
    | Sublink s -> (
        let acc = List.rev_append (Scope.free_of_query db s.query) acc in
        match s.kind with
        | AnyOp (_, l) | AllOp (_, l) -> go acc l
        | Exists | Scalar -> acc)
  in
  go [] e

(* Whether re-evaluating [e] more or fewer times (with an unchanged
   binding of its dependencies) leaves the execution counters untouched:
   ANY/ALL sublinks answer repeat evaluations from the summary cache
   silently, while EXISTS/scalar sublinks count a memo hit on each
   evaluation. Evaluation-frequency rewrites are only allowed for the
   former. *)
let counter_silent (e : expr) : bool =
  let rec go = function
    | Attr _ | Const _ | TypedNull _ -> true
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go a && go b
    | Not a | IsNull a | Like (a, _) -> go a
    | Case (whens, els) ->
        List.for_all (fun (c, e) -> go c && go e) whens
        && (match els with Some e -> go e | None -> true)
    | InList (a, es) -> go a && List.for_all go es
    | FunCall (_, args) -> List.for_all go args
    | Sublink s -> (
        match s.kind with
        | Exists | Scalar -> false
        | AnyOp (_, l) | AllOp (_, l) -> go l)
  in
  go e

(* Evaluate an array of compiled expressions into a fresh tuple with an
   explicit loop — [Array.map] would allocate a closure per row. *)
let eval_row (cexprs : cexpr array) ctx env : Tuple.t =
  let n = Array.length cexprs in
  let out = Array.make n Value.Null in
  for j = 0 to n - 1 do
    Array.unsafe_set out j ((Array.unsafe_get cexprs j) ctx env)
  done;
  out

(** {1 Expression compilation} *)

let rec compile_expr db (cenv : Schema.t list) (e : expr) : cexpr =
  match e with
  | Const v -> fun _ _ -> v
  | TypedNull _ -> fun _ _ -> Value.Null
  | Attr name -> attr_access (resolve_attr cenv name)
  | Binop (op, a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      let f =
        match op with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
        | Mod -> Value.modulo
        | Concat -> Value.concat
      in
      fun ctx env -> f (ca ctx env) (cb ctx env)
  | Cmp (op, a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      fun ctx env -> Sem.cmp3 op (ca ctx env) (cb ctx env)
  | And (a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      fun ctx env ->
        let va = ca ctx env in
        if Value.is_false va then Value.vfalse else Value.and3 va (cb ctx env)
  | Or (a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      fun ctx env ->
        let va = ca ctx env in
        if Value.is_true va then Value.vtrue else Value.or3 va (cb ctx env)
  | Not a ->
      let ca = compile_expr db cenv a in
      fun ctx env -> Value.not3 (ca ctx env)
  | IsNull a ->
      let ca = compile_expr db cenv a in
      fun ctx env -> Value.Bool (Value.is_null (ca ctx env))
  | Case (whens, els) ->
      let cwhens =
        List.map
          (fun (c, e) -> (compile_expr db cenv c, compile_expr db cenv e))
          whens
      in
      let cels = Option.map (compile_expr db cenv) els in
      fun ctx env ->
        let rec go = function
          | (cc, ce) :: rest ->
              if Value.is_true (cc ctx env) then ce ctx env else go rest
          | [] -> ( match cels with Some ce -> ce ctx env | None -> Value.Null)
        in
        go cwhens
  | Like (a, pattern) -> (
      let ca = compile_expr db cenv a in
      fun ctx env ->
        match ca ctx env with
        | Value.Null -> Value.Null
        | Value.String s -> Value.Bool (Builtin.like_match ~pattern s)
        | v -> Sem.eval_error "LIKE over non-string %s" (Value.to_string v))
  | InList (a, es) ->
      let ca = compile_expr db cenv a in
      let ces = List.map (compile_expr db cenv) es in
      fun ctx env ->
        let x = ca ctx env in
        let rec go acc = function
          | [] -> acc
          | ce :: rest ->
              let r = Sem.cmp3 Eq x (ce ctx env) in
              if Value.is_true r then Value.vtrue else go (Value.or3 acc r) rest
        in
        go Value.vfalse ces
  | FunCall (name, args) ->
      if Builtin.is_aggregate name then
        Sem.eval_error "aggregate function %s in scalar context" name
      else
        let cargs = List.map (compile_expr db cenv) args in
        fun ctx env ->
          Builtin.apply_scalar name (List.map (fun ce -> ce ctx env) cargs)
  | Sublink s -> compile_sublink db cenv s

(** {1 Predicate compilation}

    Selection and join conditions are compiled to *unboxed* three-valued
    predicates — [0] false, [1] true, [2] unknown — so the boolean
    skeleton (AND/OR/NOT over comparisons) evaluates without allocating
    a [Value.t] per node. Truth tables and short-circuiting mirror the
    reference evaluator ([Value.and3]/[or3]/[not3] plus its skip rules)
    exactly, including *which* operand subexpressions are evaluated —
    sublink memo counters depend on that. Integer-integer comparison,
    the ubiquitous case on the synthetic and TPC-H workloads, is a
    direct unboxed compare; everything else falls back to
    {!Value.cmp_sql} / the general expression compiler. *)

and compile_pred db (cenv : Schema.t list) (e : expr) : ctx -> renv -> int =
  let b3_of_value v =
    if Value.is_true v then 1 else if Value.is_null v then 2 else 0
  in
  match e with
  | Const v ->
      let b = b3_of_value v in
      fun _ _ -> b
  (* [p =n TRUE/FALSE] over a boolean-valued operand — the shape the
     provenance rewrites wrap around moved sublink tests — reduces to a
     truth-table check on the operand's unboxed value. *)
  | Cmp (EqNull, p, Const (Value.Bool b)) when is_boolean_shape p ->
      let pp = compile_pred db cenv p in
      fun ctx env ->
        let v = pp ctx env in
        if v = 2 then 0 else if (v = 1) = b then 1 else 0
  | Cmp (EqNull, Const (Value.Bool b), p) when is_boolean_shape p ->
      let pp = compile_pred db cenv p in
      fun ctx env ->
        let v = pp ctx env in
        if v = 2 then 0 else if (v = 1) = b then 1 else 0
  | Cmp (EqNull, a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      fun ctx env ->
        if Value.equal_null (ca ctx env) (cb ctx env) then 1 else 0
  | Cmp (op, a, b) ->
      let ca = compile_expr db cenv a and cb = compile_expr db cenv b in
      let test =
        match op with
        | Eq -> fun c -> c = 0
        | Neq -> fun c -> c <> 0
        | Lt -> fun c -> c < 0
        | Leq -> fun c -> c <= 0
        | Gt -> fun c -> c > 0
        | Geq -> fun c -> c >= 0
        | EqNull -> assert false
      in
      let itest : int -> int -> bool =
        match op with
        | Eq -> fun x y -> x = y
        | Neq -> fun x y -> x <> y
        | Lt -> fun x y -> x < y
        | Leq -> fun x y -> x <= y
        | Gt -> fun x y -> x > y
        | Geq -> fun x y -> x >= y
        | EqNull -> assert false
      in
      fun ctx env ->
        let va = ca ctx env and vb = cb ctx env in
        (match (va, vb) with
        | Value.Int x, Value.Int y -> if itest x y then 1 else 0
        | Value.Null, _ | _, Value.Null -> 2
        | _ -> (
            match Value.cmp_sql va vb with
            | None -> 2
            | Some c -> if test c then 1 else 0))
  | And (a, b) ->
      let pa = compile_pred db cenv a and pb = compile_pred db cenv b in
      fun ctx env ->
        let va = pa ctx env in
        if va = 0 then 0
        else
          let vb = pb ctx env in
          if vb = 0 then 0 else if va = 2 || vb = 2 then 2 else 1
  | Or (a, b) ->
      let pa = compile_pred db cenv a and pb = compile_pred db cenv b in
      fun ctx env ->
        let va = pa ctx env in
        if va = 1 then 1
        else
          let vb = pb ctx env in
          if vb = 1 then 1 else if va = 2 || vb = 2 then 2 else 0
  | Not a ->
      let pa = compile_pred db cenv a in
      fun ctx env -> (
        match pa ctx env with 0 -> 1 | 1 -> 0 | _ -> 2)
  | IsNull a ->
      let ca = compile_expr db cenv a in
      fun ctx env -> if Value.is_null (ca ctx env) then 1 else 0
  | _ ->
      let ce = compile_expr db cenv e in
      fun ctx env -> b3_of_value (ce ctx env)

(** Sublinks: the correlated attributes are resolved to offset accessors
    once, so the per-binding memo key is assembled without any name
    resolution; the sublink query itself is compiled under the full
    environment at the expression's location, exactly the scope the
    reference evaluator gives it. *)
and compile_sublink db (cenv : Schema.t list) (s : sublink) : cexpr =
  let saved_path = !cur_compile_path in
  let spath = saved_path @ [ Printf.sprintf "sublink[%d]" s.id ] in
  let free_getters =
    Array.of_list
      (List.map
         (fun n -> attr_access (resolve_attr cenv n))
         (Scope.free_of_query db s.query))
  in
  let csub = compile_query db spath cenv s.query in
  cur_compile_path := saved_path;
  let key ctx env =
    (s.id, Array.to_list (Array.map (fun g -> g ctx env) free_getters))
  in
  let materialize ctx env k =
    memo_read ctx;
    match Hashtbl.find_opt ctx.sub_results k with
    | Some rel ->
        ctx.stats.Sem.st_sublink_hits <- ctx.stats.Sem.st_sublink_hits + 1;
        rel
    | None ->
        ctx.stats.Sem.st_sublink_evals <- ctx.stats.Sem.st_sublink_evals + 1;
        Guard.Faults.fire_point Guard.Faults.Sublink spath;
        let rel = csub.c_run ctx env in
        memo_write ctx;
        Hashtbl.add ctx.sub_results k rel;
        rel
  in
  let summary ctx env k =
    memo_read ctx;
    match Hashtbl.find_opt ctx.sub_summaries k with
    | Some sm -> sm
    | None ->
        let rel = materialize ctx env k in
        let sm =
          Sem.summarize (List.map (fun t -> Tuple.get t 0) (Relation.tuples rel))
        in
        memo_write ctx;
        Hashtbl.add ctx.sub_summaries k sm;
        sm
  in
  (* An uncorrelated sublink has a constant memo key, so its result for
     the current execution is held in a local slot instead of paying a
     key allocation plus a structural hash per evaluation. The slot is
     keyed on the [ctx] by physical identity — a fresh execution gets a
     fresh context and recomputes — and the first fill still goes
     through the shared memo tables, so the counters ({!Sem.stats})
     advance exactly as the reference evaluator's do: relation reuse
     counts a hit, summary reuse is silent. *)
  let correlated = Array.length free_getters > 0 in
  let k0 = (s.id, []) in
  let cached_rel =
    let cache = ref None in
    fun ctx env ->
      match !cache with
      | Some (c, rel) when c == ctx ->
          ctx.stats.Sem.st_sublink_hits <- ctx.stats.Sem.st_sublink_hits + 1;
          rel
      | _ ->
          let rel = materialize ctx env k0 in
          cache := Some (ctx, rel);
          rel
  in
  let cached_summary =
    let cache = ref None in
    fun ctx env ->
      match !cache with
      | Some (c, sm) when c == ctx -> sm
      | _ ->
          let sm = summary ctx env k0 in
          cache := Some (ctx, sm);
          sm
  in
  match s.kind with
  | Exists ->
      if correlated then fun ctx env ->
        Value.Bool (not (Relation.is_empty (materialize ctx env (key ctx env))))
      else fun ctx env ->
        Value.Bool (not (Relation.is_empty (cached_rel ctx env)))
  | Scalar ->
      let first rel =
        match Relation.tuples rel with
        | [] -> Value.Null
        | [ t ] -> Tuple.get t 0
        | _ -> Sem.eval_error "scalar sublink returned more than one row"
      in
      if correlated then fun ctx env ->
        first (materialize ctx env (key ctx env))
      else fun ctx env -> first (cached_rel ctx env)
  | AnyOp (op, lhs) ->
      let clhs = compile_expr db cenv lhs in
      if correlated then fun ctx env ->
        Sem.any_of_summary op (clhs ctx env) (summary ctx env (key ctx env))
      else fun ctx env ->
        Sem.any_of_summary op (clhs ctx env) (cached_summary ctx env)
  | AllOp (op, lhs) ->
      let clhs = compile_expr db cenv lhs in
      if correlated then fun ctx env ->
        Sem.all_of_summary op (clhs ctx env) (summary ctx env (key ctx env))
      else fun ctx env ->
        Sem.all_of_summary op (clhs ctx env) (cached_summary ctx env)

(** {1 Query compilation} *)

and compile_query db path (cenv : Schema.t list) (q : query) : cop =
  (* [here] mirrors Lint's diagnostic paths; children extend the parent
     segment with a [left]/[right] qualifier exactly like Lint does. *)
  let here = path @ [ Guard.op_label q ] in
  let cpath qual = path @ [ Guard.op_label q ^ qual ] in
  guarded here
  @@
  match q with
  | Base name ->
      let schema = Relation.schema (Database.find db name) in
      materialized schema (fun ctx _ ->
          Guard.Faults.fire_point Guard.Faults.Scan here;
          Database.find ctx.db name)
  | TableExpr rel ->
      materialized (Relation.schema rel) (fun _ _ ->
          Guard.Faults.fire_point Guard.Faults.Scan here;
          rel)
  (* Fuse a selection over a product/join so pairs stream instead of the
     product being materialized first (mirrors the reference engine). *)
  | Select (cond, Cross (a, b)) -> compile_join db here cenv ~outer:false cond a b
  | Select (cond, Join (c, a, b)) ->
      compile_join db here cenv ~outer:false (And (c, cond)) a b
  | Select (cond, input) ->
      let cin = compile_query db (cpath "") cenv input in
      cur_compile_path := here;
      let pcond = compile_pred db (cin.c_schema :: cenv) cond in
      streaming cin.c_schema (fun ctx env push ->
          cin.c_stream ctx env (fun t ->
              if pcond ctx (t :: env) = 1 then push t))
  | Project { distinct; cols; proj_input } -> (
      match fuse_project db here cenv ~distinct cols proj_input with
      | Some c -> c
      | None ->
          let cin = compile_query db (cpath "") cenv proj_input in
          let ienv = cin.c_schema :: cenv in
          let out_schema = Typecheck.projection_schema db ienv cols in
          cur_compile_path := here;
          (* Projections that only reorder/duplicate input columns — the
             common case on rewritten plans, whose projection lists are
             wide but attribute-only — become a direct offset gather
             with no closure dispatch and no environment push. *)
          let row_fn =
            match own_offsets cin.c_schema cols with
            | Some offs ->
                let n = Array.length offs in
                fun _ctx _env t ->
                  let out = Array.make n Value.Null in
                  for j = 0 to n - 1 do
                    Array.unsafe_set out j
                      (Tuple.get t (Array.unsafe_get offs j))
                  done;
                  (out : Tuple.t)
            | None ->
                let cexprs =
                  Array.of_list
                    (List.map (fun (e, _) -> compile_expr db ienv e) cols)
                in
                fun ctx env t -> eval_row cexprs ctx (t :: env)
          in
          if distinct then
            materialized out_schema (fun ctx env ->
                let acc = ref [] in
                cin.c_stream ctx env (fun t ->
                    acc := row_fn ctx env t :: !acc);
                Relation.distinct
                  (Relation.make_unchecked out_schema (List.rev !acc)))
          else
            streaming out_schema (fun ctx env push ->
                cin.c_stream ctx env (fun t -> push (row_fn ctx env t))))
  | Cross (a, b) ->
      let ca = compile_query db (cpath "[left]") cenv a
      and cb = compile_query db (cpath "[right]") cenv b in
      let schema = Schema.concat ca.c_schema cb.c_schema in
      streaming schema (fun ctx env push ->
          Guard.Faults.fire_point Guard.Faults.Join here;
          let rb = cb.c_run ctx env in
          let tbs = Relation.tuples rb in
          let card_b = Relation.cardinality rb in
          ca.c_stream ctx env (fun ta ->
              Guard.count_pairs here card_b;
              List.iter (fun tb -> push (Tuple.concat ta tb)) tbs))
  | Join (cond, a, b) -> compile_join db here cenv ~outer:false cond a b
  | LeftJoin (cond, a, b) -> compile_join db here cenv ~outer:true cond a b
  | Agg { group_by; aggs; agg_input } ->
      compile_agg db here cenv group_by aggs agg_input
  | Union (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.union_bag | SetSem -> Relation.union_set
      in
      compile_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Inter (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.inter_bag | SetSem -> Relation.inter_set
      in
      compile_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Diff (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.diff_bag | SetSem -> Relation.diff_set
      in
      compile_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Order (keys, input) ->
      let cin = compile_query db (cpath "") cenv input in
      let ienv = cin.c_schema :: cenv in
      cur_compile_path := here;
      let ckeys =
        Array.of_list
          (List.map (fun (e, d) -> (compile_expr db ienv e, d)) keys)
      in
      let nkeys = Array.length ckeys in
      let kexprs = Array.map fst ckeys in
      materialized cin.c_schema (fun ctx env ->
          let decorated = ref [] in
          cin.c_stream ctx env (fun t ->
              decorated := (eval_row kexprs ctx (t :: env), t) :: !decorated);
          let cmp (ka, _) (kb, _) =
            let rec go i =
              if i >= nkeys then 0
              else
                let _, d = ckeys.(i) in
                let c = Value.compare_total ka.(i) kb.(i) in
                let c = match d with Asc -> c | Desc -> -c in
                if c <> 0 then c else go (i + 1)
            in
            go 0
          in
          Relation.make_unchecked cin.c_schema
            (List.map snd (List.stable_sort cmp (List.rev !decorated))))
  | Limit (n, input) ->
      let cin = compile_query db (cpath "") cenv input in
      (* The input is drained even once [n] rows are out: the reference
         evaluator materializes the child fully before taking, so an
         early exit would skew the shared execution counters. *)
      streaming cin.c_schema (fun ctx env push ->
          let k = ref 0 in
          cin.c_stream ctx env (fun t ->
              if !k < n then begin
                incr k;
                push t
              end))

(* Offsets of a projection list that only reads the input frame's own
   columns; [None] as soon as any item is not a bare in-frame [Attr]. *)
and own_offsets (schema : Schema.t) cols : int array option =
  let resolve = function
    | Attr name, _ -> Schema.find schema name
    | _ -> None
  in
  let offs = List.map resolve cols in
  if List.for_all Option.is_some offs then
    Some (Array.of_list (List.map Option.get offs))
  else None

(* Projection-into-join fusion: [Project] of bare attributes directly
   over a join (or a select-over-product that compiles into one) gathers
   output rows straight from the two input tuples inside the join's emit
   step — the concatenated intermediate tuple is never built. Offsets
   are checked against the join's inferred output schema so correlated
   names (resolving to an outer frame) fall back to the generic path. *)
and fuse_project db here cenv ~distinct cols proj_input : cop option =
  if distinct then None
  else
    let parts =
      match proj_input with
      | Join (c, a, b) -> Some (false, c, a, b)
      | LeftJoin (c, a, b) -> Some (true, c, a, b)
      | Select (c, Cross (a, b)) -> Some (false, c, a, b)
      | Select (c, Join (jc, a, b)) -> Some (false, And (jc, c), a, b)
      | _ -> None
    in
    match parts with
    | None -> None
    | Some (outer, cond, a, b) -> (
        let sa = Typecheck.infer_query_env db cenv a in
        let sb = Typecheck.infer_query_env db cenv b in
        let joint = Schema.concat sa sb in
        match own_offsets joint cols with
        | None -> None
        | Some offs ->
            let out_schema =
              Typecheck.projection_schema db (joint :: cenv) cols
            in
            Some
              (compile_join db here cenv ~outer ~project:(offs, out_schema)
                 cond a b))

(* ---------------- joins ---------------- *)

(* Equi-conjunct classification, key-closure building and residual
   compilation all happen here, once; execution only hashes values.
   [?project] is the fused projection: output rows are gathered from
   the (left, right) tuple pair by offset instead of concatenation. *)
and compile_join db here cenv ~outer ?project cond a b : cop =
  let qual s =
    match List.rev here with
    | last :: rest -> List.rev ((last ^ s) :: rest)
    | [] -> [ s ]
  in
  let ca = compile_query db (qual "[left]") cenv a
  and cb = compile_query db (qual "[right]") cenv b in
  cur_compile_path := here;
  let sa = ca.c_schema and sb = cb.c_schema in
  let joint = Schema.concat sa sb in
  let schema = match project with None -> joint | Some (_, s) -> s in
  let arity_a = Schema.arity sa and arity_b = Schema.arity sb in
  let mk_row =
    match project with
    | None -> Tuple.concat
    | Some (offs, _) ->
        (* explicit loop: [Array.map] would allocate a fresh closure
           capturing (ta, tb) on every emitted row *)
        let n = Array.length offs in
        fun ta tb ->
          let out = Array.make n Value.Null in
          for j = 0 to n - 1 do
            let i = Array.unsafe_get offs j in
            Array.unsafe_set out j
              (if i < arity_a then Tuple.get ta i
               else Tuple.get tb (i - arity_a))
          done;
          (out : Tuple.t)
  in
  let pairs, residual =
    Scope.split_equi db ~left:(Schema.names sa) ~right:(Schema.names sb) cond
  in
  (* Join conditions are compiled against the two input frames rather
     than the concatenated tuple: [sa] and [sb] are disjoint (enforced
     by [Schema.concat]), so a name resolves to the same cell whether
     the frames are stacked or concatenated — but stacking means a
     non-matching pair costs two list cells instead of an array copy.
     Output rows are only built for pairs that survive. *)
  if pairs = [] then
    (* Left-only hoisting: when the first operand of a top-level OR/AND
       reads nothing from the right input, evaluate it once per left
       tuple instead of once per pair. The reference evaluator computes
       the same (left-determined) value for every pair and short
       -circuits the second operand on it, so emitted rows are
       identical; [counter_silent] guarantees the changed evaluation
       frequency is invisible in the stats, and the second operand keeps
       running exactly when the reference's short-circuit rules run it
       (including the AND-unknown case, where it is evaluated per pair
       and every pair is dropped). *)
    let hoistable x =
      counter_silent x
      &&
      let sbn = Schema.names sb in
      List.for_all (fun n -> not (List.mem n sbn)) (expr_deps db x)
    in
    let penv = sb :: sa :: cenv in
    let split =
      match cond with
      | Or (x, y) when hoistable x ->
          `Or (compile_pred db (sa :: cenv) x, compile_pred db penv y)
      | And (x, y) when hoistable x ->
          `And (compile_pred db (sa :: cenv) x, compile_pred db penv y)
      | _ -> `Whole (compile_pred db penv cond)
    in
    streaming schema (fun ctx env push ->
        Guard.Faults.fire_point Guard.Faults.Join here;
        ctx.stats.Sem.st_nested_loop_joins <-
          ctx.stats.Sem.st_nested_loop_joins + 1;
        let rb = cb.c_run ctx env in
        let tbs = Relation.tuples rb in
        let card_b = Relation.cardinality rb in
        let pad = Tuple.nulls arity_b in
        let nleft = ref 0 and emitted = ref 0 in
        let emit_pad ta =
          incr emitted;
          push (mk_row ta pad)
        in
        let emit_all ta =
          List.iter
            (fun tb ->
              incr emitted;
              push (mk_row ta tb))
            tbs
        in
        let emit_filtered ta aenv p =
          let hit = ref false in
          List.iter
            (fun tb ->
              if p ctx (tb :: aenv) = 1 then begin
                hit := true;
                incr emitted;
                push (mk_row ta tb)
              end)
            tbs;
          if outer && not !hit then emit_pad ta
        in
        let drain_drop ta aenv p =
          List.iter (fun tb -> ignore (p ctx (tb :: aenv))) tbs;
          if outer then emit_pad ta
        in
        ca.c_stream ctx env (fun ta ->
            incr nleft;
            Guard.count_pairs here card_b;
            let aenv = ta :: env in
            match tbs with
            | [] -> if outer then emit_pad ta
            | _ -> (
                match split with
                | `Whole p -> emit_filtered ta aenv p
                | `Or (px, py) ->
                    if px ctx aenv = 1 then emit_all ta
                    else emit_filtered ta aenv py
                | `And (px, py) -> (
                    match px ctx aenv with
                    | 0 -> if outer then emit_pad ta
                    | 1 -> emit_filtered ta aenv py
                    | _ -> drain_drop ta aenv py)));
        ctx.stats.Sem.st_nested_pairs <-
          ctx.stats.Sem.st_nested_pairs + (!nleft * card_b);
        ctx.stats.Sem.st_rows_emitted <-
          ctx.stats.Sem.st_rows_emitted + !emitted)
  else
    let left_keys =
      Array.of_list
        (List.map (fun (e, _, _) -> compile_expr db (sa :: cenv) e) pairs)
    in
    let right_keys =
      Array.of_list
        (List.map (fun (_, e, _) -> compile_expr db (sb :: cenv) e) pairs)
    in
    let safe = Array.of_list (List.map (fun (_, _, s) -> s) pairs) in
    let nkeys = Array.length safe in
    let cresidual =
      match residual with
      | [] -> None
      | r -> Some (compile_pred db (sb :: sa :: cenv) (conj r))
    in
    (* A NULL in a non-null-safe key position can never match. *)
    let usable (key : Tuple.t) =
      let rec go i =
        i >= nkeys || ((safe.(i) || not (Value.is_null key.(i))) && go (i + 1))
      in
      go 0
    in
    streaming schema (fun ctx env push ->
        Guard.Faults.fire_point Guard.Faults.Join here;
        ctx.stats.Sem.st_hash_joins <- ctx.stats.Sem.st_hash_joins + 1;
        let rb = cb.c_run ctx env in
        let table = Tuple.Tbl.create (max 16 (Relation.cardinality rb)) in
        List.iter
          (fun tb ->
            let key = eval_row right_keys ctx (tb :: env) in
            if usable key then begin
              let existing =
                try Tuple.Tbl.find table key with Not_found -> []
              in
              Tuple.Tbl.replace table key (tb :: existing)
            end)
          (Relation.tuples rb);
        let pad = Tuple.nulls arity_b in
        let emitted = ref 0 in
        ca.c_stream ctx env (fun ta ->
            let fenv = ta :: env in
            let key = eval_row left_keys ctx fenv in
            let matches =
              if usable key then
                match Tuple.Tbl.find_opt table key with
                | Some tbs -> List.rev tbs
                | None -> []
              else []
            in
            let hit = ref false in
            (match cresidual with
            | None ->
                List.iter
                  (fun tb ->
                    hit := true;
                    incr emitted;
                    push (mk_row ta tb))
                  matches
            | Some cr ->
                List.iter
                  (fun tb ->
                    if cr ctx (tb :: fenv) = 1 then begin
                      hit := true;
                      incr emitted;
                      push (mk_row ta tb)
                    end)
                  matches);
            if outer && not !hit then begin
              incr emitted;
              push (mk_row ta pad)
            end);
        ctx.stats.Sem.st_rows_emitted <-
          ctx.stats.Sem.st_rows_emitted + !emitted)

(* ---------------- aggregation ---------------- *)

and compile_agg db here cenv group_by aggs agg_input : cop =
  let cin = compile_query db (here : string list) cenv agg_input in
  let ienv = cin.c_schema :: cenv in
  cur_compile_path := here;
  let out_schema = Typecheck.aggregation_schema db ienv group_by aggs in
  let group_cexprs =
    Array.of_list (List.map (fun (e, _) -> compile_expr db ienv e) group_by)
  in
  let agg_specs =
    List.map
      (fun call ->
        ( call.agg_func,
          call.agg_distinct,
          Option.map (compile_expr db ienv) call.agg_arg ))
      aggs
  in
  let grouped = group_by <> [] in
  materialized out_schema (fun ctx env ->
      let groups = Tuple.Tbl.create 64 in
      let order = ref [] in
      let saw_input = ref false in
      cin.c_stream ctx env (fun t ->
          saw_input := true;
          let fenv = t :: env in
          let key : Tuple.t = eval_row group_cexprs ctx fenv in
          match Tuple.Tbl.find_opt groups key with
          | Some members -> Tuple.Tbl.replace groups key (t :: members)
          | None ->
              Tuple.Tbl.add groups key [ t ];
              order := key :: !order);
      let keys =
        if (not grouped) && not !saw_input then [ Tuple.of_list [] ]
        else List.rev !order
      in
      let compute_group key =
        let members =
          match Tuple.Tbl.find_opt groups key with
          | Some ms -> List.rev ms
          | None -> []
        in
        let agg_values =
          List.map
            (fun (func, distinct, carg) ->
              let raw =
                match carg with
                | None -> List.map (fun _ -> Value.Int 1) members (* COUNT( * ) *)
                | Some ce ->
                    List.filter_map
                      (fun t ->
                        let v = ce ctx (t :: env) in
                        if Value.is_null v then None else Some v)
                      members
              in
              Builtin.apply_aggregate func ~distinct raw)
            agg_specs
        in
        Tuple.concat key (Tuple.of_list agg_values)
      in
      Relation.make_unchecked out_schema (List.map compute_group keys))

(* ---------------- set operations ---------------- *)

and compile_setop db lpath rpath cenv op a b : cop =
  let ca = compile_query db lpath cenv a and cb = compile_query db rpath cenv b in
  materialized ca.c_schema (fun ctx env ->
      op (ca.c_run ctx env) (cb.c_run ctx env))

(** {1 Public API} *)

(** [compile ?env db q] lowers [q] to an executable plan; [env] supplies
    the schemas of outer frames for correlated compilation. *)
let compile ?(env = []) db q =
  cur_compile_path := [];
  { top = compile_query db [] env q; cdb = db }

let schema c = c.top.c_schema

(** [run ?env c] executes a compiled plan with a fresh memoization
    context; [env] supplies the outer frames' tuples, innermost first,
    matching the schema stack given to {!compile}. *)
let run ?(env = []) c = c.top.c_run (mk_ctx c.cdb) env

let run_stats ?(env = []) c =
  let ctx = mk_ctx c.cdb in
  let rel = c.top.c_run ctx env in
  (rel, ctx.stats)

(** [stream ?env c push] runs a compiled plan push-based: [push]
    receives each output row in order, before the next is produced —
    the observation point the governor tests use to check that rows
    emitted before a budget trip agree with an untripped run. *)
let stream ?(env = []) c push = c.top.c_stream (mk_ctx c.cdb) env push

(** [query db q] compiles and runs in one step — the compiled engine's
    equivalent of [Eval.query]. [env] pairs each outer frame's schema
    with its tuple. *)
let query ?(env = []) db q =
  let c = compile ~env:(List.map fst env) db q in
  run ~env:(List.map snd env) c

let query_stats ?(env = []) db q =
  let c = compile ~env:(List.map fst env) db q in
  run_stats ~env:(List.map snd env) c

(** [expr db e] compiles and evaluates a scalar expression (sublinks
    allowed). *)
let expr ?(env = []) db e =
  cur_compile_path := [];
  let ce = compile_expr db (List.map fst env) e in
  ce (mk_ctx db) (List.map snd env)

(** {1 Engine-internal surface}

    The vectorized engine ({!Vexec}) lowers the same type-checked
    algebra but executes batch-at-a-time; for everything that is not a
    columnar kernel — row-wise fallback expressions, join residuals,
    aggregate arguments — it reuses this module's compiled closures so
    the two engines share one semantics (and one sublink memo/summary
    cache per execution context). *)

let ctx_stats (ctx : ctx) = ctx.stats
let ctx_db (ctx : ctx) = ctx.db

let compile_scalar ?(path = []) db cenv e : cexpr =
  cur_compile_path := path;
  compile_expr db cenv e

let compile_predicate ?(path = []) db cenv e : ctx -> renv -> int =
  cur_compile_path := path;
  compile_pred db cenv e

let eval_exprs = eval_row
let offsets_of_projection = own_offsets

(** [sublink_summary db cenv s] — for an {e uncorrelated} sublink, a
    per-execution summary accessor sharing the compiled engine's memo
    tables and counter behavior (first call per [ctx] materializes and
    counts one eval; later calls are silent summary reuse, exactly as
    the compiled engine's per-row path behaves). [None] when [s] is
    correlated. The vectorized ANY/ALL probe kernels call this once
    per execution, before any parallel section, so the summary is
    immutable by the time workers read it. *)
let sublink_summary ?(path = []) db cenv (s : sublink) :
    (ctx -> renv -> Sem.summary) option =
  if Scope.free_of_query db s.query <> [] then None
  else begin
    cur_compile_path := path;
    let spath = path @ [ Printf.sprintf "sublink[%d]" s.id ] in
    let csub = compile_query db spath cenv s.query in
    cur_compile_path := path;
    let k0 = (s.id, []) in
    Some
      (fun ctx env ->
        memo_read ctx;
        match Hashtbl.find_opt ctx.sub_summaries k0 with
        | Some sm -> sm
        | None ->
            let rel =
              match Hashtbl.find_opt ctx.sub_results k0 with
              | Some rel ->
                  ctx.stats.Sem.st_sublink_hits <-
                    ctx.stats.Sem.st_sublink_hits + 1;
                  rel
              | None ->
                  ctx.stats.Sem.st_sublink_evals <-
                    ctx.stats.Sem.st_sublink_evals + 1;
                  Guard.Faults.fire_point Guard.Faults.Sublink spath;
                  let rel = csub.c_run ctx env in
                  memo_write ctx;
                  Hashtbl.add ctx.sub_results k0 rel;
                  rel
            in
            let sm =
              Sem.summarize
                (List.map (fun t -> Tuple.get t 0) (Relation.tuples rel))
            in
            memo_write ctx;
            Hashtbl.add ctx.sub_summaries k0 sm;
            sm)
  end
