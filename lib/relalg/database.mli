(** A database: a catalog of named base relations. *)

type t

exception Unknown_relation of string

val create : unit -> t

(** [uid db] is a process-unique identity assigned at {!create};
    [version db] counts catalog mutations (table/view add and drop).
    Together they key the statistics cache ({!Stats}): any mutation or
    rebuild of the catalog invalidates previously collected
    statistics. *)
val uid : t -> int

val version : t -> int

(** [add db name rel] registers or replaces relation [name]. *)
val add : t -> string -> Relation.t -> unit

val of_list : (string * Relation.t) list -> t
val mem : t -> string -> bool

(** [find db name] raises {!Unknown_relation} when absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option

(** Sorted relation names. *)
val names : t -> string list

(** {1 Views} — named algebra queries, inlined by the SQL analyzer. *)

val add_view : t -> string -> Algebra.query -> unit
val find_view : t -> string -> Algebra.query option
val mem_view : t -> string -> bool
val view_names : t -> string list

(** [drop db name] removes a table or view; [false] if neither exists. *)
val drop : t -> string -> bool

(** Total number of tuples across all relations. *)
val total_tuples : t -> int
