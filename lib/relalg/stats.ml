(** Table and column statistics for cardinality estimation.

    One deterministic sampling pass per table (stride sampling, capped
    at {!sample_cap} rows) collects, per column: null fraction, an
    estimated number of distinct values (first-order jackknife scale-up
    from the sample), numeric min/max, and a {!buckets}-bucket
    equi-depth histogram over the sampled numeric values.

    Collected statistics are cached per catalog state: the cache is
    keyed on [(Database.uid, Database.version)], so any catalog
    mutation (table/view add or drop — server sessions' DDL overlays
    included) and any catalog rebuild (a fresh [Database.create], as on
    snapshot epoch swaps) invalidates previous statistics without the
    caller having to notice. *)

let buckets = 16
let sample_cap = 2048

type column = {
  c_name : string;
  c_null_frac : float;  (** fraction of sampled values that were NULL *)
  c_ndv : float;  (** estimated distinct values, scaled to the table *)
  c_min : float option;  (** numeric minimum over sampled non-nulls *)
  c_max : float option;
  c_hist : float array;
      (** equi-depth bucket boundaries over sampled numeric non-nulls,
          length [buckets + 1]; [||] for non-numeric or empty columns *)
}

type table = { t_rows : int; t_cols : column list }

type t = {
  s_uid : int;
  s_version : int;
  s_tables : (string, table) Hashtbl.t;
}

let to_num = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Bool b -> Some (if b then 1.0 else 0.0)
  | Value.Null | Value.String _ -> None

(* Equi-depth boundaries of a sorted value array: boundary [k] is the
   value at sample rank [k/buckets]. *)
let equi_depth sorted =
  let m = Array.length sorted in
  if m = 0 then [||]
  else
    Array.init (buckets + 1) (fun k ->
        sorted.(min (m - 1) (k * m / buckets)))

let column_of_sample ~rows ~name sample =
  let n_sample = List.length sample in
  if n_sample = 0 then
    {
      c_name = name;
      c_null_frac = 0.0;
      c_ndv = 1.0;
      c_min = None;
      c_max = None;
      c_hist = [||];
    }
  else begin
    let nulls = ref 0 in
    let counts : (Value.t, int) Hashtbl.t = Hashtbl.create 64 in
    let nums = ref [] in
    List.iter
      (fun v ->
        if Value.is_null v then incr nulls
        else begin
          Hashtbl.replace counts v
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v));
          match to_num v with
          | Some f -> nums := f :: !nums
          | None -> ()
        end)
      sample;
    let non_null = n_sample - !nulls in
    let d = Hashtbl.length counts in
    let f1 = Hashtbl.fold (fun _ c acc -> if c = 1 then acc + 1 else acc) counts 0 in
    (* first-order jackknife: values seen once in the sample predict
       unseen values in the unsampled remainder *)
    let scale =
      if non_null = 0 then 1.0
      else float_of_int rows /. float_of_int n_sample
    in
    let ndv =
      Float.min
        (float_of_int rows)
        (Float.max 1.0 (float_of_int d +. (float_of_int f1 *. (scale -. 1.0))))
    in
    let sorted = Array.of_list !nums in
    Array.sort Float.compare sorted;
    let m = Array.length sorted in
    {
      c_name = name;
      c_null_frac = float_of_int !nulls /. float_of_int n_sample;
      c_ndv = ndv;
      c_min = (if m = 0 then None else Some sorted.(0));
      c_max = (if m = 0 then None else Some sorted.(m - 1));
      c_hist = equi_depth sorted;
    }
  end

(** [of_relation rel] is a one-pass statistics collection over [rel]
    (no cache — used for inline [TableExpr] relations too). *)
let of_relation rel =
  let rows = Relation.cardinality rel in
  let names = Schema.names (Relation.schema rel) in
  let tuples = Relation.tuples rel in
  let stride = max 1 ((rows + sample_cap - 1) / sample_cap) in
  let sample =
    if stride = 1 then tuples
    else
      List.filteri (fun i _ -> i mod stride = 0) tuples
  in
  let cols =
    List.mapi
      (fun i name ->
        column_of_sample ~rows ~name
          (List.map (fun t -> Tuple.get t i) sample))
      names
  in
  { t_rows = rows; t_cols = cols }

let collect db =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace tables name (of_relation (Database.find db name)))
    (Database.names db);
  { s_uid = Database.uid db; s_version = Database.version db; s_tables = tables }

(* Cache: one entry per database uid, revalidated against the catalog
   version on every lookup. Guarded by a mutex — server sessions
   collect from multiple domains. *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 8
let cache_mu = Mutex.create ()

let of_db db =
  Mutex.lock cache_mu;
  let cached = Hashtbl.find_opt cache (Database.uid db) in
  Mutex.unlock cache_mu;
  match cached with
  | Some s when s.s_version = Database.version db -> s
  | _ ->
      let s = collect db in
      Mutex.lock cache_mu;
      if Hashtbl.length cache > 64 then Hashtbl.reset cache;
      Hashtbl.replace cache (Database.uid db) s;
      Mutex.unlock cache_mu;
      s

let invalidate db =
  Mutex.lock cache_mu;
  Hashtbl.remove cache (Database.uid db);
  Mutex.unlock cache_mu

let table s name = Hashtbl.find_opt s.s_tables name

let column t name =
  List.find_opt (fun c -> String.equal c.c_name name) t.t_cols

(** [frac_le c x]: fraction of the column's {e non-null} values that
    are [<= x], interpolated linearly within the histogram bucket
    containing [x]; 0.5 when no histogram is available. *)
let frac_le c x =
  let h = c.c_hist in
  let b = Array.length h - 1 in
  if b < 1 then 0.5
  else if x < h.(0) then 0.0
  else if x >= h.(b) then 1.0
  else begin
    (* find the bucket k with h.(k) <= x < h.(k+1) *)
    let k = ref 0 in
    while !k < b - 1 && h.(!k + 1) <= x do incr k done;
    let lo = h.(!k) and hi = h.(!k + 1) in
    let within = if hi <= lo then 1.0 else (x -. lo) /. (hi -. lo) in
    (float_of_int !k +. within) /. float_of_int b
  end

(** [frac_eq c x]: selectivity of [col = x] among non-null values —
    [1/ndv] inside the observed range, 0 outside it. *)
let frac_eq c x =
  match (c.c_min, c.c_max) with
  | Some lo, Some hi when x < lo || x > hi -> 0.0
  | _ -> 1.0 /. Float.max 1.0 c.c_ndv

let to_string s =
  let buf = Buffer.create 256 in
  let names =
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) s.s_tables [])
  in
  List.iter
    (fun name ->
      let t = Hashtbl.find s.s_tables name in
      Buffer.add_string buf (Printf.sprintf "%s: %d rows\n" name t.t_rows);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  %-24s ndv %-8.0f null %-5.2f %s\n" c.c_name
               c.c_ndv c.c_null_frac
               (match (c.c_min, c.c_max) with
               | Some lo, Some hi -> Printf.sprintf "[%g, %g]" lo hi
               | _ -> "-")))
        t.t_cols)
    names;
  Buffer.contents buf
