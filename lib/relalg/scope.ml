(** Scope analysis: output attribute names of a query and the free
    (correlated) attribute references of a query or expression.

    A name is free in a sublink query when it does not resolve against
    any scope created inside the sublink — it must be bound by an
    enclosing operator, i.e. it is a correlation (Section 2.2). The
    evaluator uses the free-name set as the memoization key for sublink
    results ("hashed subplan"). *)

open Algebra

module S = Set.Make (String)

(** Output attribute names of [q] (no type information needed). *)
let rec out_names db (q : query) : string list =
  match q with
  | Base name -> Schema.names (Relation.schema (Database.find db name))
  | TableExpr rel -> Schema.names (Relation.schema rel)
  | Select (_, input) | Order (_, input) | Limit (_, input) -> out_names db input
  | Project { cols; _ } -> List.map snd cols
  | Cross (a, b) | Join (_, a, b) | LeftJoin (_, a, b) ->
      out_names db a @ out_names db b
  | Agg { group_by; aggs; _ } ->
      List.map snd group_by @ List.map (fun c -> c.agg_name) aggs
  | Union (_, a, _) | Inter (_, a, _) | Diff (_, a, _) -> out_names db a

(* [local] is the stack of name lists bound inside the region being
   analyzed; a reference not found in any of them escapes the region. *)

let defined_in local name = List.exists (List.mem name) local

let rec free_expr db (local : string list list) (e : expr) (acc : S.t) : S.t =
  match e with
  | Const _ | TypedNull _ -> acc
  | Attr name -> if defined_in local name then acc else S.add name acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      free_expr db local b (free_expr db local a acc)
  | Not a | IsNull a | Like (a, _) -> free_expr db local a acc
  | Case (whens, els) ->
      let acc =
        List.fold_left
          (fun acc (c, x) -> free_expr db local x (free_expr db local c acc))
          acc whens
      in
      Option.fold ~none:acc ~some:(fun e -> free_expr db local e acc) els
  | InList (a, es) ->
      List.fold_left (fun acc e -> free_expr db local e acc) (free_expr db local a acc) es
  | FunCall (_, es) ->
      List.fold_left (fun acc e -> free_expr db local e acc) acc es
  | Sublink s ->
      let acc =
        match s.kind with
        | Exists | Scalar -> acc
        | AnyOp (_, lhs) | AllOp (_, lhs) -> free_expr db local lhs acc
      in
      free_query_acc db local s.query acc

and free_query_acc db (local : string list list) (q : query) (acc : S.t) : S.t =
  let with_input input f acc =
    let scope = out_names db input :: local in
    f scope acc
  in
  match q with
  | Base _ | TableExpr _ -> acc
  | Select (cond, input) ->
      let acc = with_input input (fun scope acc -> free_expr db scope cond acc) acc in
      free_query_acc db local input acc
  | Project { cols; proj_input; _ } ->
      let acc =
        with_input proj_input
          (fun scope acc ->
            List.fold_left (fun acc (e, _) -> free_expr db scope e acc) acc cols)
          acc
      in
      free_query_acc db local proj_input acc
  | Cross (a, b) -> free_query_acc db local b (free_query_acc db local a acc)
  | Join (cond, a, b) | LeftJoin (cond, a, b) ->
      let scope = (out_names db a @ out_names db b) :: local in
      let acc = free_expr db scope cond acc in
      free_query_acc db local b (free_query_acc db local a acc)
  | Agg { group_by; aggs; agg_input } ->
      let acc =
        with_input agg_input
          (fun scope acc ->
            let acc =
              List.fold_left (fun acc (e, _) -> free_expr db scope e acc) acc group_by
            in
            List.fold_left
              (fun acc c ->
                match c.agg_arg with
                | Some e -> free_expr db scope e acc
                | None -> acc)
              acc aggs)
          acc
      in
      free_query_acc db local agg_input acc
  | Union (_, a, b) | Inter (_, a, b) | Diff (_, a, b) ->
      free_query_acc db local b (free_query_acc db local a acc)
  | Order (keys, input) ->
      let acc =
        with_input input
          (fun scope acc ->
            List.fold_left (fun acc (e, _) -> free_expr db scope e acc) acc keys)
          acc
      in
      free_query_acc db local input acc
  | Limit (_, input) -> free_query_acc db local input acc

(** Free attribute names of [q]: correlated references that must be
    bound by enclosing scopes. Sorted, duplicate-free. *)
let free_of_query db q = S.elements (free_query_acc db [] q S.empty)

(** Free attribute names of expression [e] under an operator whose input
    schema provides [input_names]. *)
let free_of_expr db input_names e =
  S.elements (free_expr db [ input_names ] e S.empty)

(** Names referenced by [e] that are NOT bound by any scope — i.e. with
    no local scope at all. Used by the optimizer to decide pushdown. *)
let refs_of_expr db e = S.elements (free_expr db [] e S.empty)

(** [is_uncorrelated db s] holds when sublink [s] has no correlated
    references — the applicability condition of the Left, Move and Unn
    strategies (Section 3.6). *)
let is_uncorrelated db (s : sublink) = free_of_query db s.query = []

(** [split_equi db ~left ~right cond] classifies each top-level
    conjunct of a join condition as a hashable equi-pair
    [(left_expr, right_expr, null_safe)] — an [=]/[=n] comparison whose
    sides reference only the left/right input respectively — or as a
    residual condition. This is purely syntactic scope analysis, so
    both execution engines share it; the compiled engine runs it once
    per join operator instead of once per evaluation. *)
let split_equi db ~left ~right cond =
  let touches names e =
    List.exists (fun n -> List.mem n names) (refs_of_expr db e)
  in
  List.fold_left
    (fun (pairs, residual) conjunct ->
      match conjunct with
      | Cmp (((Eq | EqNull) as op), e1, e2)
        when (not (has_sublink e1)) && not (has_sublink e2) -> (
          let null_safe = op = EqNull in
          match (touches right e1, touches left e2) with
          | false, false -> (pairs @ [ (e1, e2, null_safe) ], residual)
          | true, true when (not (touches left e1)) && not (touches right e2)
            ->
              (pairs @ [ (e2, e1, null_safe) ], residual)
          | _ -> (pairs, residual @ [ conjunct ]))
      | c -> (pairs, residual @ [ c ]))
    ([], []) (conjuncts cond)
