(** Bag relations: a schema plus a multiset of tuples (a tuple's
    multiplicity is its number of occurrences), with the bag and
    duplicate-removing set operations of Figure 1. *)

type t

exception Relation_error of string

(** [make schema tuples] checks every tuple's arity against [schema]. *)
val make : Schema.t -> Tuple.t list -> t

(** [make_unchecked schema tuples] skips the per-tuple arity check —
    for operators (e.g. the compiled engine) whose output arity is
    correct by construction. *)
val make_unchecked : Schema.t -> Tuple.t list -> t

(** [make_lazy ~cardinality schema produce] — late materialization: the
    rows are built by [produce ()] on first access and cached (the
    vectorized engine keeps results in columnar batches and only
    transposes to boxed rows if a consumer actually reads them).
    [cardinality] must equal the produced list's length; {!cardinality}
    and {!is_empty} are answered without forcing the rows. [produce]
    must be pure; forcing is domain-safe (same discipline as
    {!counts}). *)
val make_lazy : cardinality:int -> Schema.t -> (unit -> Tuple.t list) -> t

val empty : Schema.t -> t
val schema : t -> Schema.t
val tuples : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool

(** [of_values schema rows] builds a relation from value-list rows. *)
val of_values : Schema.t -> Value.t list list -> t

(** [counts r] maps each distinct tuple to its multiplicity; computed
    on first use and cached in the relation, so repeated calls (and
    {!multiplicity} queries) are O(1) after the first. Initialization
    is domain-safe (atomic publication + mutex-serialized build), so
    parallel readers may call this concurrently. Callers must not
    mutate the result. *)
val counts : t -> int Tuple.Tbl.t

val multiplicity : t -> Tuple.t -> int
val mem : t -> Tuple.t -> bool

(** [nullable_columns r] flags, per column, whether any tuple holds a
    NULL there; computed on first use and cached in the relation
    (domain-safe, like {!counts}). Callers must not mutate the
    result. *)
val nullable_columns : t -> bool array

(** [column_nullable r i] is [(nullable_columns r).(i)]. *)
val column_nullable : t -> int -> bool

(** [distinct r] removes duplicates, keeping first occurrences. *)
val distinct : t -> t

(** {1 Bag operations} *)

val union_bag : t -> t -> t
val inter_bag : t -> t -> t
val diff_bag : t -> t -> t

(** {1 Set (duplicate-removing) operations} *)

val union_set : t -> t -> t
val inter_set : t -> t -> t
val diff_set : t -> t -> t

(** {1 Comparison} *)

(** Same types, same tuples with the same multiplicities. *)
val equal_bag : t -> t -> bool

(** Same distinct tuples, multiplicities ignored. *)
val equal_set : t -> t -> bool

(** Canonically sorted tuple list, for deterministic test output. *)
val sorted_tuples : t -> Tuple.t list

val pp : Format.formatter -> t -> unit
