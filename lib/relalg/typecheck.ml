(** Static checking and schema inference for algebra trees.

    An environment is a stack of schemas, innermost first. Attribute
    references resolve against the innermost schema that defines the
    name, which is exactly how correlated sublink references are bound at
    evaluation time (Section 2.2: correlation references an attribute of
    the input of the operator or of a containing sublink). *)

open Algebra

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = Schema.t list

(* Damerau–Levenshtein distance (with adjacent transposition), used to
   rank candidate attribute names for error messages. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost);
      if
        i > 1 && j > 1
        && a.[i - 1] = b.[j - 2]
        && a.[i - 2] = b.[j - 1]
      then d.(i).(j) <- min d.(i).(j) (d.(i - 2).(j - 2) + cost)
    done
  done;
  d.(la).(lb)

(** [did_you_mean name candidates] is the candidates closest to [name]
    (case-insensitive edit distance, qualified-name suffix matches
    first), best first, at most three. Shared by {!resolve}'s error
    message and the linter's unresolved-attribute rule. *)
let did_you_mean name candidates =
  let lname = String.lowercase_ascii name in
  let score cand =
    let lcand = String.lowercase_ascii cand in
    if lcand = lname then Some 0
    else if
      (* a qualified candidate whose column part matches, or vice versa *)
      String.length lcand > String.length lname
      && String.ends_with ~suffix:("." ^ lname) lcand
      || String.length lname > String.length lcand
         && String.ends_with ~suffix:("." ^ lcand) lname
    then Some 1
    else
      let d = edit_distance lname lcand in
      let budget = max 2 (1 + (String.length name / 4)) in
      if d <= budget then Some (1 + d) else None
  in
  List.sort_uniq compare candidates
  |> List.filter_map (fun c -> Option.map (fun s -> (s, c)) (score c))
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 3)
  |> List.map snd

(** [resolve env name] is the type of [name] in the innermost schema
    defining it. *)
let resolve (env : env) name =
  let rec go = function
    | [] ->
        let in_scope = List.concat_map Schema.names env in
        let hint =
          match did_you_mean name in_scope with
          | [] -> ""
          | cands ->
              Printf.sprintf "; did you mean %s?"
                (String.concat " or " (List.map (Printf.sprintf "%S") cands))
        in
        type_error "unknown attribute %S (in scope: %s)%s" name
          (String.concat " | "
             (List.map (fun s -> String.concat "," (Schema.names s)) env))
          hint
    | schema :: rest -> (
        match Schema.find schema name with
        | Some i -> (Schema.attr_at schema i).Schema.ty
        | None -> go rest)
  in
  go env

(* Inference returns [None] for expressions of statically unknown type
   (a bare NULL literal), which unifies with every type. *)

let compatible_opt a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y -> Vtype.compatible x y

let promote_opt a b =
  match (a, b) with
  | Some Vtype.TInt, Some Vtype.TInt -> Some Vtype.TInt
  | (Some (Vtype.TInt | Vtype.TFloat) | None), (Some (Vtype.TInt | Vtype.TFloat) | None)
    ->
      if a = None && b = None then None else Some Vtype.TFloat
  | _ ->
      type_error "arithmetic over non-numeric types"

let string_of_opt = function
  | None -> "null"
  | Some t -> Vtype.to_string t

let rec infer_expr db (env : env) (e : expr) : Vtype.t option =
  match e with
  | Const v -> Value.vtype_of v
  | TypedNull ty -> Some ty
  | Attr name -> Some (resolve env name)
  | Binop (op, a, b) -> (
      let ta = infer_expr db env a and tb = infer_expr db env b in
      match op with
      | Add | Sub | Mul | Div -> promote_opt ta tb
      | Mod -> (
          match (ta, tb) with
          | (Some Vtype.TInt | None), (Some Vtype.TInt | None) -> Some Vtype.TInt
          | _ -> type_error "%% requires integer operands")
      | Concat -> Some Vtype.TString)
  | Cmp (_, a, b) ->
      let ta = infer_expr db env a and tb = infer_expr db env b in
      if compatible_opt ta tb then Some Vtype.TBool
      else
        type_error "comparison between incompatible types %s and %s"
          (string_of_opt ta) (string_of_opt tb)
  | And (a, b) | Or (a, b) ->
      check_boolean db env a;
      check_boolean db env b;
      Some Vtype.TBool
  | Not a ->
      check_boolean db env a;
      Some Vtype.TBool
  | IsNull a ->
      ignore (infer_expr db env a);
      Some Vtype.TBool
  | Case (whens, els) ->
      if whens = [] then type_error "CASE with no WHEN branches";
      List.iter (fun (c, _) -> check_boolean db env c) whens;
      let branch_tys =
        List.map (fun (_, e) -> infer_expr db env e) whens
        @ (match els with Some e -> [ infer_expr db env e ] | None -> [])
      in
      let merged =
        List.fold_left
          (fun acc ty ->
            if compatible_opt acc ty then (if acc = None then ty else acc)
            else type_error "CASE branches have incompatible types")
          None branch_tys
      in
      merged
  | Like (a, _) -> (
      match infer_expr db env a with
      | Some Vtype.TString | None -> Some Vtype.TBool
      | Some t -> type_error "LIKE over non-string type %s" (Vtype.to_string t))
  | InList (a, es) ->
      let ta = infer_expr db env a in
      List.iter
        (fun e ->
          if not (compatible_opt ta (infer_expr db env e)) then
            type_error "IN list element type mismatch")
        es;
      Some Vtype.TBool
  | FunCall (name, args) ->
      let arg_tys = List.map (infer_expr db env) args in
      (* Unknown (NULL-typed) arguments default to string for signature
         lookup; the dynamic semantics is NULL-strict anyway. *)
      let concrete = List.map (Option.value ~default:Vtype.TString) arg_tys in
      Some (Builtin.scalar_result_type name concrete)
  | Sublink s -> infer_sublink db env s

and check_boolean db env e =
  match infer_expr db env e with
  | Some Vtype.TBool | None -> ()
  | Some t ->
      type_error "expected a boolean condition, got type %s" (Vtype.to_string t)

and infer_sublink db (env : env) (s : sublink) : Vtype.t option =
  let sub_schema = infer_query_env db env s.query in
  match s.kind with
  | Exists -> Some Vtype.TBool
  | Scalar ->
      if Schema.arity sub_schema <> 1 then
        type_error "scalar sublink must produce exactly one column (got %d)"
          (Schema.arity sub_schema);
      Some (Schema.attr_at sub_schema 0).Schema.ty
  | AnyOp (_, lhs) | AllOp (_, lhs) ->
      if Schema.arity sub_schema <> 1 then
        type_error "ANY/ALL sublink must produce exactly one column (got %d)"
          (Schema.arity sub_schema);
      let tl = infer_expr db env lhs in
      let tr = Some (Schema.attr_at sub_schema 0).Schema.ty in
      if compatible_opt tl tr then Some Vtype.TBool
      else
        type_error "ANY/ALL comparison between incompatible types %s and %s"
          (string_of_opt tl) (string_of_opt tr)

(** [projection_schema db env cols] is the output schema of a
    projection list under [env] (innermost schema first); expressions
    of statically unknown type default to string, matching evaluation.
    Shared by inference and by both execution engines, so the compiled
    engine computes it once per operator. *)
and projection_schema db (env : env) cols : Schema.t =
  Schema.of_list
    (List.map
       (fun (e, name) ->
         let ty = Option.value ~default:Vtype.TString (infer_expr db env e) in
         Schema.attr name ty)
       cols)

(** [aggregation_schema db env group_by aggs] is the output schema of
    an aggregation operator: group-by attributes followed by aggregate
    results. *)
and aggregation_schema db (env : env) group_by aggs : Schema.t =
  let group_attrs =
    List.map
      (fun (e, name) ->
        let ty = Option.value ~default:Vtype.TString (infer_expr db env e) in
        Schema.attr name ty)
      group_by
  in
  let agg_attrs =
    List.map
      (fun call ->
        let arg_ty =
          Option.map
            (fun e -> Option.value ~default:Vtype.TString (infer_expr db env e))
            call.agg_arg
        in
        Schema.attr call.agg_name
          (Builtin.aggregate_result_type call.agg_func arg_ty))
      aggs
  in
  Schema.of_list (group_attrs @ agg_attrs)

(** [infer_query_env db outer q] is the output schema of [q] evaluated
    with correlation scopes [outer] available. *)
and infer_query_env db (outer : env) (q : query) : Schema.t =
  match q with
  | Base name -> (
      match Database.find_opt db name with
      | Some rel -> Relation.schema rel
      | None -> type_error "unknown base relation %S" name)
  | TableExpr rel -> Relation.schema rel
  | Select (cond, input) ->
      let schema = infer_query_env db outer input in
      check_boolean db (schema :: outer) cond;
      check_no_aggregate_exprs [ cond ] "WHERE/selection";
      schema
  | Project { cols; proj_input; _ } ->
      let schema = infer_query_env db outer proj_input in
      check_no_aggregate_exprs (List.map fst cols) "projection";
      projection_schema db (schema :: outer) cols
  | Cross (a, b) ->
      Schema.concat (infer_query_env db outer a) (infer_query_env db outer b)
  | Join (cond, a, b) | LeftJoin (cond, a, b) ->
      let sa = infer_query_env db outer a and sb = infer_query_env db outer b in
      let schema = Schema.concat sa sb in
      check_boolean db (schema :: outer) cond;
      check_no_aggregate_exprs [ cond ] "join condition";
      schema
  | Agg { group_by; aggs; agg_input } ->
      let schema = infer_query_env db outer agg_input in
      aggregation_schema db (schema :: outer) group_by aggs
  | Union (_, a, b) | Inter (_, a, b) | Diff (_, a, b) ->
      let sa = infer_query_env db outer a and sb = infer_query_env db outer b in
      if not (Schema.equal_types sa sb) then
        type_error "set operation over incompatible schemas %s vs %s"
          (Schema.to_string sa) (Schema.to_string sb);
      sa
  | Order (keys, input) ->
      let schema = infer_query_env db outer input in
      List.iter (fun (e, _) -> ignore (infer_expr db (schema :: outer) e)) keys;
      schema
  | Limit (n, input) ->
      if n < 0 then type_error "negative LIMIT";
      infer_query_env db outer input

and check_no_aggregate_exprs exprs where =
  List.iter
    (fun e ->
      ignore
        (Algebra.fold_expr
           (fun () x ->
             match x with
             | FunCall (name, _) when Builtin.is_aggregate name ->
                 type_error "aggregate function %s not allowed in %s" name where
             | _ -> ())
           () e))
    exprs

(** [infer db q] is the output schema of top-level query [q]. *)
let infer db q = infer_query_env db [] q

(** [check db q] runs inference for its side effect of validating [q]. *)
let check db q = ignore (infer db q)
