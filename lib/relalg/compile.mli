(** Compiled query execution: lowers a type-checked {!Algebra.query}
    into a tree of offset-resolved OCaml closures, eliminating the
    per-tuple AST walking and by-name attribute lookup of the reference
    evaluator ({!Eval}).

    At compile time, every [Attr] is resolved once to a
    [(frame_depth, column_offset)] pair against the stack of operator
    schemas (innermost first — the correlation rules of Section 2.2
    decided statically); equi-join conjunct classification, sublink
    free-variable analysis and projection/aggregation output schemas
    are likewise computed once per operator. At run time the engine
    only moves values: array reads, hashing of pre-computed key
    closures, and the shared {!Sem} sublink summaries/memoization.

    Results are bag-identical to the reference evaluator (property
    -tested in the suite); row order, stats counters and error behavior
    match it operator by operator. Compiled plans snapshot catalog
    schemas; recompile after DDL. *)

(** Per-execution context (fresh memo tables + counters). *)
type ctx

(** A compiled scalar expression. *)
type cexpr = ctx -> Tuple.t list -> Value.t

(** A compiled plan. *)
type compiled

(** [compile ?env db q] lowers [q]; [env] supplies outer frame schemas
    (innermost first) for correlated compilation. Unresolvable
    attribute references raise {!Sem.Eval_error} here, at compile time. *)
val compile : ?env:Schema.t list -> Database.t -> Algebra.query -> compiled

(** Statically known output schema of a compiled plan. *)
val schema : compiled -> Schema.t

(** [run ?env c] executes with a fresh memoization context; [env] gives
    the outer frames' tuples, matching the schemas given to {!compile}. *)
val run : ?env:Tuple.t list -> compiled -> Relation.t

(** [run_stats ?env c] also reports the execution counters. *)
val run_stats : ?env:Tuple.t list -> compiled -> Relation.t * Sem.stats

(** [stream ?env c push] executes push-based: [push] receives each
    output row in order as it is produced. Used by the governor tests
    to observe the rows emitted before a {!Guard.Budget_exceeded}
    trip. *)
val stream : ?env:Tuple.t list -> compiled -> (Tuple.t -> unit) -> unit

(** [query db q] compiles and runs in one step; [env] pairs each outer
    frame's schema with its tuple, innermost first. *)
val query :
  ?env:(Schema.t * Tuple.t) list -> Database.t -> Algebra.query -> Relation.t

val query_stats :
  ?env:(Schema.t * Tuple.t) list ->
  Database.t ->
  Algebra.query ->
  Relation.t * Sem.stats

(** [expr db e] compiles and evaluates a scalar expression (sublinks
    allowed). *)
val expr :
  ?env:(Schema.t * Tuple.t) list -> Database.t -> Algebra.expr -> Value.t
