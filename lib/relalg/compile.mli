(** Compiled query execution: lowers a type-checked {!Algebra.query}
    into a tree of offset-resolved OCaml closures, eliminating the
    per-tuple AST walking and by-name attribute lookup of the reference
    evaluator ({!Eval}).

    At compile time, every [Attr] is resolved once to a
    [(frame_depth, column_offset)] pair against the stack of operator
    schemas (innermost first — the correlation rules of Section 2.2
    decided statically); equi-join conjunct classification, sublink
    free-variable analysis and projection/aggregation output schemas
    are likewise computed once per operator. At run time the engine
    only moves values: array reads, hashing of pre-computed key
    closures, and the shared {!Sem} sublink summaries/memoization.

    Results are bag-identical to the reference evaluator (property
    -tested in the suite); row order, stats counters and error behavior
    match it operator by operator. Compiled plans snapshot catalog
    schemas; recompile after DDL. *)

(** Per-execution context (fresh memo tables + counters). *)
type ctx

(** A compiled scalar expression. *)
type cexpr = ctx -> Tuple.t list -> Value.t

(** A compiled plan. *)
type compiled

(** [compile ?env db q] lowers [q]; [env] supplies outer frame schemas
    (innermost first) for correlated compilation. Unresolvable
    attribute references raise {!Sem.Eval_error} here, at compile time. *)
val compile : ?env:Schema.t list -> Database.t -> Algebra.query -> compiled

(** Statically known output schema of a compiled plan. *)
val schema : compiled -> Schema.t

(** [run ?env c] executes with a fresh memoization context; [env] gives
    the outer frames' tuples, matching the schemas given to {!compile}. *)
val run : ?env:Tuple.t list -> compiled -> Relation.t

(** [run_stats ?env c] also reports the execution counters. *)
val run_stats : ?env:Tuple.t list -> compiled -> Relation.t * Sem.stats

(** [stream ?env c push] executes push-based: [push] receives each
    output row in order as it is produced. Used by the governor tests
    to observe the rows emitted before a {!Guard.Budget_exceeded}
    trip. *)
val stream : ?env:Tuple.t list -> compiled -> (Tuple.t -> unit) -> unit

(** [query db q] compiles and runs in one step; [env] pairs each outer
    frame's schema with its tuple, innermost first. *)
val query :
  ?env:(Schema.t * Tuple.t) list -> Database.t -> Algebra.query -> Relation.t

val query_stats :
  ?env:(Schema.t * Tuple.t) list ->
  Database.t ->
  Algebra.query ->
  Relation.t * Sem.stats

(** [expr db e] compiles and evaluates a scalar expression (sublinks
    allowed). *)
val expr :
  ?env:(Schema.t * Tuple.t) list -> Database.t -> Algebra.expr -> Value.t

(** {1 Engine-internal surface}

    Used by the vectorized engine ({!Vexec}) so both engines share one
    expression semantics and one per-execution sublink memo/summary
    cache. Not a stable API. *)

(** Fresh per-execution context (memo tables + counters). *)
val mk_ctx : Database.t -> ctx

(** The context's execution counters (mutable; shared with every
    closure run under this context). *)
val ctx_stats : ctx -> Sem.stats

val ctx_db : ctx -> Database.t

(** [compile_scalar ?path db cenv e] — compile a scalar expression
    against a schema stack (innermost first); [path] seeds the
    operator path sublink boundaries report under. *)
val compile_scalar :
  ?path:string list ->
  Database.t ->
  Schema.t list ->
  Algebra.expr ->
  cexpr

(** [compile_predicate ?path db cenv e] — compile a predicate to the
    unboxed three-valued form: 0 false, 1 true, 2 unknown. *)
val compile_predicate :
  ?path:string list ->
  Database.t ->
  Schema.t list ->
  Algebra.expr ->
  ctx ->
  Tuple.t list ->
  int

(** [eval_exprs ces ctx env] — evaluate compiled expressions into a
    fresh tuple. *)
val eval_exprs : cexpr array -> ctx -> Tuple.t list -> Tuple.t

(** Offsets of a projection list that only reads the input frame's own
    columns; [None] as soon as any item is not a bare in-frame
    [Attr]. *)
val offsets_of_projection :
  Schema.t -> (Algebra.expr * string) list -> int array option

(** Whether re-evaluating an expression more or fewer times (binding
    unchanged) leaves the execution counters untouched. *)
val counter_silent : Algebra.expr -> bool

(** Attribute names an expression's evaluation can read (own [Attr]s
    plus sublink free variables). *)
val expr_deps : Database.t -> Algebra.expr -> string list

(** [sublink_summary ?path db cenv s] — per-execution ANY/ALL summary
    accessor for an {e uncorrelated} sublink, sharing the compiled
    engine's memo tables and counters; [None] when correlated. *)
val sublink_summary :
  ?path:string list ->
  Database.t ->
  Schema.t list ->
  Algebra.sublink ->
  (ctx -> Tuple.t list -> Sem.summary) option
