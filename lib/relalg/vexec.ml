(** Vectorized columnar execution: batch-at-a-time kernels over
    {!Vector} batches, lowered from the same type-checked algebra the
    closure engine ({!Compile}) consumes.

    The engine materializes operator outputs as batch lists instead of
    streaming rows, evaluates selection predicates as columnar masks
    (unboxed three-valued bytes over a selection vector), probes
    uncorrelated [ANY]/[ALL] sublinks against an unboxed integer set
    specialized from the shared {!Sem} summary, and parallelizes leaf
    scan filtering and hash-join probing across OCaml 5 domains with
    the morsel scheduler ({!Morsel}).

    Everything that has no columnar kernel — residual join predicates,
    projection expressions, aggregation, ordering — reuses the compiled
    engine's closures ({!Compile.compile_scalar} /
    {!Compile.compile_predicate}), so the two engines share one
    expression semantics and one per-execution sublink memo cache.
    Results match the reference and compiled engines row for row
    (schema names, row order, error messages); the {!Sem.stats}
    counters reflect the same plan events at batch granularity.

    Determinism and domain safety: worker domains only read frozen
    structures (columnar batches, prepped probe sets, a built hash
    table) and write to per-task result slots. Workers adopt the
    coordinator's {!Guard} scope per task ({!Guard.with_scope}), so
    row/pair/time/allocation budgets aggregate across domains and trip
    on whichever domain crosses a ceiling. Shared mutable cells are
    registered in {!Share_lint}'s inventory and instrumented for the
    {!Race} detector: the columnar cache under its lock, probe prep and
    the compiled context's memo tables as coordinator-prepped state
    that workers may only read after the scheduler's publish edge. *)

open Algebra

(** Workers per query (1 = sequential). Set via [--domains]. *)
let domains = ref 1

(** Rows per columnar batch. Set via [--batch-rows]. *)
let batch_rows = ref 2048

(** Test-only: run on this pool regardless of [domains] and of the
    core-count clamp in {!Morsel.get}. The race-fuzz campaign and the
    multi-domain tests need genuinely parallel schedules even on hosts
    where [Domain.recommended_domain_count () = 1]. *)
let pool_override : Morsel.pool option ref = ref None

(* ---- columnar base-relation cache --------------------------------- *)

(* Base relations are converted to columnar batches once and reused
   across executions (keyed on physical identity plus the batch size
   they were split with — a DDL'd catalog entry is a fresh relation and
   misses). Guarded by a mutex: executions on different domains may
   race on the cache even though one query's conversion happens on the
   coordinator. *)
let cache_lock = Mutex.create ()
let cache : (Relation.t * int * Vector.t array) list ref = ref []
let cache_cap = 32

let clear_cache () =
  Race.with_lock cache_lock "vexec.cache_lock" (fun () ->
      Race.write "vexec.cache";
      cache := [])

let rec take_n n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take_n (n - 1) rest

let columnar_batches rel : Vector.t array =
  let br = max 1 !batch_rows in
  let hit =
    Race.with_lock cache_lock "vexec.cache_lock" (fun () ->
        Race.read "vexec.cache";
        List.find_opt (fun (r, b, _) -> r == rel && b = br) !cache)
  in
  match hit with
  | Some (_, _, bats) -> bats
  | None ->
      let bats = Vector.of_relation ~batch_rows:br rel in
      Race.with_lock cache_lock "vexec.cache_lock" (fun () ->
          Race.write "vexec.cache";
          cache :=
            take_n cache_cap
              ((rel, br, bats)
              :: List.filter (fun (r, b, _) -> not (r == rel && b = br)) !cache));
      bats

(* ---- runtime ------------------------------------------------------- *)

(** Per-execution runtime: the compiled engine's context (sublink memo
    tables + counters), the outer tuple frames, and the worker pool. *)
type rt = {
  cctx : Compile.ctx;
  renv : Tuple.t list;
  pool : Morsel.pool option;
}

(** A lowered operator: batches out, in the reference row order. *)
type vop = { v_schema : Schema.t; v_run : rt -> Vector.t list }

(* Batch-granularity governor checkpoints: tick at operator entry, row
   accounting per produced batch at operator exit (the vectorized
   analogue of the compiled engine's per-push [count_row]). *)
let guarded here (v : vop) : vop =
  {
    v_schema = v.v_schema;
    v_run =
      (fun rt ->
        Guard.tick here;
        let bats = v.v_run rt in
        if Guard.counts_rows () then
          List.iter (fun b -> Guard.count_rows here (Vector.length b)) bats
        else Guard.tick here;
        bats);
  }

(* [par_run here pool ~tasks f] — run [f 0..tasks-1] on the pool.
   Every worker adopts the coordinator's governor scope for its tasks
   ({!Guard.with_scope}): ticks and allocation account into the shared
   scope totals from whichever domain runs the morsel, and a ceiling
   crossed on a worker raises [Budget_exceeded] there — the scheduler
   re-raises it from the coordinator's barrier. The coordinator
   (worker 0) already holds its own view of the scope, so it ticks
   directly. *)
let par_run here pool ~tasks (f : int -> unit) =
  if tasks > 0 then begin
    let scope = Guard.current_scope () in
    Morsel.run pool ~tasks (fun w t ->
        if w = 0 then begin
          Guard.tick here;
          f t
        end
        else
          Guard.with_scope scope (fun () ->
              Guard.tick here;
              f t))
  end

(* ---- batch utilities ----------------------------------------------- *)

(* Physical indices of a batch's surviving rows, in order. *)
let idx_of (b : Vector.t) : int array =
  match b with
  | Vector.Cols { sel = Some s; _ } -> s
  | Vector.Cols { n; _ } -> Array.init n (fun i -> i)
  | Vector.Rows { rows; _ } -> Array.init (Array.length rows) (fun i -> i)
  | Vector.CrossB _ -> Array.init (Vector.length b) (fun i -> i)

(* Value of column [j] at physical row [i]. *)
let batch_get (b : Vector.t) j i : Value.t =
  match b with
  | Vector.Cols { cols; _ } -> Vector.col_value cols.(j) i
  | Vector.Rows { rows; _ } -> Tuple.get rows.(i) j
  | Vector.CrossB { lefts; right_cols; card_b; srcs; _ } ->
      let s = srcs.(j) in
      if s >= 0 then Tuple.get lefts.(i / card_b) s
      else right_cols.(lnot s).(i mod card_b)

let col_of (b : Vector.t) j : Vector.column option =
  match b with
  | Vector.Cols { cols; _ } -> Some cols.(j)
  | Vector.Rows _ | Vector.CrossB _ -> None

(* Split a materialized row list into [Rows] batches. *)
let chunk_rows schema (rows : Tuple.t list) : Vector.t list =
  match rows with
  | [] -> []
  | _ ->
      let arr = Array.of_list rows in
      let n = Array.length arr in
      let br = max 1 !batch_rows in
      let rec go lo acc =
        if lo >= n then List.rev acc
        else
          let len = min br (n - lo) in
          go (lo + len) (Vector.rows_batch schema (Array.sub arr lo len) :: acc)
      in
      go 0 []

(* ---- three-valued scalar kernels ----------------------------------- *)

(* 0 = false, 1 = true, 2 = unknown — the compiled engine's unboxed
   predicate encoding ({!Compile.compile_predicate}). *)
let b3_of_value v =
  if Value.is_true v then 1 else if Value.is_null v then 2 else 0

let icmp op (x : int) (y : int) =
  match op with
  | Eq | EqNull -> x = y
  | Neq -> x <> y
  | Lt -> x < y
  | Leq -> x <= y
  | Gt -> x > y
  | Geq -> x >= y

let ctest op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Leq -> c <= 0
  | Gt -> c > 0
  | Geq -> c >= 0
  | EqNull -> assert false

(* One comparison under the compiled engine's semantics: [=n] is
   two-valued, anything else is unknown on NULL or incomparable. *)
let cmp_b3 op (va : Value.t) (vb : Value.t) : int =
  match op with
  | EqNull -> if Value.equal_null va vb then 1 else 0
  | _ -> (
      match (va, vb) with
      | Value.Int x, Value.Int y -> if icmp op x y then 1 else 0
      | Value.Null, _ | _, Value.Null -> 2
      | _ -> (
          match Value.cmp_sql va vb with
          | None -> 2
          | Some c -> if ctest op c then 1 else 0))

(* Syntactically boolean-valued expressions (local copy of the compiled
   engine's shape test, which it does not export). *)
let is_boolean_shape = function
  | Cmp _ | And _ | Or _ | Not _ | IsNull _ | Like _ | InList _
  | Const (Value.Bool _)
  | Sublink { kind = Exists | AnyOp _ | AllOp _; _ } ->
      true
  | _ -> false

let const_of = function
  | Const v -> Some v
  | TypedNull _ -> Some Value.Null
  | _ -> None

(* ---- vectorized predicate masks ------------------------------------ *)

(* An uncorrelated ANY/ALL sublink probe. The summary accessor shares
   the compiled engine's memo tables and counters; [pr_prep] caches the
   per-execution specialization (keyed on the context by identity).
   When every distinct summary value is an [Int], equality-style
   membership is answered from an unboxed int set — sound only then,
   because the summary's own set equates [Int 3] with [Float 3.] and
   the int set would not. *)
type prep = {
  p_sum : Sem.summary;
  p_empty : bool;
  p_has_null : bool;
  p_iset : (int, unit) Hashtbl.t option;
}

type probe = {
  pr_id : int;  (** process-unique, for race-detector locations *)
  pr_get : Compile.ctx -> Tuple.t list -> Sem.summary;
  pr_any : bool;
  pr_op : cmpop;
  pr_lhs : int;  (** depth-0 column offset of the lhs attribute *)
  pr_env0 : Tuple.t;  (** NULL frame standing in for the input row *)
  mutable pr_prep : (Compile.ctx * prep) option;
}

let probe_counter = Atomic.make 0

(* [pr_prep] is coordinator-prepped, worker-read: the scheduler's
   publish edge orders the write before the reads; an armed detector
   reports a worker that writes it. Per-probe location — probes are
   execution-private, and distinct probes must not alias. *)
let probe_loc pr = "vexec.probe[" ^ string_of_int pr.pr_id ^ "].prep"
let probe_mark_read pr = if Race.is_armed () then Race.read (probe_loc pr)
let probe_mark_write pr = if Race.is_armed () then Race.write (probe_loc pr)

type leaf =
  | LAttr of int  (** boolean-position column read *)
  | LIsNull of int
  | LCmpCC of cmpop * int * Value.t  (** column op constant *)
  | LCmpRev of cmpop * Value.t * int  (** constant op column *)
  | LCmpCols of cmpop * int * int
  | LProbe of probe

(* Mask AST: the vectorizable fragment of predicate expressions, with
   the compiled engine's evaluation rules — [MAnd]/[MOr] evaluate their
   second operand only on the rows whose first operand does not already
   decide the result, preserving short-circuit evaluation frequency
   (and thus error behavior and sublink materialization timing). *)
type mask =
  | MConst of int
  | MNot of mask
  | MAnd of mask * mask
  | MOr of mask * mask
  | MBoolEq of mask * bool  (** [p =n TRUE/FALSE] over a boolean shape *)
  | MLeaf of leaf

let rec mask_probes acc = function
  | MConst _ | MLeaf (LAttr _ | LIsNull _ | LCmpCC _ | LCmpRev _ | LCmpCols _)
    ->
      acc
  | MNot a | MBoolEq (a, _) -> mask_probes acc a
  | MAnd (a, b) | MOr (a, b) -> mask_probes (mask_probes acc a) b
  | MLeaf (LProbe p) -> p :: acc

let prepped rt pr =
  probe_mark_read pr;
  match pr.pr_prep with Some (c, _) -> c == rt.cctx | None -> false

let prep_probe rt pr : prep =
  probe_mark_read pr;
  match pr.pr_prep with
  | Some (c, p) when c == rt.cctx -> p
  | _ ->
      let sum = pr.pr_get rt.cctx (pr.pr_env0 :: rt.renv) in
      let memberish =
        (pr.pr_any && (pr.pr_op = Eq || pr.pr_op = EqNull))
        || ((not pr.pr_any) && pr.pr_op = Neq)
      in
      let iset =
        if not memberish then None
        else
          let vs = Sem.summary_distinct_values sum in
          if List.for_all (function Value.Int _ -> true | _ -> false) vs
          then begin
            let h = Hashtbl.create (max 16 (2 * List.length vs)) in
            List.iter
              (function Value.Int x -> Hashtbl.replace h x () | _ -> ())
              vs;
            Some h
          end
          else None
      in
      let p =
        {
          p_sum = sum;
          p_empty = Sem.summary_is_empty sum;
          p_has_null = Sem.summary_has_null sum;
          p_iset = iset;
        }
      in
      probe_mark_write pr;
      pr.pr_prep <- Some (rt.cctx, p);
      p

(* Per-value probe result; must coincide with {!Sem.any_of_summary} /
   {!Sem.all_of_summary} on the membership-style operators the int set
   covers, and falls back to them otherwise. *)
let probe_b3 pr prep (lhs : Value.t) : int =
  let generic () =
    b3_of_value
      ((if pr.pr_any then Sem.any_of_summary else Sem.all_of_summary)
         pr.pr_op lhs prep.p_sum)
  in
  match (prep.p_iset, lhs) with
  | Some iset, Value.Int x ->
      if prep.p_empty then if pr.pr_any then 0 else 1
      else
        let mem = Hashtbl.mem iset x in
        if pr.pr_any then
          if pr.pr_op = EqNull then if mem then 1 else 0
          else if mem then 1
          else if prep.p_has_null then 2
          else 0
        else if mem then 0
        else if prep.p_has_null then 2
        else 1
  | Some _, Value.Null when not (pr.pr_any && pr.pr_op = EqNull) ->
      if prep.p_empty then if pr.pr_any then 0 else 1 else 2
  | _ -> generic ()

(* ---- leaf kernels --------------------------------------------------- *)

let eval_attr b idx j : Bytes.t =
  let m = Array.length idx in
  let out = Bytes.create m in
  for k = 0 to m - 1 do
    Bytes.unsafe_set out k
      (Char.unsafe_chr (b3_of_value (batch_get b j (Array.unsafe_get idx k))))
  done;
  out

let eval_isnull b idx j : Bytes.t =
  let m = Array.length idx in
  let out = Bytes.create m in
  let generic () =
    for k = 0 to m - 1 do
      Bytes.unsafe_set out k
        (if Value.is_null (batch_get b j (Array.unsafe_get idx k)) then '\001'
         else '\000')
    done
  in
  (match col_of b j with
  | Some col -> (
      match (col.data, col.valid) with
      | Vector.DVal _, _ -> generic ()
      | _, None -> Bytes.fill out 0 m '\000'
      | _, Some bm ->
          for k = 0 to m - 1 do
            Bytes.unsafe_set out k
              (if Vector.bit_get bm (Array.unsafe_get idx k) then '\000'
               else '\001')
          done)
  | None -> generic ());
  out

let eval_cmp_cc b idx op j (cv : Value.t) : Bytes.t =
  let m = Array.length idx in
  let out = Bytes.create m in
  let generic () =
    for k = 0 to m - 1 do
      Bytes.unsafe_set out k
        (Char.unsafe_chr (cmp_b3 op (batch_get b j (Array.unsafe_get idx k)) cv))
    done
  in
  (match (col_of b j, cv) with
  | Some col, Value.Int c -> (
      match col.data with
      | Vector.DInt a -> (
          match col.valid with
          | None ->
              for k = 0 to m - 1 do
                let x = Bigarray.Array1.unsafe_get a (Array.unsafe_get idx k) in
                Bytes.unsafe_set out k (if icmp op x c then '\001' else '\000')
              done
          | Some bm ->
              let null_r = if op = EqNull then '\000' else '\002' in
              for k = 0 to m - 1 do
                let i = Array.unsafe_get idx k in
                Bytes.unsafe_set out k
                  (if Vector.bit_get bm i then
                     if icmp op (Bigarray.Array1.unsafe_get a i) c then '\001'
                     else '\000'
                   else null_r)
              done)
      | _ -> generic ())
  | _ -> generic ());
  out

let eval_cmp_rev b idx op (cv : Value.t) j : Bytes.t =
  let m = Array.length idx in
  let out = Bytes.create m in
  let generic () =
    for k = 0 to m - 1 do
      Bytes.unsafe_set out k
        (Char.unsafe_chr (cmp_b3 op cv (batch_get b j (Array.unsafe_get idx k))))
    done
  in
  (match (col_of b j, cv) with
  | Some col, Value.Int c -> (
      match col.data with
      | Vector.DInt a -> (
          match col.valid with
          | None ->
              for k = 0 to m - 1 do
                let x = Bigarray.Array1.unsafe_get a (Array.unsafe_get idx k) in
                Bytes.unsafe_set out k (if icmp op c x then '\001' else '\000')
              done
          | Some bm ->
              let null_r = if op = EqNull then '\000' else '\002' in
              for k = 0 to m - 1 do
                let i = Array.unsafe_get idx k in
                Bytes.unsafe_set out k
                  (if Vector.bit_get bm i then
                     if icmp op c (Bigarray.Array1.unsafe_get a i) then '\001'
                     else '\000'
                   else null_r)
              done)
      | _ -> generic ())
  | _ -> generic ());
  out

let eval_cmp_cols b idx op j1 j2 : Bytes.t =
  let m = Array.length idx in
  let out = Bytes.create m in
  let generic () =
    for k = 0 to m - 1 do
      let i = Array.unsafe_get idx k in
      Bytes.unsafe_set out k
        (Char.unsafe_chr (cmp_b3 op (batch_get b j1 i) (batch_get b j2 i)))
    done
  in
  (match (col_of b j1, col_of b j2) with
  | Some c1, Some c2 -> (
      match (c1.data, c2.data, c1.valid, c2.valid) with
      | Vector.DInt a1, Vector.DInt a2, None, None ->
          for k = 0 to m - 1 do
            let i = Array.unsafe_get idx k in
            Bytes.unsafe_set out k
              (if
                 icmp op
                   (Bigarray.Array1.unsafe_get a1 i)
                   (Bigarray.Array1.unsafe_get a2 i)
               then '\001'
               else '\000')
          done
      | _ -> generic ())
  | _ -> generic ());
  out

let eval_probe rt b idx pr : Bytes.t =
  let prep = prep_probe rt pr in
  let m = Array.length idx in
  let out = Bytes.create m in
  let generic () =
    for k = 0 to m - 1 do
      Bytes.unsafe_set out k
        (Char.unsafe_chr
           (probe_b3 pr prep (batch_get b pr.pr_lhs (Array.unsafe_get idx k))))
    done
  in
  (match (col_of b pr.pr_lhs, prep.p_iset) with
  | Some col, Some iset -> (
      match col.data with
      | Vector.DInt a ->
          if prep.p_empty then
            Bytes.fill out 0 m (if pr.pr_any then '\000' else '\001')
          else begin
            let any = pr.pr_any
            and eqn = pr.pr_op = EqNull
            and hn = prep.p_has_null in
            let hit (x : int) =
              let mem = Hashtbl.mem iset x in
              if any then
                if eqn then if mem then 1 else 0
                else if mem then 1
                else if hn then 2
                else 0
              else if mem then 0
              else if hn then 2
              else 1
            in
            match col.valid with
            | None ->
                for k = 0 to m - 1 do
                  Bytes.unsafe_set out k
                    (Char.unsafe_chr
                       (hit
                          (Bigarray.Array1.unsafe_get a
                             (Array.unsafe_get idx k))))
                done
            | Some bm ->
                let null_r =
                  if any && eqn then if hn then 1 else 0 else 2
                in
                for k = 0 to m - 1 do
                  let i = Array.unsafe_get idx k in
                  Bytes.unsafe_set out k
                    (Char.unsafe_chr
                       (if Vector.bit_get bm i then
                          hit (Bigarray.Array1.unsafe_get a i)
                        else null_r))
                done
          end
      | _ -> generic ())
  | _ -> generic ());
  out

(* ---- mask evaluation ------------------------------------------------ *)

(* [eval_mask rt b idx m] — three-valued results, one byte per entry of
   [idx] (physical indices). AND/OR evaluate the second operand only on
   the undecided subset, mirroring the compiled engine's per-row
   short-circuit exactly (per row, not just per batch). *)
let rec eval_mask rt (b : Vector.t) (idx : int array) (m : mask) : Bytes.t =
  match m with
  | MConst v -> Bytes.make (Array.length idx) (Char.chr v)
  | MLeaf l -> eval_leaf rt b idx l
  | MNot a ->
      let r = eval_mask rt b idx a in
      for k = 0 to Bytes.length r - 1 do
        let v = Char.code (Bytes.unsafe_get r k) in
        Bytes.unsafe_set r k
          (Char.unsafe_chr (if v = 0 then 1 else if v = 1 then 0 else 2))
      done;
      r
  | MBoolEq (a, bv) ->
      let r = eval_mask rt b idx a in
      for k = 0 to Bytes.length r - 1 do
        let v = Char.code (Bytes.unsafe_get r k) in
        Bytes.unsafe_set r k
          (if v = 2 then '\000' else if (v = 1) = bv then '\001' else '\000')
      done;
      r
  | MAnd (x, y) ->
      let rx = eval_mask rt b idx x in
      let mlen = Array.length idx in
      let cnt = ref 0 in
      for k = 0 to mlen - 1 do
        if Bytes.unsafe_get rx k <> '\000' then incr cnt
      done;
      if !cnt = 0 then rx
      else begin
        let sub = Array.make !cnt 0 and pos = Array.make !cnt 0 in
        let p = ref 0 in
        for k = 0 to mlen - 1 do
          if Bytes.unsafe_get rx k <> '\000' then begin
            sub.(!p) <- Array.unsafe_get idx k;
            pos.(!p) <- k;
            incr p
          end
        done;
        let ry = eval_mask rt b sub y in
        for q = 0 to !cnt - 1 do
          let k = pos.(q) in
          let va = Char.code (Bytes.unsafe_get rx k) in
          let vb = Char.code (Bytes.unsafe_get ry q) in
          Bytes.unsafe_set rx k
            (Char.unsafe_chr
               (if vb = 0 then 0 else if va = 2 || vb = 2 then 2 else 1))
        done;
        rx
      end
  | MOr (x, y) ->
      let rx = eval_mask rt b idx x in
      let mlen = Array.length idx in
      let cnt = ref 0 in
      for k = 0 to mlen - 1 do
        if Bytes.unsafe_get rx k <> '\001' then incr cnt
      done;
      if !cnt = 0 then rx
      else begin
        let sub = Array.make !cnt 0 and pos = Array.make !cnt 0 in
        let p = ref 0 in
        for k = 0 to mlen - 1 do
          if Bytes.unsafe_get rx k <> '\001' then begin
            sub.(!p) <- Array.unsafe_get idx k;
            pos.(!p) <- k;
            incr p
          end
        done;
        let ry = eval_mask rt b sub y in
        for q = 0 to !cnt - 1 do
          let k = pos.(q) in
          let va = Char.code (Bytes.unsafe_get rx k) in
          let vb = Char.code (Bytes.unsafe_get ry q) in
          Bytes.unsafe_set rx k
            (Char.unsafe_chr
               (if vb = 1 then 1 else if va = 2 || vb = 2 then 2 else 0))
        done;
        rx
      end

and eval_leaf rt b idx = function
  | LAttr j -> eval_attr b idx j
  | LIsNull j -> eval_isnull b idx j
  | LCmpCC (op, j, cv) -> eval_cmp_cc b idx op j cv
  | LCmpRev (op, cv, j) -> eval_cmp_rev b idx op cv j
  | LCmpCols (op, j1, j2) -> eval_cmp_cols b idx op j1 j2
  | LProbe pr -> eval_probe rt b idx pr

(* Apply a computed mask: surviving rows become the batch's selection
   vector ([Cols], zero-copy) or a filtered [Rows] batch; an all-kept
   batch passes through unchanged and an emptied one is dropped. *)
let apply_mask (b : Vector.t) (idx : int array) (r : Bytes.t) :
    Vector.t option =
  let m = Array.length idx in
  let cnt = ref 0 in
  for k = 0 to m - 1 do
    if Bytes.unsafe_get r k = '\001' then incr cnt
  done;
  if !cnt = 0 then None
  else if !cnt = m then Some b
  else
    match b with
    | Vector.Cols _ ->
        let keep = Array.make !cnt 0 in
        let p = ref 0 in
        for k = 0 to m - 1 do
          if Bytes.unsafe_get r k = '\001' then begin
            keep.(!p) <- Array.unsafe_get idx k;
            incr p
          end
        done;
        Some (Vector.with_sel b (Some keep))
    | Vector.Rows { schema; rows } ->
        let keep = Array.make !cnt rows.(0) in
        let p = ref 0 in
        for k = 0 to m - 1 do
          if Bytes.unsafe_get r k = '\001' then begin
            keep.(!p) <- rows.(Array.unsafe_get idx k);
            incr p
          end
        done;
        Some (Vector.rows_batch schema keep)
    | Vector.CrossB _ ->
        let schema = Vector.schema b in
        let keep = Array.make !cnt (Vector.tuple_at b idx.(0)) in
        let p = ref 0 in
        for k = 0 to m - 1 do
          if Bytes.unsafe_get r k = '\001' then begin
            keep.(!p) <- Vector.tuple_at b (Array.unsafe_get idx k);
            incr p
          end
        done;
        Some (Vector.rows_batch schema keep)

(* ---- predicate vectorization ---------------------------------------- *)

(* Lower a predicate to a mask when every node has a columnar kernel
   against the depth-0 input schema; any unsupported or outer-resolving
   node rejects the whole predicate, and the caller falls back to the
   compiled row-wise form (which preserves evaluation order, sublink
   correlation and error behavior by construction). The match arms
   mirror {!Compile.compile_predicate}'s, in the same order. *)
let rec vectorize db here schema cenv (e : expr) : mask option =
  let find n = Schema.find schema n in
  match e with
  | Const v -> Some (MConst (b3_of_value v))
  | Cmp (EqNull, p, Const (Value.Bool bv)) when is_boolean_shape p -> (
      match vectorize db here schema cenv p with
      | Some m -> Some (MBoolEq (m, bv))
      | None -> None)
  | Cmp (EqNull, Const (Value.Bool bv), p) when is_boolean_shape p -> (
      match vectorize db here schema cenv p with
      | Some m -> Some (MBoolEq (m, bv))
      | None -> None)
  | Cmp (op, Attr n1, Attr n2) -> (
      match (find n1, find n2) with
      | Some j1, Some j2 -> Some (MLeaf (LCmpCols (op, j1, j2)))
      | _ -> None)
  | Cmp (op, Attr n, rhs) when const_of rhs <> None -> (
      match find n with
      | Some j -> Some (MLeaf (LCmpCC (op, j, Option.get (const_of rhs))))
      | None -> None)
  | Cmp (op, lhs, Attr n) when const_of lhs <> None -> (
      match find n with
      | Some j -> Some (MLeaf (LCmpRev (op, Option.get (const_of lhs), j)))
      | None -> None)
  | And (a, b) -> (
      match
        (vectorize db here schema cenv a, vectorize db here schema cenv b)
      with
      | Some ma, Some mb -> Some (MAnd (ma, mb))
      | _ -> None)
  | Or (a, b) -> (
      match
        (vectorize db here schema cenv a, vectorize db here schema cenv b)
      with
      | Some ma, Some mb -> Some (MOr (ma, mb))
      | _ -> None)
  | Not a ->
      Option.map (fun m -> MNot m) (vectorize db here schema cenv a)
  | IsNull (Attr n) -> (
      match find n with Some j -> Some (MLeaf (LIsNull j)) | None -> None)
  | Attr n -> (
      match find n with Some j -> Some (MLeaf (LAttr j)) | None -> None)
  | Sublink ({ kind = AnyOp (op, Attr n); _ } as s) ->
      probe_of db here schema cenv ~any:true op n s
  | Sublink ({ kind = AllOp (op, Attr n); _ } as s) ->
      probe_of db here schema cenv ~any:false op n s
  | _ -> None

and probe_of db here schema cenv ~any op n s : mask option =
  match Schema.find schema n with
  | None -> None
  | Some j -> (
      match Compile.sublink_summary ~path:here db (schema :: cenv) s with
      | None -> None (* correlated: row-wise fallback *)
      | Some get ->
          Some
            (MLeaf
               (LProbe
                  {
                    pr_id = Atomic.fetch_and_add probe_counter 1;
                    pr_get = get;
                    pr_any = any;
                    pr_op = op;
                    pr_lhs = j;
                    pr_env0 = Tuple.nulls (Schema.arity schema);
                    pr_prep = None;
                  })))

(* ---- lowering ------------------------------------------------------- *)

(* [lower db path cenv q] mirrors {!Compile.compile_query} operator by
   operator: same child paths (the rev-last-segment [left]/[right]
   qualifiers for joins), same fusions (selection over product/join),
   same runtime evaluation order (right join input before left), same
   fault-injection boundaries and stats updates — so results, errors
   and governor trip paths coincide with the compiled engine's. *)
let rec lower db path (cenv : Schema.t list) (q : query) : vop =
  let here = path @ [ Guard.op_label q ] in
  let cpath qual = path @ [ Guard.op_label q ^ qual ] in
  guarded here
  @@
  match q with
  | Base name ->
      let schema = Relation.schema (Database.find db name) in
      {
        v_schema = schema;
        v_run =
          (fun rt ->
            Guard.Faults.fire_point Guard.Faults.Scan here;
            Array.to_list
              (columnar_batches (Database.find (Compile.ctx_db rt.cctx) name)));
      }
  | TableExpr rel ->
      {
        v_schema = Relation.schema rel;
        v_run =
          (fun _rt ->
            Guard.Faults.fire_point Guard.Faults.Scan here;
            Array.to_list (columnar_batches rel));
      }
  | Select (cond, Cross (a, b)) -> lower_join db here cenv ~outer:false cond a b
  | Select (cond, Join (c, a, b)) ->
      lower_join db here cenv ~outer:false (And (c, cond)) a b
  | Select (cond, input) -> (
      let vin = lower db (cpath "") cenv input in
      let schema = vin.v_schema in
      match vectorize db here schema cenv cond with
      | Some m ->
          let probes = mask_probes [] m in
          {
            v_schema = schema;
            v_run =
              (fun rt ->
                let bats = Array.of_list (vin.v_run rt) in
                let nb = Array.length bats in
                let out = Array.make nb None in
                let work i =
                  let b = bats.(i) in
                  let idx = idx_of b in
                  let r = eval_mask rt b idx m in
                  out.(i) <- apply_mask b idx r
                in
                (* Probe preparation materializes the sublink (memo
                   counters, fault points, possible errors) — it must
                   happen on the coordinator, so batches run
                   sequentially until every probe is prepped, then the
                   rest fan out over the pool. *)
                let start = ref 0 in
                if probes <> [] then
                  while
                    !start < nb && not (List.for_all (prepped rt) probes)
                  do
                    Guard.tick here;
                    work !start;
                    incr start
                  done;
                (match rt.pool with
                | Some pool when nb - !start > 1 ->
                    par_run here pool ~tasks:(nb - !start) (fun t ->
                        work (!start + t))
                | _ ->
                    for i = !start to nb - 1 do
                      Guard.tick here;
                      work i
                    done);
                List.filter_map Fun.id (Array.to_list out));
          }
      | None ->
          let pcond =
            Compile.compile_predicate ~path:here db (schema :: cenv) cond
          in
          {
            v_schema = schema;
            v_run =
              (fun rt ->
                List.filter_map
                  (fun b ->
                    Guard.tick here;
                    let keep = ref [] in
                    Vector.iter_tuples b (fun t ->
                        if pcond rt.cctx (t :: rt.renv) = 1 then
                          keep := t :: !keep);
                    match !keep with
                    | [] -> None
                    | l ->
                        Some
                          (Vector.rows_batch schema (Array.of_list (List.rev l))))
                  (vin.v_run rt));
          })
  | Project { distinct; cols; proj_input } -> (
      let vin = lower db (cpath "") cenv proj_input in
      let ienv = vin.v_schema :: cenv in
      let out_schema = Typecheck.projection_schema db ienv cols in
      match Compile.offsets_of_projection vin.v_schema cols with
      | Some offs when not distinct ->
          (* Attribute-only projection: per-batch column gather, sharing
             storage and selection vectors — no row data moves. *)
          {
            v_schema = out_schema;
            v_run =
              (fun rt ->
                List.map
                  (fun b -> Vector.select_cols out_schema b offs)
                  (vin.v_run rt));
          }
      | Some offs ->
          {
            v_schema = out_schema;
            v_run =
              (fun rt ->
                let rows =
                  List.concat_map
                    (fun b ->
                      Guard.tick here;
                      Vector.to_tuples (Vector.select_cols out_schema b offs))
                    (vin.v_run rt)
                in
                let rel =
                  Relation.distinct (Relation.make_unchecked out_schema rows)
                in
                chunk_rows out_schema (Relation.tuples rel));
          }
      | None ->
          let cexprs =
            Array.of_list
              (List.map
                 (fun (e, _) -> Compile.compile_scalar ~path:here db ienv e)
                 cols)
          in
          let eval_rows rt bats =
            List.concat_map
              (fun b ->
                Guard.tick here;
                let acc = ref [] in
                Vector.iter_tuples b (fun t ->
                    acc := Compile.eval_exprs cexprs rt.cctx (t :: rt.renv) :: !acc);
                List.rev !acc)
              bats
          in
          if distinct then
            {
              v_schema = out_schema;
              v_run =
                (fun rt ->
                  let rows = eval_rows rt (vin.v_run rt) in
                  let rel =
                    Relation.distinct (Relation.make_unchecked out_schema rows)
                  in
                  chunk_rows out_schema (Relation.tuples rel));
            }
          else
            {
              v_schema = out_schema;
              v_run = (fun rt -> chunk_rows out_schema (eval_rows rt (vin.v_run rt)));
            })
  | Cross (a, b) ->
      let va = lower db (cpath "[left]") cenv a
      and vb = lower db (cpath "[right]") cenv b in
      let schema = Schema.concat va.v_schema vb.v_schema in
      {
        v_schema = schema;
        v_run =
          (fun rt ->
            Guard.Faults.fire_point Guard.Faults.Join here;
            let tbs = List.concat_map Vector.to_tuples (vb.v_run rt) in
            let card_b = List.length tbs in
            let acc = ref [] in
            List.iter
              (fun ba ->
                Guard.tick here;
                Vector.iter_tuples ba (fun ta ->
                    Guard.count_pairs here card_b;
                    List.iter (fun tb -> acc := Tuple.concat ta tb :: !acc) tbs))
              (va.v_run rt);
            chunk_rows schema (List.rev !acc));
      }
  | Join (cond, a, b) -> lower_join db here cenv ~outer:false cond a b
  | LeftJoin (cond, a, b) -> lower_join db here cenv ~outer:true cond a b
  | Agg { group_by; aggs; agg_input } ->
      (* Child lowered at [here] itself (no qualifier) — the compiled
         engine's path layout, mirrored for identical trip paths. *)
      let vin = lower db here cenv agg_input in
      let ienv = vin.v_schema :: cenv in
      let out_schema = Typecheck.aggregation_schema db ienv group_by aggs in
      let group_cexprs =
        Array.of_list
          (List.map
             (fun (e, _) -> Compile.compile_scalar ~path:here db ienv e)
             group_by)
      in
      let agg_specs =
        List.map
          (fun call ->
            ( call.agg_func,
              call.agg_distinct,
              Option.map (Compile.compile_scalar ~path:here db ienv) call.agg_arg
            ))
          aggs
      in
      let grouped = group_by <> [] in
      {
        v_schema = out_schema;
        v_run =
          (fun rt ->
            let groups = Tuple.Tbl.create 64 in
            let order = ref [] in
            let saw_input = ref false in
            List.iter
              (fun b ->
                Guard.tick here;
                Vector.iter_tuples b (fun t ->
                    saw_input := true;
                    let key =
                      Compile.eval_exprs group_cexprs rt.cctx (t :: rt.renv)
                    in
                    match Tuple.Tbl.find_opt groups key with
                    | Some members -> Tuple.Tbl.replace groups key (t :: members)
                    | None ->
                        Tuple.Tbl.add groups key [ t ];
                        order := key :: !order))
              (vin.v_run rt);
            let keys =
              if (not grouped) && not !saw_input then [ Tuple.of_list [] ]
              else List.rev !order
            in
            let compute_group key =
              let members =
                match Tuple.Tbl.find_opt groups key with
                | Some ms -> List.rev ms
                | None -> []
              in
              let agg_values =
                List.map
                  (fun (func, distinct, carg) ->
                    let raw =
                      match carg with
                      | None -> List.map (fun _ -> Value.Int 1) members
                      | Some ce ->
                          List.filter_map
                            (fun t ->
                              let v = ce rt.cctx (t :: rt.renv) in
                              if Value.is_null v then None else Some v)
                            members
                    in
                    Builtin.apply_aggregate func ~distinct raw)
                  agg_specs
              in
              Tuple.concat key (Tuple.of_list agg_values)
            in
            chunk_rows out_schema (List.map compute_group keys));
      }
  | Union (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.union_bag | SetSem -> Relation.union_set
      in
      lower_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Inter (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.inter_bag | SetSem -> Relation.inter_set
      in
      lower_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Diff (sem, a, b) ->
      let op =
        match sem with Bag -> Relation.diff_bag | SetSem -> Relation.diff_set
      in
      lower_setop db (cpath "[left]") (cpath "[right]") cenv op a b
  | Order (keys, input) ->
      let vin = lower db (cpath "") cenv input in
      let ienv = vin.v_schema :: cenv in
      let ckeys =
        Array.of_list
          (List.map
             (fun (e, d) -> (Compile.compile_scalar ~path:here db ienv e, d))
             keys)
      in
      let nkeys = Array.length ckeys in
      let kexprs = Array.map fst ckeys in
      {
        v_schema = vin.v_schema;
        v_run =
          (fun rt ->
            let decorated = ref [] in
            List.iter
              (fun b ->
                Guard.tick here;
                Vector.iter_tuples b (fun t ->
                    decorated :=
                      (Compile.eval_exprs kexprs rt.cctx (t :: rt.renv), t)
                      :: !decorated))
              (vin.v_run rt);
            let cmp (ka, _) (kb, _) =
              let rec go i =
                if i >= nkeys then 0
                else
                  let _, d = ckeys.(i) in
                  let c = Value.compare_total ka.(i) kb.(i) in
                  let c = match d with Asc -> c | Desc -> -c in
                  if c <> 0 then c else go (i + 1)
              in
              go 0
            in
            chunk_rows vin.v_schema
              (List.map snd (List.stable_sort cmp (List.rev !decorated))));
      }
  | Limit (n, input) ->
      let vin = lower db (cpath "") cenv input in
      {
        v_schema = vin.v_schema;
        v_run =
          (fun rt ->
            (* The child is fully materialized before slicing — the full
               drain the compiled engine performs for counter parity. *)
            let bats = vin.v_run rt in
            let taken = ref 0 in
            List.filter_map
              (fun b ->
                let len = Vector.length b in
                if !taken >= n then None
                else if !taken + len <= n then begin
                  taken := !taken + len;
                  Some b
                end
                else begin
                  let need = n - !taken in
                  taken := n;
                  match b with
                  | Vector.Cols _ ->
                      let idx = idx_of b in
                      Some (Vector.with_sel b (Some (Array.sub idx 0 need)))
                  | Vector.Rows { schema; rows } ->
                      Some (Vector.rows_batch schema (Array.sub rows 0 need))
                  | Vector.CrossB _ ->
                      Some
                        (Vector.rows_batch (Vector.schema b)
                           (Array.init need (fun i -> Vector.tuple_at b i)))
                end)
              bats);
      }

and lower_setop db lpath rpath cenv op a b : vop =
  let va = lower db lpath cenv a and vb = lower db rpath cenv b in
  {
    v_schema = va.v_schema;
    v_run =
      (fun rt ->
        (* The compiled engine applies [op (ca.c_run ..) (cb.c_run ..)];
           OCaml evaluates the arguments right to left, so the right
           child runs first — mirrored for error-order parity. *)
        let rb = Vector.relation_of vb.v_schema (vb.v_run rt) in
        let ra = Vector.relation_of va.v_schema (va.v_run rt) in
        chunk_rows va.v_schema (Relation.tuples (op ra rb)));
  }

and lower_join db here cenv ~outer cond a b : vop =
  let qual s =
    match List.rev here with
    | last :: rest -> List.rev ((last ^ s) :: rest)
    | [] -> [ s ]
  in
  let va = lower db (qual "[left]") cenv a
  and vb = lower db (qual "[right]") cenv b in
  let sa = va.v_schema and sb = vb.v_schema in
  let joint = Schema.concat sa sb in
  let arity_b = Schema.arity sb in
  let pairs, residual =
    Scope.split_equi db ~left:(Schema.names sa) ~right:(Schema.names sb) cond
  in
  if pairs = [] then begin
    (* Nested loop, with the compiled engine's left-only hoisting. *)
    let hoistable x =
      Compile.counter_silent x
      &&
      let sbn = Schema.names sb in
      List.for_all (fun n -> not (List.mem n sbn)) (Compile.expr_deps db x)
    in
    let penv = sb :: sa :: cenv in
    let split =
      match cond with
      | Or (x, y) when hoistable x ->
          `Or
            ( Compile.compile_predicate ~path:here db (sa :: cenv) x,
              Compile.compile_predicate ~path:here db penv y )
      | And (x, y) when hoistable x ->
          `And
            ( Compile.compile_predicate ~path:here db (sa :: cenv) x,
              Compile.compile_predicate ~path:here db penv y )
      | _ -> `Whole (Compile.compile_predicate ~path:here db penv cond)
    in
    {
      v_schema = joint;
      v_run =
        (fun rt ->
          Guard.Faults.fire_point Guard.Faults.Join here;
          let stats = Compile.ctx_stats rt.cctx in
          stats.Sem.st_nested_loop_joins <- stats.Sem.st_nested_loop_joins + 1;
          let tbs = List.concat_map Vector.to_tuples (vb.v_run rt) in
          let tb_arr = Array.of_list tbs in
          let card_b = Array.length tb_arr in
          let pad = Tuple.nulls arity_b in
          let nleft = ref 0 and emitted = ref 0 in
          (* Output is a batch list in left-row order: row-wise runs
             (filtered matches, outer padding) interleaved with columnar
             cross blocks (the all-match case of the hoisted OR). At most
             one of [acc]/[pending] is nonempty at any point. *)
          let out = ref [] in
          let acc = ref [] and n_acc = ref 0 in
          let pending = ref [] and n_pending = ref 0 in
          let right_cols = lazy (Vector.transpose tb_arr ~arity:arity_b) in
          let flush_acc () =
            if !n_acc > 0 then begin
              let rows = Array.make !n_acc pad in
              let rec fill i = function
                | [] -> ()
                | t :: rest ->
                    Array.unsafe_set rows i t;
                    fill (i - 1) rest
              in
              fill (!n_acc - 1) !acc;
              acc := [];
              n_acc := 0;
              out := Vector.rows_batch joint rows :: !out
            end
          in
          let flush_pending () =
            if !n_pending > 0 then begin
              let lefts = Array.make !n_pending pad in
              let rec fill i = function
                | [] -> ()
                | t :: rest ->
                    Array.unsafe_set lefts i t;
                    fill (i - 1) rest
              in
              fill (!n_pending - 1) !pending;
              pending := [];
              n_pending := 0;
              out :=
                Vector.cross_block joint ~lefts
                  ~right_cols:(Lazy.force right_cols) ~card_b
                :: !out
            end
          in
          let push t =
            flush_pending ();
            acc := t :: !acc;
            incr n_acc
          in
          let emit_pad ta =
            incr emitted;
            push (Tuple.concat ta pad)
          in
          (* Every pair of [ta × tbs] is emitted with no per-pair
             predicate, so the block is built columnarly — left values
             repeated, right columns tiled, zero per-pair allocation.
             Runs of such rows coalesce into one block, flushed at a
             size cap so the governor still sees batch granularity. *)
          let emit_all ta =
            flush_acc ();
            emitted := !emitted + card_b;
            pending := ta :: !pending;
            incr n_pending;
            if !n_pending * card_b >= 65536 then flush_pending ()
          in
          let emit_filtered ta aenv p =
            let hit = ref false in
            List.iter
              (fun tb ->
                if p rt.cctx (tb :: aenv) = 1 then begin
                  hit := true;
                  incr emitted;
                  push (Tuple.concat ta tb)
                end)
              tbs;
            if outer && not !hit then emit_pad ta
          in
          let drain_drop ta aenv p =
            List.iter (fun tb -> ignore (p rt.cctx (tb :: aenv))) tbs;
            if outer then emit_pad ta
          in
          List.iter
            (fun ba ->
              Guard.tick here;
              Vector.iter_tuples ba (fun ta ->
                  incr nleft;
                  Guard.count_pairs here card_b;
                  let aenv = ta :: rt.renv in
                  match tbs with
                  | [] -> if outer then emit_pad ta
                  | _ -> (
                      match split with
                      | `Whole p -> emit_filtered ta aenv p
                      | `Or (px, py) ->
                          if px rt.cctx aenv = 1 then emit_all ta
                          else emit_filtered ta aenv py
                      | `And (px, py) -> (
                          match px rt.cctx aenv with
                          | 0 -> if outer then emit_pad ta
                          | 1 -> emit_filtered ta aenv py
                          | _ -> drain_drop ta aenv py))))
            (va.v_run rt);
          flush_acc ();
          flush_pending ();
          stats.Sem.st_nested_pairs <-
            stats.Sem.st_nested_pairs + (!nleft * card_b);
          stats.Sem.st_rows_emitted <- stats.Sem.st_rows_emitted + !emitted;
          List.rev !out);
    }
  end
  else begin
    let left_keys =
      Array.of_list
        (List.map
           (fun (e, _, _) -> Compile.compile_scalar ~path:here db (sa :: cenv) e)
           pairs)
    in
    let right_keys =
      Array.of_list
        (List.map
           (fun (_, e, _) -> Compile.compile_scalar ~path:here db (sb :: cenv) e)
           pairs)
    in
    let safe = Array.of_list (List.map (fun (_, _, s) -> s) pairs) in
    let nkeys = Array.length safe in
    let cresidual =
      match residual with
      | [] -> None
      | r -> Some (Compile.compile_predicate ~path:here db (sb :: sa :: cenv) (conj r))
    in
    let usable (key : Tuple.t) =
      let rec go i =
        i >= nkeys || ((safe.(i) || not (Value.is_null key.(i))) && go (i + 1))
      in
      go 0
    in
    (* Bare depth-0 attribute keys on both sides and no residual: the
       probe phase then reads only tuple offsets and a frozen hash
       table, so left batches can fan out over worker domains. *)
    let bare_offsets =
      match cresidual with
      | Some _ -> None
      | None ->
          let rec go l r = function
            | [] -> Some (Array.of_list (List.rev l))
            | (Attr ln, Attr rn, _) :: rest -> (
                match (Schema.find sa ln, Schema.find sb rn) with
                | Some li, Some _ -> go (li :: l) r rest
                | _ -> None)
            | _ :: _ -> None
          in
          go [] [] pairs
    in
    {
      v_schema = joint;
      v_run =
        (fun rt ->
          Guard.Faults.fire_point Guard.Faults.Join here;
          let stats = Compile.ctx_stats rt.cctx in
          stats.Sem.st_hash_joins <- stats.Sem.st_hash_joins + 1;
          let rbats = vb.v_run rt in
          let card_b = List.fold_left (fun n b -> n + Vector.length b) 0 rbats in
          let table = Tuple.Tbl.create (max 16 card_b) in
          List.iter
            (fun bb ->
              Guard.tick here;
              Vector.iter_tuples bb (fun tb ->
                  let key =
                    Compile.eval_exprs right_keys rt.cctx (tb :: rt.renv)
                  in
                  if usable key then
                    let existing =
                      try Tuple.Tbl.find table key with Not_found -> []
                    in
                    Tuple.Tbl.replace table key (tb :: existing)))
            rbats;
          let pad = Tuple.nulls arity_b in
          let abats = Array.of_list (va.v_run rt) in
          let nb = Array.length abats in
          let emitted = ref 0 in
          match (bare_offsets, rt.pool) with
          | Some loffs, Some pool when nb > 1 ->
              let out_rows = Array.make nb [] in
              let out_emitted = Array.make nb 0 in
              let work i =
                let acc = ref [] and em = ref 0 in
                Vector.iter_tuples abats.(i) (fun ta ->
                    let key = Tuple.project_arr ta loffs in
                    let matches =
                      if usable key then
                        match Tuple.Tbl.find_opt table key with
                        | Some tbs -> List.rev tbs
                        | None -> []
                      else []
                    in
                    let hit = ref false in
                    List.iter
                      (fun tb ->
                        hit := true;
                        incr em;
                        acc := Tuple.concat ta tb :: !acc)
                      matches;
                    if outer && not !hit then begin
                      incr em;
                      acc := Tuple.concat ta pad :: !acc
                    end);
                out_rows.(i) <- List.rev !acc;
                out_emitted.(i) <- !em
              in
              par_run here pool ~tasks:nb work;
              Array.iter (fun e -> emitted := !emitted + e) out_emitted;
              stats.Sem.st_rows_emitted <- stats.Sem.st_rows_emitted + !emitted;
              chunk_rows joint (List.concat (Array.to_list out_rows))
          | _ ->
              let acc = ref [] in
              Array.iter
                (fun ba ->
                  Guard.tick here;
                  Vector.iter_tuples ba (fun ta ->
                      let fenv = ta :: rt.renv in
                      let key = Compile.eval_exprs left_keys rt.cctx fenv in
                      let matches =
                        if usable key then
                          match Tuple.Tbl.find_opt table key with
                          | Some tbs -> List.rev tbs
                          | None -> []
                        else []
                      in
                      let hit = ref false in
                      (match cresidual with
                      | None ->
                          List.iter
                            (fun tb ->
                              hit := true;
                              incr emitted;
                              acc := Tuple.concat ta tb :: !acc)
                            matches
                      | Some cr ->
                          List.iter
                            (fun tb ->
                              if cr rt.cctx (tb :: fenv) = 1 then begin
                                hit := true;
                                incr emitted;
                                acc := Tuple.concat ta tb :: !acc
                              end)
                            matches);
                      if outer && not !hit then begin
                        incr emitted;
                        acc := Tuple.concat ta pad :: !acc
                      end))
                abats;
              stats.Sem.st_rows_emitted <- stats.Sem.st_rows_emitted + !emitted;
              chunk_rows joint (List.rev !acc));
    }
  end

(* ---- public API ------------------------------------------------------ *)

let query_stats ?(env = []) db q : Relation.t * Sem.stats =
  let cenv = List.map fst env and renv = List.map snd env in
  let v = lower db [] cenv q in
  let pool =
    match !pool_override with
    | Some _ as p -> p
    | None -> if !domains > 1 then Some (Morsel.get !domains) else None
  in
  let rt = { cctx = Compile.mk_ctx db; renv; pool } in
  let bats = v.v_run rt in
  (Vector.relation_of v.v_schema bats, Compile.ctx_stats rt.cctx)

let query ?(env = []) db q = fst (query_stats ~env db q)
