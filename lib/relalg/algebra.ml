(** The extended relational algebra of Figure 1: bag operators plus
    sublinks ([ANY], [ALL], [EXISTS] and scalar subqueries) embeddable in
    selection, projection and join conditions.

    Expressions and queries are mutually recursive because a sublink
    carries a whole query. Each sublink gets a unique [id] used by the
    evaluator for (hashed-subplan style) memoization. *)

type binop = Add | Sub | Mul | Div | Mod | Concat

type cmpop =
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | EqNull  (** the null-aware [=n] comparison from Section 3.3 *)

type expr =
  | Const of Value.t
  | TypedNull of Vtype.t
      (** NULL with an explicit static type — used by the provenance
          rewrites to pad provenance attributes (e.g. set operations and
          the Gen strategy's empty-sublink case). *)
  | Attr of string
      (** Attribute reference, resolved by name against the operator's
          input schema or — for correlation — an enclosing scope. *)
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | IsNull of expr
  | Case of (expr * expr) list * expr option
      (** [CASE WHEN c1 THEN e1 ... ELSE e END]; missing ELSE is NULL. *)
  | Like of expr * string  (** SQL LIKE with [%] and [_] wildcards *)
  | InList of expr * expr list  (** [e IN (e1, ..., en)] over literals *)
  | FunCall of string * expr list  (** scalar builtin function *)
  | Sublink of sublink

and sublink = {
  id : int;  (** unique id, for evaluator memoization *)
  kind : sublink_kind;
  query : query;  (** the sublink query [Tsub] *)
}

and sublink_kind =
  | Exists  (** [EXISTS Tsub] *)
  | Scalar  (** bare [Tsub]: single-column; NULL on empty result *)
  | AnyOp of cmpop * expr  (** [A op ANY Tsub]; [A] evaluated in outer scope *)
  | AllOp of cmpop * expr  (** [A op ALL Tsub] *)

and agg_call = {
  agg_func : string;  (** sum, count, avg, min, max *)
  agg_distinct : bool;
  agg_arg : expr option;  (** [None] encodes [COUNT( * )] *)
  agg_name : string;  (** output attribute name *)
}

and query =
  | Base of string  (** named relation from the database catalog *)
  | TableExpr of Relation.t  (** literal relation (test fixtures, VALUES) *)
  | Select of expr * query  (** sigma *)
  | Project of projection
  | Cross of query * query
  | Join of expr * query * query
  | LeftJoin of expr * query * query
  | Agg of aggregation
  | Union of semantics * query * query
  | Inter of semantics * query * query
  | Diff of semantics * query * query
  | Order of (expr * direction) list * query
  | Limit of int * query

and projection = {
  distinct : bool;  (** true = set projection, false = bag projection *)
  cols : (expr * string) list;  (** expression and output attribute name *)
  proj_input : query;
}

and aggregation = {
  group_by : (expr * string) list;
  aggs : agg_call list;
  agg_input : query;
}

and semantics = Bag | SetSem
and direction = Asc | Desc

(** {1 Constructors} *)

let sublink_counter = ref 0

(** [mk_sublink kind query] allocates a sublink with a fresh id. *)
let mk_sublink kind query =
  incr sublink_counter;
  { id = !sublink_counter; kind; query }

let exists q = Sublink (mk_sublink Exists q)
let scalar q = Sublink (mk_sublink Scalar q)
let any_op op lhs q = Sublink (mk_sublink (AnyOp (op, lhs)) q)
let all_op op lhs q = Sublink (mk_sublink (AllOp (op, lhs)) q)

let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let flt f = Const (Value.Float f)
let bool b = Const (Value.Bool b)
let attr a = Attr a
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let eq a b = Cmp (Eq, a, b)
let lt a b = Cmp (Lt, a, b)
let gt a b = Cmp (Gt, a, b)

(** Conjunction of a condition list; empty list is [true]. *)
let conj = function
  | [] -> Const Value.vtrue
  | c :: cs -> List.fold_left ( &&& ) c cs

(** Split a condition into its top-level conjuncts. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Value.Bool true) -> []
  | e -> [ e ]

(** Identity projection columns for a schema (used to express renamings
    a -> pa by pairing [Attr a] with a new name). *)
let identity_cols schema = List.map (fun n -> (Attr n, n)) (Schema.names schema)

(** [project ?distinct cols q] smart constructor. *)
let project ?(distinct = false) cols q =
  Project { distinct; cols; proj_input = q }

let aggregate ~group_by ~aggs q = Agg { group_by; aggs; agg_input = q }

(** {1 Traversals} *)

(** [map_expr_query f e] rebuilds [e], applying [f] to every embedded
    sublink query (outermost sublinks only; [f] may recurse itself).
    [f] is applied in {!sublinks_of_expr} order — the path-carrying
    rewrite passes rely on this to number sublinks the way [Lint]
    does — hence the explicit sequencing below (OCaml constructor
    argument evaluation order is unspecified). *)
let rec map_expr_query f = function
  | (Const _ | TypedNull _ | Attr _) as e -> e
  | Binop (op, a, b) ->
      let a = map_expr_query f a in
      Binop (op, a, map_expr_query f b)
  | Cmp (op, a, b) ->
      let a = map_expr_query f a in
      Cmp (op, a, map_expr_query f b)
  | And (a, b) ->
      let a = map_expr_query f a in
      And (a, map_expr_query f b)
  | Or (a, b) ->
      let a = map_expr_query f a in
      Or (a, map_expr_query f b)
  | Not a -> Not (map_expr_query f a)
  | IsNull a -> IsNull (map_expr_query f a)
  | Case (whens, els) ->
      let whens =
        List.map
          (fun (c, e) ->
            let c = map_expr_query f c in
            (c, map_expr_query f e))
          whens
      in
      Case (whens, Option.map (map_expr_query f) els)
  | Like (a, pat) -> Like (map_expr_query f a, pat)
  | InList (a, es) ->
      let a = map_expr_query f a in
      InList (a, List.map (map_expr_query f) es)
  | FunCall (name, es) -> FunCall (name, List.map (map_expr_query f) es)
  | Sublink s ->
      (* the sublink's own query first: in [sublinks_of_expr] order a
         sublink precedes the sublinks inside its ANY/ALL left operand *)
      let query = f s.query in
      let kind =
        match s.kind with
        | (Exists | Scalar) as k -> k
        | AnyOp (op, lhs) -> AnyOp (op, map_expr_query f lhs)
        | AllOp (op, lhs) -> AllOp (op, map_expr_query f lhs)
      in
      Sublink { s with kind; query }

(** [fold_expr f acc e] folds [f] over every sub-expression of [e]
    (including [e] itself), not descending into sublink queries. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | TypedNull _ | Attr _ -> acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      fold_expr f (fold_expr f acc a) b
  | Not a | IsNull a | Like (a, _) -> fold_expr f acc a
  | Case (whens, els) ->
      let acc =
        List.fold_left
          (fun acc (c, x) -> fold_expr f (fold_expr f acc c) x)
          acc whens
      in
      Option.fold ~none:acc ~some:(fold_expr f acc) els
  | InList (a, es) -> List.fold_left (fold_expr f) (fold_expr f acc a) es
  | FunCall (_, es) -> List.fold_left (fold_expr f) acc es
  | Sublink s -> (
      match s.kind with
      | Exists | Scalar -> acc
      | AnyOp (_, lhs) | AllOp (_, lhs) -> fold_expr f acc lhs)

(** Top-level sublinks of an expression, left to right. Sublinks nested
    inside another sublink's query are not included — they are handled
    when the sublink query itself is rewritten (Section 2.7). *)
let sublinks_of_expr e =
  List.rev
    (fold_expr (fun acc x -> match x with Sublink s -> s :: acc | _ -> acc) [] e)

let has_sublink e = sublinks_of_expr e <> []

(** [replace_sublinks subst e] replaces each sublink (by id) with the
    expression bound to it in [subst]; used by the Move strategy to hoist
    sublinks into projections. *)
let rec replace_sublinks subst = function
  | (Const _ | TypedNull _ | Attr _) as e -> e
  | Binop (op, a, b) -> Binop (op, replace_sublinks subst a, replace_sublinks subst b)
  | Cmp (op, a, b) -> Cmp (op, replace_sublinks subst a, replace_sublinks subst b)
  | And (a, b) -> And (replace_sublinks subst a, replace_sublinks subst b)
  | Or (a, b) -> Or (replace_sublinks subst a, replace_sublinks subst b)
  | Not a -> Not (replace_sublinks subst a)
  | IsNull a -> IsNull (replace_sublinks subst a)
  | Case (whens, els) ->
      Case
        ( List.map
            (fun (c, e) -> (replace_sublinks subst c, replace_sublinks subst e))
            whens,
          Option.map (replace_sublinks subst) els )
  | Like (a, pat) -> Like (replace_sublinks subst a, pat)
  | InList (a, es) ->
      InList (replace_sublinks subst a, List.map (replace_sublinks subst) es)
  | FunCall (name, es) -> FunCall (name, List.map (replace_sublinks subst) es)
  | Sublink s -> (
      match List.assoc_opt s.id subst with
      | Some replacement -> replacement
      | None -> Sublink s)

(** [map_queries f q] applies [f] to every direct child query of [q]
    (including sublink queries inside conditions). *)
let map_queries f = function
  | (Base _ | TableExpr _) as q -> q
  | Select (c, q) -> Select (map_expr_query f c, f q)
  | Project p ->
      Project
        {
          p with
          cols = List.map (fun (e, n) -> (map_expr_query f e, n)) p.cols;
          proj_input = f p.proj_input;
        }
  | Cross (a, b) -> Cross (f a, f b)
  | Join (c, a, b) -> Join (map_expr_query f c, f a, f b)
  | LeftJoin (c, a, b) -> LeftJoin (map_expr_query f c, f a, f b)
  | Agg a ->
      Agg
        {
          group_by = List.map (fun (e, n) -> (map_expr_query f e, n)) a.group_by;
          aggs =
            List.map
              (fun c -> { c with agg_arg = Option.map (map_expr_query f) c.agg_arg })
              a.aggs;
          agg_input = f a.agg_input;
        }
  | Union (s, a, b) -> Union (s, f a, f b)
  | Inter (s, a, b) -> Inter (s, f a, f b)
  | Diff (s, a, b) -> Diff (s, f a, f b)
  | Order (keys, q) ->
      Order (List.map (fun (e, d) -> (map_expr_query f e, d)) keys, f q)
  | Limit (n, q) -> Limit (n, f q)

(** All expressions syntactically present in the root operator of [q]
    (conditions, projection columns, group/agg/order expressions). *)
let root_exprs = function
  | Base _ | TableExpr _ | Cross _ | Limit _ -> []
  | Select (c, _) | Join (c, _, _) | LeftJoin (c, _, _) -> [ c ]
  | Project p -> List.map fst p.cols
  | Agg a ->
      List.map fst a.group_by
      @ List.filter_map (fun c -> c.agg_arg) a.aggs
  | Union _ | Inter _ | Diff _ -> []
  | Order (keys, _) -> List.map fst keys

(** Base relation names accessed anywhere in [q] (including sublink
    queries), in the provenance rewriter's traversal order — operator
    inputs first, then each operator's sublinks left to right — with
    duplicates for multiple references: footnote 1 of the paper treats
    multiple references to one relation as distinct provenance inputs.
    This order is the provenance contract: [Rewrite.rewrite] appends one
    provenance attribute group per entry of this list. *)
let rec base_relations q =
  let from_exprs es =
    List.concat_map
      (fun e ->
        List.concat_map (fun s -> base_relations s.query) (sublinks_of_expr e))
      es
  in
  match q with
  | Base name -> [ name ]
  | TableExpr _ -> []
  | Select (c, q) -> base_relations q @ from_exprs [ c ]
  | Project p -> base_relations p.proj_input @ from_exprs (List.map fst p.cols)
  | Cross (a, b) -> base_relations a @ base_relations b
  | Join (c, a, b) | LeftJoin (c, a, b) ->
      base_relations a @ base_relations b @ from_exprs [ c ]
  | Agg a -> base_relations a.agg_input
  | Union (_, a, b) | Inter (_, a, b) | Diff (_, a, b) ->
      base_relations a @ base_relations b
  | Order (_, q) | Limit (_, q) -> base_relations q
