(** Evaluation entry points for the extended algebra of Figure 1.

    Two engines implement the same semantics: the {e compiled} engine
    ({!Compile}, the default) lowers the plan once into offset-resolved
    closures; the {e reference} engine is the tree-walking interpreter
    kept in this module as the executable specification. {!query},
    {!query_stats} and {!expr} dispatch on {!default_engine}.

    Performance features shared by both engines, mirroring what
    PostgreSQL gives the original Perm: hash execution of equi-join
    conjuncts (including the null-aware [=n]), per-correlation-binding
    memoization of sublink results, and constant-size summaries
    answering [ANY]/[ALL] sublinks. Cross products and non-equi joins
    are naive — which is exactly why the Gen strategy's CrossBase plans
    are expensive here, as in the paper. *)

exception Eval_error of string

(** {1 Environments} — a stack of frames, innermost first; correlated
    attribute references resolve against outer frames by name. *)

type frame = { f_schema : Schema.t; f_tuple : Tuple.t }
type env = frame list

val frame : Schema.t -> Tuple.t -> frame
val schemas_of_env : env -> Schema.t list

(** [lookup env name] resolves an attribute innermost-first; raises
    {!Eval_error} when unbound. *)
val lookup : env -> string -> Value.t

(** {1 Three-valued comparison} *)

(** [cmp3 op a b] is the truth value ([Bool _]/[Null]) of [a op b]. *)
val cmp3 : Algebra.cmpop -> Value.t -> Value.t -> Value.t

(** {1 ANY/ALL semantics}

    The naive folds are the reference semantics (Figure 1's existential
    and universal quantification under 3VL); the summary versions are
    the fast path. Their agreement is property-tested. *)

val naive_any : Algebra.cmpop -> Value.t -> Value.t list -> Value.t
val naive_all : Algebra.cmpop -> Value.t -> Value.t list -> Value.t

type summary = Sem.summary

val summarize : Value.t list -> summary
val any_of_summary : Algebra.cmpop -> Value.t -> summary -> Value.t
val all_of_summary : Algebra.cmpop -> Value.t -> summary -> Value.t

(** {1 Engine selection} *)

(** [Compiled] lowers the plan to offset-resolved closures ({!Compile});
    [Reference] interprets the AST per tuple; [Vectorized] executes
    columnar batch kernels, optionally across domains ({!Vexec}). *)
type engine = Compiled | Reference | Vectorized

(** The engine used by {!query}, {!query_stats} and {!expr}. Defaults to
    [Compiled]; permcli's [--engine] and the benchmark harness set it. *)
val default_engine : engine ref

val engine_name : engine -> string

(** [engine_of_string s] parses ["compiled"|"reference"|"vectorized"];
    raises [Invalid_argument] otherwise. *)
val engine_of_string : string -> engine

(** {1 Evaluation} *)

(** [query db q] evaluates [q] with a fresh memoization context, using
    [engine] when given, else {!default_engine}; [env] supplies outer
    frames for correlated evaluation. Concurrent callers (the server's
    sessions) pass [engine] explicitly instead of mutating the shared
    default. *)
val query : ?engine:engine -> ?env:env -> Database.t -> Algebra.query -> Relation.t

(** [query_reference db q] always uses the reference tree walker. *)
val query_reference : ?env:env -> Database.t -> Algebra.query -> Relation.t

(** [query_compiled db q] always compiles and runs via {!Compile}. *)
val query_compiled : ?env:env -> Database.t -> Algebra.query -> Relation.t

(** [query_vectorized db q] always runs the columnar engine
    ({!Vexec}); worker count and batch size come from
    {!Vexec.domains} / {!Vexec.batch_rows}. *)
val query_vectorized : ?env:env -> Database.t -> Algebra.query -> Relation.t

(** Execution counters, in the spirit of EXPLAIN ANALYZE (shared between
    the engines via {!Sem}). *)
type stats = Sem.stats = {
  mutable st_hash_joins : int;
  mutable st_nested_loop_joins : int;
  mutable st_nested_pairs : int;  (** tuple pairs examined by nested loops *)
  mutable st_sublink_evals : int;  (** sublink materializations (cache misses) *)
  mutable st_sublink_hits : int;  (** sublink memoization hits *)
  mutable st_rows_emitted : int;  (** rows produced by join operators *)
}

val stats_to_string : stats -> string

(** [query_stats db q] also reports how the plan actually executed. *)
val query_stats :
  ?engine:engine -> ?env:env -> Database.t -> Algebra.query -> Relation.t * stats

val query_stats_reference :
  ?env:env -> Database.t -> Algebra.query -> Relation.t * stats

val query_stats_compiled :
  ?env:env -> Database.t -> Algebra.query -> Relation.t * stats

val query_stats_vectorized :
  ?env:env -> Database.t -> Algebra.query -> Relation.t * stats

(** [expr db e] evaluates a scalar expression (sublinks allowed),
    dispatching on [engine] when given, else {!default_engine}. *)
val expr : ?engine:engine -> ?env:env -> Database.t -> Algebra.expr -> Value.t

val expr_reference : ?env:env -> Database.t -> Algebra.expr -> Value.t
val expr_compiled : ?env:env -> Database.t -> Algebra.expr -> Value.t
