(** Execution governor: resource budgets with cooperative checkpoints,
    and a deterministic fault-injection harness.

    Both engines ({!Eval}'s reference walker and {!Compile}'s closure
    engine) call the checkpoint functions at operator boundaries. When
    no budget is installed and no fault is armed, a checkpoint is a
    single flag load — the hot path stays within noise of an unguarded
    run. With a budget installed, counters are maintained per
    {!with_budget} scope and a structured {!Budget_exceeded} is raised
    at the first operator that exceeds a ceiling, carrying the operator
    path (same [Lint]-style path syntax as {!Lint.path_to_string}) and
    the counter values at trip time.

    Budgets are installed dynamically ({!with_budget}) rather than
    threaded through every evaluator signature, so one scope governs a
    whole pipeline — rewrite products, sublink re-evaluations and both
    engines included. Scopes nest lexically, but only the innermost is
    enforced: an inner scope suspends the outer one (its counters and
    deadline are neither advanced nor checked until the inner exits).
    The fallback ladder in [Core] runs each strategy attempt under its
    own sub-budget on this contract, re-splitting the remaining
    wall-clock allowance itself; row/pair/allocation ceilings are fresh
    per attempt.

    The scope registry is [Domain.DLS]-backed with [Atomic] shared
    totals (see guard.ml), so worker domains may adopt the
    coordinator's scope with {!with_scope} and tick checkpoints
    concurrently: budgets trip with correctly aggregated totals no
    matter which domain crosses a ceiling. *)

(** {1 Budgets} *)

type budget = {
  g_timeout : float option;  (** wall-clock seconds for the whole scope *)
  g_max_rows : int option;
      (** ceiling on rows produced across {e all} operators (output and
          intermediate rows both count) *)
  g_max_pairs : int option;
      (** ceiling on tuple pairs examined by nested-loop joins and cross
          products; also preflights cross products whose width is known *)
  g_max_alloc_mb : float option;
      (** ceiling on major+minor words allocated in the scope, in MB —
          a coarse stand-in for peak memory *)
}

val budget :
  ?timeout:float ->
  ?max_rows:int ->
  ?max_pairs:int ->
  ?max_alloc_mb:float ->
  unit ->
  budget

val unlimited : budget

(** [is_unlimited b] is true when no ceiling is set. *)
val is_unlimited : budget -> bool

val budget_to_string : budget -> string

(** Counter values at trip time. *)
type counters = {
  c_rows : int;
  c_pairs : int;
  c_elapsed : float;  (** seconds since the scope was entered *)
  c_alloc_mb : float;
}

type reason =
  | Timed_out of float  (** the limit, seconds *)
  | Rows_exceeded of int  (** the limit *)
  | Pairs_exceeded of int  (** the limit *)
  | Alloc_exceeded of float  (** the limit, MB *)

type trip = {
  t_path : string list;
      (** operator path of the checkpoint that tripped, root first *)
  t_reason : reason;
  t_counters : counters;
}

exception Budget_exceeded of trip

val trip_to_string : trip -> string

(** [with_budget b f] runs [f] with [b] installed; any previously
    installed budget is saved and restored on exit, but while [b] is
    active the outer scope is {e suspended} — its counters and deadline
    are neither advanced nor checked. Callers wanting a shared ceiling
    across nested runs must split it into the sub-budgets themselves.
    [None] leaves the current scope untouched. The scope's elapsed time
    and allocation baselines start at entry. *)
val with_budget : budget option -> (unit -> 'a) -> 'a

(** Counters of the innermost active scope (all zero when none). Totals
    are aggregated across every domain that adopted the scope, up to
    each remote domain's last flush (slow checkpoint or view exit). *)
val observed : unit -> counters

(** {1 Cross-domain scope adoption} *)

(** A handle on the innermost active scope, shareable across domains. *)
type scope

(** The scope that adopts nothing: {!with_scope}[ no_scope f = f ()]. *)
val no_scope : scope

(** The calling domain's innermost active scope ({!no_scope} when no
    budget is installed). The coordinator captures this before fanning
    tasks out to worker domains. *)
val current_scope : unit -> scope

(** [with_scope sc f] runs [f] with [sc] adopted on the calling domain:
    checkpoints inside [f] tick against the shared scope through a
    fresh domain-private view whose counters are flushed into the
    shared totals at exit. A ceiling crossed on this domain raises
    {!Budget_exceeded} here — the morsel scheduler propagates it to the
    coordinator's barrier. Adopting a scope the domain is already
    viewing is a no-op wrapper. *)
val with_scope : scope -> (unit -> 'a) -> 'a

(** Whether a budget scope is active — callers use this to skip
    checkpoint-argument computation (e.g. a cardinality walk) on the
    unguarded path. *)
val is_active : unit -> bool

(** Whether the active scope enforces a row ceiling. Bulk row counting
    costs an O(n) cardinality walk per operator exit, so the engines
    only perform it when this is true; timeout-only budgets skip it
    (their [c_rows] counter then reflects streaming pushes only). *)
val counts_rows : unit -> bool

(** {1 Checkpoints} — called by the engines. *)

(** [count_row path] records one produced row (compiled engine,
    per-push). *)
val count_row : string list -> unit

(** [count_rows path n] records [n] produced rows at once (bulk
    results) and performs a time/allocation check. *)
val count_rows : string list -> int -> unit

(** [count_pairs path n] records [n] nested-loop or cross-product pairs
    examined. *)
val count_pairs : string list -> int -> unit

(** [cross_guard path ~left ~right] preflights a cross product of known
    input cardinalities against the pair ceiling before any pair is
    enumerated. *)
val cross_guard : string list -> left:int -> right:int -> unit

(** [tick path] is a cheap checkpoint — amortized time/allocation
    check, no counter updates. Called at operator entry by both
    engines, and per tuple in the reference walker's hot loops so
    timeout/allocation budgets trip even on plans with few operators. *)
val tick : string list -> unit

(** [note_alloc path bytes] folds externally measured worker-domain
    bytes into the active scope's allocation budget
    ([Gc.allocated_bytes] is per-domain). Checks the allocation ceiling
    immediately. Superseded for the vectorized engine by worker-side
    {!with_scope} adoption, which accounts allocation automatically;
    kept for callers that measure worker allocation themselves. *)
val note_alloc : string list -> float -> unit

(** {1 Budget pool} *)

module Pool : sig
  (** A server-wide allowance from which concurrent requests lease
      per-request budgets. Sized for [slots] concurrent requests at the
      template budget; when oversubscribed, leased wall-clock allowances
      shrink proportionally ([timeout × slots / active], floored at
      50 ms) so total in-flight wall-clock stays bounded by
      [slots × timeout]. Row/pair/allocation ceilings are per-request
      invariants and lease out unchanged. Thread- and domain-safe. *)

  type t

  (** [create ?slots template] (default [slots = 1]). *)
  val create : ?slots:int -> budget -> t

  (** [lease t] registers one outstanding request and derives its
      budget from the template at the current load. Pair with
      {!release} (or use {!with_lease}). *)
  val lease : t -> budget

  val release : t -> unit

  (** [with_lease t f] runs [f budget] under a lease, releasing on any
      exit. *)
  val with_lease : t -> (budget -> 'a) -> 'a

  (** Outstanding leases. *)
  val active : t -> int

  (** Total leases ever granted. *)
  val leased : t -> int

  val slots : t -> int
end

(** {1 Paths} *)

(** Same operator labels as [Lint]'s diagnostics paths. *)
val op_label : Algebra.query -> string

(** [path_to_string p] joins with ["/"]; the empty path renders as
    ["plan"]. *)
val path_to_string : string list -> string

(** {1 Fault injection} *)

module Faults : sig
  (** Deterministic fault injection at engine boundaries, for testing
      the error paths: a trigger armed here makes the next matching
      boundary crossing raise {!Injected} instead of producing data. *)

  type site = Scan | Join | Sublink

  type trigger =
    | Countdown of int
        (** fire at the [n]-th matching boundary (1 = first) *)
    | At_path of string
        (** fire at the first boundary whose rendered path equals or
            extends this prefix *)
    | Seeded of int
        (** deterministic PRNG seeded here decides at each boundary
            (~10% firing rate); same seed, same run → same fault *)

  exception Injected of { i_site : site; i_path : string list }

  val site_to_string : site -> string

  (** [arm ?sites trigger] arms one fault; [sites] restricts the
      boundary kinds that can fire (default: all). Re-arming replaces
      the previous configuration and resets counters. *)
  val arm : ?sites:site list -> trigger -> unit

  val disarm : unit -> unit
  val armed : unit -> bool

  (** Boundary crossings matched (site filter applied) since {!arm}. *)
  val events : unit -> int

  (** Faults raised since {!arm}. *)
  val fired : unit -> int

  (** [fire_point site path] is called by the engines at scan, join and
      sublink boundaries. *)
  val fire_point : site -> string list -> unit
end
