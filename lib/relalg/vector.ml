(** Columnar batches for the vectorized engine ({!Vexec}).

    A batch holds up to a few thousand rows in column-major form:
    unboxed [int]/[float] columns in [Bigarray]s, string and boolean
    columns in flat arrays, and a NULL *validity bitmap* per column
    (one bit per row in a [Bytes.t]; a set bit means the row's value is
    present, a clear bit means NULL). A batch optionally carries a
    *selection vector* — a sorted array of physical row indices that
    survived upstream filters — so selections never copy column data.

    Column representation is chosen per batch from the {e values}, not
    the declared schema: a column whose non-null values are all [Int]
    becomes a [DInt] Bigarray, and so on; anything mixed falls back to
    a boxed [Value.t array] ([DVal], NULLs inline). Choosing by value
    makes the round trip [of_rows] → [to_tuples] reproduce the exact
    original values (the engines' parity contract compares rows
    structurally), while still unboxing the all-integer columns the
    synthetic and TPC-H workloads are made of.

    Operators that have no columnar kernel exchange [Rows] batches —
    plain boxed tuples under the same interface — so the engine can mix
    columnar scans with row-wise fallbacks without transposing at every
    boundary. *)

type intarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floatarr =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type data =
  | DInt of intarr
  | DFloat of floatarr
  | DString of string array
  | DBool of Bytes.t  (** one byte per row, 0 = false, 1 = true *)
  | DVal of Value.t array  (** boxed fallback; NULLs inline *)

type column = {
  data : data;
  valid : Bytes.t option;
      (** validity bitmap, bit per row, set = non-NULL; [None] = no
          NULLs in the column. Always [None] for [DVal]. *)
}

type t =
  | Cols of {
      n : int;  (** physical row count *)
      schema : Schema.t;
      cols : column array;
      sel : int array option;
          (** surviving physical row indices, ascending; [None] = all *)
    }
  | Rows of { schema : Schema.t; rows : Tuple.t array }
  | CrossB of {
      schema : Schema.t;
      lefts : Tuple.t array;  (** the [np] left tuples, in output order *)
      right_cols : Value.t array array;
          (** right side transposed: [right_cols.(j).(i)] is column [j]
              of right row [i]; every column has [card_b] entries *)
      card_b : int;
      srcs : int array;
          (** per output column: [s >= 0] reads left offset [s] of the
              block's left tuple, [s < 0] reads right column [lnot s] *)
    }
      (** A factored cross-product block: logical row [k * card_b + i]
          is [lefts.(k)] joined with right row [i], but the [np *
          card_b] rows are never stored — only the two factors are.
          Nested-loop joins whose hoisted predicate accepts a whole
          [left × rights] block emit these in O(np + card_b) space and
          time; attribute projections just remap [srcs]. Consumers that
          need rows expand lazily. *)

(** {1 Validity bitmaps} *)

let bits_make n = Bytes.make ((n + 7) lsr 3) '\000'

let bit_set b i =
  let j = i lsr 3 in
  Bytes.unsafe_set b j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b j) lor (1 lsl (i land 7))))

let bit_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

(** [valid_at c i] — is physical row [i] of column [c] non-NULL? *)
let valid_at c i = match c.valid with None -> true | Some b -> bit_get b i

(** {1 Construction} *)

(* Decide a column's representation from its values: the narrowest
   typed layout that loses nothing, else boxed. *)
let build_column (rows : Tuple.t array) ~lo ~len j : column =
  let all_int = ref true
  and all_float = ref true
  and all_string = ref true
  and all_bool = ref true
  and nulls = ref 0 in
  for i = 0 to len - 1 do
    match Tuple.get (Array.unsafe_get rows (lo + i)) j with
    | Value.Null -> incr nulls
    | Value.Int _ ->
        all_float := false;
        all_string := false;
        all_bool := false
    | Value.Float _ ->
        all_int := false;
        all_string := false;
        all_bool := false
    | Value.String _ ->
        all_int := false;
        all_float := false;
        all_bool := false
    | Value.Bool _ ->
        all_int := false;
        all_float := false;
        all_string := false
  done;
  let mk_valid () =
    if !nulls = 0 then None
    else begin
      let b = bits_make len in
      for i = 0 to len - 1 do
        if not (Value.is_null (Tuple.get rows.(lo + i) j)) then bit_set b i
      done;
      Some b
    end
  in
  if !all_int then begin
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set a i
        (match Tuple.get (Array.unsafe_get rows (lo + i)) j with
        | Value.Int v -> v
        | _ -> 0)
    done;
    { data = DInt a; valid = mk_valid () }
  end
  else if !all_float then begin
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set a i
        (match Tuple.get (Array.unsafe_get rows (lo + i)) j with
        | Value.Float v -> v
        | _ -> 0.)
    done;
    { data = DFloat a; valid = mk_valid () }
  end
  else if !all_string then begin
    let a = Array.make len "" in
    for i = 0 to len - 1 do
      match Tuple.get rows.(lo + i) j with
      | Value.String s -> a.(i) <- s
      | _ -> ()
    done;
    { data = DString a; valid = mk_valid () }
  end
  else if !all_bool then begin
    let a = Bytes.make len '\000' in
    for i = 0 to len - 1 do
      match Tuple.get rows.(lo + i) j with
      | Value.Bool b -> if b then Bytes.unsafe_set a i '\001'
      | _ -> ()
    done;
    { data = DBool a; valid = mk_valid () }
  end
  else begin
    let a = Array.make len Value.Null in
    for i = 0 to len - 1 do
      a.(i) <- Tuple.get rows.(lo + i) j
    done;
    { data = DVal a; valid = None }
  end

let of_rows schema (rows : Tuple.t array) ~lo ~len : t =
  let arity = Schema.arity schema in
  Cols
    {
      n = len;
      schema;
      cols = Array.init arity (fun j -> build_column rows ~lo ~len j);
      sel = None;
    }

let rows_batch schema rows : t = Rows { schema; rows }

(** {1 Access} *)

let schema = function
  | Cols c -> c.schema
  | Rows r -> r.schema
  | CrossB c -> c.schema

(** Logical row count (selection applied). *)
let length = function
  | Cols { sel = Some s; _ } -> Array.length s
  | Cols c -> c.n
  | Rows r -> Array.length r.rows
  | CrossB c -> Array.length c.lefts * c.card_b

(** [col_value c i] — value at {e physical} row [i] of a column. *)
let col_value (c : column) i : Value.t =
  if not (valid_at c i) then Value.Null
  else
    match c.data with
    | DInt a -> Value.Int (Bigarray.Array1.unsafe_get a i)
    | DFloat a -> Value.Float (Bigarray.Array1.unsafe_get a i)
    | DString a -> Value.String (Array.unsafe_get a i)
    | DBool a -> Value.Bool (Bytes.unsafe_get a i <> '\000')
    | DVal a -> Array.unsafe_get a i

(* Physical index of logical row [i]. *)
let phys sel i = match sel with None -> i | Some s -> Array.unsafe_get s i

(* Expand one row of a factored cross block. *)
let cross_row lefts right_cols srcs ~k ~i : Tuple.t =
  let ta = Array.unsafe_get lefts k in
  let arity = Array.length srcs in
  let t = Array.make arity Value.Null in
  for j = 0 to arity - 1 do
    let s = Array.unsafe_get srcs j in
    Array.unsafe_set t j
      (if s >= 0 then Array.unsafe_get ta s
       else Array.unsafe_get (Array.unsafe_get right_cols (lnot s)) i)
  done;
  t

(** [tuple_at b i] — boxed tuple for {e logical} row [i]. *)
let tuple_at (b : t) i : Tuple.t =
  match b with
  | Rows r -> r.rows.(i)
  | Cols c ->
      let p = phys c.sel i in
      Array.init (Array.length c.cols) (fun j -> col_value c.cols.(j) p)
  | CrossB c ->
      cross_row c.lefts c.right_cols c.srcs ~k:(i / c.card_b)
        ~i:(i mod c.card_b)

let iter_tuples b f =
  match b with
  | Rows r -> Array.iter f r.rows
  | Cols _ | CrossB _ ->
      let len = length b in
      for i = 0 to len - 1 do
        f (tuple_at b i)
      done

(** [rows_arr b] — logical rows as a boxed array ([Rows] shares). *)
let rows_arr (b : t) : Tuple.t array =
  match b with
  | Rows r -> r.rows
  | Cols _ | CrossB _ -> Array.init (length b) (fun i -> tuple_at b i)

let to_tuples b = Array.to_list (rows_arr b)

(** {1 Conversion to relations} *)

(* Cons the rows of [b] (last first) onto [tail] — the boxed-tuple list
   is built in one pass with no intermediate array, and [Rows] batches
   share their tuples. *)
let batch_prepend (b : t) (tail : Tuple.t list) : Tuple.t list =
  match b with
  | Rows r ->
      let rows = r.rows in
      let acc = ref tail in
      for i = Array.length rows - 1 downto 0 do
        acc := Array.unsafe_get rows i :: !acc
      done;
      !acc
  | Cols c ->
      let len = length b in
      let ncols = Array.length c.cols in
      let acc = ref tail in
      for i = len - 1 downto 0 do
        let p = phys c.sel i in
        let t = Array.make ncols Value.Null in
        for j = 0 to ncols - 1 do
          Array.unsafe_set t j (col_value (Array.unsafe_get c.cols j) p)
        done;
        acc := t :: !acc
      done;
      !acc
  | CrossB c ->
      let acc = ref tail in
      for k = Array.length c.lefts - 1 downto 0 do
        for i = c.card_b - 1 downto 0 do
          acc := cross_row c.lefts c.right_cols c.srcs ~k ~i :: !acc
        done
      done;
      !acc

(* Late materialization: the relation's boxed rows are only built if a
   consumer reads them — [cardinality] is known from the batch lengths,
   so stats-only pipelines never pay the transpose. *)
let relation_of schema (batches : t list) : Relation.t =
  let card = List.fold_left (fun n b -> n + length b) 0 batches in
  Relation.make_lazy ~cardinality:card schema (fun () ->
      List.fold_left
        (fun tail b -> batch_prepend b tail)
        [] (List.rev batches))

let of_relation ?(batch_rows = 2048) rel : t array =
  let schema = Relation.schema rel in
  let rows = Array.of_list (Relation.tuples rel) in
  let n = Array.length rows in
  let bs = max 1 batch_rows in
  let nb = if n = 0 then 0 else (n + bs - 1) / bs in
  Array.init nb (fun i ->
      let lo = i * bs in
      of_rows schema rows ~lo ~len:(min bs (n - lo)))

(** {1 Kernel helpers} *)

(** [select_cols out_schema b offs] — attribute-only projection: keeps
    the columns at [offs] (in order) under the renamed [out_schema].
    On [Cols] this shares column storage and the selection vector —
    no row data moves. *)
let select_cols out_schema (b : t) (offs : int array) : t =
  match b with
  | Cols c ->
      Cols
        {
          n = c.n;
          schema = out_schema;
          cols = Array.map (fun j -> c.cols.(j)) offs;
          sel = c.sel;
        }
  | Rows r ->
      Rows
        { schema = out_schema; rows = Array.map (fun t -> Tuple.project_arr t offs) r.rows }
  | CrossB c ->
      (* Factored projection: remap the per-column sources — the block
         stays factored, no row is expanded. *)
      CrossB
        { c with schema = out_schema; srcs = Array.map (fun j -> c.srcs.(j)) offs }

(** [with_sel b sel] — replace the selection vector (physical indices)
    of a [Cols] batch. *)
let with_sel (b : t) sel : t =
  match b with
  | Cols c -> Cols { c with sel }
  | Rows _ | CrossB _ -> invalid_arg "Vector.with_sel: not a Cols batch"

(** [gather_col c idx] — new column whose row [i] is physical row
    [idx.(i)] of [c]; an index of [-1] produces NULL (outer-join
    padding). *)
let gather_col (c : column) (idx : int array) : column =
  let len = Array.length idx in
  let any_pad = Array.exists (fun i -> i < 0) idx in
  let need_valid = any_pad || c.valid <> None in
  let valid =
    if not need_valid then None
    else begin
      let b = bits_make len in
      for i = 0 to len - 1 do
        let p = Array.unsafe_get idx i in
        if p >= 0 && valid_at c p then bit_set b i
      done;
      Some b
    end
  in
  let data =
    match c.data with
    | DInt a ->
        let out = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
        for i = 0 to len - 1 do
          let p = Array.unsafe_get idx i in
          Bigarray.Array1.unsafe_set out i
            (if p >= 0 then Bigarray.Array1.unsafe_get a p else 0)
        done;
        DInt out
    | DFloat a ->
        let out =
          Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len
        in
        for i = 0 to len - 1 do
          let p = Array.unsafe_get idx i in
          Bigarray.Array1.unsafe_set out i
            (if p >= 0 then Bigarray.Array1.unsafe_get a p else 0.)
        done;
        DFloat out
    | DString a ->
        DString
          (Array.init len (fun i ->
               let p = idx.(i) in
               if p >= 0 then a.(p) else ""))
    | DBool a ->
        let out = Bytes.make len '\000' in
        for i = 0 to len - 1 do
          let p = Array.unsafe_get idx i in
          if p >= 0 then Bytes.unsafe_set out i (Bytes.unsafe_get a p)
        done;
        DBool out
    | DVal a ->
        (* DVal keeps NULLs inline, so padding needs no bitmap — but a
           computed one is harmless and keeps [col_value] uniform. *)
        DVal
          (Array.init len (fun i ->
               let p = idx.(i) in
               if p >= 0 then a.(p) else Value.Null))
  in
  { data; valid }

(** [transpose rows ~arity] — column-major view of boxed tuples:
    [(transpose rows ~arity).(j).(i)] is [rows.(i).(j)]. Values are
    shared, not copied. *)
let transpose (rows : Tuple.t array) ~arity : Value.t array array =
  let n = Array.length rows in
  Array.init arity (fun j ->
      Array.init n (fun i -> Tuple.get (Array.unsafe_get rows i) j))

(** [cross_block schema ~lefts ~right_cols ~card_b] — the cross product
    [lefts × rights] as a factored block: output row [k * card_b + i]
    is [lefts.(k)] concatenated with right row [i], stored as the two
    factors only — O(np + card_b) space, no per-pair work. Values are
    shared exactly as [Tuple.concat] would share them; consumers that
    need rows expand lazily. *)
let cross_block schema ~(lefts : Tuple.t array)
    ~(right_cols : Value.t array array) ~card_b : t =
  let arity = Schema.arity schema in
  let arity_l = arity - Array.length right_cols in
  CrossB
    {
      schema;
      lefts;
      right_cols;
      card_b;
      srcs = Array.init arity (fun j -> if j < arity_l then j else lnot (j - arity_l));
    }

(** [concat schema batches] — materialize a batch list as one [Cols]
    batch (the hash-join build side's unified layout). *)
let concat schema (batches : t list) : t =
  let rows =
    Array.concat (List.map (fun b -> rows_arr b) batches)
  in
  of_rows schema rows ~lo:0 ~len:(Array.length rows)
