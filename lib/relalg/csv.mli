(** Minimal CSV import/export for relations.

    The first line is the header; column types are inferred (int, then
    float, then bool, else string); empty cells are NULL. Quoting
    follows RFC 4180. *)

(** Structured load error: the source file (when loading from disk) and
    the 1-based line number of the offending record, when known. *)
exception
  Csv_error of { file : string option; line : int option; msg : string }

(** [error_to_string ~file ~line ~msg] renders ["file:line: msg"] from
    the known parts. *)
val error_to_string :
  file:string option -> line:int option -> msg:string -> string

(** [of_lines lines] parses a header line plus data rows; error line
    numbers count from 1 at the header. *)
val of_lines : ?file:string -> string list -> Relation.t

(** [load path] reads a relation from a CSV file. *)
val load : string -> Relation.t

(** [to_string rel] renders CSV text (NULL as empty cell). *)
val to_string : Relation.t -> string

(** [save path rel] writes a relation to a CSV file. *)
val save : string -> Relation.t -> unit
