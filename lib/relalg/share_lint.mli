(** Static sharing lint for the parallel engine: a declared inventory
    of every toplevel mutable the worker domains can reach, each with
    the synchronization discipline its accesses follow, plus a source
    scan that cross-checks the inventory against the code.

    The scan finds toplevel [ref]/[Hashtbl]/[Atomic]/[Mutex]/DLS/array
    declarations in the engine modules (comments and string literals
    stripped, submodules tracked); a mutable the inventory does not
    register is an error with a stable rule id, so adding shared state
    without deciding how it is synchronized fails CI rather than
    waiting for the race detector — or production — to notice. The
    inventory is also checked for self-consistency (a lock named by
    [LockProtected] must itself be a registered mutex; an [Atomic.t]
    cell must be [AtomicOnly]; lock objects are [Immutable]).

    Diagnostics reuse {!Lint.diagnostic}; {!diagnostics_json} renders
    them in the same machine-readable shape permcli's [--lint-json]
    emits. Rule ids: [share-undeclared-mutable], [share-stale-inventory],
    [share-kind-mismatch], [share-unknown-lock],
    [share-discipline-mismatch], [share-missing-source] — and
    {!diagnostic_of_race} reports dynamic findings as
    [race-unordered-access] through the same channel. *)

(** How accesses to one shared cell are ordered. *)
type discipline =
  | DomainLocal
      (** reached from one domain only (DLS-backed, or armed/read on
          the coordinator while workers are quiescent) *)
  | LockProtected of string
      (** every access holds the named mutex (["module.name"] of an
          [Immutable] inventory entry) *)
  | AtomicOnly  (** an [Atomic.t] cell; no compound read-modify-write *)
  | Immutable
      (** never mutated after creation — lock/condition objects, whose
          identity is the synchronization *)
  | InitOnce
      (** written during single-domain setup (CLI flags, test hooks),
          quiescent while queries execute *)

val discipline_to_string : discipline -> string

type entry = {
  e_module : string;  (** file base name, e.g. ["morsel"] *)
  e_name : string;  (** possibly dotted: ["Faults.state"] *)
  e_kind : string;
      (** declaration kind the scanner must agree on: ["ref"],
          ["hashtbl"], ["atomic"], ["mutex"], ["condition"], ["dls"],
          ["array"] or ["buffer"] *)
  e_discipline : discipline;
  e_note : string;  (** why the discipline is sufficient *)
}

(** The declared shared-state inventory, the single registry CI checks
    code against. *)
val inventory : entry list

val find : module_:string -> string -> entry option

(** {1 Scanning} *)

(** A toplevel mutable declaration found in source. *)
type decl = { d_name : string; d_line : int; d_kind : string }

(** [scan src] — the toplevel mutable declarations of one module's
    source text. *)
val scan : string -> decl list

(** Inventory self-consistency alone (no sources needed). *)
val check_inventory : unit -> Lint.diagnostic list

(** [check_module ~module_ src] — scanned declarations vs. the
    inventory entries of [module_]: undeclared mutables (error), kind
    mismatches (error), stale entries (warning). *)
val check_module : module_:string -> string -> Lint.diagnostic list

(** Module base names the inventory covers, ["share_lint"] included. *)
val modules : string list

(** [check_sources ~root] — {!check_inventory} plus {!check_module}
    over [root/<m>.ml] for every covered module; an unreadable source
    is itself an error. *)
val check_sources : root:string -> Lint.diagnostic list

(** First of [lib/relalg], [../lib/relalg], … that holds the sources —
    lets tests and CI invoke the lint from any build directory. *)
val default_root : unit -> string option

(** {1 Diagnostics plumbing} *)

(** A dynamic race report on the static channel
    (rule [race-unordered-access], severity error, path = location). *)
val diagnostic_of_race : Race.report -> Lint.diagnostic

(** One diagnostic as a JSON object
    [{"severity":…,"rule":…,"path":…,"message":…}] — the shape
    permcli's [--lint-json] emits. *)
val diagnostic_json : Lint.diagnostic -> string

(** [{"diagnostics":[…],"errors":n}] with [n] the error count. *)
val diagnostics_json : Lint.diagnostic list -> string
