(** Columnar batches for the vectorized engine ({!Vexec}): unboxed
    int/float columns in [Bigarray]s, string/bool columns in flat
    arrays, NULL validity bitmaps (one bit per row in a [Bytes.t], set
    = present), and an optional selection vector of surviving physical
    row indices. Operators without a columnar kernel exchange [Rows]
    batches (boxed tuples) under the same interface.

    Column layout is chosen per batch from the {e values} (a column
    whose non-null values are all [Int] becomes a [DInt] Bigarray,
    mixed columns fall back to boxed [DVal]), so a round trip through
    a batch reproduces the exact original values — the parity contract
    the engines are tested against. *)

type intarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floatarr =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type data =
  | DInt of intarr
  | DFloat of floatarr
  | DString of string array
  | DBool of Bytes.t  (** one byte per row, 0 = false *)
  | DVal of Value.t array  (** boxed fallback; NULLs inline *)

type column = {
  data : data;
  valid : Bytes.t option;
      (** validity bitmap, bit per row, set = non-NULL; [None] = no
          NULLs in the column *)
}

type t =
  | Cols of {
      n : int;  (** physical row count *)
      schema : Schema.t;
      cols : column array;
      sel : int array option;
          (** surviving physical row indices, ascending; [None] = all *)
    }
  | Rows of { schema : Schema.t; rows : Tuple.t array }
  | CrossB of {
      schema : Schema.t;
      lefts : Tuple.t array;  (** the [np] left tuples, in output order *)
      right_cols : Value.t array array;
          (** right side transposed: [right_cols.(j).(i)] is column [j]
              of right row [i]; every column has [card_b] entries *)
      card_b : int;
      srcs : int array;
          (** per output column: [s >= 0] reads left offset [s] of the
              block's left tuple, [s < 0] reads right column [lnot s] *)
    }
      (** A factored cross-product block: logical row [k * card_b + i]
          is [lefts.(k)] joined with right row [i] — only the two
          factors are stored, never the [np * card_b] rows. Attribute
          projections remap [srcs]; consumers that need rows expand
          lazily. *)

(** {1 Validity bitmaps} *)

val bits_make : int -> Bytes.t
(** All-clear bitmap for [n] rows. *)

val bit_set : Bytes.t -> int -> unit
val bit_get : Bytes.t -> int -> bool

val valid_at : column -> int -> bool
(** Is {e physical} row [i] non-NULL? *)

(** {1 Construction} *)

val of_rows : Schema.t -> Tuple.t array -> lo:int -> len:int -> t
(** Columnar batch from a row range; layout chosen per column from the
    values. *)

val rows_batch : Schema.t -> Tuple.t array -> t

val of_relation : ?batch_rows:int -> Relation.t -> t array
(** Split a relation into columnar batches of at most [batch_rows]
    rows (default 2048). *)

(** {1 Access} *)

val schema : t -> Schema.t

val length : t -> int
(** Logical row count (selection vector applied). *)

val col_value : column -> int -> Value.t
(** Value at {e physical} row [i]. *)

val tuple_at : t -> int -> Tuple.t
(** Boxed tuple at {e logical} row [i]. *)

val iter_tuples : t -> (Tuple.t -> unit) -> unit
val rows_arr : t -> Tuple.t array
val to_tuples : t -> Tuple.t list
val relation_of : Schema.t -> t list -> Relation.t

(** {1 Kernel helpers} *)

val select_cols : Schema.t -> t -> int array -> t
(** Attribute-only projection: keep the columns at the given offsets
    under a renamed schema. Shares column storage on [Cols]. *)

val with_sel : t -> int array option -> t
(** Replace a [Cols] batch's selection vector (physical indices). *)

val gather_col : column -> int array -> column
(** New column whose row [i] is physical row [idx.(i)]; index [-1]
    produces NULL (outer-join padding). *)

val concat : Schema.t -> t list -> t
(** Materialize a batch list as one [Cols] batch. *)

val transpose : Tuple.t array -> arity:int -> Value.t array array
(** Column-major view of boxed tuples: [(transpose rows ~arity).(j).(i)]
    is [rows.(i).(j)]. Values are shared, not copied. *)

val cross_block :
  Schema.t ->
  lefts:Tuple.t array ->
  right_cols:Value.t array array ->
  card_b:int ->
  t
(** The cross product [lefts × rights] as one boxed-column batch:
    output row [k * card_b + i] is [lefts.(k)] concatenated with right
    row [i]. Left values are repeated with [Array.fill], right columns
    tiled with [Array.blit] — no per-pair tuple is allocated; boxed
    values are shared exactly as [Tuple.concat] would share them. *)
