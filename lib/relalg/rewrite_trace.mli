(** Instrumentation channel between the rewrite passes ({!Simplify},
    {!Optimizer}) and the translation validator ({!Certify}).

    Each applied rule instance is announced as an {!entry}; with no
    tracer installed, emission is a single flag load. Also hosts the
    test-only rule-mutation hook used by the validator's mutation
    harness. *)

type entry = {
  e_rule : string;  (** rule identifier, e.g. ["pushdown-into-join"] *)
  e_path : string list;
      (** operator path of the rewritten node, root first — same syntax
          as {!Lint} diagnostics and {!Guard} trip reports *)
  e_before : Algebra.query;  (** the subplan before the rule fired *)
  e_after : Algebra.query;  (** the replacement subplan *)
}

(** The closed registry of rule identifiers the passes may emit, with
    one-line documentation. The names are stable machine-readable keys:
    certificates, traces, [permcli --lint-json] output and the mutation
    harness all reference them. *)
val rules : (string * string) list

(** [known_rule name]: membership in {!rules}. *)
val known_rule : string -> bool

(** Whether a tracer is installed. *)
val active : unit -> bool

(** [emit ~rule ~path ~before ~after] reports one rule application to
    the installed tracer, if any; no-op applications (before equals
    after) are filtered out. With a tracer installed, an unregistered
    rule name raises [Invalid_argument] — a typo'd name would otherwise
    silently dodge its certificate. *)
val emit :
  rule:string ->
  path:string list ->
  before:Algebra.query ->
  after:Algebra.query ->
  unit

(** [with_tracer f body] runs [body] with [f] installed as the tracer;
    the previous tracer is restored on exit (scopes nest). *)
val with_tracer : (entry -> unit) -> (unit -> 'a) -> 'a

(** {1 Test-only mutation hook} *)

(** The armed rule mutant, if any. Production code never sets this;
    [test/test_certify.ml] does. *)
val mutation : string option ref

(** [mutant name] is true when mutant [name] is armed — called by the
    rewrite rules at the points they deliberately break. *)
val mutant : string -> bool

(** [with_mutation name body] arms mutant [name] for the duration of
    [body] (exception-safe). *)
val with_mutation : string -> (unit -> 'a) -> 'a
