(** Vector-clock happens-before race detector. See race.mli.

    All detector state lives behind one mutex: accesses are coarse
    (operator/batch granularity, never per tuple) and only tests and
    fuzz campaigns arm the detector, so simplicity wins over a
    lock-free FastTrack. The lock is leaf-level — nothing else is
    acquired while holding it — so composing it with the engine's own
    mutexes ({!with_lock}) cannot deadlock. *)

type kind = Read | Write

type access = {
  a_loc : string;
  a_path : string;
  a_domain : int;
  a_kind : kind;
  a_clock : int;
}

type report = {
  r_loc : string;
  r_first : access;
  r_second : access;
  r_seed : int option;
}

let kind_to_string = function Read -> "read" | Write -> "write"

let access_to_string a =
  Printf.sprintf "%s by domain %d at clock %d%s" (kind_to_string a.a_kind)
    a.a_domain a.a_clock
    (if a.a_path = "" then "" else " (" ^ a.a_path ^ ")")

let report_to_string r =
  Printf.sprintf "data race on %s: %s vs %s%s" r.r_loc
    (access_to_string r.r_first)
    (access_to_string r.r_second)
    (match r.r_seed with
    | Some s -> Printf.sprintf " [schedule seed %d]" s
    | None -> "")

(* The disabled-path gate: one atomic load per entry point. An Atomic
   rather than a plain ref because worker domains read it while the
   coordinator arms/disarms. *)
let armed_flag = Atomic.make false
let is_armed () = Atomic.get armed_flag

(* ------------------------------------------------------------------ *)
(* Detector state (all under [lock])                                    *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()

(* Each domain gets a slot on first instrumented action; slots are
   stable for the domain's lifetime (kept in its DLS) and never reused,
   so clocks stay meaningful across [arm] calls. *)
let slot_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref (-1))
let next_slot = ref 0

(* clocks.(s) is slot [s]'s vector clock; rows and the outer array grow
   on demand. *)
let clocks : int array array ref = ref [||]

(* edge name -> published vector clock *)
let edges : (string, int array) Hashtbl.t = Hashtbl.create 64

type locstate = {
  mutable ls_write : access option;  (* last write *)
  mutable ls_reads : access list;  (* reads since, latest per domain *)
}

let locs : (string, locstate) Hashtbl.t = Hashtbl.create 64
let reports_acc : report list ref = ref []
let reported : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16
let seed_ref : int option ref = ref None
let report_cap = 128

(* ---- vector-clock plumbing (callers hold [lock]) ------------------- *)

let grow_outer n =
  if Array.length !clocks < n then begin
    let b = Array.make (max n ((2 * Array.length !clocks) + 4)) [||] in
    Array.blit !clocks 0 b 0 (Array.length !clocks);
    clocks := b
  end

let vc_of_slot s =
  grow_outer (s + 1);
  let vc = !clocks.(s) in
  if Array.length vc > s then vc
  else begin
    let b = Array.make (max (s + 1) ((2 * Array.length vc) + 4)) 0 in
    Array.blit vc 0 b 0 (Array.length vc);
    !clocks.(s) <- b;
    b
  end

let vc_get vc i = if i < Array.length vc then vc.(i) else 0

(* join [src] into slot [s]'s clock *)
let vc_join_into s (src : int array) =
  let n = Array.length src in
  grow_outer (max (s + 1) n);
  (if Array.length !clocks.(s) < n then begin
     let b = Array.make n 0 in
     Array.blit !clocks.(s) 0 b 0 (Array.length !clocks.(s));
     !clocks.(s) <- b
   end);
  let dst = !clocks.(s) in
  for i = 0 to n - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let my_slot () =
  let r = Domain.DLS.get slot_key in
  if !r >= 0 then !r
  else begin
    let s = !next_slot in
    incr next_slot;
    (* the slot's own component starts at 1, not 0: peers' clocks are
       zero-initialized, so a first-epoch access recorded at clock 0
       would satisfy [vc_get peer s >= 0] and look ordered to every
       domain — exactly the never-synchronized case that must race *)
    (vc_of_slot s).(s) <- 1;
    r := s;
    s
  end

(* ------------------------------------------------------------------ *)
(* Edges                                                                *)
(* ------------------------------------------------------------------ *)

let release_slow edge =
  Mutex.protect lock (fun () ->
      let s = my_slot () in
      let vc = vc_of_slot s in
      let old = Hashtbl.find_opt edges edge in
      let n =
        max (Array.length vc)
          (match old with Some o -> Array.length o | None -> 0)
      in
      let pub =
        Array.init n (fun i ->
            max (vc_get vc i)
              (match old with Some o -> vc_get o i | None -> 0))
      in
      Hashtbl.replace edges edge pub;
      (* new epoch: accesses after the release are not covered by it *)
      vc.(s) <- vc.(s) + 1)

let acquire_slow edge =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt edges edge with
      | None -> ()
      | Some evc -> vc_join_into (my_slot ()) evc)

let release edge = if Atomic.get armed_flag then release_slow edge
let acquire edge = if Atomic.get armed_flag then acquire_slow edge

(* ------------------------------------------------------------------ *)
(* Accesses                                                             *)
(* ------------------------------------------------------------------ *)

let record_race loc (first : access) (second : access) =
  let k = (loc, first.a_domain, second.a_domain) in
  if
    (not (Hashtbl.mem reported k))
    && List.length !reports_acc < report_cap
  then begin
    Hashtbl.replace reported k ();
    reports_acc :=
      { r_loc = loc; r_first = first; r_second = second; r_seed = !seed_ref }
      :: !reports_acc
  end

let access_slow k loc path =
  Mutex.protect lock (fun () ->
      let s = my_slot () in
      let vc = vc_of_slot s in
      let me =
        { a_loc = loc; a_path = path; a_domain = s; a_kind = k; a_clock = vc.(s) }
      in
      let ls =
        match Hashtbl.find_opt locs loc with
        | Some ls -> ls
        | None ->
            let ls = { ls_write = None; ls_reads = [] } in
            Hashtbl.add locs loc ls;
            ls
      in
      (* [prev] happens-before [me] iff me's clock has seen prev's
         epoch: the release following prev published prev's clock value
         (the domain clock only advances at releases), so an acquirer
         holds [vc.(prev.a_domain) >= prev.a_clock]. Same-domain
         accesses are always ordered. *)
      let ordered (prev : access) =
        prev.a_domain = s || vc_get vc prev.a_domain >= prev.a_clock
      in
      (match ls.ls_write with
      | Some w when not (ordered w) -> record_race loc w me
      | _ -> ());
      (match k with
      | Write ->
          List.iter
            (fun (r : access) -> if not (ordered r) then record_race loc r me)
            ls.ls_reads;
          ls.ls_write <- Some me;
          ls.ls_reads <- []
      | Read ->
          ls.ls_reads <-
            me :: List.filter (fun (r : access) -> r.a_domain <> s) ls.ls_reads))

let read loc = if Atomic.get armed_flag then access_slow Read loc ""
let write loc = if Atomic.get armed_flag then access_slow Write loc ""
let read_at loc ~path = if Atomic.get armed_flag then access_slow Read loc path

let write_at loc ~path =
  if Atomic.get armed_flag then access_slow Write loc path

(* ------------------------------------------------------------------ *)
(* Locks as edges                                                       *)
(* ------------------------------------------------------------------ *)

let with_lock m edge f =
  if not (Atomic.get armed_flag) then Mutex.protect m f
  else begin
    Mutex.lock m;
    acquire_slow edge;
    Fun.protect
      ~finally:(fun () ->
        release_slow edge;
        Mutex.unlock m)
      f
  end

(* ------------------------------------------------------------------ *)
(* Arming                                                               *)
(* ------------------------------------------------------------------ *)

let arm ?seed () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset edges;
      Hashtbl.reset locs;
      Hashtbl.reset reported;
      reports_acc := [];
      seed_ref := seed);
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false
let reports () = Mutex.protect lock (fun () -> List.rev !reports_acc)
