(** Tuples are immutable-by-convention arrays of values.

    Tuple identity (used for grouping, duplicate elimination and bag
    counting) treats [Null] as equal to [Null] and numerically equal
    ints/floats as equal — SQL's DISTINCT/GROUP BY notion. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get (t : t) i = t.(i)

let concat (a : t) (b : t) : t = Array.append a b

(** [project_arr t positions] keeps the values at [positions], in
    order. The positions array is typically precomputed once per
    operator, so the per-row cost is a single bounds-checked gather
    loop with no intermediate list. *)
let project_arr (t : t) (positions : int array) : t =
  let n = Array.length positions in
  let out = Array.make n Value.Null in
  for j = 0 to n - 1 do
    Array.unsafe_set out j (Array.unsafe_get t (Array.unsafe_get positions j))
  done;
  out

(** [project t positions] keeps the values at [positions], in order.
    Hot paths precompute an [int array] and call {!project_arr}. *)
let project (t : t) positions : t = project_arr t (Array.of_list positions)

(** All-NULL tuple of arity [n] — the [null(R)] padding tuple from the
    Gen strategy (Section 3.3). *)
let nulls n : t = Array.make n Value.Null

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i va -> if not (Value.equal_null va b.(i)) then ok := false) a;
       !ok
     end

let compare (a : t) (b : t) =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare_total a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t

(** Hashtbl key module over tuple identity. *)
module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
