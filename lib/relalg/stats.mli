(** Table and column statistics for cardinality estimation
    ({!Estimate}): row counts, estimated distinct-value counts,
    null fractions, numeric min/max and equi-depth histograms,
    collected in one deterministic sampling pass per table and cached
    per catalog state ([(Database.uid, Database.version)]) — a mutated
    or rebuilt catalog never serves stale statistics. *)

(** Histogram resolution and sampling ceiling. *)
val buckets : int

val sample_cap : int

type column = {
  c_name : string;
  c_null_frac : float;  (** fraction of sampled values that were NULL *)
  c_ndv : float;  (** estimated distinct values, scaled to the table *)
  c_min : float option;  (** numeric minimum over sampled non-nulls *)
  c_max : float option;
  c_hist : float array;
      (** equi-depth bucket boundaries over sampled numeric non-nulls,
          length [buckets + 1]; [||] for non-numeric or empty columns *)
}

type table = { t_rows : int; t_cols : column list }
type t

(** [of_relation rel]: uncached one-pass collection (inline
    [TableExpr] relations). *)
val of_relation : Relation.t -> table

(** [collect db]: uncached collection over every table of [db]. *)
val collect : Database.t -> t

(** [of_db db]: cached collection — revalidated against
    [Database.version db] on every call. *)
val of_db : Database.t -> t

(** Drop [db]'s cache entry (freeing memory; correctness never needs
    it — version revalidation already rejects stale entries). *)
val invalidate : Database.t -> unit

val table : t -> string -> table option
val column : table -> string -> column option

(** [frac_le c x]: fraction of the column's non-null values [<= x],
    interpolated within the histogram bucket holding [x]. *)
val frac_le : column -> float -> float

(** [frac_eq c x]: selectivity of [col = x] among non-null values. *)
val frac_eq : column -> float -> float

val to_string : t -> string
