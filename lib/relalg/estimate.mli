(** Cardinality and cost estimation: a {!Dataflow} domain interpreting
    plans over {!Stats} statistics.

    Selectivity routes predicates through the {!Symbolic} solver first
    (proved-unsat ⇒ 0 rows, proved-taut ⇒ input rows) and falls back
    to histogram lookups, NDV containment for joins, null fractions
    and fixed guesses. Sublink evaluation is charged per distinct
    binding of the sublink's free attributes, mirroring the
    evaluator's memoization. Total on every plan: broken plans get
    defaults, never exceptions. *)

type colinfo = {
  ci_ndv : float;  (** estimated distinct values of this attribute *)
  ci_null : float;  (** estimated null fraction *)
  ci_stats : Stats.column option;
      (** histogram-bearing base statistics, where still traceable *)
}

type fact = {
  e_names : string list;
  e_cols : colinfo list;
  e_rows : float;  (** estimated output rows *)
  e_cost : float;  (** cumulative tuples-touched cost of the subtree *)
}

(** {1 Analysis handle} — memoized per physical subplan, like every
    {!Dataflow} engine. *)

type t

val create : Database.t -> t

(** [query t ?env q]: the estimate fact of [q]; [env] supplies facts
    of enclosing correlation scopes, innermost first. *)
val query : t -> ?env:fact list -> Algebra.query -> fact

(** Root-level conveniences. *)
val rows : t -> Algebra.query -> float

val cost : t -> Algebra.query -> float

(** {1 Per-operator annotation} — [\explain] and the estimate lint
    rules. *)

type annot = {
  a_path : string list;  (** Lint-style operator path, root first *)
  a_query : Algebra.query;  (** the operator this annotation describes *)
  a_rows : float;
  a_cost : float;  (** cumulative cost of the subtree *)
}

(** [annotate t q]: every operator of [q] (sublink queries included),
    root first, on the same operator paths as {!Lint} diagnostics. *)
val annotate : t -> Algebra.query -> annot list

(** Rendered annotation table. *)
val report : t -> Algebra.query -> string

(** {1 Feedback} — observed outcomes keyed by plan fingerprint; the
    Advisor's estimate-correction table (re-ranking only, no mid-query
    re-optimization). *)

(** Stable plan identity across re-parses (sublink ids not included). *)
val fingerprint : Algebra.query -> string

type feedback = {
  fb_est_rows : float;  (** what the estimator predicted *)
  fb_obs_rows : float;  (** rows observed (at trip time if tripped) *)
  fb_tripped : bool;  (** the Guard budget tripped on this plan *)
}

val note_feedback :
  fingerprint:string -> est_rows:float -> obs_rows:float -> tripped:bool -> unit

val feedback : fingerprint:string -> feedback option
val reset_feedback : unit -> unit

(** [corrected_cost ~fingerprint cost]: [cost] adjusted by recorded
    feedback — tripped plans are pushed to the back of any ranking,
    completed plans scale by the observed/estimated row ratio (clamped
    to [0.1 .. 100]). *)
val corrected_cost : fingerprint:string -> float -> float
