(** Static plan diagnostics — see lint.mli for the architecture.

    Design notes:
    - The walker mirrors [Typecheck.infer_query_env]'s scoping exactly:
      an operator's expressions resolve against the concatenation of its
      input schemas, then the scopes of enclosing sublinks, innermost
      first. A sublink query is walked with the environment of the
      expression it is embedded in as its outer scope stack.
    - Schema inference is tolerant: where it fails (the very defects the
      linter exists to catch), the affected environments are [None] and
      name/type rules skip those sites; the defect itself is reported at
      the deepest site where inference still succeeds.
    - All rules run in one pass and tag their diagnostics with a
      registry name; [lint ?rules] filters afterwards, which keeps rule
      selection trivial without threading state through the walk. *)

open Algebra

type severity = Info | Warning | Error

type diagnostic = {
  severity : severity;
  rule : string;
  path : string list;
  message : string;
}

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let path_to_string = function
  | [] -> "plan"
  | path -> String.concat "/" path

let diagnostic_to_string d =
  Printf.sprintf "%s[%s] at %s: %s"
    (severity_to_string d.severity)
    d.rule (path_to_string d.path) d.message

let diag severity ~rule ~path message = { severity; rule; path; message }

(* ------------------------------------------------------------------ *)
(* Sites                                                                *)
(* ------------------------------------------------------------------ *)

type site = {
  s_path : string list;
  s_outer : Schema.t list option;
  s_inputs : Schema.t list option;
  s_env : Typecheck.env option;
  s_query : query;
  s_exprs : (string * expr) list;
}

let op_label = function
  | Base name -> "Base(" ^ name ^ ")"
  | TableExpr _ -> "Table"
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Cross _ -> "Cross"
  | Join _ -> "Join"
  | LeftJoin _ -> "LeftJoin"
  | Agg _ -> "Agg"
  | Union _ -> "Union"
  | Inter _ -> "Inter"
  | Diff _ -> "Diff"
  | Order _ -> "Order"
  | Limit _ -> "Limit"

(* Tolerant schema inference: [None] where the plan is too broken to
   type — the rules report the root cause at a deeper site. *)
let schema_of db (outer : Typecheck.env) q =
  match Typecheck.infer_query_env db outer q with
  | s -> Some s
  | exception
      ( Typecheck.Type_error _ | Schema.Schema_error _
      | Database.Unknown_relation _ | Builtin.Unknown_function _
      | Invalid_argument _ ) ->
      None

let labelled_exprs = function
  | Select (c, _) -> [ ("the selection condition", c) ]
  | Join (c, _, _) -> [ ("the join condition", c) ]
  | LeftJoin (c, _, _) -> [ ("the outer-join condition", c) ]
  | Project { cols; _ } ->
      List.map (fun (e, n) -> ("column " ^ n, e)) cols
  | Agg { group_by; aggs; _ } ->
      List.map (fun (e, n) -> ("group-by column " ^ n, e)) group_by
      @ List.filter_map
          (fun c ->
            Option.map (fun e -> ("the argument of " ^ c.agg_name, e)) c.agg_arg)
          aggs
  | Order (keys, _) ->
      List.mapi (fun i (e, _) -> (Printf.sprintf "order key %d" (i + 1), e)) keys
  | Base _ | TableExpr _ | Cross _ | Union _ | Inter _ | Diff _ | Limit _ -> []

let rec collect db (outer : Typecheck.env option) prefix q : site list =
  let here = prefix @ [ op_label q ] in
  let inputs =
    match q with
    | Base _ | TableExpr _ -> []
    | Select (_, i) | Order (_, i) | Limit (_, i) -> [ i ]
    | Project { proj_input; _ } -> [ proj_input ]
    | Agg { agg_input; _ } -> [ agg_input ]
    | Cross (a, b)
    | Join (_, a, b)
    | LeftJoin (_, a, b)
    | Union (_, a, b)
    | Inter (_, a, b)
    | Diff (_, a, b) ->
        [ a; b ]
  in
  let s_inputs =
    (* input schemas are inferable even under an unknown outer scope as
       long as the inputs are self-contained *)
    let base = Option.value ~default:[] outer in
    let schemas = List.map (schema_of db base) inputs in
    if List.for_all Option.is_some schemas then
      Some (List.map Option.get schemas)
    else None
  in
  let s_env =
    match (outer, s_inputs) with
    | Some out, Some schemas -> (
        match Schema.of_list (List.concat_map Schema.to_list schemas) with
        | s -> Some (s :: out)
        | exception Schema.Schema_error _ -> None)
    | _ -> None
  in
  let s_exprs = labelled_exprs q in
  let site = { s_path = here; s_outer = outer; s_inputs; s_env; s_query = q; s_exprs } in
  let child_prefix qualifier = prefix @ [ op_label q ^ qualifier ] in
  let children =
    match inputs with
    | [] -> []
    | [ i ] -> collect db outer (child_prefix "") i
    | [ a; b ] ->
        collect db outer (child_prefix "[left]") a
        @ collect db outer (child_prefix "[right]") b
    | _ -> assert false
  in
  let sublink_sites =
    let subs = List.concat_map (fun (_, e) -> sublinks_of_expr e) s_exprs in
    List.concat
      (List.mapi
         (fun i s ->
           collect db s_env
             (here @ [ Printf.sprintf "sublink[%d]" (i + 1) ])
             s.query)
         subs)
  in
  (site :: children) @ sublink_sites

let sites db q = collect db (Some []) [] q

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* [fold_expr] stays out of sublink queries (they get their own sites)
   but does visit ANY/ALL left-hand sides, which live in this scope. *)
let subexprs e = List.rev (fold_expr (fun acc x -> x :: acc) [] e)

let is_condition_label label =
  label = "the selection condition"
  || label = "the join condition"
  || label = "the outer-join condition"

let const_zero = function
  | Const (Value.Int 0) -> true
  | Const (Value.Float f) -> f = 0.0
  | _ -> false

let is_null_literal = function
  | Const Value.Null | TypedNull _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rules                                                                *)
(* ------------------------------------------------------------------ *)

let rules =
  [
    ( "unknown-relation",
      "a Base operator names a relation absent from the catalog" );
    ( "unresolved-attribute",
      "an attribute reference resolves against no scope, with did-you-mean \
       candidates" );
    ( "shadowed-attribute",
      "an attribute of a sublink scope hides a same-named attribute of an \
       enclosing scope" );
    ( "incomparable-types",
      "a comparison or IN list mixes types that can never be compared" );
    ("type-error", "an expression fails static typing (catch-all)");
    ("unknown-function", "a call to a function the engine does not provide");
    ( "null-comparison",
      "a three-valued comparison with a literal NULL — always UNKNOWN; use IS \
       NULL or =n" );
    ( "constant-condition",
      "a selection or join condition that is statically always FALSE or \
       always NULL" );
    ( "contradictory-condition",
      "a selection or join condition the 3VL solver proves can never be \
       TRUE — the operator keeps no rows" );
    ( "tautological-condition",
      "a selection or join condition the 3VL solver proves TRUE on every \
       row — the filter is redundant" );
    ( "condition-always-null",
      "a selection or join condition the 3VL solver proves evaluates to \
       NULL on every row — it silently selects nothing" );
    ("div-by-zero", "division or modulo by a constant zero");
    ( "suspicious-like",
      "a LIKE pattern with no wildcard, a redundant '%%', or a backslash \
       (LIKE has no escape sequences)" );
    ( "duplicate-output",
      "duplicate output attribute names in a projection, aggregation, or \
       across join sides" );
    ("set-op-schema", "set-operation arms with incompatible schemas");
    ( "aggregate-misuse",
      "an aggregate call outside an aggregation operator, in a group-by \
       expression, or nested in an aggregate argument" );
    ( "rewrite-unsupported",
      "a construct the provenance rewriter cannot handle: LIMIT, or sublinks \
       in ORDER BY / outer-join conditions / GROUP BY / aggregate arguments" );
    ( "sublink-null-trap",
      "NOT IN / <> ALL where the left-hand side or the sublink column may be \
       NULL — a single NULL makes the membership test UNKNOWN and silently \
       rejects every row" );
    ( "scalar-cardinality",
      "a scalar sublink whose query may return more than one row — evaluation \
       raises as soon as it does" );
    ( "estimate-cross-blowup",
      "a cross product or non-equi join whose estimated candidate pairs — or \
       estimated enumeration work including per-pair sublink evaluation — \
       exceed the blowup threshold; a Guard pair budget would trip at run \
       time" );
    ( "estimate-empty-result",
      "the estimator predicts zero result rows over nonempty inputs — a \
       predicate is unsatisfiable or outside the data's value range" );
    ( "estimate-scalar-sublink-fanout",
      "a scalar sublink the estimator expects to return more than one row — \
       evaluation raises as soon as it does" );
  ]

(* The semantic sublink rules target source queries: a rewritten plan
   contains sublinks the rewriter placed deliberately (and, under Gen,
   CrossBase columns that are maybe-NULL by construction), so re-warning
   about them there is noise — same reasoning as rewrite-unsupported.
   Tautological conditions are likewise deliberate in rewritten plans
   (Gen builds [(x =n v) OR NOT (x =n v)]-shaped guards). *)
let plan_rules =
  List.filter
    (fun n ->
      n <> "rewrite-unsupported" && n <> "shadowed-attribute"
      && n <> "sublink-null-trap" && n <> "scalar-cardinality"
      && n <> "tautological-condition"
      && n <> "estimate-scalar-sublink-fanout")
    (List.map fst rules)

(* --- name resolution -------------------------------------------------- *)

let check_names db (s : site) : diagnostic list =
  ignore db;
  match s.s_env with
  | None -> []
  | Some env ->
      let scope_names = List.concat_map Schema.names env in
      let check_attr label acc name =
        let rec depth i = function
          | [] -> None
          | schema :: rest ->
              if Schema.mem schema name then Some i else depth (i + 1) rest
        in
        match depth 0 env with
        | None ->
            let hint =
              match Typecheck.did_you_mean name scope_names with
              | [] -> ""
              | cands ->
                  Printf.sprintf "; did you mean %s?"
                    (String.concat " or "
                       (List.map (Printf.sprintf "%S") cands))
            in
            diag Error ~rule:"unresolved-attribute" ~path:s.s_path
              (Printf.sprintf "unresolved attribute %S in %s%s" name label hint)
            :: acc
        | Some d ->
            if
              d = 0 && List.length env > 1
              && List.exists (fun sc -> Schema.mem sc name) (List.tl env)
            then
              diag Info ~rule:"shadowed-attribute" ~path:s.s_path
                (Printf.sprintf
                   "%S in %s resolves locally but also names an attribute of \
                    an enclosing scope (shadowed correlation)"
                   name label)
              :: acc
            else acc
      in
      List.concat_map
        (fun (label, e) ->
          List.rev
            (fold_expr
               (fun acc x ->
                 match x with
                 | Attr name -> check_attr label acc name
                 | _ -> acc)
               [] e))
        s.s_exprs

(* --- types and 3VL ---------------------------------------------------- *)

let check_types db (s : site) : diagnostic list =
  match s.s_env with
  | None -> []
  | Some env ->
      let infer e =
        match Typecheck.infer_expr db env e with
        | t -> Ok t
        | exception Typecheck.Type_error m -> Error ("type-error", m)
        | exception Builtin.Unknown_function f ->
            Error ("unknown-function", Printf.sprintf "unknown function %S" f)
        | exception Schema.Schema_error m -> Error ("type-error", m)
        | exception Database.Unknown_relation r ->
            Error ("type-error", Printf.sprintf "unknown relation %S" r)
      in
      let check_one (label, e) =
        (* specific sub-expression rules first; the catch-all only fires
           when no specific rule explained the failure *)
        let specifics =
          List.concat_map
            (fun x ->
              match x with
              | Cmp (op, a, b) when op <> EqNull
                                    && (is_null_literal a || is_null_literal b)
                ->
                  [
                    diag Warning ~rule:"null-comparison" ~path:s.s_path
                      (Printf.sprintf
                         "comparison with a literal NULL in %s is always \
                          UNKNOWN; use IS NULL (or the null-aware =n)"
                         label);
                  ]
              | Cmp (_, a, b) -> (
                  match (infer a, infer b) with
                  | Ok (Some ta), Ok (Some tb) when not (Vtype.compatible ta tb)
                    ->
                      [
                        diag Error ~rule:"incomparable-types" ~path:s.s_path
                          (Printf.sprintf
                             "comparison between incomparable types %s and %s \
                              in %s"
                             (Vtype.to_string ta) (Vtype.to_string tb) label);
                      ]
                  | _ -> [])
              | InList (a, es) -> (
                  match infer a with
                  | Ok (Some ta) ->
                      List.filter_map
                        (fun el ->
                          match infer el with
                          | Ok (Some te) when not (Vtype.compatible ta te) ->
                              Some
                                (diag Error ~rule:"incomparable-types"
                                   ~path:s.s_path
                                   (Printf.sprintf
                                      "IN-list element of type %s is \
                                       incomparable with the %s left-hand \
                                       side in %s"
                                      (Vtype.to_string te) (Vtype.to_string ta)
                                      label))
                          | _ -> None)
                        es
                  | _ -> [])
              | Binop (((Div | Mod) as op), _, rhs)
                when const_zero (Simplify.expr rhs) ->
                  [
                    diag Warning ~rule:"div-by-zero" ~path:s.s_path
                      (Printf.sprintf
                         "%s by constant zero in %s raises at runtime for \
                          every row that reaches it"
                         (match op with Div -> "division" | _ -> "modulo")
                         label);
                  ]
              | Like (_, pattern) ->
                  let has_wildcard =
                    String.exists (fun c -> c = '%' || c = '_') pattern
                  in
                  let has_backslash = String.contains pattern '\\' in
                  let doubled =
                    let n = String.length pattern in
                    let rec go i =
                      i + 1 < n && ((pattern.[i] = '%' && pattern.[i + 1] = '%') || go (i + 1))
                    in
                    go 0
                  in
                  (if has_backslash then
                     [
                       diag Warning ~rule:"suspicious-like" ~path:s.s_path
                         (Printf.sprintf
                            "LIKE pattern %S contains a backslash, but LIKE \
                             has no escape sequences — it matches literally"
                            pattern);
                     ]
                   else [])
                  @ (if not has_wildcard then
                       [
                         diag Info ~rule:"suspicious-like" ~path:s.s_path
                           (Printf.sprintf
                              "LIKE pattern %S has no wildcard — equivalent \
                               to plain equality"
                              pattern);
                       ]
                     else [])
                  @
                  if doubled then
                    [
                      diag Info ~rule:"suspicious-like" ~path:s.s_path
                        (Printf.sprintf "LIKE pattern %S has a redundant '%%%%'"
                           pattern);
                    ]
                  else []
              | _ -> [])
            (subexprs e)
        in
        let condition =
          if is_condition_label label && not (has_sublink e) then
            match Simplify.expr e with
            | Const (Value.Bool false) ->
                [
                  diag Warning ~rule:"constant-condition" ~path:s.s_path
                    (Printf.sprintf "%s is statically always FALSE" label);
                ]
            | Const Value.Null | TypedNull _ ->
                [
                  diag Warning ~rule:"constant-condition" ~path:s.s_path
                    (Printf.sprintf
                       "%s is statically always NULL (selects no rows)" label);
                ]
            | Const _ -> []
            | folded ->
                (* Beyond constant folding: ask the 3VL solver. The
                   scope stack supplies column types (innermost wins),
                   enabling integer bound tightening. Only [Proved] /
                   theorem-direction verdicts report; [Unknown] stays
                   silent (see DESIGN.md §12 on the asymmetry). *)
                let types n =
                  List.find_map
                    (fun sc ->
                      if Schema.mem sc n then Some (Schema.type_of_exn sc n)
                      else None)
                    env
                in
                let sctx = Symbolic.ctx ~types () in
                let consequence =
                  if label = "the outer-join condition" then
                    "every left row is null-extended"
                  else "the operator keeps no rows"
                in
                if Symbolic.satisfiable sctx folded = Symbolic.Refuted then
                  if Symbolic.falsifiable sctx folded = Symbolic.Refuted then
                    [
                      diag Warning ~rule:"condition-always-null" ~path:s.s_path
                        (Printf.sprintf
                           "%s evaluates to NULL on every row — %s" label
                           consequence);
                    ]
                  else
                    [
                      diag Warning ~rule:"contradictory-condition"
                        ~path:s.s_path
                        (Printf.sprintf
                           "%s can never be TRUE (proved contradictory) — %s"
                           label consequence);
                    ]
                else if Symbolic.always_true sctx folded = Symbolic.Proved then
                  [
                    diag Info ~rule:"tautological-condition" ~path:s.s_path
                      (Printf.sprintf
                         "%s is TRUE on every row — the filter is redundant"
                         label);
                  ]
                else []
          else []
        in
        let catch_all =
          if List.exists (fun d -> d.severity = Error) specifics then []
          else
            match infer e with
            | Ok _ -> []
            | Error (_, m)
              when String.length m >= 17
                   && String.sub m 0 17 = "unknown attribute" ->
                [] (* reported with candidates by check_names *)
            | Error (rule, m) ->
                [
                  diag Error ~rule ~path:s.s_path
                    (Printf.sprintf "%s (in %s)" m label);
                ]
        in
        specifics @ condition @ catch_all
      in
      List.concat_map check_one s.s_exprs

(* --- structure -------------------------------------------------------- *)

let duplicates names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.add seen n ();
        false
      end)
    names
  |> List.sort_uniq compare

let check_structure db (s : site) : diagnostic list =
  match s.s_query with
  | Base name when not (Database.mem db name) ->
      let hint =
        if Database.mem_view db name then
          " (it is a view — views are inlined by the analyzer, not evaluable \
           as Base)"
        else
          match Typecheck.did_you_mean name (Database.names db) with
          | [] -> ""
          | cands ->
              Printf.sprintf "; did you mean %s?"
                (String.concat " or " (List.map (Printf.sprintf "%S") cands))
      in
      [
        diag Error ~rule:"unknown-relation" ~path:s.s_path
          (Printf.sprintf "unknown base relation %S%s" name hint);
      ]
  | Project { cols; _ } -> (
      match duplicates (List.map snd cols) with
      | [] -> []
      | dups ->
          [
            diag Error ~rule:"duplicate-output" ~path:s.s_path
              (Printf.sprintf "duplicate output attribute name%s %s"
                 (if List.length dups > 1 then "s" else "")
                 (String.concat ", " (List.map (Printf.sprintf "%S") dups)));
          ])
  | Agg { group_by; aggs; _ } -> (
      match
        duplicates (List.map snd group_by @ List.map (fun c -> c.agg_name) aggs)
      with
      | [] -> []
      | dups ->
          [
            diag Error ~rule:"duplicate-output" ~path:s.s_path
              (Printf.sprintf "duplicate aggregation output name%s %s"
                 (if List.length dups > 1 then "s" else "")
                 (String.concat ", " (List.map (Printf.sprintf "%S") dups)));
          ])
  | Cross _ | Join _ | LeftJoin _ -> (
      match s.s_inputs with
      | Some [ sa; sb ] -> (
          let clash =
            List.filter (fun n -> Schema.mem sb n) (Schema.names sa)
          in
          match clash with
          | [] -> []
          | dups ->
              [
                diag Error ~rule:"duplicate-output" ~path:s.s_path
                  (Printf.sprintf
                     "join sides both produce attribute%s %s — the combined \
                      schema is ambiguous"
                     (if List.length dups > 1 then "s" else "")
                     (String.concat ", " (List.map (Printf.sprintf "%S") dups)));
              ])
      | _ -> [])
  | Union (_, _, _) | Inter (_, _, _) | Diff (_, _, _) -> (
      match s.s_inputs with
      | Some [ sa; sb ] when not (Schema.equal_types sa sb) ->
          [
            diag Error ~rule:"set-op-schema" ~path:s.s_path
              (Printf.sprintf
                 "set operation over incompatible schemas %s vs %s"
                 (Schema.to_string sa) (Schema.to_string sb));
          ]
      | _ -> [])
  | _ -> []

(* --- aggregates ------------------------------------------------------- *)

let aggregate_calls e =
  List.filter_map
    (function
      | FunCall (name, args) when Builtin.is_aggregate name -> Some (name, args)
      | _ -> None)
    (subexprs e)

let check_aggregates db (s : site) : diagnostic list =
  ignore db;
  let misuse context e =
    List.map
      (fun (name, _) ->
        diag Error ~rule:"aggregate-misuse" ~path:s.s_path
          (Printf.sprintf "aggregate function %s is not allowed in %s" name
             context))
      (aggregate_calls e)
  in
  match s.s_query with
  | Select (c, _) -> misuse "a selection condition" c
  | Join (c, _, _) | LeftJoin (c, _, _) -> misuse "a join condition" c
  | Project { cols; _ } ->
      List.concat_map
        (fun (e, n) -> misuse (Printf.sprintf "projection column %s" n) e)
        cols
  | Order (keys, _) ->
      List.concat_map (fun (e, _) -> misuse "an ORDER BY key" e) keys
  | Agg { group_by; aggs; _ } ->
      List.concat_map
        (fun (e, n) ->
          misuse (Printf.sprintf "group-by expression %s" n) e)
        group_by
      @ List.concat_map
          (fun c ->
            match c.agg_arg with
            | None -> []
            | Some arg ->
                List.concat_map
                  (fun (name, _) ->
                    [
                      diag Error ~rule:"aggregate-misuse" ~path:s.s_path
                        (Printf.sprintf
                           "aggregate %s nested inside the argument of \
                            aggregate %s"
                           name c.agg_name);
                    ])
                  (List.concat_map
                     (fun e -> aggregate_calls e)
                     [ arg ]))
          aggs
  | _ -> []

(* --- provenance-rewrite support --------------------------------------- *)

let check_rewrite_support db (s : site) : diagnostic list =
  ignore db;
  let sublinked label e =
    if has_sublink e then
      [
        diag Warning ~rule:"rewrite-unsupported" ~path:s.s_path
          (Printf.sprintf
             "sublinks in %s have no provenance rewrite — every strategy \
              rejects this plan"
             label);
      ]
    else []
  in
  match s.s_query with
  | Limit _ ->
      [
        diag Warning ~rule:"rewrite-unsupported" ~path:s.s_path
          "LIMIT has no provenance rewrite — every strategy rejects this plan";
      ]
  | Order (keys, _) ->
      List.concat_map (fun (e, _) -> sublinked "ORDER BY keys" e) keys
  | LeftJoin (c, _, _) -> sublinked "outer-join conditions" c
  | Agg { group_by; aggs; _ } ->
      List.concat_map (fun (e, _) -> sublinked "GROUP BY expressions" e) group_by
      @ List.concat_map
          (fun call ->
            match call.agg_arg with
            | Some e -> sublinked "aggregate arguments" e
            | None -> [])
          aggs
  | _ -> []

(* --- dataflow-backed semantic rules ------------------------------------ *)

(* These rules need facts that flow across operators (nullability of a
   sublink's column under its correlation scope, cardinality of a
   sublink query), so they run as one dedicated walk sharing a single
   {!Dataflow} handle instead of as per-site checks. The walk mirrors
   [collect]'s path construction exactly, so diagnostics land on the
   same operator paths as every other rule. *)

let may_exceed_one = function
  | Dataflow.Fin n -> n > 1
  | Dataflow.Inf -> true

let check_semantics db q : diagnostic list =
  let dfa = Dataflow.create db in
  let acc = ref [] in
  let rec walk prefix ~env q =
    let here = prefix @ [ op_label q ] in
    let inputs = Dataflow.inputs q in
    let input_fact =
      List.fold_left
        (fun f i -> Dataflow.concat_null f (Dataflow.nullability dfa ~env i))
        { Dataflow.n_names = []; n_maybe = [] }
        inputs
    in
    let env' = input_fact :: env in
    let sub_column_nullable s =
      List.exists Fun.id (Dataflow.nullability dfa ~env:env' s.query).Dataflow.n_maybe
    in
    let null_trap form s lhs =
      let lhs_null = Dataflow.expr_nullable dfa ~env:env' lhs in
      let col_null = sub_column_nullable s in
      if lhs_null || col_null then begin
        let side =
          match (lhs_null, col_null) with
          | true, true -> "both the left-hand side and the sublink column"
          | true, false -> "the left-hand side"
          | _ -> "the sublink column"
        in
        acc :=
          diag Warning ~rule:"sublink-null-trap" ~path:here
            (Printf.sprintf
               "%s where %s may be NULL: a single NULL makes the membership \
                test UNKNOWN and silently rejects every row — filter with IS \
                NOT NULL or use NOT EXISTS"
               form side)
          :: !acc
      end
    in
    let check_expr e =
      List.iter
        (fun x ->
          match x with
          | Not (Sublink ({ kind = AnyOp (Eq, lhs); _ } as s)) ->
              null_trap "NOT IN" s lhs
          | Sublink ({ kind = AllOp (Neq, lhs); _ } as s) ->
              null_trap "<> ALL" s lhs
          | Sublink { kind = Scalar; query = sq; _ } ->
              let c = Dataflow.cardinality dfa sq in
              if may_exceed_one c.Dataflow.c_hi then
                acc :=
                  diag Warning ~rule:"scalar-cardinality" ~path:here
                    (Format.asprintf
                       "scalar sublink may return %a rows — evaluation raises \
                        as soon as it returns more than one (aggregate the \
                        sublink or add LIMIT-like uniqueness)"
                       Dataflow.pp_card c)
                  :: !acc
          | _ -> ())
        (subexprs e)
    in
    List.iter check_expr (List.map snd (labelled_exprs q));
    let child_prefix qualifier = prefix @ [ op_label q ^ qualifier ] in
    (match inputs with
    | [] -> ()
    | [ i ] -> walk (child_prefix "") ~env i
    | [ a; b ] ->
        walk (child_prefix "[left]") ~env a;
        walk (child_prefix "[right]") ~env b
    | _ -> assert false);
    List.iteri
      (fun i s ->
        walk (here @ [ Printf.sprintf "sublink[%d]" (i + 1) ]) ~env:env' s.query)
      (List.concat_map (fun (_, e) -> sublinks_of_expr e) (labelled_exprs q))
  in
  walk [] ~env:[] q;
  List.rev !acc

(* --- statistics-backed estimate rules ---------------------------------- *)

(* These rules predict run-time blowups before execution from {!Stats}
   statistics, so a plan the Guard would kill can be flagged (and a
   cheaper strategy chosen) without paying for the failed run. One
   {!Estimate} handle serves the whole walk; paths mirror
   [check_semantics]'s construction. *)

let blowup_pairs = 1.0e6

let estimate_rules =
  [
    "estimate-cross-blowup"; "estimate-empty-result";
    "estimate-scalar-sublink-fanout";
  ]

let check_estimates db q : diagnostic list =
  let est = Estimate.create db in
  let acc = ref [] in
  let concat_fact a b =
    {
      Estimate.e_names = a.Estimate.e_names @ b.Estimate.e_names;
      e_cols = a.Estimate.e_cols @ b.Estimate.e_cols;
      e_rows = a.Estimate.e_rows;
      e_cost = a.Estimate.e_cost;
    }
  in
  let hashable c =
    List.exists
      (fun cj ->
        match cj with
        | Cmp ((Eq | EqNull), x, y) ->
            (not (has_sublink x)) && not (has_sublink y)
        | _ -> false)
      (conjuncts c)
  in
  let rec walk prefix ~env q =
    let here = prefix @ [ op_label q ] in
    let inputs = Dataflow.inputs q in
    let input_facts = List.map (fun i -> Estimate.query est ~env i) inputs in
    (match (q, input_facts) with
    | (Cross _ | Join _ | LeftJoin _), [ la; ra ] ->
        let enumerated =
          match q with
          | Join (c, _, _) | LeftJoin (c, _, _) -> not (hashable c)
          | _ -> true
        in
        let pairs = la.Estimate.e_rows *. ra.Estimate.e_rows in
        (* the operator's own estimated work: its cumulative cost minus
           its inputs' — candidate pairs plus per-pair sublink
           evaluation, which dwarfs the raw pair count when the join
           condition carries sublinks *)
        let own_work =
          (Estimate.query est ~env q).Estimate.e_cost
          -. la.Estimate.e_cost -. ra.Estimate.e_cost
        in
        if enumerated && (pairs > blowup_pairs || own_work > blowup_pairs) then
          acc :=
            diag Warning ~rule:"estimate-cross-blowup" ~path:here
              (Printf.sprintf
                 "estimated %.3g candidate pairs (%.3g tuples of work) with \
                  no hashable equality — this operator enumerates them all \
                  and a Guard pair budget would trip; prefer a cheaper \
                  strategy or add a join predicate"
                 pairs (Float.max pairs own_work))
            :: !acc
    | _ -> ());
    let input_fact =
      match input_facts with
      | [] -> { Estimate.e_names = []; e_cols = []; e_rows = 0.0; e_cost = 0.0 }
      | [ x ] -> x
      | x :: rest -> List.fold_left concat_fact x rest
    in
    let env' = input_fact :: env in
    List.iter
      (fun e ->
        List.iter
          (fun x ->
            match x with
            | Sublink { kind = Scalar; query = sq; _ } ->
                let r = (Estimate.query est ~env:env' sq).Estimate.e_rows in
                if r > 1.0 +. 1e-9 then
                  acc :=
                    diag Warning ~rule:"estimate-scalar-sublink-fanout"
                      ~path:here
                      (Printf.sprintf
                         "scalar sublink estimated to return ~%.3g rows — \
                          evaluation raises as soon as it returns more than \
                          one (aggregate the sublink or make its filter a \
                          key lookup)"
                         r)
                    :: !acc
            | _ -> ())
          (subexprs e))
      (List.map snd (labelled_exprs q));
    let child_prefix qualifier = prefix @ [ op_label q ^ qualifier ] in
    (match inputs with
    | [] -> ()
    | [ i ] -> walk (child_prefix "") ~env i
    | [ a; b ] ->
        walk (child_prefix "[left]") ~env a;
        walk (child_prefix "[right]") ~env b
    | _ -> assert false);
    List.iteri
      (fun i s ->
        walk (here @ [ Printf.sprintf "sublink[%d]" (i + 1) ]) ~env:env' s.query)
      (List.concat_map (fun (_, e) -> sublinks_of_expr e) (labelled_exprs q))
  in
  walk [] ~env:[] q;
  (* root emptiness: only meaningful over nonempty stored inputs —
     otherwise an empty base table would warn on every plan over it *)
  let bases = base_relations q in
  let nonempty_inputs =
    bases <> []
    && List.for_all
         (fun n ->
           match Database.find_opt db n with
           | Some r -> Relation.cardinality r > 0
           | None -> false)
         bases
  in
  if nonempty_inputs && (Estimate.query est q).Estimate.e_rows = 0.0 then
    acc :=
      diag Warning ~rule:"estimate-empty-result" ~path:[ op_label q ]
        "the estimator predicts zero result rows: a predicate is \
         unsatisfiable or outside the stored data's value range"
      :: !acc;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all_checks =
  [ check_structure; check_names; check_types; check_aggregates; check_rewrite_support ]

let compare_diag a b =
  match compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> compare (a.path, a.rule, a.message) (b.path, b.rule, b.message)
  | c -> c

let lint ?rules:(enabled = List.map fst rules) db q : diagnostic list =
  let ss = sites db q in
  let semantic =
    (* only pay for the dataflow pass when a semantic rule is enabled *)
    if
      List.mem "sublink-null-trap" enabled
      || List.mem "scalar-cardinality" enabled
    then check_semantics db q
    else []
  in
  let estimated =
    (* likewise, the statistics pass only when an estimate rule is on *)
    if List.exists (fun r -> List.mem r enabled) estimate_rules then
      check_estimates db q
    else []
  in
  List.concat_map (fun check -> List.concat_map (check db) ss) all_checks
  @ semantic @ estimated
  |> List.filter (fun d -> List.mem d.rule enabled)
  |> List.sort_uniq compare_diag

let errors diags = List.filter (fun d -> d.severity = Error) diags

exception Lint_error of diagnostic list

let report diags = String.concat "\n" (List.map diagnostic_to_string diags)

let fail_on ?(werror = false) diags =
  let offending =
    List.filter
      (fun d -> d.severity = Error || (werror && d.severity = Warning))
      diags
  in
  if offending <> [] then raise (Lint_error offending)

let () =
  Printexc.register_printer (function
    | Lint_error diags ->
        Some (Printf.sprintf "Lint_error:\n%s" (report diags))
    | _ -> None)
