(** Translation validation for the rewrite pipeline.

    Rather than proving the {!Simplify}/{!Optimizer} rules correct once
    and for all, this module validates every {e applied} rule instance:
    the passes announce each application through {!Rewrite_trace}
    (before/after subplan, rule name, Lint-style operator path), and
    each announcement becomes a proof obligation discharged here by

    - {b static checks}: output schema preservation (exact for
      equivalence rules; an order-preserving narrowing for the [prune]
      rule), after-plan typability whenever the before plan types, and
      {!Dataflow} fact preservation — cardinality intervals of the two
      sides must intersect, attribute lineage must not grow, and
      nullability must not strengthen without witness support; and
    - {b bounded equivalence}: both sides are evaluated on small
      witness databases derived from the subplans' own constants and
      predicate boundary values (each constant [c] contributes [c-1],
      [c], [c+1] to the value pool), with NULL-rich and empty variants,
      and compared as bags. Correlated subplans are closed by guessing
      a uniform type for the free references and enumerating a few
      outer bindings; when no guess typechecks, the dynamic check is
      skipped (recorded in the report) and only the static checks
      apply.

    The check is {e bounded, not a proof}: agreement on the witness
    databases is small-scope evidence in the spirit of the
    Cosette-style bounded equivalence checkers, not a certificate of
    equivalence on all databases. Failures, however, are definite: a
    failed obligation carries the rule, path, witness database and the
    differing rows — a concrete counterexample to the rewrite. *)

open Algebra

(* ------------------------------------------------------------------ *)
(* Obligations, failures, reports                                      *)
(* ------------------------------------------------------------------ *)

type obligation = {
  ob_rule : string;
  ob_path : string list;
  ob_before : Algebra.query;
  ob_after : Algebra.query;
}

type failure = {
  f_rule : string;
  f_path : string list;
  f_stage : string;  (** ["schema"], ["typecheck"], ["dataflow"] or ["witness"] *)
  f_message : string;
  f_witness : (string * Relation.t) list;
      (** the witness database refuting the obligation; empty for
          static failures *)
  f_only_before : Tuple.t list;  (** rows only the before plan produced *)
  f_only_after : Tuple.t list;  (** rows only the after plan produced *)
}

type report = {
  r_total : int;  (** proof obligations checked *)
  r_predicates : int;
      (** the subset that are predicate obligations — applications of
          rules that only fold, move or derive selection/join
          conditions over an unchanged operator tree (see
          {!predicate_rules}); the denominator for the symbolic
          discharge rate *)
  r_compared : int;  (** (obligation, witness database, binding) evaluations *)
  r_proved : (string * string) list;
      (** obligations discharged symbolically (rule, rendered path) —
          actual proofs, not bounded evidence *)
  r_skips : (string * string) list;
      (** dynamic checks skipped: rendered path, reason *)
  r_failures : failure list;  (** deepest path first *)
}

(* The rules whose correctness argument is purely about
   filter-equivalence of conditions: the operator tree below is
   untouched (up to Select/Cross/Join reassociation), only predicates
   fold, move or appear. These are the obligations the symbolic stage
   is expected to discharge; rules that rewrite projections or narrow
   schemas ([pushdown-through-project], [merge-projects], [prune],
   [fold-exprs]) are out of its scope by design. *)
let predicate_rules =
  [
    "select-true";
    "join-true-to-cross";
    "unsat-fold";
    "taut-fold";
    "drop-implied";
    "implied-predicate";
    "pushdown-into-cross";
    "pushdown-into-join";
    "pushdown-into-leftjoin";
    "pushdown-residual";
  ]

let is_predicate_rule rule = List.mem rule predicate_rules

let empty_report =
  {
    r_total = 0;
    r_predicates = 0;
    r_compared = 0;
    r_proved = [];
    r_skips = [];
    r_failures = [];
  }

let merge a b =
  {
    r_total = a.r_total + b.r_total;
    r_predicates = a.r_predicates + b.r_predicates;
    r_compared = a.r_compared + b.r_compared;
    r_proved = a.r_proved @ b.r_proved;
    r_skips = a.r_skips @ b.r_skips;
    r_failures = a.r_failures @ b.r_failures;
  }

let ok r = r.r_failures = []

exception Certify_error of report

let fail_on r = if not (ok r) then raise (Certify_error r)

(* ------------------------------------------------------------------ *)
(* Witness databases                                                   *)
(* ------------------------------------------------------------------ *)

(* Constants appearing anywhere in a plan (sublink queries included). *)
let rec constants (q : query) acc =
  let acc =
    List.fold_left
      (fun acc e ->
        fold_expr
          (fun acc e -> match e with Const v -> v :: acc | _ -> acc)
          acc e)
      acc (root_exprs q)
  in
  let acc = ref acc in
  ignore
    (map_queries
       (fun c ->
         acc := constants c !acc;
         c)
       q);
  !acc

(* Per-type value pools: every constant contributes itself and (for
   ordered types) its two boundary neighbours, so pushed predicates
   like [a < 10] see rows on both sides of the boundary. *)
type pools = {
  p_ints : int list;
  p_floats : float list;
  p_strings : string list;
}

let dedup_keep xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let cap n xs = List.filteri (fun i _ -> i < n) xs

let pools_of qs =
  let vals = List.fold_left (fun acc q -> constants q acc) [] qs in
  let ints =
    List.concat_map
      (function Value.Int n -> [ n - 1; n; n + 1 ] | _ -> [])
      vals
  in
  let floats =
    List.concat_map
      (function Value.Float f -> [ f -. 1.0; f; f +. 1.0 ] | _ -> [])
      vals
  in
  let strings =
    List.concat_map (function Value.String s -> [ s ] | _ -> []) vals
  in
  {
    p_ints = cap 8 (dedup_keep (ints @ [ 0; 1; 2 ]));
    p_floats = cap 6 (dedup_keep (floats @ [ 0.0; 1.5 ]));
    p_strings = cap 6 (dedup_keep (strings @ [ ""; "a"; "b" ]));
  }

let pick pools (ty : Vtype.t) idx : Value.t =
  let nth xs i = List.nth xs (i mod List.length xs) in
  match ty with
  | Vtype.TInt -> Value.Int (nth pools.p_ints idx)
  | Vtype.TFloat -> Value.Float (nth pools.p_floats idx)
  | Vtype.TString -> Value.String (nth pools.p_strings idx)
  | Vtype.TBool -> Value.Bool (idx mod 2 = 0)

(* One witness relation: a few data rows with column-dependent strides
   — column [j] cycles with period [j + 2], so rows agree on early
   columns while differing on later ones, the shape that catches
   DISTINCT/GROUP BY narrowing bugs — plus an all-NULL row and a
   duplicated row for bag sensitivity. [salt] varies per table so the
   arms of a set operation are overlapping but not identical; variants
   >= 1 are NULL-rich. *)
let witness_relation pools ~salt ~variant schema =
  let types = Schema.types schema in
  let arity = Schema.arity schema in
  let data_rows =
    List.init 4 (fun r ->
        List.mapi
          (fun j ty ->
            if variant >= 1 && (r + j + variant) mod 3 = 0 then Value.Null
            else pick pools ty ((r mod (j + 2)) + (variant * 2) + j + salt))
          types)
  in
  let all_null = List.init arity (fun _ -> Value.Null) in
  let rows =
    match data_rows with
    | first :: _ -> data_rows @ [ all_null; first ]
    | [] -> [ all_null ]
  in
  Relation.of_values schema rows

(* The base relations a witness database must provide. [None] when a
   referenced name is not a stored relation (e.g. a view). *)
let witness_names db qs =
  let names = dedup_keep (List.concat_map base_relations qs) in
  if List.for_all (fun n -> Database.find_opt db n <> None) names then
    Some names
  else None

let witness_variants = [ 0; 1; 2 ]

let witness_databases_for db qs : (string * Relation.t) list list option =
  match witness_names db qs with
  | None -> None
  | Some names ->
      let pools = pools_of qs in
      let schema_of n = Relation.schema (Database.find db n) in
      let populated =
        List.map
          (fun variant ->
            List.mapi
              (fun salt n ->
                (n, witness_relation pools ~salt ~variant (schema_of n)))
              names)
          witness_variants
      in
      let empty =
        List.map (fun n -> (n, Relation.empty (schema_of n))) names
      in
      Some (populated @ [ empty ])

(** [witness_databases db q] is the list of small witness databases the
    validator would use for [q] — exposed so the provenance-level
    oracle check in [Core] can reuse the derivation. *)
let witness_databases db q =
  Option.value ~default:[] (witness_databases_for db [ q ])

(* ------------------------------------------------------------------ *)
(* Closing correlated subplans                                         *)
(* ------------------------------------------------------------------ *)

(* Free (correlated) references of an obligation's subplans. The
   dynamic check needs an outer frame binding them; we guess a uniform
   type (trying each base type in turn) and keep the first guess under
   which both sides typecheck. *)
let free_names db qs =
  dedup_keep (List.concat_map (fun q -> Scope.free_of_query db q) qs)

let typecheck_under db outer q =
  match Typecheck.infer_query_env db outer q with
  | s -> Some s
  | exception
      ( Typecheck.Type_error _ | Schema.Schema_error _
      | Database.Unknown_relation _ | Builtin.Unknown_function _
      | Invalid_argument _ | Not_found ) ->
      None

let guess_outer db frees qs : Schema.t option =
  if frees = [] then Some (Schema.of_list [])
  else
    List.find_map
      (fun ty ->
        let schema =
          Schema.of_list (List.map (fun n -> Schema.attr n ty) frees)
        in
        if List.for_all (fun q -> typecheck_under db [ schema ] q <> None) qs
        then Some schema
        else None)
      [ Vtype.TInt; Vtype.TFloat; Vtype.TString; Vtype.TBool ]

(* Outer bindings for a guessed frame schema: two pool values plus an
   all-NULL binding (every free reference gets the same value). *)
let outer_bindings pools schema : Eval.env list =
  if Schema.arity schema = 0 then [ [] ]
  else
    let mk v =
      [ Eval.frame schema (Tuple.of_list (List.map (fun _ -> v) (Schema.names schema))) ]
    in
    let vals =
      match Schema.types schema with
      | ty :: _ -> [ pick pools ty 0; pick pools ty 1; Value.Null ]
      | [] -> []
    in
    List.map mk (dedup_keep vals)

(* ------------------------------------------------------------------ *)
(* Static checks                                                       *)
(* ------------------------------------------------------------------ *)

(* For the narrowing [prune] rule: positions of [sub] within [full] as
   an order-preserving subsequence (by name), or [None]. *)
let subsequence_positions ~full ~sub =
  let rec go i full sub acc =
    match (full, sub) with
    | _, [] -> Some (List.rev acc)
    | [], _ :: _ -> None
    | f :: frest, s :: srest ->
        if String.equal f s then go (i + 1) frest srest (i :: acc)
        else go (i + 1) frest sub acc
  in
  go 0 full sub []

let is_narrowing_rule rule = String.equal rule "prune"

let bound_le a b =
  match (a, b) with
  | Dataflow.Fin x, Dataflow.Fin y -> x <= y
  | Dataflow.Fin _, Dataflow.Inf -> true
  | Dataflow.Inf, Dataflow.Fin _ -> false
  | Dataflow.Inf, Dataflow.Inf -> true

let intervals_intersect (a : Dataflow.card) (b : Dataflow.card) =
  bound_le (Dataflow.Fin a.Dataflow.c_lo) b.Dataflow.c_hi
  && bound_le (Dataflow.Fin b.Dataflow.c_lo) a.Dataflow.c_hi

(* ------------------------------------------------------------------ *)
(* Symbolic discharge                                                  *)
(* ------------------------------------------------------------------ *)

(* Flatten a tree of Select / Cross / Join nodes into the conjuncts of
   all its conditions plus the in-order leaf subplans below them. When
   the leaf output names are pairwise distinct (so every predicate
   reference binds to the same column at every level), any such tree
   is bag-equivalent to [Select (conj cs, Cross leaves)]; two trees
   over identical leaf sequences are therefore equivalent whenever
   their conjunct sets are filter-equivalent — a question {!Symbolic}
   can settle outright. *)
let rec flatten (q : query) : expr list * query list =
  match q with
  | Select (c, q1) ->
      let cs, ls = flatten q1 in
      (conjuncts c @ cs, ls)
  | Cross (a, b) ->
      let ca, la = flatten a and cb, lb = flatten b in
      (ca @ cb, la @ lb)
  | Join (c, a, b) ->
      let ca, la = flatten a and cb, lb = flatten b in
      (conjuncts c @ ca @ cb, la @ lb)
  | _ -> ([], [ q ])

(* Structural equality robust to closures inside [TableExpr] leaves. *)
let struct_equal (a : query list) (b : query list) =
  try a = b with Invalid_argument _ -> false

(* Bag equality of two conjunct lists under structural equality
   (guarded: sublink conditions can reach [TableExpr] closures). Over
   identical flat leaves, equal conjunct bags mean both trees are
   [Select (conj cs, Cross leaves)] up to AND/Cross reassociation —
   proved without consulting the solver, so conjuncts the solver
   treats as opaque (sublinks, LIKE, arithmetic) cannot block the
   discharge of a pure predicate-motion rule. *)
let conjunct_bags_equal (a : expr list) (b : expr list) =
  let remove_one x ys =
    let rec go acc = function
      | [] -> None
      | y :: rest ->
          if try x = y with Invalid_argument _ -> false then
            Some (List.rev_append acc rest)
          else go (y :: acc) rest
    in
    go [] ys
  in
  List.length a = List.length b
  && Option.is_some
       (List.fold_left (fun acc x -> Option.bind acc (remove_one x)) (Some b) a)

(* The flattening argument needs every column reference to bind
   identically at every level of both trees: leaf output names must be
   pairwise distinct and disjoint from the obligation's correlated
   (free) names. *)
let flat_namespace db frees leaves =
  match List.concat_map (fun l -> Scope.out_names db l) leaves with
  | names ->
      List.length (dedup_keep names) = List.length names
      && List.for_all (fun f -> not (List.mem f names)) frees
  | exception _ -> false

(* Column types for the solver's integer bound tightening — static
   facts only (no witness-data nullability), so proofs hold on every
   database. Only available when the leaves are closed and type. *)
let solver_ctx db ~closed leaves =
  let types =
    if not closed then fun _ -> None
    else
      let schemas = List.map (typecheck_under db []) leaves in
      if List.for_all Option.is_some schemas then begin
        let assoc =
          List.concat_map
            (fun s ->
              let s = Option.get s in
              List.map2 (fun n t -> (n, t)) (Schema.names s) (Schema.types s))
            schemas
        in
        fun n -> List.assoc_opt n assoc
      end
      else fun _ -> None
  in
  Symbolic.ctx ~types ()

(* [true] iff the obligation is proved — not merely tested — correct:
   either both sides flatten to the same leaves with filter-equivalent
   conjunctions, or the rewrite folds a selection/join whose condition
   provably never holds to the empty relation. Schema and typing
   preservation have already been checked by the static stages. *)
let symbolic_discharge db (ob : obligation) : bool =
  (not (is_narrowing_rule ob.ob_rule))
  &&
  let frees = free_names db [ ob.ob_before; ob.ob_after ] in
  let closed = frees = [] in
  let cs_b, ls_b = flatten ob.ob_before in
  match ob.ob_after with
  | TableExpr rel when Relation.cardinality rel = 0 ->
      cs_b <> []
      && flat_namespace db frees ls_b
      && Symbolic.never_true (solver_ctx db ~closed ls_b) (conj cs_b)
         = Symbolic.Proved
  | after ->
      let cs_a, ls_a = flatten after in
      struct_equal ls_b ls_a
      && flat_namespace db frees ls_b
      && (conjunct_bags_equal cs_b cs_a
         || Symbolic.equiv (solver_ctx db ~closed ls_b) (conj cs_b)
              (conj cs_a)
            = Symbolic.Proved)

(* ------------------------------------------------------------------ *)
(* Dynamic (witness) checks                                            *)
(* ------------------------------------------------------------------ *)

let sorted_rows rel = List.sort Tuple.compare (Relation.tuples rel)

(* Multiset difference of two sorted tuple lists: rows only in [a],
   rows only in [b]. *)
let bag_diff a b =
  let rec go a b only_a only_b =
    match (a, b) with
    | [], [] -> (List.rev only_a, List.rev only_b)
    | x :: a', [] -> go a' [] (x :: only_a) only_b
    | [], y :: b' -> go [] b' only_a (y :: only_b)
    | x :: a', y :: b' ->
        let c = Tuple.compare x y in
        if c = 0 then go a' b' only_a only_b
        else if c < 0 then go a' b (x :: only_a) only_b
        else go a b' only_a (y :: only_b)
  in
  go a b [] []

type run_outcome =
  | Rows of Tuple.t list  (** sorted *)
  | Errored of string
  | Tripped of string

let run_side wdb env plan =
  match Eval.query_reference ~env wdb plan with
  | rel -> Rows (sorted_rows rel)
  | exception Guard.Budget_exceeded trip ->
      Tripped (Guard.trip_to_string trip)
  | exception
      (( Eval.Eval_error _ | Value.Type_clash _ | Schema.Schema_error _
       | Relation.Relation_error _ | Typecheck.Type_error _
       | Database.Unknown_relation _ | Builtin.Unknown_function _
       | Invalid_argument _ | Not_found | Division_by_zero | Failure _ ) as e)
    ->
      Errored (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Checking one obligation                                             *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable a_compared : int;
  mutable a_proved : (string * string) list;
  mutable a_skips : (string * string) list;
  mutable a_failures : failure list;
}

let check_obligation db flow ~budget acc (ob : obligation) =
  let fail ?(witness = []) ?(only_before = []) ?(only_after = []) stage msg =
    acc.a_failures <-
      {
        f_rule = ob.ob_rule;
        f_path = ob.ob_path;
        f_stage = stage;
        f_message = msg;
        f_witness = witness;
        f_only_before = only_before;
        f_only_after = only_after;
      }
      :: acc.a_failures
  in
  let skip reason =
    acc.a_skips <- (Guard.path_to_string ob.ob_path, reason) :: acc.a_skips
  in
  let failures_at_entry = List.length acc.a_failures in
  let before = ob.ob_before and after = ob.ob_after in
  (* --- schema: name preservation / order-preserving narrowing ------ *)
  let outs_before = Scope.out_names db before in
  let outs_after = Scope.out_names db after in
  let narrowing = is_narrowing_rule ob.ob_rule in
  let positions =
    if narrowing then subsequence_positions ~full:outs_before ~sub:outs_after
    else if outs_before = outs_after then
      Some (List.mapi (fun i _ -> i) outs_before)
    else None
  in
  match positions with
  | None ->
      fail "schema"
        (Printf.sprintf "output schema not preserved: [%s] vs [%s]"
           (String.concat "; " outs_before)
           (String.concat "; " outs_after))
  | Some positions -> (
      let positions = Array.of_list positions in
      (* --- typecheck: after must type whenever before does --------- *)
      let frees = free_names db [ before; after ] in
      let closed = frees = [] in
      let outer = guess_outer db frees [ before ] in
      (match outer with
      | None -> ()
      | Some schema -> (
          let env = if closed then [] else [ schema ] in
          match typecheck_under db env before with
          | None -> () (* before side untypable: nothing to preserve *)
          | Some sb -> (
              match typecheck_under db env after with
              | None ->
                  fail "typecheck"
                    "rewritten plan no longer typechecks against its \
                     input schemas"
              | Some sa ->
                  if not narrowing then
                    if not (Schema.equal_types sb sa) then
                      fail "typecheck"
                        (Printf.sprintf
                           "output types changed: %s vs %s"
                           (Schema.to_string sb) (Schema.to_string sa)))));
      (* --- dataflow facts (closed plans only) ---------------------- *)
      let strengthened =
        if not closed then []
        else begin
          let cb = Dataflow.cardinality flow before in
          let ca = Dataflow.cardinality flow after in
          if not (intervals_intersect cb ca) then
            fail "dataflow"
              (Format.asprintf
                 "cardinality intervals are disjoint: %a vs %a"
                 Dataflow.pp_card cb Dataflow.pp_card ca);
          let lb = Dataflow.lineage flow before in
          let la = Dataflow.lineage flow after in
          List.iter
            (fun n ->
              let db_ = Dataflow.attr_deps lb n in
              let da = Dataflow.attr_deps la n in
              if not (Dataflow.Deps.subset da db_) then
                fail "dataflow"
                  (Printf.sprintf
                     "lineage of %s grew: the rewrite reads base columns \
                      the original did not"
                     n))
            outs_after;
          (* nullability may not strengthen (maybe-null -> never-null)
             without witness support: remember the strengthened columns
             and refute them if a witness run produces a NULL there *)
          let nb = Dataflow.nullability flow before in
          let na = Dataflow.nullability flow after in
          List.filteri
            (fun i n ->
              ignore i;
              Dataflow.attr_nullable nb n && not (Dataflow.attr_nullable na n))
            outs_after
        end
      in
      (* --- symbolic discharge: a proof beats bounded testing ------- *)
      if
        strengthened = []
        && List.length acc.a_failures = failures_at_entry
        && symbolic_discharge db ob
      then
        acc.a_proved <-
          (ob.ob_rule, Guard.path_to_string ob.ob_path) :: acc.a_proved
      else
      (* --- bounded equivalence on witness databases ---------------- *)
      match witness_databases_for db [ before; after ] with
      | None -> skip "references a non-stored relation (view?)"
      | Some wdbs -> (
          match outer with
          | None ->
              skip
                (Printf.sprintf
                   "cannot type the correlated references [%s] under any \
                    uniform type guess"
                   (String.concat "; " frees))
          | Some outer_schema ->
              let pools = pools_of [ before; after ] in
              let envs = outer_bindings pools outer_schema in
              let strengthened_pos =
                List.concat
                  (List.mapi
                     (fun i n ->
                       if List.exists (String.equal n) strengthened then [ i ]
                       else [])
                     outs_after)
              in
              let check_one wdb_assoc env =
                let wdb = Database.of_list wdb_assoc in
                let rb =
                  Guard.with_budget (Some budget) (fun () ->
                      run_side wdb env before)
                in
                let ra =
                  Guard.with_budget (Some budget) (fun () ->
                      run_side wdb env after)
                in
                match (rb, ra) with
                | Tripped t, _ | _, Tripped t ->
                    skip ("witness run exceeded its budget: " ^ t)
                | Errored _, Errored _ -> ()
                | Errored e, Rows _ | Rows _, Errored e ->
                    (* rewrites may legitimately change which rows reach a
                       failing expression; asymmetric errors are recorded
                       but not failed *)
                    skip ("one side raised during a witness run: " ^ e)
                | Rows rows_b, Rows rows_a ->
                    acc.a_compared <- acc.a_compared + 1;
                    let projected =
                      List.sort Tuple.compare
                        (List.map (fun t -> Tuple.project_arr t positions) rows_b)
                    in
                    let only_b, only_a = bag_diff projected rows_a in
                    if only_b <> [] || only_a <> [] then
                      fail "witness" ~witness:wdb_assoc
                        ~only_before:(cap 5 only_b) ~only_after:(cap 5 only_a)
                        (Printf.sprintf
                           "plans disagree on a witness database (%d rows \
                            only before, %d only after)"
                           (List.length only_b) (List.length only_a))
                    else
                      List.iter
                        (fun pos ->
                          if
                            pos >= 0
                            && List.exists
                                 (fun t -> Value.is_null (Tuple.get t pos))
                                 rows_a
                          then
                            fail "dataflow" ~witness:wdb_assoc
                              (Printf.sprintf
                                 "nullability strengthening refuted: %s is \
                                  NULL in a witness run but the rewritten \
                                  plan's analysis claims it never is"
                                 (List.nth outs_after pos)))
                        strengthened_pos
              in
              (* stop at the first failing witness for this obligation *)
              let failures_before = List.length acc.a_failures in
              List.iter
                (fun wdb ->
                  if List.length acc.a_failures = failures_before then
                    List.iter
                      (fun env ->
                        if List.length acc.a_failures = failures_before then
                          check_one wdb env)
                      envs)
                wdbs))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let default_budget = Guard.budget ~timeout:1.0 ~max_rows:200_000 ()

let dedup_entries (entries : Rewrite_trace.entry list) =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (e : Rewrite_trace.entry) ->
      let key = Hashtbl.hash (e.e_rule, e.e_path, e.e_before, e.e_after) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    entries

let check_entries ?(budget = default_budget) db entries : report =
  let entries = dedup_entries entries in
  let flow = Dataflow.create db in
  let acc = { a_compared = 0; a_proved = []; a_skips = []; a_failures = [] } in
  List.iter
    (fun (e : Rewrite_trace.entry) ->
      let ob =
        {
          ob_rule = e.e_rule;
          ob_path = e.e_path;
          ob_before = e.e_before;
          ob_after = e.e_after;
        }
      in
      try check_obligation db flow ~budget acc ob
      with exn ->
        (* an analysis crash must not take down the whole certificate
           run; record the obligation as skipped *)
        acc.a_skips <-
          ( Guard.path_to_string ob.ob_path,
            "internal error while checking: " ^ Printexc.to_string exn )
          :: acc.a_skips)
    entries;
  {
    r_total = List.length entries;
    r_predicates =
      List.length
        (List.filter
           (fun (e : Rewrite_trace.entry) -> is_predicate_rule e.e_rule)
           entries);
    r_compared = acc.a_compared;
    r_proved = List.rev acc.a_proved;
    r_skips = List.rev acc.a_skips;
    r_failures =
      (* deepest failing obligation first: the most precise attribution *)
      List.stable_sort
        (fun a b -> compare (List.length b.f_path) (List.length a.f_path))
        (List.rev acc.a_failures);
  }

(** [optimize ?prune ?budget db q] runs the stock optimizer pipeline
    ({!Simplify} + pushdown + dead-column pruning) under a tracer and
    discharges one proof obligation per applied rule. Returns the
    optimized plan and the certificate report. *)
let optimize ?prune ?budget db q =
  let entries = ref [] in
  let q' =
    Rewrite_trace.with_tracer
      (fun e -> entries := e :: !entries)
      (fun () -> Optimizer.optimize ?prune db q)
  in
  (q', check_entries ?budget db (List.rev !entries))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let failure_to_string ?(verbose = true) f =
  let b = Buffer.create 256 in
  Printf.bprintf b "FAILED [%s] at %s (%s): %s\n" f.f_rule
    (Guard.path_to_string f.f_path)
    f.f_stage f.f_message;
  if verbose then begin
    List.iter
      (fun (name, rel) ->
        Printf.bprintf b "  witness %s:\n" name;
        String.split_on_char '\n' (Csv.to_string rel)
        |> List.iter (fun line ->
               if line <> "" then Printf.bprintf b "    %s\n" line))
      f.f_witness;
    if f.f_only_before <> [] then
      Printf.bprintf b "  rows only in the original plan:\n%s"
        (String.concat ""
           (List.map
              (fun t -> "    " ^ Tuple.to_string t ^ "\n")
              f.f_only_before));
    if f.f_only_after <> [] then
      Printf.bprintf b "  rows only in the rewritten plan:\n%s"
        (String.concat ""
           (List.map
              (fun t -> "    " ^ Tuple.to_string t ^ "\n")
              f.f_only_after))
  end;
  Buffer.contents b

let report_to_string ?(verbose = false) r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "certify: %d obligation%s (%d on predicates), %d proved symbolically, \
     %d witness comparison%s, %d skipped, %d failed\n"
    r.r_total
    (if r.r_total = 1 then "" else "s")
    r.r_predicates
    (List.length r.r_proved)
    r.r_compared
    (if r.r_compared = 1 then "" else "s")
    (List.length r.r_skips)
    (List.length r.r_failures);
  List.iter (fun f -> Buffer.add_string b (failure_to_string ~verbose f)) r.r_failures;
  if verbose then begin
    List.iter
      (fun (rule, path) -> Printf.bprintf b "proved [%s] at %s\n" rule path)
      r.r_proved;
    List.iter
      (fun (path, reason) ->
        Printf.bprintf b "skipped %s: %s\n" path reason)
      r.r_skips
  end;
  Buffer.contents b
