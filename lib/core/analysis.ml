(** Working with computed provenance: influence statistics and a
    Graphviz export of the result–witness bipartite graph.

    Both consume the single-relation provenance representation produced
    by {!Perm.run} / {!Perm.provenance} — one of the paper's selling
    points is precisely that such downstream analyses are ordinary
    relational processing. *)

open Relalg

(* Column offset of each provenance relation inside a provenance result
   whose original output has [n_orig] columns. *)
let offsets_of n_orig (provs : Pschema.prov_rel list) =
  let _, offs =
    List.fold_left
      (fun (pos, acc) (pr : Pschema.prov_rel) ->
        (pos + List.length pr.Pschema.pr_cols, acc @ [ (pr, pos) ]))
      (n_orig, []) provs
  in
  offs

let witness_of_row t pos width =
  let w = Tuple.project_arr t (Array.init width (fun i -> pos + i)) in
  if Array.for_all Value.is_null (w : Tuple.t :> Value.t array) then None
  else Some w

(** Influence of one base tuple: in how many distinct result rows it
    appears as a witness. *)
type influence = {
  inf_relation : string;
  inf_tuple : Tuple.t;
  inf_count : int;
}

(** [influence db q rel provs] ranks every contributing base tuple by
    the number of distinct result tuples it witnesses, descending.
    A data engineer reads this as "which source rows matter most for
    this report". *)
let influence_cols ~n_orig (rel : Relation.t) (provs : Pschema.prov_rel list) :
    influence list =
  let offs = offsets_of n_orig provs in
  let orig_positions = Array.init n_orig (fun i -> i) in
  let counts : (string * Tuple.t, unit Tuple.Tbl.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun t ->
      let result_key = Tuple.project_arr t orig_positions in
      List.iter
        (fun ((pr : Pschema.prov_rel), pos) ->
          match witness_of_row t pos (List.length pr.Pschema.pr_cols) with
          | None -> ()
          | Some w ->
              let key = (pr.Pschema.pr_rel, w) in
              let seen =
                match Hashtbl.find_opt counts key with
                | Some tbl -> tbl
                | None ->
                    let tbl = Tuple.Tbl.create 4 in
                    Hashtbl.add counts key tbl;
                    tbl
              in
              if not (Tuple.Tbl.mem seen result_key) then
                Tuple.Tbl.add seen result_key ())
        offs)
    (Relation.tuples rel);
  Hashtbl.fold
    (fun (rel_name, w) seen acc ->
      { inf_relation = rel_name; inf_tuple = w; inf_count = Tuple.Tbl.length seen }
      :: acc)
    counts []
  |> List.sort (fun a b ->
         match compare b.inf_count a.inf_count with
         | 0 -> compare (a.inf_relation, Tuple.to_string a.inf_tuple)
                  (b.inf_relation, Tuple.to_string b.inf_tuple)
         | c -> c)

(** [influence db q rel provs] is {!influence_cols} with the original
    column count taken from the analyzed query. *)
let influence db q rel provs =
  influence_cols ~n_orig:(List.length (Scope.out_names db q)) rel provs

(** [influence_report_cols ~n_orig rel provs] renders the influence
    ranking as aligned text. *)
let influence_report_cols ~n_orig rel provs : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "relation     results  tuple\n";
  List.iter
    (fun inf ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %7d  %s\n" inf.inf_relation inf.inf_count
           (Tuple.to_string inf.inf_tuple)))
    (influence_cols ~n_orig rel provs);
  Buffer.contents buf

(** [influence_report db q rel provs] — see {!influence_report_cols}. *)
let influence_report db q rel provs : string =
  influence_report_cols ~n_orig:(List.length (Scope.out_names db q)) rel provs

(* ------------------------------------------------------------------ *)
(* Graphviz                                                             *)
(* ------------------------------------------------------------------ *)

let dot_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** [to_dot db q rel provs] renders the provenance as a Graphviz
    digraph: one node per distinct result tuple, one per contributing
    base tuple (clustered by relation), an edge from each witness to
    each result tuple it contributes to. Render with
    [dot -Tsvg provenance.dot -o provenance.svg]. *)
let to_dot_cols ~n_orig (rel : Relation.t) (provs : Pschema.prov_rel list) : string =
  let offs = offsets_of n_orig provs in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=LR;\n";
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  (* result nodes *)
  let result_ids = Tuple.Tbl.create 16 in
  let next_result = ref 0 in
  let result_id key =
    match Tuple.Tbl.find_opt result_ids key with
    | Some id -> id
    | None ->
        let id = Printf.sprintf "res%d" !next_result in
        incr next_result;
        Tuple.Tbl.add result_ids key id;
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"%s\", style=filled, fillcolor=lightblue];\n"
             id
             (dot_escape (Tuple.to_string key)));
        id
  in
  (* witness nodes, per relation *)
  let witness_ids : (string * Tuple.t, string) Hashtbl.t = Hashtbl.create 16 in
  let next_witness = ref 0 in
  let cluster_members : (string, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let witness_id rel_name w =
    match Hashtbl.find_opt witness_ids (rel_name, w) with
    | Some id -> id
    | None ->
        let id = Printf.sprintf "wit%d" !next_witness in
        incr next_witness;
        Hashtbl.add witness_ids (rel_name, w) id;
        let members =
          match Hashtbl.find_opt cluster_members rel_name with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add cluster_members rel_name l;
              l
        in
        members :=
          Printf.sprintf "    %s [label=\"%s\"];" id (dot_escape (Tuple.to_string w))
          :: !members;
        id
  in
  (* collect edges, deduplicated *)
  let edges = Hashtbl.create 32 in
  let orig_positions = Array.init n_orig (fun i -> i) in
  List.iter
    (fun t ->
      let rk = Tuple.project_arr t orig_positions in
      let rid = result_id rk in
      List.iter
        (fun ((pr : Pschema.prov_rel), pos) ->
          match witness_of_row t pos (List.length pr.Pschema.pr_cols) with
          | None -> ()
          | Some w ->
              let wid = witness_id pr.Pschema.pr_rel w in
              Hashtbl.replace edges (wid, rid) ())
        offs)
    (Relation.tuples rel);
  (* emit clusters *)
  Hashtbl.iter
    (fun rel_name members ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n"
           (dot_escape rel_name) (dot_escape rel_name));
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        !members;
      Buffer.add_string buf "  }\n")
    cluster_members;
  Hashtbl.iter
    (fun (wid, rid) () -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" wid rid))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** [to_dot db q rel provs] — see {!to_dot_cols}. *)
let to_dot db q rel provs =
  to_dot_cols ~n_orig:(List.length (Scope.out_names db q)) rel provs
