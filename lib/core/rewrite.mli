(** The Perm provenance rewriter: rules R1–R5 of Figure 4 (plus
    set-operation rules) for standard operators, and the Gen / Left /
    Move / Unn strategies of Figure 5 for operators with sublinks.
    Nested sublinks are rewritten recursively (Section 2.7). *)

open Relalg

(** [rewrite db ~strategy q] is [(q+, provs)]: the provenance-propagating
    query — whose schema is [q]'s output attributes followed by the
    provenance attributes of each base relation access, in traversal
    order — and the description of those provenance attributes.
    Raises {!Strategy.Unsupported} when [strategy] cannot handle [q]
    (correlated sublinks for Left/Move, non-unnestable sublinks for Unn,
    or a construct with no provenance rewrite such as LIMIT). *)
val rewrite :
  Database.t ->
  strategy:Strategy.t ->
  Algebra.query ->
  Algebra.query * Pschema.prov_rel list

(** [unnestable_exists db sub] holds when the Unn+ de-correlation
    applies to the query of a correlated [EXISTS] sublink: its
    correlation consists of top-level equality conjuncts whose removal
    leaves a closed residual query. Shared with [Provcheck]'s strategy
    precondition rule. *)
val unnestable_exists : Database.t -> Algebra.query -> bool
