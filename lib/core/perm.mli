(** Public API of the Perm reproduction: parse SQL (with the
    [SELECT PROVENANCE] extension), rewrite with a chosen sublink
    strategy, and evaluate. *)

open Relalg

type result = {
  relation : Relation.t;  (** the evaluated result *)
  provenance : Pschema.prov_rel list;
      (** provenance attribute descriptions; empty when no provenance
          was requested *)
  plan : Algebra.query;  (** the plan that was executed *)
  ladder : Resilience.ladder option;
      (** how the strategy-fallback ladder concluded; [None] unless the
          run was made with [~fallback:true] and provenance *)
  certificate : Certify.report option;
      (** the translation-validation certificate for the optimizer run;
          [None] unless the run was made with [~certify:true] *)
}

(** [rewrite db ?strategy q] is the provenance-propagating plan [q+] and
    its provenance schema (default strategy: Gen, the generally
    applicable one). Raises {!Strategy.Unsupported}. *)
val rewrite :
  Database.t ->
  ?strategy:Strategy.t ->
  Algebra.query ->
  Algebra.query * Pschema.prov_rel list

(** [provenance db ?strategy ?optimize ?lint ?werror ?budget ?fallback q]
    rewrites, typechecks, optionally optimizes, and evaluates the
    provenance of [q]. With [~lint:true], [q] must pass the {!Lint}
    rules ([~werror:true] escalating warnings) and the rewrite must pass
    the {!Provcheck} contract rules. Failures of any phase raise
    {!Resilience.Perm_error}. With [?budget] the evaluation runs under
    the {!Relalg.Guard} execution governor; with [~fallback:true] a
    strategy that is inapplicable or blows its budget degrades to the
    next strategy of {!Resilience.strategy_ranking}. [?engine] picks
    the evaluation engine for this call without touching the shared
    {!Eval.default_engine}; [?backoff] adds pauses between ladder
    attempts (see {!Resilience.run_ladder}). *)
val provenance :
  Database.t ->
  ?strategy:Strategy.t ->
  ?engine:Eval.engine ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?fallback:bool ->
  Algebra.query ->
  Relation.t * Pschema.prov_rel list

(** [run db ?strategy ?optimize ?lint ?werror ?budget ?fallback sql]
    parses, analyzes and evaluates [sql]; the [PROVENANCE] marker
    triggers the rewrite. [?lint] / [?werror] / [?budget] / [?fallback]
    behave as in {!provenance}; failures raise
    {!Resilience.Perm_error}. *)
val run :
  Database.t ->
  ?strategy:Strategy.t ->
  ?engine:Eval.engine ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?fallback:bool ->
  string ->
  result

(** [run_query db ~provenance q] is {!run} for an already-analyzed
    algebra query. *)
val run_query :
  Database.t ->
  ?strategy:Strategy.t ->
  ?engine:Eval.engine ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?fallback:bool ->
  provenance:bool ->
  Algebra.query ->
  result

(** {1 Statements} *)

type exec_result =
  | Rows of result  (** a SELECT's result *)
  | Created_view of string
  | Created_table of string * int  (** name and materialized row count *)
  | Dropped of string

(** [exec db sql] executes one statement: SELECT (like {!run}),
    [CREATE VIEW v AS SELECT [PROVENANCE] ...] (a provenance view stores
    the rewritten query), [CREATE TABLE t AS ...] (materializes), or
    [DROP name]. Failures raise {!Resilience.Perm_error}. *)
val exec :
  Database.t ->
  ?strategy:Strategy.t ->
  ?engine:Eval.engine ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?fallback:bool ->
  string ->
  exec_result

(** [exec_script db sql] runs a [;]-separated statement sequence,
    returning each statement's result in order; the first error aborts
    the script ({!Resilience.Perm_error} propagates). *)
val exec_script :
  Database.t ->
  ?strategy:Strategy.t ->
  ?engine:Eval.engine ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?backoff:Resilience.backoff ->
  ?fallback:bool ->
  string ->
  exec_result list

(** {1 Alternative views} *)

(** Witnesses of one result tuple grouped per base relation access —
    the tuple-of-relations representation of Cui & Widom contrasted in
    Section 3.1. *)
type witness_sets = {
  ws_tuple : Relation.t;  (** the result tuple, as a 1-row relation *)
  ws_witnesses : (string * Relation.t) list;
      (** per base relation access: contributing tuples, NULL padding
          removed, duplicates eliminated *)
}

(** [witness_sets db q rel provs] regroups a provenance relation
    produced for query [q] into Cui–Widom-style witness sets, one entry
    per distinct result tuple. *)
val witness_sets :
  Database.t ->
  Algebra.query ->
  Relation.t ->
  Pschema.prov_rel list ->
  witness_sets list

(** [explain db ?strategy ?optimize q] renders the rewritten plan. *)
val explain :
  Database.t -> ?strategy:Strategy.t -> ?optimize:bool -> Algebra.query -> string

(** Strategies whose applicability conditions [q] satisfies. *)
val applicable_strategies : Database.t -> Algebra.query -> Strategy.t list
