(** Direct (non-rewriting) provenance computation — the test oracle.

    Computes, by enumeration, the provenance relation prescribed by
    Definitions 1 and 2: one row per result tuple and combination of
    contributing base tuples, with the sublink witness sets [Tsub*] of
    Figure 2 under the extended Definition 2. Shares only the
    expression evaluator with the rewriter, so agreement between
    [Eval (Rewrite q)] and [Oracle q] is a meaningful end-to-end check
    of Theorems 1–4. *)

open Relalg

exception Unsupported of string

(** One provenance row: result tuple plus flattened witness values
    (NULL = the relation access did not contribute). *)
type prow = { pt : Tuple.t; pw : Value.t array }

(** Number of witness slots of [q]'s provenance, matching the
    rewriter's provenance schema. *)
val width : Database.t -> Algebra.query -> int

(** [rows db env q] is the provenance rows of [q] under correlation
    environment [env]. *)
val rows : Database.t -> Eval.env -> Algebra.query -> prow list

(** [provenance db q] is the oracle's provenance for [q] as bare rows
    (result tuple concatenated with witness values), comparable with
    the rewriter's output by content. *)
val provenance : Database.t -> Algebra.query -> Tuple.t list

(** [provenance_of_row db q row] is the per-output-row provenance API:
    the witness sets of the output row [row] — one [Value.t array] of
    flattened witness values per contributing combination of base
    tuples, in {!width} slots (NULL = that relation access did not
    contribute). Empty when [row] is not in the output of [q].

    {b Definition 1 vs Definition 2.} This oracle implements the
    corrected Definition 2, and the two definitions diverge {e exactly}
    on the sublink witness sets [Tsub*]:

    - For an [ANY] sublink whose truth value is TRUE, Definition 1
      returns the whole sublink relation as witnesses; Definition 2
      keeps only the rows that {e satisfy} the comparison (the rows
      whose existence makes the sublink true).
    - Dually, for an [ALL] sublink whose truth value is FALSE,
      Definition 2 keeps only the {e refuting} rows.
    - When the sublink's truth value is UNKNOWN (NULL involved), or
      FALSE for [ANY] / TRUE for [ALL], every row of the sublink
      relation influences the truth value, so both definitions keep
      the whole relation and agree.
    - [EXISTS] and scalar sublinks have no comparison to restrict by;
      the definitions coincide (an empty sublink result contributes a
      single all-NULL witness under both).

    Consequently [provenance_of_row] differs from a Definition-1
    enumeration only for output rows whose condition contains an [ANY]
    sublink evaluating to TRUE or an [ALL] sublink evaluating to
    FALSE; everywhere else the two definitions produce identical
    witness sets. *)
val provenance_of_row :
  Database.t -> Algebra.query -> Tuple.t -> Value.t array list
