(** Cost-based strategy selection — the "provenance-aware cost model"
    the paper's Section 4.2.1 proposes as future work after observing
    that PostgreSQL's estimates for the rewritten plans were "extremely
    inaccurate".

    The model is deliberately coarse: cardinalities are estimated from
    base relation sizes and fixed per-predicate selectivities, and cost
    counts tuples touched, distinguishing hash-joinable conditions from
    nested loops and accounting for sublinks in conditions (memoized
    per correlation binding, like the evaluator). Its only job is to
    rank the four strategies' plans for one query — which it does
    reliably, because the plans differ by orders of magnitude. *)

open Relalg
open Algebra

(* Selectivity of a condition: crude textbook constants. *)
let rec selectivity (e : expr) : float =
  match e with
  | Const (Value.Bool true) -> 1.0
  | Const (Value.Bool false) -> 0.0
  | Cmp ((Eq | EqNull), _, _) -> 0.1
  | Cmp (Neq, _, _) -> 0.9
  | Cmp ((Lt | Leq | Gt | Geq), _, _) -> 0.33
  | And (a, b) -> selectivity a *. selectivity b
  | Or (a, b) ->
      let sa = selectivity a and sb = selectivity b in
      sa +. sb -. (sa *. sb)
  | Not a -> 1.0 -. selectivity a
  | Like _ -> 0.1
  | InList (_, es) -> min 1.0 (0.1 *. float_of_int (List.length es))
  | IsNull _ -> 0.05
  | Sublink { kind = Exists; _ } -> 0.5
  | Sublink _ -> 0.5
  | Case _ | FunCall _ | Attr _ | Const _ | TypedNull _ | Binop _ -> 0.5

(* Estimated output cardinality of a plan. *)
let rec card db (q : query) : float =
  match q with
  | Base name -> float_of_int (Relation.cardinality (Database.find db name))
  | TableExpr rel -> float_of_int (Relation.cardinality rel)
  | Select (c, input) -> max 1.0 (card db input *. selectivity c)
  | Project { distinct; proj_input; _ } ->
      let n = card db proj_input in
      if distinct then max 1.0 (n *. 0.8) else n
  | Cross (a, b) -> card db a *. card db b
  | Join (c, a, b) -> max 1.0 (card db a *. card db b *. selectivity c)
  | LeftJoin (c, a, b) ->
      max (card db a) (card db a *. card db b *. selectivity c)
  | Agg { group_by = []; _ } -> 1.0
  | Agg { agg_input; _ } -> max 1.0 (card db agg_input ** 0.75)
  | Union (_, a, b) -> card db a +. card db b
  | Inter (_, a, b) -> Float.min (card db a) (card db b)
  | Diff (_, a, b) ->
      ignore b;
      card db a
  | Order (_, input) -> card db input
  | Limit (n, input) -> Float.min (float_of_int n) (card db input)

(* Cost of evaluating the sublinks of an expression once per distinct
   binding, [rows] times: uncorrelated sublinks are materialized once,
   correlated ones once per row (the evaluator memoizes per binding;
   distinct bindings ~ rows). *)
let rec sublink_eval_cost db rows (e : expr) : float =
  List.fold_left
    (fun acc s ->
      let per = cost db s.query in
      let repeats = if Scope.is_uncorrelated db s then 1.0 else rows in
      acc +. (repeats *. per) +. rows)
    0.0 (sublinks_of_expr e)

(* Total cost in touched tuples. *)
and cost db (q : query) : float =
  match q with
  | Base name -> float_of_int (Relation.cardinality (Database.find db name))
  | TableExpr rel -> float_of_int (Relation.cardinality rel)
  | Select (c, input) ->
      let n = card db input in
      cost db input +. n +. sublink_eval_cost db n c
  | Project { cols; proj_input; _ } ->
      let n = card db proj_input in
      cost db proj_input +. n
      +. List.fold_left (fun acc (e, _) -> acc +. sublink_eval_cost db n e) 0.0 cols
  | Cross (a, b) -> cost db a +. cost db b +. (card db a *. card db b)
  | Join (c, a, b) | LeftJoin (c, a, b) ->
      let ca = card db a and cb = card db b in
      let hashable =
        List.exists
          (fun conj ->
            match conj with
            | Cmp ((Eq | EqNull), e1, e2) ->
                (not (has_sublink e1)) && not (has_sublink e2)
            | _ -> false)
          (conjuncts c)
      in
      let join_work = if hashable then ca +. cb else ca *. cb in
      let pairs = if hashable then Float.max ca cb else ca *. cb in
      cost db a +. cost db b +. join_work +. sublink_eval_cost db pairs c
  | Agg { agg_input; _ } -> cost db agg_input +. card db agg_input
  | Union (_, a, b) | Inter (_, a, b) | Diff (_, a, b) ->
      cost db a +. cost db b +. card db a +. card db b
  | Order (_, input) ->
      let n = card db input in
      cost db input +. (n *. Float.max 1.0 (log (n +. 1.0)))
  | Limit (_, input) -> cost db input

type estimate = {
  est_strategy : Strategy.t;
  est_cost : float;  (** ranking cost (mode-dependent); infinite if huge *)
  est_heur : float;  (** the heuristic tuples-touched cost, kept as tie-break *)
  est_safe : bool;  (** nullability proves the rewrite's fast paths safe *)
}

type mode = Cost | Heuristic

let mode_to_string = function Cost -> "cost" | Heuristic -> "heuristic"

let mode_of_string = function
  | "cost" -> Some Cost
  | "heuristic" -> Some Heuristic
  | _ -> None

(* The {!Dataflow} nullability lattice is per-column and flows through
   operators, but it cannot see that a selection *filters* NULLs out:
   [SELECT c FROM t WHERE c > 0] yields a never-NULL column even when
   [t.c] is nullable, because a comparison is only TRUE on non-NULL
   operands. The 3VL solver proves exactly that: [cond ⟹ c IS NOT
   NULL] as filter implication. [Proved] is a theorem, so upgrading the
   lattice verdict here is sound; correlated conditions are fine too
   (outer attributes are free for the solver, so the implication holds
   under every binding). *)
let rec filtered_notnull c (q : query) : bool =
  match q with
  | Select (cond, input) ->
      ((not (has_sublink cond))
      && Symbolic.implies (Symbolic.ctx ()) cond (Not (IsNull (Attr c)))
         = Symbolic.Proved)
      || filtered_notnull c input
  | Project { cols; proj_input; _ } -> (
      match List.find_opt (fun (_, n) -> n = c) cols with
      | Some (Attr c', _) -> filtered_notnull c' proj_input
      | Some (Const v, _) -> not (Value.is_null v)
      | _ -> false)
  | Join (_, a, b) | Cross (a, b) ->
      (* names are disjoint across well-formed join sides, so whichever
         side binds [c] is the one a matching filter constrains *)
      filtered_notnull c a || filtered_notnull c b
  | Order (_, i) | Limit (_, i) -> filtered_notnull c i
  | _ -> false

(* Every output column of the sublink query proved non-NULL by the
   filter argument above. Only the [SELECT es FROM ...] (Project root)
   shape is attempted — that is what the SQL frontend builds. *)
let sublink_output_notnull (q : query) : bool =
  match q with
  | Project { cols; proj_input; _ } ->
      List.for_all
        (fun (e, _) ->
          match e with
          | Attr c -> filtered_notnull c proj_input
          | Const v -> not (Value.is_null v)
          | _ -> false)
        cols
  | _ -> false

(* Unn de-correlates an [= ANY] sublink into a plain equi-join. With a
   NULL on either side of the equality the original membership test is
   three-valued while the join's hash path is two-valued, so the
   rewrite's correctness rests on the subtle interplay of UNKNOWN
   filtering and duplicate handling. Prefer Unn only when no NULL can
   reach the comparison: the left-hand side and every sublink output
   column must be provably non-NULL (under the sublink's correlation
   scope) — by the {!Dataflow} lattice, or, where the lattice is too
   coarse, by a {!Symbolic} filter-implication proof. *)
let unn_equi_safe db (q : query) : bool =
  let dfa = Dataflow.create db in
  let exception Unsafe in
  let rec walk ~env q =
    let input_fact =
      List.fold_left
        (fun f i -> Dataflow.concat_null f (Dataflow.nullability dfa ~env i))
        { Dataflow.n_names = []; n_maybe = [] }
        (Dataflow.inputs q)
    in
    let env' = input_fact :: env in
    List.iter
      (fun e ->
        List.iter
          (fun s ->
            (match s.kind with
            | AnyOp (Eq, lhs) ->
                let col_maybe_null =
                  List.exists Fun.id
                    (Dataflow.nullability dfa ~env:env' s.query).Dataflow.n_maybe
                  && not (sublink_output_notnull s.query)
                in
                if Dataflow.expr_nullable dfa ~env:env' lhs || col_maybe_null
                then raise Unsafe
            | _ -> ());
            walk ~env:env' s.query)
          (sublinks_of_expr e))
      (root_exprs q);
    List.iter (walk ~env) (Dataflow.inputs q)
  in
  match walk ~env:[] q with () -> true | exception Unsafe -> false

(** [estimates ?mode db q] costs every applicable strategy's optimized
    plan; nullability-safe strategies first (a hard gate, not a cost
    term), cheapest within each group.

    [Cost] (the default) ranks by the statistics-backed {!Estimate}
    interpretation of each optimized plan, adjusted by the feedback
    correction table ({!Estimate.corrected_cost}) so Guard-tripped
    plans sink to the back on repeat queries; the heuristic cost stays
    as tie-break. [Heuristic] is the escape hatch: the original coarse
    tuples-touched model only. *)
let estimates ?(mode = Cost) db (q : query) : estimate list =
  let handle = lazy (Estimate.create db) in
  List.filter_map
    (fun strategy ->
      match Rewrite.rewrite db ~strategy q with
      | q_plus, _ ->
          let plan = Optimizer.optimize db q_plus in
          let est_safe =
            match strategy with
            | Strategy.Unn -> unn_equi_safe db q
            | _ -> true
          in
          let est_heur = cost db plan in
          let est_cost =
            match mode with
            | Heuristic -> est_heur
            | Cost ->
                Estimate.corrected_cost
                  ~fingerprint:(Estimate.fingerprint plan)
                  (Estimate.cost (Lazy.force handle) plan)
          in
          Some { est_strategy = strategy; est_cost; est_heur; est_safe }
      | exception Strategy.Unsupported _ -> None)
    Strategy.all
  |> List.sort (fun a b ->
         match compare b.est_safe a.est_safe with
         | 0 -> (
             match compare a.est_cost b.est_cost with
             | 0 -> compare a.est_heur b.est_heur
             | c -> c)
         | c -> c)

(** [choose ?mode db q] is the estimated-cheapest applicable strategy.
    Raises {!Strategy.Unsupported} when none applies (e.g. LIMIT). *)
let choose ?mode db (q : query) : Strategy.t =
  match estimates ?mode db q with
  | { est_strategy; _ } :: _ -> est_strategy
  | [] -> Strategy.unsupported "no strategy can rewrite this query"

(** [run db ?optimize ?lint ?werror ?budget ?fallback sql] is
    {!Perm.run} with the strategy chosen by the cost model. Returns the
    chosen strategy alongside the result. [?lint] / [?werror] gate the
    plans exactly as in {!Perm.run}; [?budget] / [?fallback] govern the
    execution as in {!Perm.run} (with fallback, the degradation order is
    this module's ranking). *)
(* Record an observed outcome for the chosen strategy's optimized plan
   in the estimate-correction table — the re-ranking signal for repeat
   queries (never a mid-query re-optimization). *)
let note_outcome db q strategy ~obs_rows ~tripped =
  match Rewrite.rewrite db ~strategy q with
  | q_plus, _ ->
      let plan = Optimizer.optimize db q_plus in
      let est = Estimate.create db in
      Estimate.note_feedback
        ~fingerprint:(Estimate.fingerprint plan)
        ~est_rows:(Estimate.rows est plan) ~obs_rows ~tripped
  | exception Strategy.Unsupported _ -> ()

let run db ?mode ?(optimize = true) ?(certify = false) ?(lint = false)
    ?(werror = false) ?budget ?(fallback = false) sql :
    Strategy.t * Perm.result =
  let analyzed =
    Resilience.enter Resilience.Analyze (fun () ->
        Sql_frontend.Analyzer.analyze_string db sql)
  in
  let q = analyzed.Sql_frontend.Analyzer.query in
  if analyzed.Sql_frontend.Analyzer.wants_provenance then begin
    let strategy =
      Resilience.enter Resilience.Rewrite (fun () -> choose ?mode db q)
    in
    let r =
      match
        Perm.run_query db ~strategy ~optimize ~certify ~lint ~werror ?budget
          ~fallback ~provenance:true q
      with
      | r -> r
      | exception Guard.Budget_exceeded trip ->
          (* feed the trip back so repeat rankings demote this plan *)
          note_outcome db q strategy
            ~obs_rows:(float_of_int trip.Guard.t_counters.Guard.c_rows)
            ~tripped:true;
          raise (Guard.Budget_exceeded trip)
    in
    let strategy =
      match r.Perm.ladder with
      | Some l -> l.Resilience.lad_strategy
      | None -> strategy
    in
    note_outcome db q strategy
      ~obs_rows:(float_of_int (Relation.cardinality r.Perm.relation))
      ~tripped:false;
    (strategy, r)
  end
  else
    ( Strategy.Gen,
      Perm.run_query db ~optimize ~certify ~lint ~werror ?budget ~fallback
        ~provenance:false q )

(* Install the cost-model ranking as the fallback ladder's degradation
   order: safest first, cheapest within each group — exactly the order
   of {!estimates}. Programs that link the advisor fall back along
   estimated cost; others keep the static default. *)
let () =
  Resilience.strategy_ranking :=
    fun db q -> List.map (fun e -> e.est_strategy) (estimates db q)
