(** The Perm provenance rewriter.

    [rewrite db ~strategy q] transforms an algebra query [q] into a
    query [q+] whose result is [q]'s result with the contributing base
    relation tuples attached (Section 3.1's single-relation provenance
    representation). Standard operators use rules R1–R5 of Figure 4 plus
    set-operation rules; operators whose conditions or projection lists
    contain sublinks are rewritten by the selected strategy of Figure 5:

    - {b Gen} (G1/G2): joins with the [CrossBase] of each sublink — the
      cross product of the sublink's base relations, each extended by an
      all-NULL tuple — restricted by the simulated-join condition
      [Csub+]. Applicable to all sublinks, including correlated and
      nested ones.
    - {b Left} (L1/L2): left outer join with the rewritten sublink query
      on the influence-role condition [Jsub]. Uncorrelated sublinks only.
    - {b Move} (T1/T2): Left with the sublink hoisted into a projection
      so its result is computed once and reused inside [Jsub].
    - {b Unn} (U1/U2): un-nesting of uncorrelated [EXISTS] (cross
      product) and equality-[ANY] (equi-join) sublinks.

    Nested sublinks are handled by recursion: rewriting a sublink query
    rewrites its own sublinks first (Section 2.7). *)

open Relalg
open Algebra

type state = {
  db : Database.t;
  strategy : Strategy.t;
  naming : Pschema.naming;
}

(* Provenance pieces produced for one sublink. *)
type sublink_part = {
  sp_provs : Pschema.prov_rel list;  (** P(Tsub+) *)
  sp_rewritten : query;  (** Tsub+ *)
  sp_sublink : sublink;  (** the original sublink *)
}

let identity_of_names names = List.map (fun n -> (Attr n, n)) names

(* The single output column of an ANY/ALL/Scalar sublink query. *)
let value_column st (s : sublink) =
  match Scope.out_names st.db s.query with
  | [ col ] -> col
  | cols ->
      Strategy.unsupported "sublink query must have one output column (got %d)"
        (List.length cols)

(* Two-valued truth tests: [e =n true] holds iff [e] is definitely true,
   [e =n false] iff definitely false. On NULL-free data these coincide
   with plain truth/negation. *)
let is_true_2v e = Cmp (EqNull, e, Const Value.vtrue)
let is_false_2v e = Cmp (EqNull, e, Const Value.vfalse)

(* Jsub for a sublink (Section 3.3), with the sublink's value column
   renamed to [val_name] and the sublink's truth value available as
   [csub] (the original sublink expression, or a hoisted attribute for
   the Move strategy).

   The paper's conditions [C'sub \/ not Csub] (ANY) and
   [Csub \/ not C'sub] (ALL) assume two-valued logic. We evaluate the
   influence role with the two-valued tests above so that an input tuple
   whose sublink evaluates to UNKNOWN (possible with NULLs) keeps the
   whole sublink relation as provenance instead of being dropped — on
   NULL-free databases this is exactly the paper's Jsub (see DESIGN.md). *)
let jsub_condition (s : sublink) ~csub ~val_name =
  match s.kind with
  | AnyOp (op, lhs) ->
      Or (is_true_2v (Cmp (op, lhs, Attr val_name)), Not (is_true_2v csub))
  | AllOp (op, lhs) ->
      Or (Not (is_false_2v csub), is_false_2v (Cmp (op, lhs, Attr val_name)))
  | Exists | Scalar -> Const Value.vtrue

let needs_value (s : sublink) =
  match s.kind with AnyOp _ | AllOp _ -> true | Exists | Scalar -> false

(* ----- Unn+ helpers: de-correlation of equality-correlated EXISTS -----

   The paper's Section 5 proposes exploring further un-nesting and
   de-correlation techniques; this implements the classic one (Kim-style
   unnesting): an EXISTS whose correlation consists of top-level
   equality conjuncts becomes an equi-join between the outer query and
   the de-correlated, rewritten sublink query. NOT EXISTS becomes a
   plain filter with all-NULL provenance (for surviving tuples the
   parameterized sublink relation is empty, so NULL padding is exactly
   Figure 2's answer). *)

(* Peel projections/ordering under an EXISTS — they cannot change
   emptiness. *)
let rec strip_nonfiltering = function
  | Project { proj_input; _ } -> strip_nonfiltering proj_input
  | Order (_, input) -> strip_nonfiltering input
  | q -> q

type decorrelated = {
  dc_pairs : (expr * expr) list;  (** (outer expression, inner expression) *)
  dc_query : query;  (** the de-correlated sublink query *)
}

(* Split the sublink query into equality correlation predicates and a
   residual uncorrelated query. Returns [None] when the shape does not
   allow it. *)
let decorrelate_exists db (sub : query) : decorrelated option =
  let rec peel conds q =
    match q with Select (c, input) -> peel (conds @ conjuncts c) input | q -> (conds, q)
  in
  let conds, inner = peel [] (strip_nonfiltering sub) in
  let inner_names = Scope.out_names db inner in
  let local e =
    List.for_all (fun n -> List.mem n inner_names) (Scope.refs_of_expr db e)
  in
  let outer e =
    not (List.exists (fun n -> List.mem n inner_names) (Scope.refs_of_expr db e))
  in
  let step acc c =
    match acc with
    | None -> None
    | Some (pairs, residual) -> (
        match c with
        | _ when has_sublink c ->
            if local c then Some (pairs, residual @ [ c ]) else None
        | Cmp (Eq, e1, e2) when local e1 && outer e2 ->
            Some (pairs @ [ (e2, e1) ], residual)
        | Cmp (Eq, e1, e2) when outer e1 && local e2 ->
            Some (pairs @ [ (e1, e2) ], residual)
        | c when local c -> Some (pairs, residual @ [ c ])
        | _ -> None)
  in
  match List.fold_left step (Some ([], [])) conds with
  | None -> None
  | Some ([], _) -> None (* nothing to de-correlate *)
  | Some (pairs, residual) ->
      let dc_query =
        if residual = [] then inner else Select (conj residual, inner)
      in
      if Scope.free_of_query db dc_query = [] then Some { dc_pairs = pairs; dc_query }
      else None

(* ------------------------------------------------------------------ *)
(* Main recursion                                                       *)
(* ------------------------------------------------------------------ *)

let rec rewrite_query st (q : query) : query * Pschema.prov_rel list =
  match q with
  | Base name ->
      (* R1: duplicate the base attributes under their provenance names. *)
      let pr = Pschema.for_base st.naming st.db name in
      let schema = Relation.schema (Database.find st.db name) in
      let base_cols = identity_of_names (Schema.names schema) in
      let prov_cols =
        List.map (fun c -> (Attr c.Pschema.pc_src, c.Pschema.pc_name)) pr.Pschema.pr_cols
      in
      (project (base_cols @ prov_cols) (Base name), [ pr ])
  | TableExpr _ ->
      (* Literal relations are not base relations: no provenance. *)
      (q, [])
  | Select (cond, input) ->
      if sublinks_of_expr cond = [] then begin
        (* R3 *)
        let input', p = rewrite_query st input in
        (Select (cond, input'), p)
      end
      else rewrite_selection st cond input
  | Project ({ cols; _ } as proj) ->
      if List.concat_map (fun (e, _) -> sublinks_of_expr e) cols = [] then begin
        (* R2 *)
        let input', p = rewrite_query st proj.proj_input in
        ( Project
            { proj with cols = cols @ Pschema.identity_cols p; proj_input = input' },
          p )
      end
      else rewrite_projection st proj
  | Cross (a, b) ->
      (* R4 *)
      let a', pa = rewrite_query st a in
      let b', pb = rewrite_query st b in
      (Cross (a', b'), pa @ pb)
  | Join (cond, a, b) ->
      if sublinks_of_expr cond = [] then begin
        let a', pa = rewrite_query st a in
        let b', pb = rewrite_query st b in
        (Join (cond, a', b'), pa @ pb)
      end
      else
        (* Normalize: a join with sublinks in its condition is a
           selection over a cross product. *)
        rewrite_selection st cond (Cross (a, b))
  | LeftJoin (cond, a, b) ->
      if sublinks_of_expr cond <> [] then
        Strategy.unsupported "sublinks in outer-join conditions";
      let a', pa = rewrite_query st a in
      let b', pb = rewrite_query st b in
      (LeftJoin (cond, a', b'), pa @ pb)
  | Agg spec -> rewrite_agg st spec
  | Union (sem, a, b) -> rewrite_union st sem a b
  | Inter (sem, a, b) -> rewrite_inter st sem a b
  | Diff (sem, a, b) -> rewrite_diff st sem a b
  | Order (keys, input) ->
      if List.concat_map (fun (e, _) -> sublinks_of_expr e) keys <> [] then
        Strategy.unsupported "sublinks in ORDER BY";
      let input', p = rewrite_query st input in
      (Order (keys, input'), p)
  | Limit _ -> Strategy.unsupported "LIMIT has no provenance rewrite"

(* R5: join the aggregate result back to the rewritten input on the
   grouping expressions (null-aware, since GROUP BY treats NULLs as
   equal). A left outer join keeps the single all-NULL-provenance row a
   group-less aggregate produces on empty input. *)
and rewrite_agg st ({ group_by; aggs; agg_input } as spec) =
  let expr_has_sublink e = sublinks_of_expr e <> [] in
  if
    List.exists (fun (e, _) -> expr_has_sublink e) group_by
    || List.exists
         (fun c -> match c.agg_arg with Some e -> expr_has_sublink e | None -> false)
         aggs
  then Strategy.unsupported "sublinks in GROUP BY expressions or aggregate arguments";
  let input', p = rewrite_query st agg_input in
  let original = Agg spec in
  let hat =
    List.map
      (fun (e, name) -> (e, name, Pschema.fresh st.naming ("hat_" ^ name)))
      group_by
  in
  let right =
    project
      (List.map (fun (e, _, h) -> (e, h)) hat @ Pschema.identity_cols p)
      input'
  in
  let join_cond =
    conj (List.map (fun (_, name, h) -> Cmp (EqNull, Attr name, Attr h)) hat)
  in
  let joined = LeftJoin (join_cond, original, right) in
  let out_names =
    List.map snd group_by @ List.map (fun c -> c.agg_name) aggs
  in
  (project (identity_of_names out_names @ Pschema.identity_cols p) joined, p)

(* Union: each arm keeps its own provenance and NULL-pads the other's. *)
and rewrite_union st sem a b =
  let a', pa = rewrite_query st a in
  let b', pb = rewrite_query st b in
  let a_names = Scope.out_names st.db a in
  let b_names = Scope.out_names st.db b in
  let left_arm =
    project
      (identity_of_names a_names @ Pschema.identity_cols pa @ Pschema.null_cols pb)
      a'
  in
  let right_arm =
    project
      (List.map2 (fun bn an -> (Attr bn, an)) b_names a_names
      @ Pschema.null_cols pa @ Pschema.identity_cols pb)
      b'
  in
  (Union (sem, left_arm, right_arm), pa @ pb)

(* Intersection: a result tuple's provenance combines the witnesses of
   both arms, found by null-aware joins on the result attributes. *)
and rewrite_inter st sem a b =
  let a', pa = rewrite_query st a in
  let b', pb = rewrite_query st b in
  let a_names = Scope.out_names st.db a in
  let b_names = Scope.out_names st.db b in
  let original = Inter (sem, a, b) in
  let l_names = List.map (fun n -> Pschema.fresh st.naming ("l_" ^ n)) a_names in
  let r_names = List.map (fun n -> Pschema.fresh st.naming ("r_" ^ n)) a_names in
  let left_side =
    project
      (List.map2 (fun n l -> (Attr n, l)) a_names l_names @ Pschema.identity_cols pa)
      a'
  in
  let right_side =
    project
      (List.map2 (fun n r -> (Attr n, r)) b_names r_names @ Pschema.identity_cols pb)
      b'
  in
  let eqs names fresh =
    conj (List.map2 (fun n f -> Cmp (EqNull, Attr n, Attr f)) names fresh)
  in
  let joined =
    Join (eqs a_names r_names, Join (eqs a_names l_names, original, left_side), right_side)
  in
  ( project
      (identity_of_names a_names @ Pschema.identity_cols pa @ Pschema.identity_cols pb)
      joined,
    pa @ pb )

(* Difference: only the left arm contributes witnesses (Cui–Widom); the
   right arm's provenance attributes are NULL-padded but kept in the
   schema since its relations are accessed by the query. *)
and rewrite_diff st sem a b =
  let a', pa = rewrite_query st a in
  let _b', pb = rewrite_query st b in
  let a_names = Scope.out_names st.db a in
  let original = Diff (sem, a, b) in
  let l_names = List.map (fun n -> Pschema.fresh st.naming ("l_" ^ n)) a_names in
  let left_side =
    project
      (List.map2 (fun n l -> (Attr n, l)) a_names l_names @ Pschema.identity_cols pa)
      a'
  in
  let eq_cond =
    conj (List.map2 (fun n l -> Cmp (EqNull, Attr n, Attr l)) a_names l_names)
  in
  let joined = Join (eq_cond, original, left_side) in
  ( project
      (identity_of_names a_names @ Pschema.identity_cols pa @ Pschema.null_cols pb)
      joined,
    pa @ pb )

(* ------------------------------------------------------------------ *)
(* Sublink strategy dispatch                                            *)
(* ------------------------------------------------------------------ *)

and rewrite_selection st cond input =
  match st.strategy with
  | Strategy.Gen -> gen_selection st cond input
  | Strategy.Left -> left_selection st cond input
  | Strategy.Move -> move_selection st cond input
  | Strategy.Unn -> unn_selection st cond input

and rewrite_projection st proj =
  match st.strategy with
  | Strategy.Gen -> gen_projection st proj
  | Strategy.Left -> left_projection st proj
  | Strategy.Move -> move_projection st proj
  | Strategy.Unn ->
      Strategy.unsupported "the Unn strategy has no rewrite for projection sublinks"

and rewrite_sublink_part st (s : sublink) : sublink_part =
  let rewritten, provs = rewrite_query st s.query in
  { sp_provs = provs; sp_rewritten = rewritten; sp_sublink = s }

(* ------------------------------------------------------------------ *)
(* Gen strategy (G1 / G2)                                               *)
(* ------------------------------------------------------------------ *)

(* CrossBase(Tsub): the cross product of the sublink's base relations,
   each unioned with an all-NULL tuple and renamed to the provenance
   attributes assigned to Tsub+. *)
and cross_base st (provs : Pschema.prov_rel list) : query option =
  let one (pr : Pschema.prov_rel) =
    let rel = Database.find st.db pr.Pschema.pr_rel in
    let schema = Relation.schema rel in
    let null_row = TableExpr (Relation.make schema [ Tuple.nulls (Schema.arity schema) ]) in
    let extended = Union (Bag, Base pr.Pschema.pr_rel, null_row) in
    project
      (List.map (fun c -> (Attr c.Pschema.pc_src, c.Pschema.pc_name)) pr.Pschema.pr_cols)
      extended
  in
  match provs with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun acc pr -> Cross (acc, one pr)) (one first) rest)

(* Csub+ (Section 3.3): a tuple of the CrossBase belongs to the
   provenance iff it appears in Tsub+ restricted by Jsub — or the
   sublink query is empty and the tuple is all-NULL. *)
and csub_plus st (part : sublink_part) : expr option =
  let s = part.sp_sublink in
  let prov_cols = Pschema.cols part.sp_provs in
  if prov_cols = [] then None
  else begin
    let primes =
      List.map
        (fun c -> (c.Pschema.pc_name, Pschema.fresh st.naming "p"))
        prov_cols
    in
    let value_cols, val_name =
      if needs_value s then begin
        let col = value_column st s in
        let v = Pschema.fresh st.naming "sub_val" in
        ([ (Attr col, v) ], v)
      end
      else ([], "")
    in
    let inner_proj =
      project
        (value_cols @ List.map (fun (p, pr) -> (Attr p, pr)) primes)
        part.sp_rewritten
    in
    let jsub = jsub_condition s ~csub:(Sublink s) ~val_name in
    let eq_cond =
      conj (List.map (fun (p, pr) -> Cmp (EqNull, Attr p, Attr pr)) primes)
    in
    let member = exists (Select (And (jsub, eq_cond), inner_proj)) in
    let empty_case =
      And
        ( Not (exists s.query),
          conj (List.map (fun c -> IsNull (Attr c.Pschema.pc_name)) prov_cols) )
    in
    Some (Or (member, empty_case))
  end

and gen_parts st sublinks =
  let parts = List.map (rewrite_sublink_part st) sublinks in
  let crosses = List.filter_map (fun p -> cross_base st p.sp_provs) parts in
  let conds = List.filter_map (csub_plus st) parts in
  let provs = List.concat_map (fun p -> p.sp_provs) parts in
  (crosses, conds, provs)

and gen_selection st cond input =
  let input', pin = rewrite_query st input in
  let crosses, conds, psub = gen_parts st (sublinks_of_expr cond) in
  let crossed = List.fold_left (fun acc cb -> Cross (acc, cb)) input' crosses in
  (Select (conj (cond :: conds), crossed), pin @ psub)

(* G2, restructured so that the filter runs below the projection, where
   the input attributes referenced by Jsub are still in scope (see
   DESIGN.md). *)
and gen_projection st { distinct; cols; proj_input } =
  let input', pin = rewrite_query st proj_input in
  let sublinks = List.concat_map (fun (e, _) -> sublinks_of_expr e) cols in
  let crosses, conds, psub = gen_parts st sublinks in
  let crossed = List.fold_left (fun acc cb -> Cross (acc, cb)) input' crosses in
  let filtered = if conds = [] then crossed else Select (conj conds, crossed) in
  let out_cols = cols @ Pschema.identity_cols pin @ Pschema.identity_cols psub in
  (Project { distinct; cols = out_cols; proj_input = filtered }, pin @ psub)

(* ------------------------------------------------------------------ *)
(* Left strategy (L1 / L2)                                              *)
(* ------------------------------------------------------------------ *)

and require_uncorrelated st strategy_name (s : sublink) =
  if not (Scope.is_uncorrelated st.db s) then
    Strategy.unsupported "the %s strategy requires uncorrelated sublinks" strategy_name

(* Left-outer-join the rewritten sublink queries onto [acc]. [csub_of]
   supplies the sublink's truth value for Jsub (the sublink itself for
   Left, the hoisted attribute for Move). *)
and sublink_joins st strategy_name ~csub_of acc sublinks =
  List.fold_left
    (fun (acc, provs) s ->
      require_uncorrelated st strategy_name s;
      let part = rewrite_sublink_part st s in
      if part.sp_provs = [] then (acc, provs)
      else begin
        let value_cols, val_name =
          if needs_value s then begin
            let col = value_column st s in
            let v = Pschema.fresh st.naming "sub_val" in
            ([ (Attr col, v) ], v)
          end
          else ([], "")
        in
        let right =
          project (value_cols @ Pschema.identity_cols part.sp_provs) part.sp_rewritten
        in
        let jsub = jsub_condition s ~csub:(csub_of s) ~val_name in
        (LeftJoin (jsub, acc, right), provs @ part.sp_provs)
      end)
    (acc, []) sublinks

and left_selection st cond input =
  let input', pin = rewrite_query st input in
  let input_names = Scope.out_names st.db input in
  let joined, psub =
    sublink_joins st "Left" ~csub_of:(fun s -> Sublink s) input'
      (sublinks_of_expr cond)
  in
  let filtered = Select (cond, joined) in
  ( project
      (identity_of_names input_names @ Pschema.identity_cols pin
      @ Pschema.identity_cols psub)
      filtered,
    pin @ psub )

and left_projection st { distinct; cols; proj_input } =
  let input', pin = rewrite_query st proj_input in
  let sublinks = List.concat_map (fun (e, _) -> sublinks_of_expr e) cols in
  let joined, psub =
    sublink_joins st "Left" ~csub_of:(fun s -> Sublink s) input' sublinks
  in
  let out_cols = cols @ Pschema.identity_cols pin @ Pschema.identity_cols psub in
  (Project { distinct; cols = out_cols; proj_input = joined }, pin @ psub)

(* ------------------------------------------------------------------ *)
(* Move strategy (T1 / T2)                                              *)
(* ------------------------------------------------------------------ *)

(* Hoist every sublink into a projection column so it is evaluated once
   and referenced both in the target condition and in Jsub. *)
and hoist_sublinks st input' input_names pin sublinks =
  let hoisted =
    List.map (fun s -> (s, Pschema.fresh st.naming "c")) sublinks
  in
  let inner =
    project
      (identity_of_names input_names @ Pschema.identity_cols pin
      @ List.map (fun (s, c) -> (Sublink s, c)) hoisted)
      input'
  in
  let subst = List.map (fun (s, c) -> (s.id, Attr c)) hoisted in
  let csub_of s = List.assoc s.id subst in
  (inner, subst, csub_of)

and move_selection st cond input =
  let input', pin = rewrite_query st input in
  let input_names = Scope.out_names st.db input in
  let sublinks = sublinks_of_expr cond in
  List.iter (require_uncorrelated st "Move") sublinks;
  let inner, subst, csub_of = hoist_sublinks st input' input_names pin sublinks in
  let joined, psub = sublink_joins st "Move" ~csub_of inner sublinks in
  let ctar = replace_sublinks subst cond in
  let filtered = Select (ctar, joined) in
  ( project
      (identity_of_names input_names @ Pschema.identity_cols pin
      @ Pschema.identity_cols psub)
      filtered,
    pin @ psub )

and move_projection st { distinct; cols; proj_input } =
  let input', pin = rewrite_query st proj_input in
  let input_names = Scope.out_names st.db proj_input in
  let sublinks = List.concat_map (fun (e, _) -> sublinks_of_expr e) cols in
  List.iter (require_uncorrelated st "Move") sublinks;
  let inner, subst, csub_of = hoist_sublinks st input' input_names pin sublinks in
  let joined, psub = sublink_joins st "Move" ~csub_of inner sublinks in
  let out_cols =
    List.map (fun (e, n) -> (replace_sublinks subst e, n)) cols
    @ Pschema.identity_cols pin @ Pschema.identity_cols psub
  in
  (Project { distinct; cols = out_cols; proj_input = joined }, pin @ psub)

(* ------------------------------------------------------------------ *)
(* Unn strategy (U1 / U2)                                               *)
(* ------------------------------------------------------------------ *)

and unn_selection st cond input =
  let conjs = conjuncts cond in
  let plain, linked = List.partition (fun c -> sublinks_of_expr c = []) conjs in
  let classify = function
    | Sublink ({ kind = Exists; _ } as s) ->
        if Scope.is_uncorrelated st.db s then `Exists s
        else begin
          match decorrelate_exists st.db s.query with
          | Some dc -> `ExistsCorr (s, dc)
          | None ->
              Strategy.unsupported
                "the Unn strategy cannot de-correlate this EXISTS sublink"
        end
    | Not (Sublink ({ kind = Exists; _ } as s)) -> `NotExists s
    | Not (Sublink ({ kind = AnyOp (Eq, _); _ } as s)) ->
        (* NOT IN: for surviving tuples the ANY-sublink is false, so the
           whole sublink relation contributes (Figure 2, reqfalse). *)
        require_uncorrelated st "Unn" s;
        `NotAnyEq s
    | Sublink ({ kind = AnyOp (Eq, lhs); _ } as s) ->
        require_uncorrelated st "Unn" s;
        `AnyEq (s, lhs)
    | c ->
        Strategy.unsupported
          "the Unn strategy only unnests top-level EXISTS, NOT EXISTS or \
           equality-ANY sublinks (found %s)"
          (Pp.expr_to_string c)
  in
  let classified = List.map classify linked in
  let input', pin = rewrite_query st input in
  let input_names = Scope.out_names st.db input in
  let base = if plain = [] then input' else Select (conj plain, input') in
  (* accumulate the plan plus, per sublink, its provenance relations and
     the projection columns exposing them (identity or NULL padding) *)
  let joined, psub, pcols =
    List.fold_left
      (fun (acc, provs, pcols) c ->
        match c with
        | `Exists s ->
            (* U1: sigma_EXISTS(T)+ = T+ x Tsub+ *)
            let part = rewrite_sublink_part st s in
            if part.sp_provs = [] then
              (* No provenance to attach, but the filter must remain. *)
              (Select (Sublink s, acc), provs, pcols)
            else
              let right =
                project (Pschema.identity_cols part.sp_provs) part.sp_rewritten
              in
              ( Cross (acc, right),
                provs @ part.sp_provs,
                pcols @ Pschema.identity_cols part.sp_provs )
        | `ExistsCorr (_, dc) ->
            (* Unn+ (beyond the paper's U1): equality-correlated EXISTS
               becomes an equi-join with the de-correlated Tsub+. *)
            let rewritten, sub_provs = rewrite_query st dc.dc_query in
            let keyed =
              List.map
                (fun (outer_e, inner_e) ->
                  (outer_e, inner_e, Pschema.fresh st.naming "k"))
                dc.dc_pairs
            in
            let right =
              project
                (List.map (fun (_, inner_e, k) -> (inner_e, k)) keyed
                @ Pschema.identity_cols sub_provs)
                rewritten
            in
            let join_cond =
              conj (List.map (fun (outer_e, _, k) -> Cmp (Eq, outer_e, Attr k)) keyed)
            in
            ( Join (join_cond, acc, right),
              provs @ sub_provs,
              pcols @ Pschema.identity_cols sub_provs )
        | `NotExists s ->
            (* surviving tuples have an empty parameterized sublink
               relation: filter, NULL-pad the provenance *)
            let _, sub_provs = rewrite_query st s.query in
            ( Select (Not (Sublink s), acc),
              provs @ sub_provs,
              pcols @ Pschema.null_cols sub_provs )
        | `NotAnyEq s ->
            (* filter with the original condition, then attach every
               tuple of Tsub+ as witness; the condition-true outer join
               degrades to NULL padding when the sublink is empty *)
            let rewritten, sub_provs = rewrite_query st s.query in
            let right = project (Pschema.identity_cols sub_provs) rewritten in
            ( LeftJoin (Const Value.vtrue, Select (Not (Sublink s), acc), right),
              provs @ sub_provs,
              pcols @ Pschema.identity_cols sub_provs )
        | `AnyEq (s, lhs) ->
            (* U2: sigma_{x = ANY}(T)+ = T+ join_{x = val} Tsub+ *)
            let part = rewrite_sublink_part st s in
            let col = value_column st s in
            let v = Pschema.fresh st.naming "sub_val" in
            let right =
              project ((Attr col, v) :: Pschema.identity_cols part.sp_provs)
                part.sp_rewritten
            in
            ( Join (Cmp (Eq, lhs, Attr v), acc, right),
              provs @ part.sp_provs,
              pcols @ Pschema.identity_cols part.sp_provs ))
      (base, [], []) classified
  in
  ( project (identity_of_names input_names @ Pschema.identity_cols pin @ pcols) joined,
    pin @ psub )

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

(** [rewrite db ~strategy q] is [(q+, provs)]: the provenance-propagating
    query and the description of its provenance attributes, one
    {!Pschema.prov_rel} per base relation access of [q]. Raises
    {!Strategy.Unsupported} when [strategy] cannot handle [q]. *)
let rewrite db ~strategy (q : query) : query * Pschema.prov_rel list =
  let st = { db; strategy; naming = Pschema.create_naming () } in
  let q_plus, provs = rewrite_query st q in
  (* Normalize to the representation of Section 3.1: the original result
     attributes first, then P(R1), ..., P(Rn). Rule R4 interleaves
     provenance attributes at cross products; this final projection
     restores the canonical order. *)
  let orig_names = Scope.out_names db q in
  let normalized =
    project (identity_of_names orig_names @ Pschema.identity_cols provs) q_plus
  in
  (normalized, provs)

let unnestable_exists db sub = Option.is_some (decorrelate_exists db sub)
