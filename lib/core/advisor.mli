(** Cost-based strategy selection — the "provenance-aware cost model"
    that the paper's evaluation proposes as future work. The model is a
    coarse tuples-touched estimate whose only job is to rank the
    strategies' rewritten plans, which differ by orders of magnitude. *)

open Relalg

(** Estimated output cardinality of a plan. *)
val card : Database.t -> Algebra.query -> float

(** Estimated cost (tuples touched) of evaluating a plan, accounting
    for hash-joinable conditions and per-binding sublink memoization. *)
val cost : Database.t -> Algebra.query -> float

type estimate = {
  est_strategy : Strategy.t;
  est_cost : float;  (** the ranking cost under the selected mode *)
  est_heur : float;  (** the heuristic tuples-touched cost (tie-break) *)
  est_safe : bool;
      (** [false] only for Unn on a query where the {!Dataflow}
          nullability analysis cannot prove every [= ANY] equality
          NULL-free — its de-correlated equi-join is then ranked after
          the strategies that keep the original sublink semantics. *)
}

(** Ranking mode: [Cost] (default) ranks by the statistics-backed
    {!Relalg.Estimate} interpretation of each strategy's optimized
    plan, corrected by observed feedback ({!Relalg.Estimate.corrected_cost});
    [Heuristic] is the escape hatch to the original coarse model.
    Safety gates apply identically in both modes — they are hard
    constraints, never cost terms. *)
type mode = Cost | Heuristic

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** [unn_equi_safe db q]: no NULL can reach any [= ANY] equality of
    [q]'s sublinks, so Unn's two-valued equi-join is exact — proved by
    the {!Dataflow} nullability lattice, or, where the lattice is too
    coarse, by a {!Symbolic} filter-implication proof that the
    sublink's own selection filters NULLs out ([cond ⟹ c IS NOT
    NULL]). Gates [est_safe] for Unn. *)
val unn_equi_safe : Database.t -> Algebra.query -> bool

(** [estimates ?mode db q]: every applicable strategy's optimized-plan
    cost; nullability-safe strategies first, cheapest within each
    group (heuristic cost breaks ties). *)
val estimates : ?mode:mode -> Database.t -> Algebra.query -> estimate list

(** [choose ?mode db q] is the estimated-cheapest applicable strategy
    whose rewrite is nullability-safe (falling back to unsafe ones when
    nothing else applies); raises {!Strategy.Unsupported} when no
    strategy applies. *)
val choose : ?mode:mode -> Database.t -> Algebra.query -> Strategy.t

(** [run db ?optimize ?certify ?lint ?werror ?budget ?fallback sql] is
    {!Perm.run} with an advisor-chosen strategy; returns the strategy
    that answered alongside the result (with [~fallback:true] that may
    be a later rung of the ladder, not the initial choice). [?lint] /
    [?werror] gate the plans as in {!Perm.run}; [?certify] translation-
    validates the optimizer's rewrites as in {!Perm.run}; [?budget] /
    [?fallback] govern the execution as in {!Perm.run}.

    Observed outcomes (result row counts, Guard budget trips) are
    recorded in the {!Relalg.Estimate} feedback table keyed by the
    chosen plan's fingerprint, so repeated queries re-rank with
    corrected costs — re-ranking only, never mid-query
    re-optimization.

    Linking this module also installs the cost-model ranking as
    {!Resilience.strategy_ranking}, so fallback everywhere degrades
    along estimated cost (safe strategies first). *)
val run :
  Database.t ->
  ?mode:mode ->
  ?optimize:bool ->
  ?certify:bool ->
  ?lint:bool ->
  ?werror:bool ->
  ?budget:Guard.budget ->
  ?fallback:bool ->
  string ->
  Strategy.t * Perm.result
