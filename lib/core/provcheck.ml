(** Provenance-contract verification — see provcheck.mli. *)

open Relalg
open Algebra

let diag = Lint.diag

(* ------------------------------------------------------------------ *)
(* Strategy preconditions                                               *)
(* ------------------------------------------------------------------ *)

(* Sublinks of a site's root expressions, numbered like the site
   walker's [sublink[k]] path segments. *)
let site_sublinks (s : Lint.site) =
  List.concat_map (fun (_, e) -> sublinks_of_expr e) s.Lint.s_exprs
  |> List.mapi (fun i sub ->
         (s.Lint.s_path @ [ Printf.sprintf "sublink[%d]" (i + 1) ], sub))

let uncorrelated_precondition db name (s : Lint.site) =
  List.filter_map
    (fun (path, sub) ->
      if Scope.is_uncorrelated db sub then None
      else
        Some
          (diag Error ~rule:"strategy-precondition" ~path
             (Printf.sprintf
                "the %s strategy requires uncorrelated sublinks, but this one \
                 references the enclosing scope"
                name)))
    (site_sublinks s)

(* Mirror of [Rewrite.unn_selection]'s conjunct classification: which
   sublink forms the Unn strategy can un-nest. *)
let unn_precondition db (s : Lint.site) =
  let classify path = function
    | Sublink ({ kind = Exists; _ } as sub) ->
        if
          Scope.is_uncorrelated db sub
          || Rewrite.unnestable_exists db sub.query
        then []
        else
          [
            diag Error ~rule:"strategy-precondition" ~path
              "the Unn strategy cannot de-correlate this EXISTS sublink (its \
               correlation is not a conjunction of top-level equalities)";
          ]
    | Not (Sublink { kind = Exists; _ }) -> []
    | (Sublink ({ kind = AnyOp (Eq, _); _ } as sub) | Not (Sublink ({ kind = AnyOp (Eq, _); _ } as sub)))
      ->
        if Scope.is_uncorrelated db sub then []
        else
          [
            diag Error ~rule:"strategy-precondition" ~path
              "the Unn strategy requires uncorrelated equality-ANY sublinks";
          ]
    | c ->
        if has_sublink c then
          [
            diag Error ~rule:"strategy-precondition" ~path
              (Printf.sprintf
                 "the Unn strategy only unnests top-level EXISTS, NOT EXISTS \
                  or equality-ANY sublinks (found %s)"
                 (Pp.expr_to_string c));
          ]
        else []
  in
  match s.Lint.s_query with
  | Select (c, _) | Join (c, _, _) ->
      (* a join with sublinks in its condition is normalized to a
         selection over a cross product before the strategy applies *)
      List.concat_map (classify s.Lint.s_path) (conjuncts c)
  | Project { cols; _ }
    when List.exists (fun (e, _) -> has_sublink e) cols ->
      [
        diag Error ~rule:"strategy-precondition" ~path:s.Lint.s_path
          "the Unn strategy has no rewrite for projection sublinks";
      ]
  | _ -> []

let precondition db ~strategy q =
  let per_site =
    match strategy with
    | Strategy.Gen -> fun _ -> []
    | Strategy.Left -> uncorrelated_precondition db "Left"
    | Strategy.Move -> uncorrelated_precondition db "Move"
    | Strategy.Unn -> unn_precondition db
  in
  List.concat_map per_site (Lint.sites db q)

(* ------------------------------------------------------------------ *)
(* The rewrite contract                                                 *)
(* ------------------------------------------------------------------ *)

let infer_opt db q =
  match Typecheck.infer db q with
  | s -> Ok s
  | exception Typecheck.Type_error m -> Error m
  | exception Schema.Schema_error m -> Error m
  | exception Database.Unknown_relation r -> Error ("unknown relation " ^ r)

let attr_to_string (a : Schema.attr) =
  Printf.sprintf "%s:%s" a.Schema.name (Vtype.to_string a.Schema.ty)

let attrs_to_string attrs =
  "(" ^ String.concat ", " (List.map attr_to_string attrs) ^ ")"

let schema_rule db ~original rewritten provs =
  match (infer_opt db original, infer_opt db rewritten) with
  | Error m, _ ->
      [
        diag Error ~rule:"prov-schema" ~path:[]
          ("the original query does not typecheck: " ^ m);
      ]
  | _, Error m ->
      [
        diag Error ~rule:"prov-schema" ~path:[]
          ("the rewritten query does not typecheck: " ^ m);
      ]
  | Ok so, Ok sr ->
      let expected = Schema.to_list so @ Pschema.schema_attrs provs in
      let actual = Schema.to_list sr in
      if actual = expected then []
      else
        [
          diag Error ~rule:"prov-schema" ~path:[]
            (Printf.sprintf
               "rewritten schema %s differs from original schema plus \
                provenance attributes %s"
               (attrs_to_string actual) (attrs_to_string expected));
        ]

let order_rule ~original provs =
  let expected = base_relations original in
  let actual = List.map (fun pr -> pr.Pschema.pr_rel) provs in
  if actual = expected then []
  else
    [
      diag Error ~rule:"prov-order" ~path:[]
        (Printf.sprintf
           "provenance relations [%s] are not the base-relation accesses of \
            the original in traversal order [%s]"
           (String.concat "; " actual)
           (String.concat "; " expected));
    ]

let prefix_rule db ~original rewritten provs =
  let fail msg = [ diag Error ~rule:"prov-prefix" ~path:[] msg ] in
  match rewritten with
  | Project { distinct = false; cols; _ } -> (
      let orig_names = Scope.out_names db original in
      let expected =
        List.map (fun n -> (Attr n, n)) orig_names @ Pschema.identity_cols provs
      in
      if cols = expected then []
      else
        let rec first_mismatch i = function
          | [], [] -> None
          | (_, n) :: _, [] -> Some (i, Printf.sprintf "unexpected extra column %S" n)
          | [], (_, n) :: _ -> Some (i, Printf.sprintf "missing column %S" n)
          | (e, n) :: _, ((e', n') : expr * string) :: _ when e <> e' || n <> n' ->
              Some
                ( i,
                  Printf.sprintf "found %s, expected %s"
                    (Pp.expr_to_string e ^ " AS " ^ n)
                    (Pp.expr_to_string e' ^ " AS " ^ n') )
          | _ :: cs, _ :: es -> first_mismatch (i + 1) (cs, es)
        in
        match first_mismatch 0 (cols, expected) with
        | Some (i, detail) ->
            fail
              (Printf.sprintf
                 "the root projection is not the identity pass-through of the \
                  original attributes then the provenance attributes (column \
                  %d: %s)"
                 (i + 1) detail)
        | None -> [])
  | _ ->
      fail
        "the rewritten query's root is not the normalizing identity \
         projection"

(* Dataflow-backed: each provenance attribute must transitively trace
   back to the base column it claims to copy. Empty lineage is
   tolerated — the rewrites legitimately NULL-pad provenance columns
   (set-operation arms, Gen's empty-sublink case, unmatched outer-join
   rows), and a typed NULL has no base sources. *)
let lineage_rule db rewritten provs =
  let dfa = Dataflow.create db in
  let fact = Dataflow.lineage dfa rewritten in
  let deps_to_string deps =
    String.concat ", "
      (List.map (fun (r, c) -> r ^ "." ^ c) (Dataflow.Deps.elements deps))
  in
  List.concat_map
    (fun (pr : Pschema.prov_rel) ->
      List.filter_map
        (fun (pc : Pschema.prov_col) ->
          let deps = Dataflow.attr_deps fact pc.Pschema.pc_name in
          if
            Dataflow.Deps.is_empty deps
            || Dataflow.Deps.mem (pr.Pschema.pr_rel, pc.Pschema.pc_src) deps
          then None
          else
            Some
              (diag Error ~rule:"prov-lineage" ~path:[]
                 (Printf.sprintf
                    "provenance attribute %S traces to {%s}, which does not \
                     include its claimed source %s.%s"
                    pc.Pschema.pc_name (deps_to_string deps) pr.Pschema.pr_rel
                    pc.Pschema.pc_src)))
        pr.Pschema.pr_cols)
    provs

let contract db ~original rewritten provs =
  schema_rule db ~original rewritten provs
  @ order_rule ~original provs
  @ prefix_rule db ~original rewritten provs
  @ lineage_rule db rewritten provs

(* ------------------------------------------------------------------ *)
(* Gen's CrossBase presence                                             *)
(* ------------------------------------------------------------------ *)

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* A base-relation access at sublink nesting depth d is re-scanned by
   the CrossBase of each of its d enclosing sublinks. *)
let gen_required db original =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Lint.site) ->
      match s.Lint.s_query with
      | Base r ->
          let depth =
            List.length
              (List.filter
                 (fun seg ->
                   String.length seg >= 8 && String.sub seg 0 8 = "sublink[")
                 s.Lint.s_path)
          in
          if depth > 0 then bump tbl r depth
      | _ -> ())
    (Lint.sites db original);
  tbl

let is_null_row rel =
  Relation.cardinality rel = 1
  && List.for_all Value.is_null (Tuple.to_list (List.hd (Relation.tuples rel)))

let crossbase_scans q =
  let tbl = Hashtbl.create 8 in
  let rec walk q =
    (match q with
    | Union (Bag, Base r, TableExpr rel) when is_null_row rel -> bump tbl r 1
    | _ -> ());
    ignore (map_queries (fun c -> walk c; c) q)
  in
  walk q;
  tbl

let gen_crossbase db ~original rewritten =
  let required = gen_required db original in
  let actual = crossbase_scans rewritten in
  Hashtbl.fold
    (fun r need acc ->
      let have = Option.value ~default:0 (Hashtbl.find_opt actual r) in
      if have >= need then acc
      else
        diag Error ~rule:"gen-crossbase" ~path:[]
          (Printf.sprintf
             "the Gen rewrite should contain %d NULL-extended CrossBase \
              scan%s of %S but has %d"
             need
             (if need > 1 then "s" else "")
             r have)
        :: acc)
    required []

(* ------------------------------------------------------------------ *)
(* Optimizer guard                                                      *)
(* ------------------------------------------------------------------ *)

let error_counts db q =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Lint.diagnostic) -> bump tbl d.Lint.rule 1)
    (Lint.errors (Lint.lint ~rules:Lint.plan_rules db q));
  tbl

let optimizer_guard db ~before after =
  let schema =
    match (infer_opt db before, infer_opt db after) with
    | Ok sb, Ok sa when Schema.equal sb sa -> []
    | Ok sb, Ok sa ->
        [
          diag Error ~rule:"optimizer-schema" ~path:[]
            (Printf.sprintf
               "optimization changed the typed schema from %s to %s"
               (Schema.to_string sb) (Schema.to_string sa));
        ]
    | _, Error m ->
        [
          diag Error ~rule:"optimizer-schema" ~path:[]
            ("the optimized plan does not typecheck: " ^ m);
        ]
    | Error m, _ ->
        [
          diag Error ~rule:"optimizer-schema" ~path:[]
            ("the pre-optimization plan does not typecheck: " ^ m);
        ]
  in
  let cb = error_counts db before and ca = error_counts db after in
  let regressions =
    Hashtbl.fold
      (fun rule n acc ->
        let before_n = Option.value ~default:0 (Hashtbl.find_opt cb rule) in
        if n > before_n then
          diag Error ~rule:"optimizer-diagnostics" ~path:[]
            (Printf.sprintf
               "optimization increased error diagnostics of rule %S from %d \
                to %d"
               rule before_n n)
          :: acc
        else acc)
      ca []
  in
  schema @ regressions

(* ------------------------------------------------------------------ *)
(* Bounded oracle ground truth (rule: prov-oracle)                     *)
(* ------------------------------------------------------------------ *)

let oracle_check db ~original rewritten =
  let budget = Guard.budget ~timeout:1.0 ~max_rows:200_000 () in
  let canon rows = List.sort_uniq Tuple.compare rows in
  let check_one assoc =
    let wdb = Database.of_list assoc in
    match
      Guard.with_budget (Some budget) (fun () ->
          let expected = canon (Oracle.provenance wdb original) in
          let actual =
            canon (Relation.tuples (Eval.query_reference wdb rewritten))
          in
          (expected, actual))
    with
    | exception
        ( Oracle.Unsupported _ | Guard.Budget_exceeded _ | Eval.Eval_error _
        | Value.Type_clash _ | Schema.Schema_error _ | Typecheck.Type_error _
        | Relation.Relation_error _ | Database.Unknown_relation _
        | Builtin.Unknown_function _ | Not_found | Invalid_argument _
        | Division_by_zero | Failure _ ) ->
        (* the oracle or the plan legitimately gives up on this witness
           (unsupported form, budget trip, runtime error): not a defect *)
        []
    | expected, actual ->
        if List.equal Tuple.equal expected actual then []
        else
          [
            diag Error ~rule:"prov-oracle" ~path:[]
              (Printf.sprintf
                 "rewritten plan disagrees with the enumeration oracle on a \
                  witness database (%d oracle rows vs %d plan rows, \
                  set-level)"
                 (List.length expected) (List.length actual));
          ]
  in
  (* stop at the first refuting witness database *)
  let rec first = function
    | [] -> []
    | wdb :: rest -> (
        match check_one wdb with [] -> first rest | ds -> ds)
  in
  first (Certify.witness_databases db original)

(* ------------------------------------------------------------------ *)
(* Combined check                                                       *)
(* ------------------------------------------------------------------ *)

let check db ~strategy ?optimized ~original (rewritten, provs) =
  precondition db ~strategy original
  @ contract db ~original rewritten provs
  @ (match strategy with
    | Strategy.Gen -> gen_crossbase db ~original rewritten
    | _ -> [])
  @
  match optimized with
  | None -> []
  | Some after -> optimizer_guard db ~before:rewritten after
