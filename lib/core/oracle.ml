(** Direct (non-rewriting) provenance computation — the test oracle.

    This module computes, by enumeration, the provenance relation that
    Definitions 1 and 2 of the paper prescribe: for every result tuple
    of a query, one output row per combination of contributing base
    relation tuples. The layout matches the rewriter's: the result tuple
    first, then the provenance of the operator inputs, then — for
    operators with sublinks — the provenance of each sublink in
    left-to-right order (Figure 2's [Tsub*] sets, under the extended
    Definition 2 which fixes every sublink's truth value).

    The implementation shares only the expression evaluator with the
    rewriter, so agreement between [Eval (Rewrite q)] and [Oracle q] is a
    meaningful end-to-end check of Theorems 1–4. *)

open Relalg
open Algebra

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(** One provenance row: a result tuple plus the flattened witness values
    (one slot per attribute of each base relation access; NULL = the
    relation did not contribute). *)
type prow = { pt : Tuple.t; pw : Value.t array }

(* Normalize operators the oracle treats uniformly. *)
let normalize = function
  | Join (c, a, b) when sublinks_of_expr c <> [] -> Select (c, Cross (a, b))
  | q -> q

(** Width (number of witness slots) of the provenance of [q], matching
    the rewriter's provenance schema. *)
let rec width db (q : query) : int =
  let expr_width e =
    List.fold_left (fun acc s -> acc + width db s.query) 0 (sublinks_of_expr e)
  in
  match normalize q with
  | Base name -> Schema.arity (Relation.schema (Database.find db name))
  | TableExpr _ -> 0
  | Select (c, input) -> width db input + expr_width c
  | Project { cols; proj_input; _ } ->
      width db proj_input
      + List.fold_left (fun acc (e, _) -> acc + expr_width e) 0 cols
  | Cross (a, b) | Join (_, a, b) | LeftJoin (_, a, b) -> width db a + width db b
  | Agg { agg_input; _ } -> width db agg_input
  | Union (_, a, b) | Inter (_, a, b) | Diff (_, a, b) -> width db a + width db b
  | Order (_, input) -> width db input
  | Limit _ -> unsupported "LIMIT"

let null_witness n = Array.make n Value.Null

let concat_w a b = Array.append a b

(* Cartesian combination of per-sublink witness lists. *)
let combos (per_sublink : Value.t array list list) : Value.t array list =
  List.fold_left
    (fun acc ws ->
      List.concat_map (fun prefix -> List.map (fun w -> concat_w prefix w) ws) acc)
    [ [||] ] per_sublink

let rec rows db (env : Eval.env) (q : query) : prow list =
  match normalize q with
  | Base name ->
      List.map
        (fun t -> { pt = t; pw = Array.copy t })
        (Relation.tuples (Database.find db name))
  | TableExpr rel -> List.map (fun t -> { pt = t; pw = [||] }) (Relation.tuples rel)
  | Select (cond, input) ->
      let in_schema = input_schema db env input in
      List.concat_map
        (fun r ->
          let fenv = Eval.frame in_schema r.pt :: env in
          if Value.is_true (Eval.expr db ~env:fenv cond) then
            List.map
              (fun w -> { pt = r.pt; pw = concat_w r.pw w })
              (witness_combos db fenv [ cond ])
          else [])
        (rows db env input)
  | Project { distinct; cols; proj_input } ->
      let in_schema = input_schema db env proj_input in
      let exprs = List.map fst cols in
      let out =
        List.concat_map
          (fun r ->
            let fenv = Eval.frame in_schema r.pt :: env in
            let pt = Tuple.of_list (List.map (Eval.expr db ~env:fenv) exprs) in
            List.map
              (fun w -> { pt; pw = concat_w r.pw w })
              (witness_combos db fenv exprs))
          (rows db env proj_input)
      in
      if distinct then dedup out else out
  | Cross (a, b) ->
      let rb = rows db env b in
      List.concat_map
        (fun ra ->
          List.map
            (fun rbr ->
              { pt = Tuple.concat ra.pt rbr.pt; pw = concat_w ra.pw rbr.pw })
            rb)
        (rows db env a)
  | Join (cond, a, b) ->
      let sa = input_schema db env a and sb = input_schema db env b in
      let schema = Schema.concat sa sb in
      let rb = rows db env b in
      List.concat_map
        (fun ra ->
          List.filter_map
            (fun rbr ->
              let pt = Tuple.concat ra.pt rbr.pt in
              let fenv = Eval.frame schema pt :: env in
              if Value.is_true (Eval.expr db ~env:fenv cond) then
                Some { pt; pw = concat_w ra.pw rbr.pw }
              else None)
            rb)
        (rows db env a)
  | LeftJoin (cond, a, b) ->
      let sa = input_schema db env a and sb = input_schema db env b in
      let schema = Schema.concat sa sb in
      let rb = rows db env b in
      let wb = width db b in
      List.concat_map
        (fun ra ->
          let hits =
            List.filter_map
              (fun rbr ->
                let pt = Tuple.concat ra.pt rbr.pt in
                let fenv = Eval.frame schema pt :: env in
                if Value.is_true (Eval.expr db ~env:fenv cond) then
                  Some { pt; pw = concat_w ra.pw rbr.pw }
                else None)
              rb
          in
          if hits = [] then
            [
              {
                pt = Tuple.concat ra.pt (Tuple.nulls (Schema.arity sb));
                pw = concat_w ra.pw (null_witness wb);
              };
            ]
          else hits)
        (rows db env a)
  | Agg ({ group_by; agg_input; _ } as spec) ->
      let agg_rel = Eval.query ~env db (Agg spec) in
      let in_schema = input_schema db env agg_input in
      let in_rows = rows db env agg_input in
      let n_group = List.length group_by in
      let group_exprs = List.map fst group_by in
      let win = width db agg_input in
      let key_of r =
        let fenv = Eval.frame in_schema r.pt :: env in
        Tuple.of_list (List.map (Eval.expr db ~env:fenv) group_exprs)
      in
      let group_positions = Array.init n_group (fun i -> i) in
      List.concat_map
        (fun g ->
          let key = Tuple.project_arr g group_positions in
          let members = List.filter (fun r -> Tuple.equal (key_of r) key) in_rows in
          if members = [] then [ { pt = g; pw = null_witness win } ]
          else List.map (fun m -> { pt = g; pw = m.pw }) members)
        (Relation.tuples agg_rel)
  | Union (sem, a, b) ->
      let wa = width db a and wb = width db b in
      let left =
        List.map
          (fun r -> { r with pw = concat_w r.pw (null_witness wb) })
          (rows db env a)
      in
      let right =
        List.map
          (fun r -> { r with pw = concat_w (null_witness wa) r.pw })
          (rows db env b)
      in
      let all = left @ right in
      (match sem with Bag -> all | SetSem -> dedup all)
  | Inter (sem, a, b) ->
      let result = Eval.query ~env db (Inter (sem, a, b)) in
      let ra = rows db env a and rb = rows db env b in
      List.concat_map
        (fun t ->
          let wl = List.filter (fun r -> Tuple.equal r.pt t) ra in
          let wr = List.filter (fun r -> Tuple.equal r.pt t) rb in
          List.concat_map
            (fun l -> List.map (fun r -> { pt = t; pw = concat_w l.pw r.pw }) wr)
            wl)
        (Relation.tuples result)
  | Diff (sem, a, b) ->
      let result = Eval.query ~env db (Diff (sem, a, b)) in
      let ra = rows db env a in
      let wb = width db b in
      List.concat_map
        (fun t ->
          List.filter_map
            (fun r ->
              if Tuple.equal r.pt t then
                Some { pt = t; pw = concat_w r.pw (null_witness wb) }
              else None)
            ra)
        (Relation.tuples result)
  | Order (keys, input) ->
      if List.concat_map (fun (e, _) -> sublinks_of_expr e) keys <> [] then
        unsupported "sublinks in ORDER BY";
      rows db env input
  | Limit _ -> unsupported "LIMIT"

and input_schema db env q =
  Typecheck.infer_query_env db (Eval.schemas_of_env env) q

(* The witnesses contributed by every sublink of [exprs], left to right,
   for the input tuple bound in [fenv] (Figure 2 / Definition 2). *)
and witness_combos db fenv (exprs : expr list) : Value.t array list =
  let sublinks = List.concat_map sublinks_of_expr exprs in
  combos (List.map (sublink_witnesses db fenv) sublinks)

(* Tsub* for one sublink and one input tuple. The sublink's truth value
   fixes the influence role (Definition 2 leaves only reqtrue/reqfalse;
   an UNKNOWN truth value keeps the whole sublink relation, matching the
   rewriter's two-valued Jsub). *)
and sublink_witnesses db fenv (s : sublink) : Value.t array list =
  let sub_rows = rows db fenv s.query in
  let truth = Eval.expr db ~env:fenv (Sublink s) in
  let kept =
    match s.kind with
    | Exists | Scalar -> sub_rows
    | AnyOp (op, lhs) ->
        if Value.is_true truth then begin
          let lv = Eval.expr db ~env:fenv lhs in
          List.filter
            (fun r -> Value.is_true (Eval.cmp3 op lv (Tuple.get r.pt 0)))
            sub_rows
        end
        else sub_rows
    | AllOp (op, lhs) ->
        if Value.is_false truth then begin
          let lv = Eval.expr db ~env:fenv lhs in
          List.filter
            (fun r -> Value.is_false (Eval.cmp3 op lv (Tuple.get r.pt 0)))
            sub_rows
        end
        else sub_rows
  in
  if kept = [] then [ null_witness (width db s.query) ]
  else List.map (fun r -> r.pw) kept

and dedup (rs : prow list) : prow list =
  let seen = Tuple.Tbl.create 64 in
  List.filter
    (fun r ->
      let key = Tuple.concat r.pt r.pw in
      if Tuple.Tbl.mem seen key then false
      else begin
        Tuple.Tbl.add seen key ();
        true
      end)
    rs

(** [provenance db q] is the oracle's provenance relation for [q]: the
    result tuples extended by their witness values, as bare rows
    (schema-less; compare with the rewriter's output by row content). *)
let provenance db (q : query) : Tuple.t list =
  List.map (fun r -> Tuple.concat r.pt r.pw) (rows db [] q)

(** [provenance_of_row db q row] is the witness set of one output row:
    the witness-value arrays of every provenance row whose result
    tuple equals [row]. *)
let provenance_of_row db (q : query) (row : Tuple.t) : Value.t array list =
  List.filter_map
    (fun r -> if Tuple.equal r.pt row then Some r.pw else None)
    (rows db [] q)
