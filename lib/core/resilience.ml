(** Typed error taxonomy and graceful degradation for the {!Perm}
    pipeline.

    The taxonomy gives every failure a pipeline phase and a structured
    detail; {!enter} converts the libraries' exceptions at each phase
    boundary. Exceptions that identify their own phase (a parse error
    raised while analyzing a string, a strategy-applicability error
    surfacing under a coarser wrapper) override the enclosing phase, so
    attribution stays precise even where one wrapper covers several
    steps.

    The fallback ladder implements the degradation discipline the issue
    calls for: a strategy that is inapplicable or blows its budget is
    abandoned and the next-ranked strategy retried under a sub-budget.
    The ranking is a hook: by default the static applicability order
    Unn → Move → Left → Gen (cheapest rewrites first, the paper's
    Section 4 ordering); {!Advisor} replaces it at initialization with
    its cost-model ranking so programs that link the advisor fall back
    along estimated cost, respecting the [est_safe] nullability gate. *)

open Relalg

type phase =
  | Parse
  | Analyze
  | Typecheck
  | Rewrite
  | Optimize
  | Eval
  | Load
  | Protocol

let phase_to_string = function
  | Parse -> "parse"
  | Analyze -> "analyze"
  | Typecheck -> "typecheck"
  | Rewrite -> "rewrite"
  | Optimize -> "optimize"
  | Eval -> "eval"
  | Load -> "load"
  | Protocol -> "protocol"

type detail =
  | Message of string
  | Budget of Guard.trip
  | Fault of { f_site : string; f_path : string list }
  | Lint of Lint.diagnostic list
  | Unsupported of string
  | Overloaded of { retry_after : float }
  | Violation of string

type error = { e_phase : phase; e_detail : detail }

exception Perm_error of error

let error_to_string e =
  let detail =
    match e.e_detail with
    | Message m -> m
    | Budget t -> Guard.trip_to_string t
    | Fault { f_site; f_path } ->
        Printf.sprintf "injected %s fault at %s" f_site
          (Guard.path_to_string f_path)
    | Lint ds -> Lint.report ds
    | Unsupported m -> "strategy not applicable: " ^ m
    | Overloaded { retry_after } ->
        Printf.sprintf "server overloaded, retry after %.3fs" retry_after
    | Violation m -> "protocol violation: " ^ m
  in
  Printf.sprintf "[%s] %s" (phase_to_string e.e_phase) detail

let classify_opt ~default exn =
  let mk ?(phase = default) detail = { e_phase = phase; e_detail = detail } in
  match exn with
  | Perm_error e -> Some e
  | Guard.Budget_exceeded t -> Some (mk (Budget t))
  | Guard.Faults.Injected { i_site; i_path } ->
      Some
        (mk
           (Fault
              {
                f_site = Guard.Faults.site_to_string i_site;
                f_path = i_path;
              }))
  | Strategy.Unsupported m -> Some (mk ~phase:Rewrite (Unsupported m))
  | Certify.Certify_error rep ->
      Some
        (mk ~phase:Optimize
           (Message (Certify.report_to_string ~verbose:true rep)))
  | Lint.Lint_error ds -> Some (mk (Lint ds))
  | Sql_frontend.Lexer.Lex_error (m, l, c) ->
      Some
        (mk ~phase:Parse
           (Message (Printf.sprintf "%s at line %d, column %d" m l c)))
  | Sql_frontend.Parser.Parse_error (m, l, c) ->
      Some
        (mk ~phase:Parse
           (Message (Printf.sprintf "%s at line %d, column %d" m l c)))
  | Sql_frontend.Analyzer.Analyze_error m -> Some (mk ~phase:Analyze (Message m))
  | Typecheck.Type_error m -> Some (mk ~phase:Typecheck (Message m))
  | Sem.Eval_error m -> Some (mk (Message m))
  | Value.Type_clash m -> Some (mk (Message m))
  | Schema.Schema_error m -> Some (mk (Message m))
  | Relation.Relation_error m -> Some (mk (Message m))
  | Database.Unknown_relation n -> Some (mk (Message ("unknown relation " ^ n)))
  | Builtin.Unknown_function n -> Some (mk (Message ("unknown function " ^ n)))
  | Csv.Csv_error { file; line; msg } ->
      Some (mk ~phase:Load (Message (Csv.error_to_string ~file ~line ~msg)))
  | Sys_error m -> Some (mk ~phase:Load (Message m))
  | Failure m -> Some (mk (Message m))
  | Invalid_argument m -> Some (mk (Message m))
  | Division_by_zero -> Some (mk (Message "division by zero"))
  | Not_found -> Some (mk (Message "internal lookup failed (Not_found)"))
  | _ -> None

let classify ~default exn =
  match classify_opt ~default exn with
  | Some e -> e
  | None -> raise Not_found

let enter phase f =
  try f () with
  | Perm_error _ as e -> raise e
  | (Out_of_memory | Stack_overflow | Assert_failure _) as e -> raise e
  | exn -> (
      match classify_opt ~default:phase exn with
      | Some err -> raise (Perm_error err)
      | None -> raise exn)

(* ------------------------------------------------------------------ *)
(* Fallback ladder                                                     *)
(* ------------------------------------------------------------------ *)

(* Static default: the paper's strategies ordered by rewrite cost, kept
   to the ones whose applicability conditions [q] satisfies. *)
let default_ranking db q =
  List.filter
    (fun s ->
      match Rewrite.rewrite db ~strategy:s q with
      | _ -> true
      | exception Strategy.Unsupported _ -> false)
    [ Strategy.Unn; Strategy.Move; Strategy.Left; Strategy.Gen ]

let strategy_ranking = ref default_ranking

type attempt = { att_strategy : Strategy.t; att_error : error }
type ladder = { lad_strategy : Strategy.t; lad_abandoned : attempt list }

let ladder_to_string l =
  match l.lad_abandoned with
  | [] -> Printf.sprintf "strategy %s answered" (Strategy.to_string l.lad_strategy)
  | ab ->
      Printf.sprintf "strategy %s answered after %s"
        (Strategy.to_string l.lad_strategy)
        (String.concat "; "
           (List.map
              (fun a ->
                Printf.sprintf "%s was abandoned: %s"
                  (Strategy.to_string a.att_strategy)
                  (error_to_string a.att_error))
              ab))

let retryable e =
  match e.e_detail with Unsupported _ | Budget _ -> true | _ -> false

let transient e = match e.e_detail with Fault _ -> true | _ -> false

type backoff = {
  bo_base : float;
  bo_cap : float;
  bo_retries : int;
  bo_seed : int;
}

let backoff ?(base = 0.05) ?(cap = 1.0) ?(retries = 2) ?(seed = 0) () =
  { bo_base = Float.max 0. base; bo_cap = Float.max 0. cap;
    bo_retries = max 0 retries; bo_seed = seed }

(* Deterministic jitter: an LCG stream seeded per ladder run. The k-th
   pause is [min cap (base * 2^k)] scaled by a uniform factor in
   [0.5, 1.0), so same seed → same pause sequence. *)
let jitter_stream seed =
  let state = ref (((seed * 0x9E3779B1) lor 1) land 0x3FFFFFFF) in
  fun () ->
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    0.5 +. (0.5 *. (float_of_int !state /. float_of_int 0x40000000))

let run_ladder db ~strategy ~budget ?backoff q f =
  let ranking =
    match !strategy_ranking db q with
    | r -> r
    | exception _ -> default_ranking db q
  in
  let order = strategy :: List.filter (fun s -> s <> strategy) ranking in
  let deadline =
    match budget with
    | Some b -> Option.map (fun t -> Unix.gettimeofday () +. t) b.Guard.g_timeout
    | None -> None
  in
  (* The remaining wall-clock allowance is re-split before each attempt,
     so time an early strategy did not use flows to the later ones. *)
  let sub_budget n_remaining =
    match budget with
    | None -> None
    | Some b ->
        let g_timeout =
          Option.map
            (fun d ->
              Float.max 0.05
                ((d -. Unix.gettimeofday ()) /. float_of_int n_remaining))
            deadline
        in
        Some { b with Guard.g_timeout }
  in
  (* Backoff pauses sleep real wall-clock, so they draw down the same
     remaining allowance [sub_budget] re-splits before each attempt:
     pausing never extends the overall deadline, it only shrinks what
     later attempts receive (floored at 50 ms per attempt). A pause is
     clamped so it cannot sleep past the deadline itself. *)
  let uniform =
    match backoff with
    | Some b -> jitter_stream b.bo_seed
    | None -> fun () -> 1.0
  in
  let pause k =
    match backoff with
    | None -> ()
    | Some b ->
        let d = Float.min b.bo_cap (b.bo_base *. (2. ** float_of_int k)) in
        let d = d *. uniform () in
        let d =
          match deadline with
          | None -> d
          | Some dl -> Float.min d (Float.max 0. (dl -. Unix.gettimeofday ()))
        in
        if d > 0. then Unix.sleepf d
  in
  (* With backoff configured, a transient injected fault first retries
     the {e same} strategy (up to [bo_retries] times) before escalating
     to the next rung; without backoff it is not retried at all. *)
  let max_retries = match backoff with Some b -> b.bo_retries | None -> 0 in
  let rec go abandoned n_pauses retries = function
    | [] -> assert false (* [order] is never empty *)
    | s :: rest as attempts -> (
        match Guard.with_budget (sub_budget (List.length rest + 1)) (fun () -> f s) with
        | r -> (r, { lad_strategy = s; lad_abandoned = List.rev abandoned })
        | exception Perm_error e when transient e && retries < max_retries ->
            (* same-rung retry: the strategy is not abandoned — if it
               delivers on a later try the ladder reports a clean run *)
            pause n_pauses;
            go abandoned (n_pauses + 1) (retries + 1) attempts
        | exception Perm_error e
          when (retryable e || (transient e && max_retries > 0)) && rest <> []
          ->
            pause n_pauses;
            go
              ({ att_strategy = s; att_error = e } :: abandoned)
              (n_pauses + 1) 0 rest)
  in
  go [] 0 0 order
