(** Public API of the Perm reproduction: parse SQL (with the
    [SELECT PROVENANCE] extension), rewrite with a chosen sublink
    strategy, and evaluate.

    Typical use:
    {[
      let result =
        Perm.run db "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)"
      in
      Relalg.Table_pp.print result.Perm.relation
    ]} *)

open Relalg

type result = {
  relation : Relation.t;  (** the evaluated result *)
  provenance : Pschema.prov_rel list;
      (** provenance attribute descriptions; empty when no provenance was
          requested *)
  plan : Algebra.query;  (** the plan that was executed *)
  ladder : Resilience.ladder option;
      (** how the strategy-fallback ladder concluded; [None] unless the
          run was made with [~fallback:true] and provenance *)
  certificate : Certify.report option;
      (** the translation-validation certificate for the optimizer run;
          [None] unless the run was made with [~certify:true] *)
}

(** [rewrite db ?strategy q] is the provenance-propagating plan [q+] and
    its provenance schema. Raises {!Strategy.Unsupported} when the
    strategy cannot handle [q]. *)
let rewrite db ?(strategy = Strategy.Gen) q = Rewrite.rewrite db ~strategy q

(* The lint gate shared by every evaluation entry point. With
   [~lint:true], the source query is linted ([~werror] escalating
   warnings), and for provenance runs the rewrite result is verified
   against the provenance contract and the final plan re-linted with
   the plan rules; any error raises {!Lint.Lint_error} before
   evaluation. *)
let gate_source db ~lint ~werror q =
  if lint then Lint.fail_on ~werror (Lint.lint db q)

let gate_rewrite db ~lint ~strategy ~original ?optimized (q_plus, provs) =
  if lint then begin
    Lint.fail_on (Provcheck.check db ~strategy ?optimized ~original (q_plus, provs));
    let final = Option.value ~default:q_plus optimized in
    Lint.fail_on (Lint.lint ~rules:Lint.plan_rules db final)
  end

let gate_plain db ~lint ~original plan =
  if lint && plan != original then
    Lint.fail_on (Provcheck.optimizer_guard db ~before:original plan)

(* The provenance pipeline for one strategy, each phase reporting
   through the {!Resilience} taxonomy. *)
(* The optimizer step shared by both pipelines: with [~certify:true]
   the pass runs under the {!Certify} translation validator and a
   failed certificate aborts the run (phase [Optimize]). *)
let optimize_step db ~optimize ~certify q =
  Resilience.enter Resilience.Optimize (fun () ->
      if not optimize then (q, None)
      else if certify then begin
        let plan, report = Certify.optimize db q in
        Certify.fail_on report;
        (plan, Some report)
      end
      else (Optimizer.optimize db q, None))

let prov_pipeline db ~strategy ~engine ~optimize ~certify ~lint ~werror q :
    result =
  ignore werror;
  let q_plus, provs =
    Resilience.enter Resilience.Rewrite (fun () ->
        Rewrite.rewrite db ~strategy q)
  in
  Resilience.enter Resilience.Typecheck (fun () -> Typecheck.check db q_plus);
  let plan, certificate = optimize_step db ~optimize ~certify q_plus in
  Resilience.enter Resilience.Rewrite (fun () ->
      gate_rewrite db ~lint ~strategy ~original:q ~optimized:plan
        (q_plus, provs));
  if certify then
    (* bounded ground truth: the provenance plan must agree with the
       enumeration oracle on the witness databases *)
    Resilience.enter Resilience.Rewrite (fun () ->
        Lint.fail_on (Provcheck.oracle_check db ~original:q plan));
  let relation =
    Resilience.enter Resilience.Eval (fun () -> Eval.query ?engine db plan)
  in
  { relation; provenance = provs; plan; ladder = None; certificate }

let plain_pipeline db ~engine ~optimize ~certify ~lint q : result =
  let plan, certificate = optimize_step db ~optimize ~certify q in
  Resilience.enter Resilience.Optimize (fun () ->
      gate_plain db ~lint ~original:q plan);
  let relation =
    Resilience.enter Resilience.Eval (fun () -> Eval.query ?engine db plan)
  in
  { relation; provenance = []; plan; ladder = None; certificate }

(* Evaluation of an analyzed query under the optional budget, with the
   strategy-fallback ladder when [fallback] is set on a provenance
   run. *)
let run_analyzed db ~strategy ~engine ~optimize ~certify ~lint ~werror
    ~budget ~backoff ~fallback ~wants q : result =
  if wants then
    if fallback then begin
      let r, lad =
        Resilience.run_ladder db ~strategy ~budget ?backoff q (fun s ->
            prov_pipeline db ~strategy:s ~engine ~optimize ~certify ~lint
              ~werror q)
      in
      { r with ladder = Some lad }
    end
    else
      Guard.with_budget budget (fun () ->
          prov_pipeline db ~strategy ~engine ~optimize ~certify ~lint ~werror
            q)
  else
    Guard.with_budget budget (fun () ->
        plain_pipeline db ~engine ~optimize ~certify ~lint q)

(** [provenance db ?strategy ?optimize ?lint ?werror ?budget ?fallback q]
    evaluates the provenance of an algebra query directly. *)
let provenance db ?(strategy = Strategy.Gen) ?engine ?(optimize = true)
    ?(certify = false) ?(lint = false) ?(werror = false) ?budget ?backoff
    ?(fallback = false) q =
  Resilience.enter Resilience.Analyze (fun () ->
      gate_source db ~lint ~werror q);
  let r =
    run_analyzed db ~strategy ~engine ~optimize ~certify ~lint ~werror
      ~budget ~backoff ~fallback ~wants:true q
  in
  (r.relation, r.provenance)

(** [run_query db ?strategy ?optimize ?lint ?werror ?budget ?fallback
    ~provenance q] is {!run} for an already-analyzed algebra query. *)
let run_query db ?(strategy = Strategy.Gen) ?engine ?(optimize = true)
    ?(certify = false) ?(lint = false) ?(werror = false) ?budget ?backoff
    ?(fallback = false) ~provenance:wants q : result =
  Resilience.enter Resilience.Analyze (fun () ->
      gate_source db ~lint ~werror q);
  run_analyzed db ~strategy ~engine ~optimize ~certify ~lint ~werror ~budget
    ~backoff ~fallback ~wants q

(** [run db ?strategy ?optimize ?lint ?werror ?budget ?fallback sql]
    parses, analyzes and evaluates [sql]. If the statement carries the
    [PROVENANCE] marker, the provenance rewrite with [strategy] is
    applied first; with [~fallback:true] a strategy that is
    inapplicable or blows [budget] degrades to the next-ranked one.
    Failures raise {!Resilience.Perm_error}. *)
let run db ?(strategy = Strategy.Gen) ?engine ?(optimize = true)
    ?(certify = false) ?(lint = false) ?(werror = false) ?budget ?backoff
    ?(fallback = false) sql : result =
  let analyzed =
    Resilience.enter Resilience.Analyze (fun () ->
        Sql_frontend.Analyzer.analyze_string db sql)
  in
  let q = analyzed.Sql_frontend.Analyzer.query in
  run_query db ~strategy ?engine ~optimize ~certify ~lint ~werror ?budget
    ?backoff ~fallback
    ~provenance:analyzed.Sql_frontend.Analyzer.wants_provenance q

(** {1 Statements} *)

type exec_result =
  | Rows of result  (** a SELECT's result *)
  | Created_view of string
  | Created_table of string * int  (** name and materialized row count *)
  | Dropped of string

(* Execute one already-parsed statement. *)
let exec_parsed db ~strategy ~engine ~optimize ~certify ~lint ~werror ~budget
    ~backoff ~fallback stmt : exec_result =
  let analyze sel =
    Resilience.enter Resilience.Analyze (fun () ->
        let analyzed = Sql_frontend.Analyzer.analyze db sel in
        let q = analyzed.Sql_frontend.Analyzer.query in
        gate_source db ~lint ~werror q;
        (q, analyzed.Sql_frontend.Analyzer.wants_provenance))
  in
  match stmt with
  | Sql_frontend.Ast.Stmt_select sel ->
      let q, wants = analyze sel in
      Rows
        (run_analyzed db ~strategy ~engine ~optimize ~certify ~lint ~werror
           ~budget ~backoff ~fallback ~wants q)
  | Sql_frontend.Ast.Stmt_create_view (name, sel) ->
      let q, wants = analyze sel in
      let stored =
        if wants then begin
          (* A provenance view stores the *rewritten* (unoptimized)
             query, so querying it later sees the provenance columns. *)
          let q_plus, provs =
            Resilience.enter Resilience.Rewrite (fun () ->
                Rewrite.rewrite db ~strategy q)
          in
          Resilience.enter Resilience.Typecheck (fun () ->
              Typecheck.check db q_plus);
          Resilience.enter Resilience.Rewrite (fun () ->
              gate_rewrite db ~lint ~strategy ~original:q (q_plus, provs));
          q_plus
        end
        else q
      in
      Database.add_view db name stored;
      Created_view name
  | Sql_frontend.Ast.Stmt_create_table_as (name, sel) ->
      let q, wants = analyze sel in
      let r =
        run_analyzed db ~strategy ~engine ~optimize ~certify ~lint ~werror
          ~budget ~backoff ~fallback ~wants q
      in
      Database.add db name r.relation;
      Created_table (name, Relation.cardinality r.relation)
  | Sql_frontend.Ast.Stmt_drop name ->
      if Database.drop db name then Dropped name
      else
        raise
          (Resilience.Perm_error
             {
               Resilience.e_phase = Resilience.Analyze;
               e_detail = Resilience.Message ("unknown table or view " ^ name);
             })

(** [exec db ?strategy ?optimize ?lint ?werror ?budget ?fallback sql]
    executes one statement. SELECTs behave like {!run}. [CREATE VIEW v
    AS SELECT PROVENANCE ...] stores the *rewritten* query, so querying
    [v] later sees the provenance columns — Perm's "provenance as a
    view". [CREATE TABLE t AS ...] materializes the result. *)
let exec db ?(strategy = Strategy.Gen) ?engine ?(optimize = true)
    ?(certify = false) ?(lint = false) ?(werror = false) ?budget ?backoff
    ?(fallback = false) sql : exec_result =
  exec_parsed db ~strategy ~engine ~optimize ~certify ~lint ~werror ~budget
    ~backoff ~fallback
    (Resilience.enter Resilience.Parse (fun () ->
         Sql_frontend.Parser.parse_statement sql))

(** [exec_script db ?strategy ?optimize ?lint ?werror ?budget ?fallback
    sql] runs a [;]-separated statement sequence, returning each
    statement's result in order. Execution stops at the first error
    (exception propagates). *)
let exec_script db ?(strategy = Strategy.Gen) ?engine ?(optimize = true)
    ?(certify = false) ?(lint = false) ?(werror = false) ?budget ?backoff
    ?(fallback = false) sql : exec_result list =
  List.map
    (exec_parsed db ~strategy ~engine ~optimize ~certify ~lint ~werror
       ~budget ~backoff ~fallback)
    (Resilience.enter Resilience.Parse (fun () ->
         Sql_frontend.Parser.parse_script sql))

(** {1 Alternative views of the provenance} *)

(** Witnesses of one result tuple, grouped per base relation access —
    the tuple-of-relations representation of Cui & Widom that Section
    3.1 contrasts with Perm's single-relation representation. Derived
    from the relational result, so the association between witnesses of
    different relations (Perm's advantage) is intentionally forgotten. *)
type witness_sets = {
  ws_tuple : Relation.t;  (** the result tuple, as a 1-row relation *)
  ws_witnesses : (string * Relation.t) list;
      (** per base relation access: the contributing tuples (NULL
          padding rows removed, duplicates eliminated) *)
}

(** [witness_sets db q rel provs] regroups a provenance relation
    (produced by {!run} or {!provenance} for query [q]) into
    Cui–Widom-style witness sets, one entry per distinct result tuple. *)
let witness_sets db q (rel : Relation.t) (provs : Pschema.prov_rel list) :
    witness_sets list =
  let schema = Relation.schema rel in
  let orig_names = Scope.out_names db q in
  let n_orig = List.length orig_names in
  let orig_positions = Array.init n_orig (fun i -> i) in
  let groups : Tuple.t list Tuple.Tbl.t = Tuple.Tbl.create 16 in
  let order = ref [] in
  List.iter
    (fun t ->
      let key = Tuple.project_arr t orig_positions in
      match Tuple.Tbl.find_opt groups key with
      | Some rows -> Tuple.Tbl.replace groups key (t :: rows)
      | None ->
          Tuple.Tbl.add groups key [ t ];
          order := key :: !order)
    (Relation.tuples rel);
  let offsets =
    (* starting column of each prov_rel in the provenance result *)
    let _, offs =
      List.fold_left
        (fun (pos, acc) (pr : Pschema.prov_rel) ->
          (pos + List.length pr.Pschema.pr_cols, acc @ [ (pr, pos) ]))
        (n_orig, []) provs
    in
    offs
  in
  List.rev_map
    (fun key ->
      let rows = List.rev (Tuple.Tbl.find groups key) in
      let ws_tuple =
        Relation.make
          (Schema.of_list
             (List.filteri (fun i _ -> i < n_orig) (Schema.to_list schema)))
          [ key ]
      in
      let ws_witnesses =
        List.map
          (fun ((pr : Pschema.prov_rel), pos) ->
            let base_schema =
              Relation.schema (Database.find db pr.Pschema.pr_rel)
            in
            let width = List.length pr.Pschema.pr_cols in
            let positions = Array.init width (fun i -> pos + i) in
            let tuples =
              List.filter_map
                (fun t ->
                  let w = Tuple.project_arr t positions in
                  if Array.for_all Value.is_null (w : Tuple.t :> Value.t array)
                  then None
                  else Some w)
                rows
            in
            (pr.Pschema.pr_rel, Relation.distinct (Relation.make base_schema tuples)))
          offsets
      in
      { ws_tuple; ws_witnesses })
    !order

(** [explain db ?strategy q] is a printable rendering of the rewritten,
    optimized plan for [q]. *)
let explain db ?(strategy = Strategy.Gen) ?(optimize = true) q =
  let q_plus, _ = Rewrite.rewrite db ~strategy q in
  let plan = if optimize then Optimizer.optimize db q_plus else q_plus in
  Pp.query_to_string plan

(** Strategies whose applicability conditions [q] satisfies, by actually
    attempting the rewrite (cheap — rewriting is syntactic). *)
let applicable_strategies db q =
  List.filter
    (fun s ->
      match Rewrite.rewrite db ~strategy:s q with
      | _ -> true
      | exception Strategy.Unsupported _ -> false)
    Strategy.all
