(** Typed error taxonomy and graceful degradation for the {!Perm}
    pipeline.

    Every {!Perm} execution entry point reports failures as
    {!Perm_error}: a pipeline phase plus a structured detail. Callers
    (the REPL, the bench harness, scripts) can react per class — keep
    the session alive, record a censored cell, pick another strategy —
    instead of pattern-matching on a zoo of library exceptions.

    The {e fallback ladder} ({!run_ladder}) implements graceful
    degradation: when a provenance strategy is inapplicable
    ({!Strategy.Unsupported}) or blows its budget
    ({!Relalg.Guard.Budget_exceeded}), the next strategy of the
    {!strategy_ranking} is retried under a sub-budget, and the final
    answer reports which strategy delivered and why its predecessors
    were abandoned. *)

open Relalg

(** Pipeline phase in which an error occurred. [Load] covers catalog
    population (e.g. CSV import); [Protocol] covers the wire protocol
    of the provenance server. *)
type phase =
  | Parse
  | Analyze
  | Typecheck
  | Rewrite
  | Optimize
  | Eval
  | Load
  | Protocol

val phase_to_string : phase -> string

type detail =
  | Message of string  (** classified library error *)
  | Budget of Guard.trip  (** execution budget exceeded *)
  | Fault of { f_site : string; f_path : string list }
      (** injected fault (testing only) *)
  | Lint of Lint.diagnostic list  (** lint / provenance-contract gate *)
  | Unsupported of string  (** strategy applicability *)
  | Overloaded of { retry_after : float }
      (** server admission control shed the request; retry after the
          hinted number of seconds *)
  | Violation of string
      (** wire-protocol violation (malformed, oversized or truncated
          frame, unknown tag/version) *)

type error = { e_phase : phase; e_detail : detail }

exception Perm_error of error

val error_to_string : error -> string

(** [classify ~default exn] maps a known library exception to a
    phase-attributed {!error}. Exceptions that identify their phase
    (parse, analyze, typecheck, strategy, budget, …) override
    [default]; anything unrecognized raises [Not_found]. *)
val classify : default:phase -> exn -> error

(** [enter phase f] runs [f], converting classifiable exceptions into
    {!Perm_error} attributed to [phase] (or to the exception's own
    phase when it names one). A {!Perm_error} from an inner [enter]
    passes through untouched, as do asynchronous/system exceptions. *)
val enter : phase -> (unit -> 'a) -> 'a

(** {1 Fallback ladder} *)

(** Ranking consulted by the ladder after the requested strategy fails:
    defaults to the static applicability order Unn → Move → Left → Gen;
    {!Advisor} installs its cost-model ranking (safe-first, cheapest
    -first, respecting [est_safe] gating) at initialization. *)
val strategy_ranking : (Database.t -> Algebra.query -> Strategy.t list) ref

(** One abandoned attempt: the strategy and why it was given up. *)
type attempt = { att_strategy : Strategy.t; att_error : error }

(** How a fallback run concluded: the strategy that answered and the
    attempts abandoned before it (in trial order). *)
type ladder = { lad_strategy : Strategy.t; lad_abandoned : attempt list }

val ladder_to_string : ladder -> string

(** [retryable e] is true when the ladder may try the next strategy
    after [e]: strategy inapplicability and budget trips are
    retryable; semantic errors (type, lint, evaluation) are not — a
    different strategy would fail the same way or, worse, mask a bug. *)
val retryable : error -> bool

(** [transient e] is true for errors worth retrying {e at the same
    rung} when backoff is configured: currently injected faults, which
    model transient external failures (a flaky read, a lost page) rather
    than properties of the strategy. *)
val transient : error -> bool

(** Capped jittered backoff between ladder attempts. *)
type backoff = {
  bo_base : float;  (** first pause, seconds *)
  bo_cap : float;  (** pause ceiling, seconds *)
  bo_retries : int;  (** same-strategy retries for transient errors *)
  bo_seed : int;  (** jitter PRNG seed — same seed, same pauses *)
}

(** [backoff ()] = 50 ms base, 1 s cap, 2 retries, seed 0. *)
val backoff :
  ?base:float -> ?cap:float -> ?retries:int -> ?seed:int -> unit -> backoff

(** [run_ladder db ~strategy ~budget ?backoff q f] runs [f strategy']
    for [strategy], then — on a retryable {!Perm_error} — for each
    untried strategy of {!strategy_ranking} in order. Each attempt runs
    under a sub-budget: the remaining wall-clock allowance is split
    evenly across the remaining attempts (row/pair/allocation ceilings
    apply per attempt unchanged). The last attempt's error propagates.

    With [backoff], the ladder pauses between attempts — the k-th pause
    is [min cap (base * 2^k)] scaled by a deterministic seeded jitter
    factor in [0.5, 1.0) — and {!transient} errors additionally retry
    the {e same} strategy up to [bo_retries] times before escalating.
    Interaction with the wall-clock re-split: pauses sleep real time
    inside the same overall deadline, so they draw down the remaining
    allowance that the re-split divides among later attempts (each
    still floored at 50 ms); a pause is clamped to the time left and
    the deadline is never extended. *)
val run_ladder :
  Database.t ->
  strategy:Strategy.t ->
  budget:Guard.budget option ->
  ?backoff:backoff ->
  Algebra.query ->
  (Strategy.t -> 'a) ->
  'a * ladder
