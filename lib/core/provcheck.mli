(** Provenance-contract verification for rewritten queries.

    [Rewrite.rewrite db ~strategy q] promises a pair [(q+, provs)]
    where [q+]'s schema is [q]'s schema followed by the provenance
    attributes of [provs] in traversal order ({!Algebra.base_relations}
    order), with the original attributes passed through untouched by a
    root identity projection. This module checks those promises
    statically — on every rewrite if wired through [Perm.run ~lint], and
    against injected defects in the mutation test harness — reporting
    violations through {!Lint.diagnostic} so they carry an operator
    path instead of surfacing as wrong answers.

    Rules (registry names):
    - [strategy-precondition]: Left/Move demand uncorrelated sublinks;
      Unn demands unnestable sublink forms (at the offending sublink's
      path in the {e original} plan).
    - [prov-schema]: schema of [q+] = schema of [q] ++
      {!Pschema.schema_attrs}[ provs].
    - [prov-order]: [provs] names base relations in
      {!Algebra.base_relations} order of the original.
    - [prov-prefix]: the root of [q+] is an identity projection passing
      the original attributes, then the provenance attributes, through
      unchanged.
    - [prov-lineage]: each provenance attribute's {!Dataflow.lineage}
      reaches the base column it claims to copy (empty lineage is
      tolerated: the rewrites legitimately NULL-pad provenance columns
      in set-operation arms and empty-sublink cases).
    - [gen-crossbase]: under Gen, every base-relation access inside a
      sublink is covered by a NULL-extended CrossBase scan in [q+].
    - [optimizer-schema] / [optimizer-diagnostics]: an optimized plan
      keeps the typed schema and never gains error diagnostics. *)

open Relalg

(** [precondition db ~strategy q] checks [strategy]'s applicability
    conditions on the {e original} query [q], one diagnostic per
    violating sublink. Empty for Gen. A successful
    [Rewrite.rewrite] implies an empty result; the converse direction
    is what the mutation harness exercises. *)
val precondition :
  Database.t -> strategy:Strategy.t -> Algebra.query -> Lint.diagnostic list

(** [contract db ~original rewritten provs] checks [prov-schema],
    [prov-order], [prov-prefix] and [prov-lineage] on an (unoptimized)
    rewrite result. *)
val contract :
  Database.t ->
  original:Algebra.query ->
  Algebra.query ->
  Pschema.prov_rel list ->
  Lint.diagnostic list

(** [gen_crossbase db ~original rewritten] checks that the Gen
    strategy's NULL-extended CrossBase scans are present: for every
    base-relation access at sublink nesting depth [d] in [original],
    [rewritten] must contain [d] scans of the form
    [Project (_, Union (Bag, Base r, TableExpr all-NULL-row))]. *)
val gen_crossbase :
  Database.t -> original:Algebra.query -> Algebra.query -> Lint.diagnostic list

(** [oracle_check db ~original rewritten] is the bounded ground-truth
    check ([prov-oracle]): the rewritten provenance plan is evaluated
    on the small witness databases {!Relalg.Certify.witness_databases}
    derives from [original] and compared — set-level, since the
    rewrite may duplicate provenance rows the oracle dedups — against
    {!Oracle.provenance}. Witnesses the oracle cannot handle (its
    {!Oracle.Unsupported} forms, budget trips, runtime errors) are
    skipped, so an empty result means "no witness refutes the
    rewrite", not a proof. Stops at the first refuting witness. *)
val oracle_check :
  Database.t ->
  original:Algebra.query ->
  Algebra.query ->
  Lint.diagnostic list

(** [optimizer_guard db ~before after] checks that an optimization or
    simplification pass preserved the typed schema and did not increase
    the number of error-severity plan diagnostics of any rule. *)
val optimizer_guard :
  Database.t -> before:Algebra.query -> Algebra.query -> Lint.diagnostic list

(** [check db ~strategy ?optimized ~original (q+, provs)] runs every
    applicable rule: {!precondition} on [original], {!contract} on
    [q+], {!gen_crossbase} when [strategy] is Gen, and
    {!optimizer_guard} between [q+] and [optimized] when given. *)
val check :
  Database.t ->
  strategy:Strategy.t ->
  ?optimized:Algebra.query ->
  original:Algebra.query ->
  Algebra.query * Pschema.prov_rel list ->
  Lint.diagnostic list
