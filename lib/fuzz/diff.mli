(** Differential harness for fuzz cases: every applicable provenance
    strategy × both engines, checked against each other and against
    the enumeration oracle, plus plain engine parity and the Theorem-1
    projection property. Legitimately-unrunnable configurations
    (strategy preconditions, oracle limits, budget trips, runtime
    errors) are skipped; a {!Mismatch} is a genuine counterexample.
    The campaign driver shrinks counterexamples and writes them as
    replayable [.sql] + [.csv] bundles. *)

type mismatch = {
  mm_left : string;  (** configuration label, e.g. ["prov/Left/reference"] *)
  mm_right : string;
  mm_detail : string;  (** row counts and sample differing rows *)
}

type verdict =
  | Agree of int  (** number of configuration comparisons that ran *)
  | Skip of string  (** nothing comparable ran *)
  | Mismatch of mismatch

(** 2 s / 500k rows per configuration run. *)
val default_budget : Relalg.Guard.budget

(** [check ?budget case] analyzes the case's query against its tables
    and cross-checks every configuration that runs within [budget]. *)
val check : ?budget:Relalg.Guard.budget -> Qgen.case -> verdict

(** [write_bundle ~dir case ~notes] materializes a replayable bundle:
    [query.sql], one [<table>.csv] per table, [notes.txt]. Creates
    [dir] (and parents) as needed. *)
val write_bundle : dir:string -> Qgen.case -> notes:string -> unit

(** [load_bundle dir] reads a bundle back. Tables matching the fixed
    fuzz layout are coerced to integer schemas (CSV inference types
    empty or all-NULL columns as strings). *)
val load_bundle : string -> Qgen.case

(** [replay ?budget dir] re-runs a bundle through {!check}. *)
val replay : ?budget:Relalg.Guard.budget -> string -> verdict

type failure = {
  fl_index : int;  (** which generated case (0-based) *)
  fl_case : Qgen.case;  (** as generated *)
  fl_shrunk : Qgen.case;  (** after delta-debugging *)
  fl_detail : string;
  fl_dir : string option;  (** bundle directory, when artifacts were written *)
}

type stats = {
  st_seed : int;
  st_total : int;
  st_agreed : int;
  st_comparisons : int;  (** configuration comparisons across all cases *)
  st_skipped : int;
  st_failures : failure list;
}

(** [campaign ~seed ~count ()] generates and checks [count] cases from
    a single deterministic stream, shrinking each mismatch to a
    minimal repro and, when [artifacts] names a directory, writing a
    bundle per failure under [artifacts]/seed<seed>-case<i>.
    [progress] is called with the case index before each check. *)
val campaign :
  ?config:Qgen.config ->
  ?budget:Relalg.Guard.budget ->
  ?artifacts:string ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  stats

(** Human-readable campaign summary: totals plus, per failure, the
    minimal repro SQL, table sizes, and bundle location. *)
val stats_to_string : stats -> string
