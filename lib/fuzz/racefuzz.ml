(** Schedule fuzzing for the parallel vectorized engine: each generated
    query runs under the compiled engine once (the baseline) and then
    under the vectorized engine on a genuinely multi-domain pool with
    the chaos scheduler ({!Relalg.Morsel.set_chaos}) perturbing the
    schedule and the vector-clock race detector ({!Relalg.Race}) armed.

    A case fails when the detector reports an unordered access pair or
    the vectorized rows differ from the compiled rows (bag-level) —
    either way the failure carries the (query, schedule-seed, domains)
    triple that reproduces it, and the campaign driver shrinks the
    query and tables with {!Shrink} while replaying that exact
    schedule seed.

    Pools come from [Morsel.create] (unclamped) through
    [Vexec.pool_override], so the campaign exercises real cross-domain
    schedules even on single-core CI hosts; batches are forced tiny
    ([Vexec.batch_rows := 2]) so generated tables of a dozen rows
    still fan out across workers. *)

open Relalg
open Core

(* Larger tables than the differential default: parallel scan/join
   paths need several batches per relation to schedule anything. *)
let default_config = { Qgen.default with Qgen.max_rows = 16 }
let default_budget = Guard.budget ~timeout:5.0 ~max_rows:500_000 ()

type verdict =
  | Clean of int  (** plans that ran under both engines *)
  | Skip of string
  | Fail of string  (** race reports and/or parity mismatch, rendered *)

let guarded budget f =
  match Guard.with_budget (Some budget) f with
  | rows -> Ok rows
  | exception Guard.Budget_exceeded t -> Error (Guard.trip_to_string t)
  | exception
      (( Eval.Eval_error _ | Value.Type_clash _ | Schema.Schema_error _
       | Relation.Relation_error _ | Typecheck.Type_error _
       | Database.Unknown_relation _ | Builtin.Unknown_function _
       | Division_by_zero | Not_found | Invalid_argument _ | Failure _ ) as e)
    ->
      Error (Printexc.to_string e)

(* The plans a case exercises: the plain query plus every applicable
   strategy's optimized provenance plan. *)
let plans db q =
  ("plain", q)
  :: List.filter_map
       (fun strategy ->
         match
           let q_plus, _ = Rewrite.rewrite db ~strategy q in
           Optimizer.optimize db q_plus
         with
         | plan -> Some (Strategy.to_string strategy, plan)
         | exception _ -> None)
       Strategy.all

let canon rows = List.sort Tuple.compare rows

let sample n rows =
  List.filteri (fun i _ -> i < n) rows |> List.map Tuple.to_string
  |> String.concat " "

(* One vectorized run on [pool] under chaos seed [sched_seed] with the
   detector armed. Globals are restored whatever happens; reports are
   harvested before disarming. *)
let vectorized_run budget pool sched_seed db plan =
  let saved_pool = !Vexec.pool_override in
  let saved_batch = !Vexec.batch_rows in
  Vexec.pool_override := Some pool;
  Vexec.batch_rows := 2;
  Morsel.set_chaos (Some sched_seed);
  Race.arm ~seed:sched_seed ();
  Fun.protect
    ~finally:(fun () ->
      Race.disarm ();
      Morsel.set_chaos None;
      Vexec.batch_rows := saved_batch;
      Vexec.pool_override := saved_pool)
    (fun () ->
      let r =
        guarded budget (fun () -> Relation.tuples (Vexec.query db plan))
      in
      (r, Race.reports ()))

let check ?(budget = default_budget) ~pool ~sched_seed (case : Qgen.case) :
    verdict =
  let db = Qgen.database case in
  match Sql_frontend.Analyzer.analyze db case.Qgen.c_select with
  | exception
      ( Sql_frontend.Analyzer.Analyze_error _ | Typecheck.Type_error _
      | Schema.Schema_error _ | Database.Unknown_relation _
      | Builtin.Unknown_function _ | Failure _ | Not_found ) ->
      Skip "query does not analyze"
  | analyzed -> (
      let q = analyzed.Sql_frontend.Analyzer.query in
      match Typecheck.infer db q with
      | exception _ -> Skip "query does not typecheck"
      | _ ->
          let pl =
            match guarded budget (fun () -> plans db q) with
            | Ok pl -> pl
            | Error _ -> [ ("plain", q) ]
          in
          let checked = ref 0 in
          let failures = ref [] in
          List.iter
            (fun (label, plan) ->
              let compiled =
                guarded budget (fun () ->
                    Relation.tuples (Eval.query_compiled db plan))
              in
              let vec, reports =
                vectorized_run budget pool sched_seed db plan
              in
              List.iter
                (fun r ->
                  failures :=
                    Printf.sprintf "[%s] %s" label (Race.report_to_string r)
                    :: !failures)
                reports;
              match (compiled, vec) with
              | Ok c, Ok v ->
                  incr checked;
                  let c = canon c and v = canon v in
                  if not (List.equal Tuple.equal c v) then
                    failures :=
                      Printf.sprintf
                        "[%s] engine divergence under schedule seed %d: \
                         compiled %d rows (%s) vs vectorized %d rows (%s)"
                        label sched_seed (List.length c) (sample 4 c)
                        (List.length v) (sample 4 v)
                      :: !failures
              | _ -> ())
            pl;
          if !failures <> [] then
            Fail (String.concat "\n" (List.rev !failures))
          else if !checked = 0 then Skip "no plan ran under both engines"
          else Clean !checked)

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  rf_index : int;
  rf_sched_seed : int;  (** replays the failing schedule *)
  rf_domains : int;
  rf_case : Qgen.case;
  rf_shrunk : Qgen.case;
  rf_detail : string;
}

type stats = {
  rs_seed : int;
  rs_total : int;
  rs_clean : int;
  rs_plans : int;  (** plan runs compared across all cases *)
  rs_skipped : int;
  rs_failures : failure list;
}

let campaign ?(config = default_config) ?(budget = default_budget)
    ?(progress = fun _ -> ()) ~seed ~count ~domains () : stats =
  let domains = max 2 (min 4 domains) in
  let st = Random.State.make [| seed; 0xace |] in
  let pools = Array.make (domains + 1) None in
  let pool_of n =
    match pools.(n) with
    | Some p -> p
    | None ->
        let p = Morsel.create n in
        pools.(n) <- Some p;
        p
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (function Some p -> Morsel.shutdown p | None -> ()) pools)
    (fun () ->
      let clean = ref 0 and plans_run = ref 0 and skipped = ref 0 in
      let failures = ref [] in
      for index = 0 to count - 1 do
        progress index;
        let case = Qgen.generate st config in
        let sched_seed = (seed * 1_000_003) + index in
        let nd = 2 + (index mod (domains - 1)) in
        let pool = pool_of nd in
        match check ~budget ~pool ~sched_seed case with
        | Clean n ->
            incr clean;
            plans_run := !plans_run + n
        | Skip _ -> incr skipped
        | Fail detail ->
            let still_fails sel tbls =
              match
                check ~budget ~pool ~sched_seed
                  { Qgen.c_select = sel; c_tables = tbls }
              with
              | Fail _ -> true
              | Clean _ | Skip _ -> false
              | exception _ -> false
            in
            let sel', tbls' =
              Shrink.shrink ~still_fails case.Qgen.c_select case.Qgen.c_tables
            in
            let shrunk = { Qgen.c_select = sel'; c_tables = tbls' } in
            let detail =
              match check ~budget ~pool ~sched_seed shrunk with
              | Fail d -> d
              | _ -> detail
            in
            failures :=
              {
                rf_index = index;
                rf_sched_seed = sched_seed;
                rf_domains = nd;
                rf_case = case;
                rf_shrunk = shrunk;
                rf_detail = detail;
              }
              :: !failures
      done;
      {
        rs_seed = seed;
        rs_total = count;
        rs_clean = !clean;
        rs_plans = !plans_run;
        rs_skipped = !skipped;
        rs_failures = List.rev !failures;
      })

let stats_to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "racefuzz: seed %d, %d cases: %d clean (%d plan runs), %d skipped, %d \
     failures\n"
    s.rs_seed s.rs_total s.rs_clean s.rs_plans s.rs_skipped
    (List.length s.rs_failures);
  List.iter
    (fun f ->
      Printf.bprintf b
        "case %d (schedule seed %d, %d domains):\n%s\n  minimal repro: %s\n"
        f.rf_index f.rf_sched_seed f.rf_domains f.rf_detail
        (Qgen.sql f.rf_shrunk);
      List.iter
        (fun (name, rel) ->
          Printf.bprintf b "  %s: %d rows\n" name (Relation.cardinality rel))
        f.rf_shrunk.Qgen.c_tables)
    s.rs_failures;
  Buffer.contents b

let failure_diagnostics s =
  List.map
    (fun f ->
      Lint.diag Lint.Error ~rule:"race-fuzz-failure"
        ~path:[ Printf.sprintf "case%d" f.rf_index ]
        (Printf.sprintf "schedule seed %d, %d domains: %s" f.rf_sched_seed
           f.rf_domains f.rf_detail))
    s.rs_failures
