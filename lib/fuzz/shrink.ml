(** Delta-debugging minimizer for failing fuzz cases.

    Greedy descent over one-step reductions: drop table rows, replace a
    boolean subterm by a smaller one (a conjunct, a disjunct, a
    constant), drop WHERE/DISTINCT/items/tables, and recurse into
    sublink queries. A candidate is kept only when the caller's
    [still_fails] predicate confirms the counterexample survives, and
    every candidate is strictly smaller under {!size}, so the loop
    terminates at a locally 1-minimal (query, database) repro. *)

open Relalg
module Ast = Sql_frontend.Ast

(* ------------------------------------------------------------------ *)
(* Size: AST nodes + total rows                                        *)
(* ------------------------------------------------------------------ *)

let rec expr_size (e : Ast.expr) =
  match e with
  | Ast.ENull | Ast.EInt _ | Ast.EFloat _ | Ast.EString _ | Ast.EBool _
  | Ast.EColumn _ ->
      1
  | Ast.EBinop (_, a, b) | Ast.ECmp (_, a, b) | Ast.EAnd (a, b) | Ast.EOr (a, b)
    ->
      1 + expr_size a + expr_size b
  | Ast.ENot a | Ast.EIsNull { arg = a; _ } -> 1 + expr_size a
  | Ast.EBetween { arg; lo; hi; _ } ->
      1 + expr_size arg + expr_size lo + expr_size hi
  | Ast.EInList { arg; elems; _ } ->
      1 + expr_size arg + List.fold_left (fun n e -> n + expr_size e) 0 elems
  | Ast.ELike { arg; _ } -> 1 + expr_size arg
  | Ast.ECase (whens, els) ->
      1
      + List.fold_left
          (fun n (c, x) -> n + expr_size c + expr_size x)
          (match els with None -> 0 | Some e -> expr_size e)
          whens
  | Ast.EFun { args; _ } ->
      1 + List.fold_left (fun n e -> n + expr_size e) 0 args
  | Ast.ESub (kind, sub) ->
      1 + select_size sub
      + (match kind with
        | Ast.SExists _ | Ast.SScalar -> 0
        | Ast.SIn (lhs, _) | Ast.SAnyCmp (_, lhs) | Ast.SAllCmp (_, lhs) ->
            expr_size lhs)

and select_size (s : Ast.select) =
  let opt f = function None -> 0 | Some x -> f x in
  let item = function
    | Ast.ItemStar | Ast.ItemQualStar _ -> 1
    | Ast.ItemExpr (e, _) -> expr_size e
  in
  let rec from = function
    | Ast.FTable _ -> 1
    | Ast.FSubquery { sub; _ } -> 1 + select_size sub
    | Ast.FJoin { left; right; on; _ } ->
        1 + from left + from right + opt expr_size on
  in
  1
  + List.fold_left (fun n i -> n + item i) 0 s.Ast.sel_items
  + List.fold_left (fun n f -> n + from f) 0 s.Ast.sel_from
  + opt expr_size s.Ast.sel_where
  + List.fold_left (fun n e -> n + expr_size e) 0 s.Ast.sel_group_by
  + opt expr_size s.Ast.sel_having
  + List.fold_left (fun n (e, _) -> n + expr_size e) 0 s.Ast.sel_order_by
  + opt (fun _ -> 1) s.Ast.sel_limit
  + opt (fun (_, _, s) -> 1 + select_size s) s.Ast.sel_setop

let size select tables =
  select_size select
  + List.fold_left (fun n (_, r) -> n + Relation.cardinality r) 0 tables

(* ------------------------------------------------------------------ *)
(* One-step reductions                                                 *)
(* ------------------------------------------------------------------ *)

(* Replace element [i] of [xs] by each of [f xs_i]. *)
let at_each f xs =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs)
           (f x))
       xs)

(* Drop element [i] of [xs], for each [i]. *)
let drop_each xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

let is_leaf (e : Ast.expr) =
  match e with
  | Ast.ENull | Ast.EInt _ | Ast.EFloat _ | Ast.EString _ | Ast.EBool _
  | Ast.EColumn _ ->
      true
  | _ -> false

(* Constant folding: replace a closed comparison / arithmetic subterm
   by its value. Folding is a *reduction*, not a semantic no-op the
   harness must trust — the candidate still goes through [still_fails]
   — but it turns shapes like [2 < 1 OR p] into [FALSE OR p] in one
   confirmable step, after which the boolean absorptions below finish
   the job. Division and modulo are left alone (folding by zero would
   change error behavior, so the candidate would be rejected anyway). *)
let const_fold (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.ECmp (op, Ast.EInt a, Ast.EInt b) ->
      let v =
        match op with
        | Ast.CEq -> a = b
        | Ast.CNeq -> a <> b
        | Ast.CLt -> a < b
        | Ast.CLeq -> a <= b
        | Ast.CGt -> a > b
        | Ast.CGeq -> a >= b
      in
      [ Ast.EBool v ]
  | Ast.EBinop (Ast.Plus, Ast.EInt a, Ast.EInt b) -> [ Ast.EInt (a + b) ]
  | Ast.EBinop (Ast.Minus, Ast.EInt a, Ast.EInt b) -> [ Ast.EInt (a - b) ]
  | Ast.EBinop (Ast.Times, Ast.EInt a, Ast.EInt b) -> [ Ast.EInt (a * b) ]
  | Ast.ENot (Ast.EBool v) -> [ Ast.EBool (not v) ]
  | Ast.EAnd ((Ast.EBool false as f), _) | Ast.EAnd (_, (Ast.EBool false as f))
    ->
      [ f ]
  | Ast.EOr ((Ast.EBool true as t), _) | Ast.EOr (_, (Ast.EBool true as t)) ->
      [ t ]
  | _ -> []

let rec expr_reductions (e : Ast.expr) : Ast.expr list =
  let shrink_to_bool = if is_leaf e then [] else [ Ast.EBool true ] in
  let structural =
    match e with
    | Ast.EAnd (a, b) ->
        [ a; b ]
        @ List.map (fun a' -> Ast.EAnd (a', b)) (expr_reductions a)
        @ List.map (fun b' -> Ast.EAnd (a, b')) (expr_reductions b)
    | Ast.EOr (a, b) ->
        [ a; b ]
        @ List.map (fun a' -> Ast.EOr (a', b)) (expr_reductions a)
        @ List.map (fun b' -> Ast.EOr (a, b')) (expr_reductions b)
    | Ast.ENot a -> a :: List.map (fun a' -> Ast.ENot a') (expr_reductions a)
    | Ast.ECmp (op, a, b) ->
        List.map (fun a' -> Ast.ECmp (op, a', b)) (expr_reductions a)
        @ List.map (fun b' -> Ast.ECmp (op, a, b')) (expr_reductions b)
    | Ast.EBinop (op, a, b) ->
        [ a; b ]
        @ List.map (fun a' -> Ast.EBinop (op, a', b)) (expr_reductions a)
        @ List.map (fun b' -> Ast.EBinop (op, a, b')) (expr_reductions b)
    | Ast.EIsNull { negated; arg } ->
        List.map
          (fun a' -> Ast.EIsNull { negated; arg = a' })
          (expr_reductions arg)
    | Ast.EInList { negated; arg; elems } when List.length elems > 1 ->
        List.map
          (fun elems' -> Ast.EInList { negated; arg; elems = elems' })
          (drop_each elems)
    | Ast.ESub (kind, sub) ->
        List.map (fun sub' -> Ast.ESub (kind, sub')) (select_reductions sub)
    | _ -> []
  in
  const_fold e @ structural @ shrink_to_bool

(* One-step reductions of a select (used both at top level and inside
   sublinks). Analyzability of a candidate is not checked here — the
   caller's [still_fails] rejects unanalyzable candidates. *)
and select_reductions (s : Ast.select) : Ast.select list =
  let with_where w = { s with Ast.sel_where = w } in
  let where =
    match s.Ast.sel_where with
    | None -> []
    | Some w ->
        with_where None
        :: List.map (fun w' -> with_where (Some w')) (expr_reductions w)
  in
  let distinct =
    if s.Ast.sel_distinct then [ { s with Ast.sel_distinct = false } ] else []
  in
  let items =
    if List.length s.Ast.sel_items > 1 then
      List.map
        (fun items' -> { s with Ast.sel_items = items' })
        (drop_each s.Ast.sel_items)
    else []
  in
  let from =
    if List.length s.Ast.sel_from > 1 then
      List.map
        (fun from' -> { s with Ast.sel_from = from' })
        (drop_each s.Ast.sel_from)
    else []
  in
  let group_by =
    if s.Ast.sel_group_by <> [] then
      [ { s with Ast.sel_group_by = []; sel_having = None } ]
    else []
  in
  let having =
    match s.Ast.sel_having with
    | Some _ -> [ { s with Ast.sel_having = None } ]
    | None -> []
  in
  let order_limit =
    (if s.Ast.sel_order_by <> [] then [ { s with Ast.sel_order_by = [] } ]
     else [])
    @
    match s.Ast.sel_limit with
    | Some _ -> [ { s with Ast.sel_limit = None } ]
    | None -> []
  in
  let setop =
    match s.Ast.sel_setop with
    | Some (_, _, arm) -> [ { s with Ast.sel_setop = None }; arm ]
    | None -> []
  in
  where @ distinct @ items @ from @ group_by @ having @ order_limit @ setop

(* Row reductions: drop one row of one table. *)
let table_reductions tables =
  at_each
    (fun (name, rel) ->
      let tuples = Relation.tuples rel in
      List.map
        (fun tuples' -> (name, Relation.make (Relation.schema rel) tuples'))
        (drop_each tuples))
    tables

(* ------------------------------------------------------------------ *)
(* Greedy minimization                                                 *)
(* ------------------------------------------------------------------ *)

(** All strictly-smaller one-step reductions of a (query, tables)
    pair: row drops first (cheapest wins), then AST reductions. Also
    the shrinker handed to QCheck properties built on {!Qgen}. *)
let reductions select tables =
  let current = size select tables in
  let row_cands =
    List.map (fun tbls -> (select, tbls)) (table_reductions tables)
  in
  let ast_cands =
    List.map (fun sel -> (sel, tables)) (select_reductions select)
  in
  List.filter (fun (sel, tbls) -> size sel tbls < current)
    (row_cands @ ast_cands)

(** [shrink ~still_fails select tables] greedily applies the first
    strictly-smaller one-step reduction that keeps [still_fails]
    true, to a fixpoint (or [max_steps] predicate evaluations). *)
let shrink ?(max_steps = 2000) ~still_fails select tables =
  let steps = ref 0 in
  let rec loop select tables =
    if !steps > max_steps then (select, tables)
    else
      match
        List.find_opt
          (fun (sel, tbls) ->
            incr steps;
            !steps <= max_steps && still_fails sel tbls)
          (reductions select tables)
      with
      | Some (sel, tbls) -> loop sel tbls
      | None -> (select, tables)
  in
  loop select tables
