(** Grammar-directed generation of sublink-heavy SQL queries with tiny
    NULL-rich databases, fully determined by an explicit random state
    (same seed, same case). The fixed schema is [r(a,b)], [s(c,d)],
    [u(e,f)], all integer columns with distinct names, so correlated
    references resolve by name alone and every generated query
    pretty-prints to SQL the parser accepts again. *)

open Relalg

type config = {
  depth : int;  (** maximum sublink nesting depth *)
  correlation : float;  (** probability a generated sublink correlates *)
  null_rate : float;  (** probability a generated cell is NULL *)
  max_rows : int;  (** rows per generated table: 0..max_rows *)
  skew : float;
      (** zipfian exponent of the value distribution; 0.0 draws
          uniformly (the historical behavior, bit-identical per seed) *)
  corr_cols : float;
      (** probability a non-first column of a row copies the row's
          first column (plus noise in {0,1}) instead of drawing fresh;
          0.0 keeps columns independent *)
}

(** depth 2, correlation 0.5, null_rate 0.25, max_rows 6, no skew,
    independent columns *)
val default : config

(** {!default} with [skew = 1.5], [corr_cols = 0.5], [max_rows = 12] —
    heavy hitters and correlated columns, the distributions that break
    uniform-independence cardinality estimates. *)
val default_skewed : config

type case = {
  c_select : Sql_frontend.Ast.select;
  c_tables : (string * Relation.t) list;
}

(** The generated tables' fixed layout: name and column names. *)
val tables_spec : (string * string list) list

val generate : Random.State.t -> config -> case

(** [case_of_seed ?config seed] is the deterministic case for [seed]. *)
val case_of_seed : ?config:config -> int -> case

(** The case's query as parseable SQL. *)
val sql : case -> string

(** The case's tables as a fresh database. *)
val database : case -> Database.t

(** Query plus tables, printable (used as the QCheck printer). *)
val case_to_string : case -> string
