(** The differential harness: one fuzz case is evaluated under every
    applicable provenance strategy × all three engines (reference,
    compiled, vectorized) and compared against the enumeration oracle,
    plus a plain (no-provenance) engine-parity check and the Theorem-1
    projection property (the provenance rows restricted to the original
    columns are exactly the plain result, set-level).

    Configurations that legitimately cannot run — a strategy whose
    applicability conditions the query violates, an oracle-unsupported
    form, a budget trip, a runtime error like division by zero — are
    {e skipped}, not failed; a {!Mismatch} verdict means two
    configurations that both ran produced different rows, which is a
    genuine counterexample. The campaign driver shrinks those to
    minimal repros and writes them as replayable [.sql] + [.csv]
    bundles. *)

open Relalg
open Core

type mismatch = {
  mm_left : string;  (** configuration label, e.g. ["prov/Left/reference"] *)
  mm_right : string;
  mm_detail : string;  (** row counts and sample differing rows *)
}

type verdict =
  | Agree of int  (** number of configuration comparisons that ran *)
  | Skip of string  (** nothing comparable ran *)
  | Mismatch of mismatch

let default_budget = Guard.budget ~timeout:2.0 ~max_rows:500_000 ()

(* ------------------------------------------------------------------ *)
(* Running one configuration                                           *)
(* ------------------------------------------------------------------ *)

type run = (Tuple.t list, string) result  (** rows (unsorted) or skip reason *)

let guarded budget f =
  match Guard.with_budget (Some budget) f with
  | rows -> Ok rows
  | exception Guard.Budget_exceeded t -> Error (Guard.trip_to_string t)
  | exception Strategy.Unsupported m -> Error ("strategy unsupported: " ^ m)
  | exception Oracle.Unsupported m -> Error ("oracle unsupported: " ^ m)
  | exception
      (( Eval.Eval_error _ | Value.Type_clash _ | Schema.Schema_error _
       | Relation.Relation_error _ | Typecheck.Type_error _
       | Database.Unknown_relation _ | Builtin.Unknown_function _
       | Division_by_zero | Not_found | Invalid_argument _ | Failure _ ) as e)
    ->
      Error (Printexc.to_string e)

let canon_bag rows = List.sort Tuple.compare rows
let canon_set rows = List.sort_uniq Tuple.compare rows

let sample n rows =
  List.filteri (fun i _ -> i < n) rows |> List.map Tuple.to_string
  |> String.concat " "

let describe left right l r =
  {
    mm_left = left;
    mm_right = right;
    mm_detail =
      Printf.sprintf "%d vs %d rows; %s: %s | %s: %s" (List.length l)
        (List.length r) left (sample 4 l) right (sample 4 r);
  }

(* ------------------------------------------------------------------ *)
(* The differential check                                               *)
(* ------------------------------------------------------------------ *)

let check ?(budget = default_budget) (case : Qgen.case) : verdict =
  let db = Qgen.database case in
  match Sql_frontend.Analyzer.analyze db case.Qgen.c_select with
  | exception
      ( Sql_frontend.Analyzer.Analyze_error _ | Typecheck.Type_error _
      | Schema.Schema_error _ | Database.Unknown_relation _
      | Builtin.Unknown_function _ | Failure _ | Not_found ) ->
      Skip "query does not analyze"
  | analyzed -> (
      let q = analyzed.Sql_frontend.Analyzer.query in
      match Typecheck.infer db q with
      | exception _ -> Skip "query does not typecheck"
      | _ ->
          let n_orig = List.length (Scope.out_names db q) in
          let plain_ref =
            guarded budget (fun () ->
                Relation.tuples (Eval.query_reference db q))
          in
          let plain_comp =
            guarded budget (fun () -> Relation.tuples (Eval.query_compiled db q))
          in
          let plain_vec =
            guarded budget (fun () ->
                Relation.tuples (Eval.query_vectorized db q))
          in
          let oracle =
            guarded budget (fun () -> Oracle.provenance db q)
          in
          (* provenance plans per strategy, optimized, under both engines *)
          let prov_runs =
            List.map
              (fun strategy ->
                let name = Strategy.to_string strategy in
                match
                  guarded budget (fun () ->
                      let q_plus, _ = Rewrite.rewrite db ~strategy q in
                      Optimizer.optimize db q_plus)
                with
                | Error e ->
                    [ ("prov/" ^ name ^ "/reference", (Error e : run)) ]
                | Ok plan ->
                    (* smuggle the plan through: re-wrap each engine run *)
                    [
                      ( "prov/" ^ name ^ "/reference",
                        guarded budget (fun () ->
                            Relation.tuples (Eval.query_reference db plan)) );
                      ( "prov/" ^ name ^ "/compiled",
                        guarded budget (fun () ->
                            Relation.tuples (Eval.query_compiled db plan)) );
                      ( "prov/" ^ name ^ "/vectorized",
                        guarded budget (fun () ->
                            Relation.tuples (Eval.query_vectorized db plan)) );
                    ])
              Strategy.all
            |> List.concat
          in
          let checked = ref 0 in
          let failure = ref None in
          let compare_rows ~canon left right l r =
            if Option.is_none !failure then begin
              match (l, r) with
              | Ok lr, Ok rr ->
                  incr checked;
                  let lc = canon lr and rc = canon rr in
                  if not (List.equal Tuple.equal lc rc) then
                    failure := Some (describe left right lc rc)
              | _ -> ()
            end
          in
          (* 1. plain engine parity (bag-level) *)
          compare_rows ~canon:canon_bag "plain/reference" "plain/compiled"
            plain_ref plain_comp;
          compare_rows ~canon:canon_bag "plain/reference" "plain/vectorized"
            plain_ref plain_vec;
          (* 2. engine parity per strategy (bag-level) *)
          List.iter
            (fun strategy ->
              let name = Strategy.to_string strategy in
              let find l = List.assoc_opt l prov_runs in
              (match
                 (find ("prov/" ^ name ^ "/reference"),
                  find ("prov/" ^ name ^ "/compiled"))
               with
              | Some l, Some r ->
                  compare_rows ~canon:canon_bag
                    ("prov/" ^ name ^ "/reference")
                    ("prov/" ^ name ^ "/compiled")
                    l r
              | _ -> ());
              match
                (find ("prov/" ^ name ^ "/reference"),
                 find ("prov/" ^ name ^ "/vectorized"))
              with
              | Some l, Some r ->
                  compare_rows ~canon:canon_bag
                    ("prov/" ^ name ^ "/reference")
                    ("prov/" ^ name ^ "/vectorized")
                    l r
              | _ -> ())
            Strategy.all;
          (* 3. every provenance run against the oracle (set-level) *)
          List.iter
            (fun (label, r) ->
              compare_rows ~canon:canon_set label "oracle" r oracle)
            prov_runs;
          (* 4. cross-strategy agreement (set-level) — meaningful when
             the oracle could not run *)
          (match
             List.filter (fun (_, r) -> Result.is_ok r) prov_runs
           with
          | (l1, r1) :: rest ->
              List.iter
                (fun (l2, r2) -> compare_rows ~canon:canon_set l1 l2 r1 r2)
                rest
          | [] -> ());
          (* 5. Theorem 1: provenance rows project onto the plain result *)
          List.iter
            (fun (label, r) ->
              match (r, plain_ref) with
              | Ok rows, Ok _ ->
                  let projected =
                    let positions = Array.init n_orig Fun.id in
                    Ok
                      (List.map
                         (fun t -> Tuple.project_arr t positions)
                         rows)
                  in
                  compare_rows ~canon:canon_set
                    (label ^ " (original columns)")
                    "plain/reference" projected plain_ref
              | _ -> ())
            prov_runs;
          (match !failure with
          | Some mm -> Mismatch mm
          | None ->
              if !checked = 0 then
                Skip "no two configurations both ran (all skipped)"
              else Agree !checked))

(* ------------------------------------------------------------------ *)
(* Replayable bundles                                                  *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(** [write_bundle ~dir case ~notes] materializes a case as a replayable
    bundle: [query.sql], one [<table>.csv] per table, and [notes.txt]
    describing the finding. *)
let write_bundle ~dir (case : Qgen.case) ~notes =
  mkdir_p dir;
  write_file (Filename.concat dir "query.sql") (Qgen.sql case ^ "\n");
  List.iter
    (fun (name, rel) ->
      write_file (Filename.concat dir (name ^ ".csv")) (Csv.to_string rel))
    case.Qgen.c_tables;
  write_file (Filename.concat dir "notes.txt") (notes ^ "\n")

(* CSV inference types empty/all-NULL columns as strings; coerce tables
   of the known fuzz layout back to their integer schemas. *)
let coerce_to_spec name rel =
  match List.assoc_opt name Qgen.tables_spec with
  | Some cols
    when Schema.names (Relation.schema rel) = cols
         && List.for_all
              (fun t ->
                List.for_all
                  (fun v ->
                    match v with Value.Null | Value.Int _ -> true | _ -> false)
                  (Tuple.to_list t))
              (Relation.tuples rel) ->
      Relation.make
        (Schema.of_list (List.map (fun n -> Schema.attr n Vtype.TInt) cols))
        (Relation.tuples rel)
  | _ -> rel

(** [load_bundle dir] reads a bundle back: [query.sql] plus every
    [*.csv] (table name = file name). *)
let load_bundle dir : Qgen.case =
  let sql_path = Filename.concat dir "query.sql" in
  let ic = open_in sql_path in
  let n = in_channel_length ic in
  let sql = really_input_string ic n in
  close_in ic;
  let c_select = Sql_frontend.Parser.parse sql in
  let c_tables =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.map (fun f ->
           let name = Filename.chop_suffix f ".csv" in
           (name, coerce_to_spec name (Csv.load (Filename.concat dir f))))
  in
  { Qgen.c_select; c_tables }

(** [replay ?budget dir] re-runs a bundle through the differential
    check. *)
let replay ?budget dir = check ?budget (load_bundle dir)

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  fl_index : int;  (** which generated case (0-based) *)
  fl_case : Qgen.case;  (** as generated *)
  fl_shrunk : Qgen.case;  (** after delta-debugging *)
  fl_detail : string;
  fl_dir : string option;  (** bundle directory, when artifacts were written *)
}

type stats = {
  st_seed : int;
  st_total : int;
  st_agreed : int;
  st_comparisons : int;  (** configuration comparisons across all cases *)
  st_skipped : int;
  st_failures : failure list;
}

let campaign ?(config = Qgen.default) ?(budget = default_budget) ?artifacts
    ?(progress = fun _ -> ()) ~seed ~count () : stats =
  let st = Random.State.make [| seed; 0xd1ff |] in
  let agreed = ref 0 and comparisons = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  for index = 0 to count - 1 do
    progress index;
    let case = Qgen.generate st config in
    match check ~budget case with
    | Agree n ->
        incr agreed;
        comparisons := !comparisons + n
    | Skip _ -> incr skipped
    | Mismatch mm ->
        let still_fails sel tbls =
          match
            check ~budget { Qgen.c_select = sel; c_tables = tbls }
          with
          | Mismatch _ -> true
          | Agree _ | Skip _ -> false
          | exception _ -> false
        in
        let sel', tbls' =
          Shrink.shrink ~still_fails case.Qgen.c_select case.Qgen.c_tables
        in
        let shrunk = { Qgen.c_select = sel'; c_tables = tbls' } in
        let detail =
          let final =
            match check ~budget shrunk with
            | Mismatch mm' -> mm'
            | _ -> mm
          in
          Printf.sprintf "%s disagrees with %s: %s" final.mm_left
            final.mm_right final.mm_detail
        in
        let dir =
          match artifacts with
          | None -> None
          | Some root ->
              let dir =
                Filename.concat root
                  (Printf.sprintf "seed%d-case%d" seed index)
              in
              write_bundle ~dir shrunk
                ~notes:
                  (Printf.sprintf "seed %d, case %d\n%s\noriginal query:\n%s"
                     seed index detail (Qgen.sql case));
              Some dir
        in
        failures :=
          {
            fl_index = index;
            fl_case = case;
            fl_shrunk = shrunk;
            fl_detail = detail;
            fl_dir = dir;
          }
          :: !failures
  done;
  {
    st_seed = seed;
    st_total = count;
    st_agreed = !agreed;
    st_comparisons = !comparisons;
    st_skipped = !skipped;
    st_failures = List.rev !failures;
  }

let stats_to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "fuzz: seed %d, %d cases: %d agreed (%d comparisons), %d skipped, %d \
     mismatches\n"
    s.st_seed s.st_total s.st_agreed s.st_comparisons s.st_skipped
    (List.length s.st_failures);
  List.iter
    (fun f ->
      Printf.bprintf b "case %d: %s\n  minimal repro: %s\n" f.fl_index
        f.fl_detail
        (Qgen.sql f.fl_shrunk);
      List.iter
        (fun (name, rel) ->
          Printf.bprintf b "  %s: %d rows\n" name (Relation.cardinality rel))
        f.fl_shrunk.Qgen.c_tables;
      match f.fl_dir with
      | Some d -> Printf.bprintf b "  bundle: %s\n" d
      | None -> ())
    s.st_failures;
  Buffer.contents b
