(** Delta-debugging minimizer for failing fuzz cases: greedy descent
    over one-step reductions (drop rows, replace boolean subterms,
    drop WHERE/DISTINCT/items/tables, recurse into sublinks), keeping
    a candidate only when [still_fails] confirms the counterexample
    survives. Every accepted candidate is strictly smaller under
    {!size}, so minimization terminates at a locally 1-minimal
    (query, database) repro. *)

open Relalg

(** AST node count plus total table rows — the measure minimized. *)
val size : Sql_frontend.Ast.select -> (string * Relation.t) list -> int

(** All strictly-smaller one-step reductions of a (query, tables)
    pair — row drops first, then AST reductions. This is also the
    shrinker for QCheck properties generating {!Qgen} cases. *)
val reductions :
  Sql_frontend.Ast.select ->
  (string * Relation.t) list ->
  (Sql_frontend.Ast.select * (string * Relation.t) list) list

(** [shrink ?max_steps ~still_fails select tables] is the minimized
    (query, tables) pair. [still_fails] must return [false] (not
    raise) on unanalyzable candidates; [max_steps] bounds predicate
    evaluations (default 2000). *)
val shrink :
  ?max_steps:int ->
  still_fails:(Sql_frontend.Ast.select -> (string * Relation.t) list -> bool) ->
  Sql_frontend.Ast.select ->
  (string * Relation.t) list ->
  Sql_frontend.Ast.select * (string * Relation.t) list
