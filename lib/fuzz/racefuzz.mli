(** Schedule fuzzing for the parallel vectorized engine: generated
    queries run on a genuinely multi-domain pool under the chaos
    scheduler with the vector-clock race detector armed, checked for
    bag-parity against the compiled engine. Failures carry the
    (query, schedule-seed, domains) triple that replays them and are
    shrunk with {!Shrink} under that exact schedule seed. *)

open Relalg

(** {!Qgen.default} with [max_rows = 16] — enough rows that 2-row
    batches fan out across workers. *)
val default_config : Qgen.config

(** 5 s / 500k rows per engine run. *)
val default_budget : Guard.budget

type verdict =
  | Clean of int  (** plans that ran under both engines *)
  | Skip of string
  | Fail of string  (** race reports and/or parity mismatch, rendered *)

(** [check ~pool ~sched_seed case] — every applicable plan of [case]
    (plain + per-strategy provenance), compiled baseline vs. a
    vectorized run on [pool] under chaos seed [sched_seed] with the
    detector armed. Detector reports fail the case even when rows
    agree. Engine globals are saved and restored around each run. *)
val check :
  ?budget:Guard.budget ->
  pool:Morsel.pool ->
  sched_seed:int ->
  Qgen.case ->
  verdict

type failure = {
  rf_index : int;
  rf_sched_seed : int;  (** replays the failing schedule *)
  rf_domains : int;
  rf_case : Qgen.case;
  rf_shrunk : Qgen.case;
  rf_detail : string;
}

type stats = {
  rs_seed : int;
  rs_total : int;
  rs_clean : int;
  rs_plans : int;  (** plan runs compared across all cases *)
  rs_skipped : int;
  rs_failures : failure list;
}

(** [campaign ~seed ~count ~domains ()] — [count] cases from one
    deterministic stream; case [i] runs under schedule seed
    [seed * 1_000_003 + i] on a pool of [2 + i mod (domains-1)]
    domains (unclamped [Morsel.create] pools, created lazily and shut
    down at the end). [domains] is clamped to 2–4. *)
val campaign :
  ?config:Qgen.config ->
  ?budget:Guard.budget ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  domains:int ->
  unit ->
  stats

val stats_to_string : stats -> string

(** Failures as machine-readable diagnostics
    (rule [race-fuzz-failure]). *)
val failure_diagnostics : stats -> Lint.diagnostic list
