(** Grammar-directed generation of sublink-heavy SQL queries with tiny
    NULL-rich databases.

    Cases are generated as frontend ASTs over a fixed three-table
    schema — [r(a,b)], [s(c,d)], [u(e,f)], all integer columns with
    pairwise-distinct names so correlation resolves by name alone —
    and pretty-print to SQL the parser accepts again, which is what
    makes shrunk counterexamples replayable as [.sql] + [.csv]
    bundles. The grammar covers all four sublink kinds ([EXISTS],
    [IN], [op ANY], [op ALL]) plus scalar-aggregate subqueries, with
    configurable correlation probability and nesting depth.

    Everything is driven by an explicit {!Random.State.t}: the same
    seed always yields the same case. *)

open Relalg
module Ast = Sql_frontend.Ast

type config = {
  depth : int;  (** maximum sublink nesting depth *)
  correlation : float;  (** probability a generated sublink correlates *)
  null_rate : float;  (** probability a generated cell is NULL *)
  max_rows : int;  (** rows per generated table: 0..max_rows *)
  skew : float;
      (** zipfian exponent of the value distribution; 0.0 draws
          uniformly (the historical behavior, bit-identical per seed) *)
  corr_cols : float;
      (** probability a non-first column of a row copies the row's
          first column (plus small noise) instead of drawing fresh —
          0.0 keeps columns independent *)
}

let default =
  {
    depth = 2;
    correlation = 0.5;
    null_rate = 0.25;
    max_rows = 6;
    skew = 0.0;
    corr_cols = 0.0;
  }

(* Skewed data stresses the estimator where uniform data cannot: heavy
   hitters break NDV-based join estimates unless the histogram carries
   them, and column correlation breaks independence-assumption
   selectivity products. *)
let default_skewed = { default with skew = 1.5; corr_cols = 0.5; max_rows = 12 }

type case = {
  c_select : Ast.select;
  c_tables : (string * Relation.t) list;
}

(* The fixed schema: distinct column names across tables, so inner
   scopes never shadow the outer columns a correlated predicate
   references. *)
let tables_spec =
  [ ("r", [ "a"; "b" ]); ("s", [ "c"; "d" ]); ("u", [ "e"; "f" ]) ]

let schema_of_spec cols =
  Schema.of_list (List.map (fun n -> Schema.attr n Vtype.TInt) cols)

(* ------------------------------------------------------------------ *)
(* Databases                                                           *)
(* ------------------------------------------------------------------ *)

(* Values stay in a narrow band so generated predicates actually both
   hit and miss, and NULLs appear at [null_rate]. With [skew > 0] the
   band is drawn zipfian — rank k (of 7) with weight 1/(k+1)^skew, the
   low end of the band hottest — via CDF inversion, still fully
   determined by [st]. *)
let zipf_rank st ~n ~s =
  let weights = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let u = Random.State.float st total in
  let rec go k acc =
    let acc = acc +. weights.(k) in
    if u < acc || k = n - 1 then k else go (k + 1) acc
  in
  go 0 0.0

let gen_value st cfg =
  if Random.State.float st 1.0 < cfg.null_rate then Value.Null
  else if cfg.skew > 0.0 then Value.Int (zipf_rank st ~n:7 ~s:cfg.skew - 2)
  else Value.Int (Random.State.int st 7 - 2)

(* A row whose non-first columns each copy the first column's value
   plus noise in {0,1} with probability [corr_cols] — correlated
   columns defeat independence-assumption selectivity products. *)
let gen_corr_row st cfg cols =
  match cols with
  | [] -> []
  | _ :: rest ->
      let v0 = gen_value st cfg in
      let dependent _ =
        match v0 with
        | Value.Int base when Random.State.float st 1.0 < cfg.corr_cols ->
            Value.Int (base + Random.State.int st 2)
        | _ -> gen_value st cfg
      in
      v0 :: List.map dependent rest

let gen_table st cfg cols =
  let n_rows = Random.State.int st (cfg.max_rows + 1) in
  let rows =
    List.init n_rows (fun _ ->
        if cfg.corr_cols > 0.0 then gen_corr_row st cfg cols
        else List.map (fun _ -> gen_value st cfg) cols)
  in
  Relation.of_values (schema_of_spec cols) rows

let gen_tables st cfg =
  List.map (fun (name, cols) -> (name, gen_table st cfg cols)) tables_spec

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let pick st xs = List.nth xs (Random.State.int st (List.length xs))
let chance st p = Random.State.float st 1.0 < p

let cmpops = [ Ast.CEq; Ast.CNeq; Ast.CLt; Ast.CLeq; Ast.CGt; Ast.CGeq ]
let col c = Ast.EColumn (None, c)
let small_const st = Ast.EInt (Random.State.int st 5 - 1)

(* One comparison atom over [cols], against a constant or another
   column. *)
let gen_cmp st cols =
  let op = pick st cmpops in
  let lhs = col (pick st cols) in
  let rhs = if chance st 0.6 then small_const st else col (pick st cols) in
  Ast.ECmp (op, lhs, rhs)

(* A constant range conjunction over one column — [c >/>= lo AND c
   </<= hi] — deliberately contradictory (empty range) about a third
   of the time. These shapes drive the optimizer's symbolic passes
   (unsat-fold, drop-implied) and the lint contradiction rules through
   the differential harness, where a miscompiled fold would show up as
   a row-set mismatch. *)
let gen_range st cols =
  let c = col (pick st cols) in
  let lo = Random.State.int st 5 - 1 in
  let hi =
    if chance st 0.35 then lo - 1 - Random.State.int st 3 (* empty *)
    else lo + Random.State.int st 4
  in
  let lower = pick st [ Ast.CGt; Ast.CGeq ] in
  let upper = pick st [ Ast.CLt; Ast.CLeq ] in
  Ast.EAnd (Ast.ECmp (lower, c, Ast.EInt lo), Ast.ECmp (upper, c, Ast.EInt hi))

(* [gen_pred st cfg ~depth ~cols ~outer ~budget] is a boolean
   expression over the in-scope [cols]; [outer] are enclosing-scope
   columns available for correlation; [depth] bounds sublink nesting;
   [budget] bounds the number of atoms. *)
let rec gen_pred st cfg ~depth ~cols ~outer ~budget =
  if budget <= 1 then gen_atom st cfg ~depth ~cols ~outer
  else
    match Random.State.int st 4 with
    | 0 ->
        let a = gen_pred st cfg ~depth ~cols ~outer ~budget:(budget / 2) in
        let b = gen_pred st cfg ~depth ~cols ~outer ~budget:(budget / 2) in
        Ast.EAnd (a, b)
    | 1 ->
        let a = gen_pred st cfg ~depth ~cols ~outer ~budget:(budget / 2) in
        let b = gen_pred st cfg ~depth ~cols ~outer ~budget:(budget / 2) in
        Ast.EOr (a, b)
    | 2 ->
        Ast.ENot (gen_pred st cfg ~depth ~cols ~outer ~budget:(budget - 1))
    | _ -> gen_atom st cfg ~depth ~cols ~outer

and gen_atom st cfg ~depth ~cols ~outer =
  if depth > 0 && chance st 0.55 then gen_sublink st cfg ~depth ~cols ~outer
  else if chance st 0.2 then
    Ast.EIsNull { negated = chance st 0.5; arg = col (pick st cols) }
  else if chance st 0.2 then gen_range st cols
  else gen_cmp st cols

(* A sublink atom. The subquery draws from a table different from the
   current scope's, and (with probability [correlation]) its WHERE
   references a column of the current scope or an enclosing one. *)
and gen_sublink st cfg ~depth ~cols ~outer =
  let current = cols @ outer in
  let inner_name, inner_cols =
    (* any table whose columns are not in scope — with distinct column
       names per table, that is any table other than those in scope *)
    let candidates =
      List.filter
        (fun (_, tcols) -> not (List.exists (fun c -> List.mem c current) tcols))
        tables_spec
    in
    match candidates with [] -> pick st tables_spec | cs -> pick st cs
  in
  let out_col = pick st inner_cols in
  let correlate = chance st cfg.correlation in
  let base_pred () =
    if chance st 0.8 then
      Some
        (gen_pred st cfg ~depth:(depth - 1) ~cols:inner_cols ~outer:current
           ~budget:2)
    else None
  in
  let sub_where =
    if correlate then begin
      let corr =
        Ast.ECmp (pick st cmpops, col (pick st inner_cols), col (pick st current))
      in
      match base_pred () with
      | None -> Some corr
      | Some p -> Some (Ast.EAnd (corr, p))
    end
    else base_pred ()
  in
  let sub ~items ~group_by =
    {
      Ast.empty_select with
      Ast.sel_items = items;
      sel_from = [ Ast.FTable { table = inner_name; alias = None } ];
      sel_where = sub_where;
      sel_group_by = group_by;
    }
  in
  let plain_sub =
    sub ~items:[ Ast.ItemExpr (col out_col, None) ] ~group_by:[]
  in
  match Random.State.int st 5 with
  | 0 -> Ast.ESub (Ast.SExists (chance st 0.3), plain_sub)
  | 1 -> Ast.ESub (Ast.SIn (col (pick st cols), chance st 0.3), plain_sub)
  | 2 -> Ast.ESub (Ast.SAnyCmp (pick st cmpops, col (pick st cols)), plain_sub)
  | 3 -> Ast.ESub (Ast.SAllCmp (pick st cmpops, col (pick st cols)), plain_sub)
  | _ ->
      (* scalar-aggregate subquery: single row by construction *)
      let agg = pick st [ "min"; "max"; "sum"; "count" ] in
      let scalar =
        sub
          ~items:
            [
              Ast.ItemExpr
                ( Ast.EFun
                    {
                      name = agg;
                      distinct = false;
                      star = false;
                      args = [ col out_col ];
                    },
                  None );
            ]
          ~group_by:[]
      in
      Ast.ECmp (pick st cmpops, Ast.ESub (Ast.SScalar, scalar), small_const st)

(* The top-level query: one or two tables (cross product or explicit
   [JOIN]/[LEFT JOIN]), sublink-bearing WHERE, and occasionally
   DISTINCT, GROUP BY + HAVING, ORDER BY/LIMIT, or a trailing set
   operation — so analyzed fuzz queries reach every algebra operator,
   not just selections. *)
let gen_select st cfg =
  let first = pick st tables_spec in
  let second =
    if chance st 0.35 then
      Some (pick st (List.filter (fun t -> fst t <> fst first) tables_spec))
    else None
  in
  let ftable (name, _) = Ast.FTable { table = name; alias = None } in
  let from, cols =
    match second with
    | None -> ([ ftable first ], snd first)
    | Some sec ->
        let cols = snd first @ snd sec in
        if chance st 0.4 then begin
          let kind = if chance st 0.5 then Ast.JInner else Ast.JLeft in
          let op = pick st cmpops in
          let lhs = col (pick st (snd first)) in
          let rhs = col (pick st (snd sec)) in
          ( [
              Ast.FJoin
                {
                  kind;
                  left = ftable first;
                  right = ftable sec;
                  on = Some (Ast.ECmp (op, lhs, rhs));
                };
            ],
            cols )
        end
        else ([ ftable first; ftable sec ], cols)
  in
  let where =
    if chance st 0.92 then
      Some (gen_pred st cfg ~depth:cfg.depth ~cols ~outer:[] ~budget:3)
    else None
  in
  if chance st 0.2 then begin
    (* aggregate query: GROUP BY one column, one aggregate item *)
    let g = pick st cols in
    let agg = pick st [ "min"; "max"; "sum"; "count" ] in
    let a = pick st cols in
    let items =
      [
        Ast.ItemExpr (col g, None);
        Ast.ItemExpr
          ( Ast.EFun
              { name = agg; distinct = false; star = false; args = [ col a ] },
            Some "ag" );
      ]
    in
    let having =
      if chance st 0.3 then begin
        let op = pick st cmpops in
        let c = small_const st in
        Some
          (Ast.ECmp
             ( op,
               Ast.EFun
                 {
                   name = "count";
                   distinct = false;
                   star = false;
                   args = [ col a ];
                 },
               c ))
      end
      else None
    in
    {
      Ast.empty_select with
      Ast.sel_items = items;
      sel_from = from;
      sel_where = where;
      sel_group_by = [ col g ];
      sel_having = having;
    }
  end
  else begin
    let n_items = 1 + Random.State.int st (List.length cols) in
    let item_cols = List.filteri (fun i _ -> i < n_items) cols in
    let items = List.map (fun c -> Ast.ItemExpr (col c, None)) item_cols in
    let distinct = chance st 0.2 in
    let base =
      {
        Ast.empty_select with
        Ast.sel_distinct = distinct;
        sel_items = items;
        sel_from = from;
        sel_where = where;
      }
    in
    if chance st 0.2 then begin
      (* ORDER BY a selected column, sometimes with LIMIT *)
      let key = col (pick st item_cols) in
      let dir = if chance st 0.5 then Ast.OAsc else Ast.ODesc in
      let limit =
        if chance st 0.5 then Some (Random.State.int st 5) else None
      in
      { base with Ast.sel_order_by = [ (key, dir) ]; sel_limit = limit }
    end
    else if n_items <= 2 && chance st 0.18 then begin
      (* trailing set operation over a single table of the same arity *)
      let arm_name, arm_cols = pick st tables_spec in
      let arm_items =
        List.filteri (fun i _ -> i < n_items) arm_cols
        |> List.map (fun c -> Ast.ItemExpr (col c, None))
      in
      let arm_where =
        if chance st 0.7 then
          Some
            (gen_pred st cfg
               ~depth:(max 0 (cfg.depth - 1))
               ~cols:arm_cols ~outer:[] ~budget:2)
        else None
      in
      let arm =
        {
          Ast.empty_select with
          Ast.sel_items = arm_items;
          sel_from = [ Ast.FTable { table = arm_name; alias = None } ];
          sel_where = arm_where;
        }
      in
      let kind = pick st [ Ast.SUnion; Ast.SIntersect; Ast.SExcept ] in
      let all = chance st 0.5 in
      { base with Ast.sel_setop = Some (kind, all, arm) }
    end
    else base
  end

let generate st cfg =
  let c_tables = gen_tables st cfg in
  let c_select = gen_select st cfg in
  { c_select; c_tables }

let case_of_seed ?(config = default) seed =
  generate (Random.State.make [| seed; 0x5eed |]) config

(* ------------------------------------------------------------------ *)
(* Views of a case                                                     *)
(* ------------------------------------------------------------------ *)

let sql case = Sql_frontend.Sql_pp.select_str case.c_select
let database case = Database.of_list case.c_tables

let case_to_string case =
  let b = Buffer.create 256 in
  Buffer.add_string b (sql case);
  Buffer.add_char b '\n';
  List.iter
    (fun (name, rel) ->
      Printf.bprintf b "-- %s (%d rows)\n%s" name (Relation.cardinality rel)
        (Csv.to_string rel))
    case.c_tables;
  Buffer.contents b
