(** Seeded malformed-frame generator for the server wire protocol.

    Each seed deterministically yields one {!case}: raw bytes to throw
    at a connection, plus the contract the server must honor afterwards
    — either the connection stays usable (recoverable violation: the
    server answered a typed protocol error and kept framing) or the
    connection is forfeit (fatal violation or deliberate mid-frame
    disconnect) but the {e server} must keep answering fresh
    connections. The serve harness ([bench serve --fuzz-proto N])
    asserts exactly that: after every case, a well-formed request gets
    a well-formed answer. *)

open Provserver

type expect =
  | Conn_alive  (** same connection must answer the next request *)
  | Conn_forfeit  (** connection may close; server must stay up *)

type kind =
  | K_garbage_tag
  | K_bad_version
  | K_empty
  | K_corrupt_body
  | K_oversized
  | K_bad_length
  | K_truncated
  | K_midframe

let kind_to_string = function
  | K_garbage_tag -> "garbage-tag"
  | K_bad_version -> "bad-version"
  | K_empty -> "empty-frame"
  | K_corrupt_body -> "corrupt-body"
  | K_oversized -> "oversized"
  | K_bad_length -> "bad-length-prefix"
  | K_truncated -> "truncated"
  | K_midframe -> "mid-frame-disconnect"

type case = {
  fz_kind : kind;
  fz_bytes : bytes;  (** what to write *)
  fz_close : bool;  (** disconnect right after writing *)
  fz_expect : expect;
}

let all_kinds =
  [
    K_garbage_tag;
    K_bad_version;
    K_empty;
    K_corrupt_body;
    K_oversized;
    K_bad_length;
    K_truncated;
    K_midframe;
  ]

(* Small deterministic PRNG (same LCG family as Qgen). *)
let mk_rng seed =
  let state = ref (((seed * 0x9E3779B1) lor 1) land 0x3FFFFFFF) in
  fun bound ->
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod bound

let header len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  b

(* A well-formed frame to mutate: vary the request so truncation points
   and body offsets differ across seeds. *)
let seed_frame rng =
  let reqs =
    [|
      Protocol.Ping;
      Protocol.Query "SELECT a FROM r WHERE a > 1";
      Protocol.Set_strategy "left";
      Protocol.Set_engine "reference";
      Protocol.Load_snapshot "synthetic";
      Protocol.Stats;
    |]
  in
  Protocol.encode_request reqs.(rng (Array.length reqs))

let case_of_seed seed =
  let rng = mk_rng seed in
  let kind = List.nth all_kinds (rng (List.length all_kinds)) in
  let good = seed_frame rng in
  let glen = Bytes.length good in
  match kind with
  | K_garbage_tag ->
      (* intact framing, unknown tag byte *)
      let b = Bytes.copy good in
      Bytes.set b 5 (Char.chr (0x40 + rng 0x30));
      { fz_kind = kind; fz_bytes = b; fz_close = false; fz_expect = Conn_alive }
  | K_bad_version ->
      let b = Bytes.copy good in
      Bytes.set b 4 (Char.chr (2 + rng 250));
      { fz_kind = kind; fz_bytes = b; fz_close = false; fz_expect = Conn_alive }
  | K_empty ->
      (* zero-length payload: malformed but framed *)
      { fz_kind = kind; fz_bytes = header 0; fz_close = false; fz_expect = Conn_alive }
  | K_corrupt_body ->
      (* flip bytes inside the body of a framed request; the frame is
         consumed whole, so whatever the decoder thinks, the connection
         must survive *)
      let b = Bytes.copy good in
      let n = 1 + rng 4 in
      for _ = 1 to n do
        if glen > 6 then begin
          let i = 6 + rng (glen - 6) in
          Bytes.set b i (Char.chr (rng 256))
        end
      done;
      { fz_kind = kind; fz_bytes = b; fz_close = false; fz_expect = Conn_alive }
  | K_oversized ->
      (* declared length beyond max_frame: fatal, connection forfeit *)
      let b = header (Protocol.max_frame + 1 + rng 1000) in
      { fz_kind = kind; fz_bytes = b; fz_close = false; fz_expect = Conn_forfeit }
  | K_bad_length ->
      (* header promises more than we ever send, then we hang up *)
      let declared = glen + 1 + rng 64 in
      let b = Bytes.cat (header declared) (Bytes.sub good 4 (glen - 4)) in
      { fz_kind = kind; fz_bytes = b; fz_close = true; fz_expect = Conn_forfeit }
  | K_truncated ->
      (* cut a valid frame short and hang up *)
      let cut = 1 + rng (max 1 (glen - 1)) in
      {
        fz_kind = kind;
        fz_bytes = Bytes.sub good 0 cut;
        fz_close = true;
        fz_expect = Conn_forfeit;
      }
  | K_midframe ->
      (* send only part of the header itself, then vanish *)
      let cut = 1 + rng 3 in
      {
        fz_kind = kind;
        fz_bytes = Bytes.sub good 0 cut;
        fz_close = true;
        fz_expect = Conn_forfeit;
      }

(* Pure check used by unit tests: the decoder must map any payload to
   a typed result, never an exception. *)
let decoder_total payload =
  match Protocol.decode_request payload with
  | Ok _ | Error _ -> true
  | exception _ -> false
