(** Seeded malformed-frame generator for the server wire protocol:
    truncation, bad length prefix, garbage tag, bad version, oversized
    frame, corrupt body, mid-frame disconnect. Deterministic per seed. *)

type expect =
  | Conn_alive  (** same connection must answer the next request *)
  | Conn_forfeit  (** connection may close; server must stay up *)

type kind =
  | K_garbage_tag
  | K_bad_version
  | K_empty
  | K_corrupt_body
  | K_oversized
  | K_bad_length
  | K_truncated
  | K_midframe

val kind_to_string : kind -> string
val all_kinds : kind list

type case = {
  fz_kind : kind;
  fz_bytes : bytes;
  fz_close : bool;  (** disconnect right after writing *)
  fz_expect : expect;
}

(** [case_of_seed seed] is deterministic in [seed]. *)
val case_of_seed : int -> case

(** [decoder_total payload] is false only if the request decoder raised
    instead of returning a typed result. *)
val decoder_total : bytes -> bool
