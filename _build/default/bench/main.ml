(* Benchmark harness regenerating every figure of the paper's
   evaluation (Section 4):

     Figure 6 (a-d)  TPC-H sublink queries, Gen vs Left/Move, four
                     database sizes
     Figure 7        synthetic q1/q2, varying the input relation size
     Figure 8        synthetic q1/q2, varying the sublink relation size
     Figure 9        synthetic q1/q2, varying both sizes

   Usage:
     dune exec bench/main.exe                 -- quick run of everything
     dune exec bench/main.exe -- fig6 --instances 3 --timeout 10
     dune exec bench/main.exe -- fig7 --full
     dune exec bench/main.exe -- bechamel     -- statistically sampled
                                                 micro-benchmarks

   Measurements are wall-clock seconds for rewrite + optimization +
   evaluation, run in a forked child with a per-run timeout; runs that
   exceed the timeout are reported as "t/o" and excluded, mirroring the
   paper's exclusion of >6h runs. A static size guard skips Gen runs
   whose CrossBase would exceed a tuple budget instead of thrashing
   memory (reported as "excl"). *)

open Relalg
open Core

(* ------------------------------------------------------------------ *)
(* Timed execution in a child process                                   *)
(* ------------------------------------------------------------------ *)

type outcome = Time of float | Timeout | Failed of string | Excluded

let run_child ~timeout (f : unit -> unit) : outcome =
  (* flush before forking so the child does not replay buffered output *)
  flush stdout;
  flush stderr;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let oc = Unix.out_channel_of_descr wr in
      (try
         let t0 = Unix.gettimeofday () in
         f ();
         let dt = Unix.gettimeofday () -. t0 in
         output_string oc (Printf.sprintf "ok %.6f\n" dt)
       with e -> output_string oc (Printf.sprintf "err %s\n" (Printexc.to_string e)));
      flush oc;
      Stdlib.exit 0
  | pid -> (
      Unix.close wr;
      let ready, _, _ = Unix.select [ rd ] [] [] timeout in
      if ready = [] then begin
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Unix.close rd;
        Timeout
      end
      else begin
        let ic = Unix.in_channel_of_descr rd in
        let line = try input_line ic with End_of_file -> "err truncated" in
        ignore (Unix.waitpid [] pid);
        close_in ic;
        match String.split_on_char ' ' line with
        | "ok" :: t :: _ -> Time (float_of_string t)
        | "err" :: rest -> Failed (String.concat " " rest)
        | _ -> Failed line
      end)

(* Average [instances] timed runs; a timeout or failure on the first run
   short-circuits. *)
let measure ~timeout ~instances (mk : int -> unit -> unit) : outcome =
  let rec go k acc =
    if k >= instances then Time (acc /. float_of_int instances)
    else
      match run_child ~timeout (mk k) with
      | Time t -> go (k + 1) (acc +. t)
      | other -> other
  in
  go 0 0.

let outcome_to_string = function
  | Time t -> Printf.sprintf "%.4f" t
  | Timeout -> "t/o"
  | Failed _ -> "err"
  | Excluded -> "excl"

(* ------------------------------------------------------------------ *)
(* Table printing                                                       *)
(* ------------------------------------------------------------------ *)

let print_table ~title ~header rows =
  Printf.printf "\n%s\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    List.iteri (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c) cells;
    print_newline ()
  in
  line header;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Size guard for the Gen strategy                                      *)
(* ------------------------------------------------------------------ *)

(* Total CrossBase tuples the Gen rewrite of [q] would build: the sum
   over all sublinks (at any depth) of prod (|R_i| + 1). *)
let crossbase_estimate db (q : Algebra.query) : int =
  let rec collect q acc =
    let direct =
      List.concat_map
        (fun e -> List.map (fun s -> s.Algebra.query) (Algebra.sublinks_of_expr e))
        (Algebra.root_exprs q)
    in
    let acc = acc @ direct in
    let children = ref [] in
    ignore
      (Algebra.map_queries
         (fun child ->
           children := child :: !children;
           child)
         q);
    List.fold_left (fun acc c -> collect c acc) acc !children
  in
  let subs = collect q [] in
  List.fold_left
    (fun total sub ->
      let product =
        List.fold_left
          (fun p r ->
            let n = Relation.cardinality (Database.find db r) + 1 in
            if p > 100_000_000 / max 1 n then 100_000_000 else p * n)
          1 (Algebra.base_relations sub)
      in
      total + product)
    0 subs

let gen_guard = ref 3_000_000

exception Guard_tripped

(* ------------------------------------------------------------------ *)
(* Figure 6: TPC-H                                                      *)
(* ------------------------------------------------------------------ *)

(* Applicability is decided by attempting the (purely syntactic)
   rewrite: Left/Move apply exactly to the uncorrelated Q11/Q15/Q16 as
   in the paper; Unn applies where the Unn+ extension (de-correlated
   equality EXISTS, NOT EXISTS, NOT IN) can unnest — Q4 and Q16. *)
let strategy_applies db strategy number =
  let q = Tpch.Tpch_queries.instantiate ~seed:100 number in
  let analyzed =
    Sql_frontend.Analyzer.analyze_string db q.Tpch.Tpch_queries.sql
  in
  match Rewrite.rewrite db ~strategy analyzed.Sql_frontend.Analyzer.query with
  | _ -> true
  | exception Strategy.Unsupported _ -> false

let fig6_one_scale ~timeout ~instances ~scale_label ~sf =
  let db = Tpch.Tpch_gen.generate ~sf () in
  let strategies = Strategy.[ Gen; Left; Move; Unn ] in
  let rows =
    List.map
      (fun number ->
        let cells =
          List.map
            (fun strategy ->
              if not (strategy_applies db strategy number) then "-"
              else begin
                let outcome =
                  measure ~timeout ~instances (fun k () ->
                      let q =
                        Tpch.Tpch_queries.instantiate ~seed:(100 + k) number
                      in
                      let analyzed =
                        Sql_frontend.Analyzer.analyze_string db
                          q.Tpch.Tpch_queries.sql
                      in
                      let algebra = analyzed.Sql_frontend.Analyzer.query in
                      if
                        strategy = Strategy.Gen
                        && crossbase_estimate db algebra > !gen_guard
                      then raise Guard_tripped;
                      ignore (Perm.run_query db ~strategy ~provenance:true algebra))
                in
                let outcome =
                  match outcome with
                  | Failed msg when msg = Printexc.to_string Guard_tripped ->
                      Excluded
                  | o -> o
                in
                outcome_to_string outcome
              end)
            strategies
        in
        Printf.sprintf "Q%d" number :: cells)
      Tpch.Tpch_queries.numbers
  in
  print_table
    ~title:
      (Printf.sprintf
         "Figure 6(%s): TPC-H provenance runtime [s], sf=%.2f (%d tuples total)"
         scale_label sf (Database.total_tuples db))
    ~header:[ "query"; "gen"; "left"; "move"; "unn+" ]
    rows

let fig6 ~timeout ~instances ~scales () =
  Printf.printf
    "\n=== Figure 6: TPC-H queries with sublinks, per-strategy runtimes ===\n";
  Printf.printf
    "(paper: 1MB/10MB/100MB/1GB on PostgreSQL; here: scaled-down generator,\n\
    \ same 9 queries, Left/Move only for the uncorrelated Q11/Q15/Q16;\n\
    \ unn+ is this repository's de-correlating extension, not in the paper;\n\
    \ t/o = exceeded %.0fs timeout, excl = CrossBase size guard)\n"
    timeout;
  List.iteri
    (fun k sf ->
      fig6_one_scale ~timeout ~instances
        ~scale_label:(String.make 1 (Char.chr (Char.code 'a' + k)))
        ~sf)
    scales

(* ------------------------------------------------------------------ *)
(* Figures 7-9: synthetic                                               *)
(* ------------------------------------------------------------------ *)

type series = Orig | Strat of Strategy.t

let series_label = function Orig -> "orig" | Strat s -> Strategy.to_string s

let synthetic_cell ~timeout ~instances ~series ~template ~n1 ~n2 =
  let outcome =
    measure ~timeout ~instances (fun k () ->
        let db = Synthetic.Workload.make_db ~seed:(k + 1) ~n1 ~n2 () in
        let inst =
          match template with
          | `Q1 -> Synthetic.Workload.q1 ~seed:(k + 1) ~n1 ~n2 ()
          | `Q2 -> Synthetic.Workload.q2 ~seed:(k + 1) ~n1 ~n2 ()
        in
        let q = inst.Synthetic.Workload.query in
        match series with
        | Orig -> ignore (Perm.run_query db ~provenance:false q)
        | Strat strategy ->
            if strategy = Strategy.Gen && n1 * (n2 + 1) > !gen_guard then
              raise Guard_tripped;
            ignore (Perm.run_query db ~strategy ~provenance:true q))
  in
  match outcome with
  | Failed msg when msg = Printexc.to_string Guard_tripped -> Excluded
  | o -> o

let synthetic_figure ~timeout ~instances ~title ~sizes ~dims () =
  List.iter
    (fun template ->
      let template_name = match template with `Q1 -> "q1" | `Q2 -> "q2" in
      let strategies = Synthetic.Workload.strategies_for template in
      let series = Orig :: List.map (fun s -> Strat s) strategies in
      (* once a series times out it will not come back at larger sizes *)
      let dead = Hashtbl.create 8 in
      let rows =
        List.map
          (fun size ->
            let n1, n2 = dims size in
            let cells =
              List.map
                (fun sr ->
                  if Hashtbl.mem dead (series_label sr) then "t/o"
                  else begin
                    let o =
                      synthetic_cell ~timeout ~instances ~series:sr ~template
                        ~n1 ~n2
                    in
                    (match o with
                    | Timeout -> Hashtbl.replace dead (series_label sr) ()
                    | _ -> ());
                    outcome_to_string o
                  end)
                series
            in
            Printf.sprintf "%d" size :: cells)
          sizes
      in
      print_table
        ~title:(Printf.sprintf "%s — query %s" title template_name)
        ~header:("size" :: List.map series_label series)
        rows)
    [ `Q1; `Q2 ]

let fig7 ~timeout ~instances ~full () =
  let sizes =
    if full then [ 10; 100; 1000; 10000; 50000; 200000; 500000 ]
    else [ 10; 100; 1000; 5000 ]
  in
  Printf.printf
    "\n=== Figure 7: synthetic, varying the input relation size (sublink \
     relation fixed at 1000) ===\n";
  synthetic_figure ~timeout ~instances ~title:"Figure 7: runtime [s] vs |R1|"
    ~sizes
    ~dims:(fun n -> (n, 1000))
    ()

let fig8 ~timeout ~instances ~full () =
  let sizes =
    if full then [ 10; 100; 1000; 10000; 50000; 200000; 500000 ]
    else [ 10; 100; 1000; 5000 ]
  in
  Printf.printf
    "\n=== Figure 8: synthetic, varying the sublink relation size (input \
     relation fixed at 1000) ===\n";
  synthetic_figure ~timeout ~instances ~title:"Figure 8: runtime [s] vs |R2|"
    ~sizes
    ~dims:(fun n -> (1000, n))
    ()

let fig9 ~timeout ~instances ~full () =
  let sizes =
    if full then [ 10; 100; 1000; 10000; 50000 ] else [ 10; 100; 1000; 3000 ]
  in
  Printf.printf "\n=== Figure 9: synthetic, varying both relation sizes ===\n";
  synthetic_figure ~timeout ~instances
    ~title:"Figure 9: runtime [s] vs |R1| = |R2|" ~sizes
    ~dims:(fun n -> (n, n))
    ()

(* ------------------------------------------------------------------ *)
(* Ablation: optimizer on/off (why Gen degrades)                        *)
(* ------------------------------------------------------------------ *)

let ablation ~timeout ~instances () =
  Printf.printf
    "\n=== Ablation (beyond paper): selection pushdown on the rewritten plans \
     ===\n";
  let sizes = [ 100; 500; 1000 ] in
  let rows =
    List.map
      (fun n ->
        let cell opt strategy =
          let o =
            measure ~timeout ~instances (fun k () ->
                let db =
                  Synthetic.Workload.make_db ~seed:(k + 1) ~n1:n ~n2:200 ()
                in
                let inst = Synthetic.Workload.q1 ~seed:(k + 1) ~n1:n ~n2:200 () in
                ignore
                  (Perm.run_query db ~strategy ~optimize:opt ~provenance:true
                     inst.Synthetic.Workload.query))
          in
          outcome_to_string o
        in
        [
          string_of_int n;
          cell true Strategy.Gen;
          cell false Strategy.Gen;
          cell true Strategy.Left;
          cell false Strategy.Left;
        ])
      sizes
  in
  print_table ~title:"q1 runtime [s]: optimizer on/off per strategy"
    ~header:[ "n1"; "gen+opt"; "gen-opt"; "left+opt"; "left-opt" ]
    rows

(* ------------------------------------------------------------------ *)
(* Advisor: cost-based strategy choice (beyond paper)                   *)
(* ------------------------------------------------------------------ *)

let advisor_report () =
  Printf.printf
    "\n=== Advisor (beyond paper): cost-model strategy choices ===\n";
  let synth_rows =
    List.map
      (fun (label, template) ->
        let n1 = 2000 and n2 = 500 in
        let db = Synthetic.Workload.make_db ~seed:9 ~n1 ~n2 () in
        let inst =
          match template with
          | `Q1 -> Synthetic.Workload.q1 ~seed:9 ~n1 ~n2 ()
          | `Q2 -> Synthetic.Workload.q2 ~seed:9 ~n1 ~n2 ()
        in
        let ests = Advisor.estimates db inst.Synthetic.Workload.query in
        let show e =
          Printf.sprintf "%s (%.0f)"
            (Strategy.to_string e.Advisor.est_strategy)
            e.Advisor.est_cost
        in
        [
          label;
          (match ests with e :: _ -> show e | [] -> "-");
          String.concat ", " (List.map show ests);
        ])
      [ ("synthetic q1", `Q1); ("synthetic q2", `Q2) ]
  in
  let db = Tpch.Tpch_gen.generate ~sf:0.2 () in
  let tpch_rows =
    List.map
      (fun n ->
        let q = Tpch.Tpch_queries.instantiate ~seed:100 n in
        let analyzed =
          Sql_frontend.Analyzer.analyze_string db q.Tpch.Tpch_queries.sql
        in
        let ests = Advisor.estimates db analyzed.Sql_frontend.Analyzer.query in
        let show e =
          Printf.sprintf "%s (%.0f)"
            (Strategy.to_string e.Advisor.est_strategy)
            e.Advisor.est_cost
        in
        [
          Printf.sprintf "tpch Q%d" n;
          (match ests with e :: _ -> show e | [] -> "-");
          String.concat ", " (List.map show ests);
        ])
      [ 4; 11; 16; 17 ]
  in
  print_table
    ~title:"advisor choice per query (estimated tuples touched)"
    ~header:[ "query"; "chosen"; "all estimates (cheapest first)" ]
    (synth_rows @ tpch_rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per figure)                 *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let fig6_test =
    (* Q11 (uncorrelated) on a small TPC-H database, Gen strategy. *)
    let db = Tpch.Tpch_gen.generate ~sf:0.05 () in
    let q = Tpch.Tpch_queries.instantiate 11 in
    let analyzed =
      Sql_frontend.Analyzer.analyze_string db q.Tpch.Tpch_queries.sql
    in
    Test.make ~name:"fig6: tpch q11 provenance (gen, sf=0.05)"
      (Staged.stage (fun () ->
           ignore
             (Perm.run_query db ~strategy:Strategy.Gen ~provenance:true
                analyzed.Sql_frontend.Analyzer.query)))
  in
  let synth_test name template strategy n1 n2 =
    let db = Synthetic.Workload.make_db ~seed:3 ~n1 ~n2 () in
    let inst =
      match template with
      | `Q1 -> Synthetic.Workload.q1 ~seed:3 ~n1 ~n2 ()
      | `Q2 -> Synthetic.Workload.q2 ~seed:3 ~n1 ~n2 ()
    in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Perm.run_query db ~strategy ~provenance:true
                inst.Synthetic.Workload.query)))
  in
  [
    fig6_test;
    synth_test "fig7: q1 gen (n1=300, n2=100)" `Q1 Strategy.Gen 300 100;
    synth_test "fig7: q1 unn (n1=300, n2=100)" `Q1 Strategy.Unn 300 100;
    synth_test "fig8: q2 left (n1=100, n2=300)" `Q2 Strategy.Left 100 300;
    synth_test "fig9: q1 move (n1=200, n2=200)" `Q1 Strategy.Move 200 200;
  ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf
    "\n=== Bechamel micro-benchmarks (one Test.make per figure) ===\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:true () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let name = Test.Elt.name elt in
          let raw = Benchmark.run cfg instances elt in
          let results = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates results with
          | Some [ est ] -> Printf.printf "%-45s %12.3f ms/run\n%!" name (est /. 1e6)
          | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
        (Test.elements test))
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Command line                                                         *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let timeout_arg =
  Arg.(value & opt float 5.0 & info [ "timeout" ] ~doc:"Per-run timeout [s].")

let instances_arg =
  Arg.(
    value & opt int 2
    & info [ "instances" ] ~doc:"Random query instances averaged per cell.")

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full size sweeps.")

let scales_arg =
  Arg.(
    value
    & opt (list float) [ 0.05; 0.2; 0.8; 3.2 ]
    & info [ "scales" ] ~doc:"TPC-H scale factors for Figure 6 (a-d).")

let fig6_cmd =
  let run timeout instances scales = fig6 ~timeout ~instances ~scales () in
  Cmd.v
    (Cmd.info "fig6" ~doc:"TPC-H figure 6 (a-d)")
    Term.(const run $ timeout_arg $ instances_arg $ scales_arg)

let mk_synth_cmd name doc f =
  let run timeout instances full = f ~timeout ~instances ~full () in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ timeout_arg $ instances_arg $ full_arg)

let ablation_cmd =
  let run timeout instances = ablation ~timeout ~instances () in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Optimizer on/off ablation")
    Term.(const run $ timeout_arg $ instances_arg)

let advisor_cmd =
  Cmd.v
    (Cmd.info "advisor" ~doc:"Cost-model strategy choices")
    Term.(const advisor_report $ const ())

let bechamel_cmd =
  Cmd.v
    (Cmd.info "bechamel" ~doc:"Statistically sampled micro-benchmarks")
    Term.(const run_bechamel $ const ())

let all ~timeout ~instances ~full () =
  fig6 ~timeout ~instances ~scales:[ 0.05; 0.2; 0.8; 3.2 ] ();
  fig7 ~timeout ~instances ~full ();
  fig8 ~timeout ~instances ~full ();
  fig9 ~timeout ~instances ~full ();
  ablation ~timeout ~instances ();
  advisor_report ();
  Printf.printf "\nDone. See EXPERIMENTS.md for the paper-vs-measured discussion.\n"

let all_cmd =
  let run timeout instances full = all ~timeout ~instances ~full () in
  Cmd.v
    (Cmd.info "all" ~doc:"All figures (default)")
    Term.(const run $ timeout_arg $ instances_arg $ full_arg)

let default =
  Term.(const (fun () -> all ~timeout:5.0 ~instances:2 ~full:false ()) $ const ())

let () =
  let info =
    Cmd.info "perm-bench" ~doc:"Perm nested-subquery provenance benchmarks"
  in
  Stdlib.exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig6_cmd;
            mk_synth_cmd "fig7" "Synthetic figure 7" fig7;
            mk_synth_cmd "fig8" "Synthetic figure 8" fig8;
            mk_synth_cmd "fig9" "Synthetic figure 9" fig9;
            ablation_cmd;
            advisor_cmd;
            bechamel_cmd;
            all_cmd;
          ]))
