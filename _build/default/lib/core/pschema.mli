(** Provenance schemas: the [P(.)] renaming of Section 3.1.

    The provenance of a query over base relations [R1 ... Rn] is a
    single relation with schema [(q, P(R1), ..., P(Rn))]; multiple
    occurrences of one base relation get distinct names (footnote 1 of
    the paper). *)

open Relalg

type prov_col = {
  pc_name : string;  (** provenance attribute name *)
  pc_src : string;  (** source attribute in the base relation *)
  pc_type : Vtype.t;
}

type prov_rel = {
  pr_rel : string;  (** base relation name *)
  pr_cols : prov_col list;
}

(** Mutable name supply used during one rewrite. *)
type naming

val create_naming : unit -> naming

(** [fresh naming prefix] is a name unique within this rewrite. *)
val fresh : naming -> string -> string

(** [for_base naming db rel] allocates the provenance columns for one
    occurrence of base relation [rel] ([prov_rel_attr], then
    [prov_rel#k_attr] for later occurrences). *)
val for_base : naming -> Database.t -> string -> prov_rel

(** Flattened provenance columns of a list of provenance relations. *)
val cols : prov_rel list -> prov_col list

val attr_names : prov_rel list -> string list
val width : prov_rel list -> int

(** Identity projection columns passing the provenance attributes
    through unchanged. *)
val identity_cols : prov_rel list -> (Algebra.expr * string) list

(** Typed NULL padding columns for the provenance attributes. *)
val null_cols : prov_rel list -> (Algebra.expr * string) list

(** Output schema attributes for the provenance columns. *)
val schema_attrs : prov_rel list -> Schema.attr list
