(** The four sublink rewrite strategies of Section 3.

    - [Gen] (rules G1/G2) is applicable to every query, including
      correlated and nested sublinks, at the cost of a [CrossBase]
      cross product per sublink.
    - [Left] (L1/L2) and [Move] (T1/T2) require every sublink of the
      rewritten operator to be uncorrelated.
    - [Unn] (U1/U2) additionally requires each sublink to be an
      uncorrelated [EXISTS] or an equality [ANY] in a conjunctive
      selection condition. *)

type t = Gen | Left | Move | Unn

(** Raised when a strategy's applicability conditions are violated, or a
    construct has no provenance rewrite (e.g. LIMIT). *)
exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let to_string = function
  | Gen -> "gen"
  | Left -> "left"
  | Move -> "move"
  | Unn -> "unn"

let of_string = function
  | "gen" -> Gen
  | "left" -> Left
  | "move" -> Move
  | "unn" -> Unn
  | s -> invalid_arg (Printf.sprintf "unknown strategy %S" s)

let all = [ Gen; Left; Move; Unn ]
