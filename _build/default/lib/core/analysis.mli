(** Working with computed provenance: influence statistics and a
    Graphviz export of the result–witness bipartite graph. Both consume
    the single-relation representation of {!Perm.run} /
    {!Perm.provenance}. *)

open Relalg

(** Influence of one base tuple: in how many distinct result rows it
    appears as a witness. *)
type influence = {
  inf_relation : string;
  inf_tuple : Tuple.t;
  inf_count : int;
}

(** [influence_cols ~n_orig rel provs] ranks every contributing base
    tuple by the number of distinct result tuples it witnesses,
    descending; [n_orig] is the number of original (non-provenance)
    columns of [rel]. *)
val influence_cols :
  n_orig:int -> Relation.t -> Pschema.prov_rel list -> influence list

(** [influence db q rel provs] — {!influence_cols} with [n_orig] taken
    from the analyzed query [q]. *)
val influence :
  Database.t -> Algebra.query -> Relation.t -> Pschema.prov_rel list ->
  influence list

(** Aligned-text rendering of the influence ranking. *)
val influence_report_cols :
  n_orig:int -> Relation.t -> Pschema.prov_rel list -> string

val influence_report :
  Database.t -> Algebra.query -> Relation.t -> Pschema.prov_rel list -> string

(** Graphviz digraph: one node per distinct result tuple, one per
    contributing base tuple (clustered by relation), an edge from each
    witness to each result it contributes to. *)
val to_dot_cols : n_orig:int -> Relation.t -> Pschema.prov_rel list -> string

val to_dot :
  Database.t -> Algebra.query -> Relation.t -> Pschema.prov_rel list -> string
