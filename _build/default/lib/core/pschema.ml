(** Provenance schemas: the [P(.)] renaming of Section 3.1.

    The provenance of a query [q] over base relations [R1 ... Rn] is a
    single relation with schema [(q, P(R1), ..., P(Rn))]. [P(R)] renames
    every attribute of [R] to a fresh provenance attribute; multiple
    occurrences of the same base relation get distinct names (footnote 1
    of the paper), which the [naming] state guarantees. *)

open Relalg

type prov_col = {
  pc_name : string;  (** provenance attribute name *)
  pc_src : string;  (** source attribute in the base relation *)
  pc_type : Vtype.t;
}

type prov_rel = {
  pr_rel : string;  (** base relation name *)
  pr_cols : prov_col list;
}

(** Mutable name supply used during one rewrite. *)
type naming = {
  occurrence : (string, int) Hashtbl.t;  (** per-base-relation counter *)
  mutable fresh_counter : int;
}

let create_naming () = { occurrence = Hashtbl.create 8; fresh_counter = 0 }

(** [fresh naming prefix] is a name unique within this rewrite. *)
let fresh naming prefix =
  naming.fresh_counter <- naming.fresh_counter + 1;
  Printf.sprintf "%s_%d" prefix naming.fresh_counter

(** [for_base naming db rel] allocates the provenance columns for one
    occurrence of base relation [rel]: the first occurrence is named
    [prov_rel_attr], later ones [prov_rel#k_attr]. *)
let for_base naming db rel =
  let schema = Relation.schema (Database.find db rel) in
  let k =
    match Hashtbl.find_opt naming.occurrence rel with
    | Some k ->
        Hashtbl.replace naming.occurrence rel (k + 1);
        k + 1
    | None ->
        Hashtbl.add naming.occurrence rel 0;
        0
  in
  let tag = if k = 0 then rel else Printf.sprintf "%s#%d" rel k in
  let pr_cols =
    List.map
      (fun a ->
        {
          pc_name = Printf.sprintf "prov_%s_%s" tag a.Schema.name;
          pc_src = a.Schema.name;
          pc_type = a.Schema.ty;
        })
      (Schema.to_list schema)
  in
  { pr_rel = rel; pr_cols }

(** Flattened provenance columns of a list of provenance relations. *)
let cols (prels : prov_rel list) : prov_col list =
  List.concat_map (fun pr -> pr.pr_cols) prels

let attr_names prels = List.map (fun c -> c.pc_name) (cols prels)

let width prels = List.length (cols prels)

(** Identity projection columns passing the provenance attributes
    through unchanged. *)
let identity_cols prels =
  List.map (fun c -> (Algebra.Attr c.pc_name, c.pc_name)) (cols prels)

(** Typed NULL padding columns for the provenance attributes (used by
    set-operation rewrites and the Gen strategy's empty case). *)
let null_cols prels =
  List.map (fun c -> (Algebra.TypedNull c.pc_type, c.pc_name)) (cols prels)

(** Output schema attributes for the provenance columns. *)
let schema_attrs prels =
  List.map (fun c -> Schema.attr c.pc_name c.pc_type) (cols prels)
