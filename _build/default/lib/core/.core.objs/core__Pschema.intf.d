lib/core/pschema.mli: Algebra Database Relalg Schema Vtype
