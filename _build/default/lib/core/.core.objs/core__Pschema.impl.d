lib/core/pschema.ml: Algebra Database Hashtbl List Printf Relalg Relation Schema Vtype
