lib/core/oracle.ml: Algebra Array Database Eval Format List Relalg Relation Schema Tuple Typecheck Value
