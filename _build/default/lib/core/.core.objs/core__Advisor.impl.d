lib/core/advisor.ml: Algebra Database Float List Optimizer Perm Relalg Relation Rewrite Scope Sql_frontend Strategy Value
