lib/core/perm.mli: Algebra Database Pschema Relalg Relation Strategy
