lib/core/rewrite.mli: Algebra Database Pschema Relalg Strategy
