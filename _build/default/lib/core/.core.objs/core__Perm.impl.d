lib/core/perm.ml: Algebra Array Database Eval List Optimizer Pp Pschema Relalg Relation Rewrite Schema Scope Sql_frontend Strategy Tuple Typecheck Value
