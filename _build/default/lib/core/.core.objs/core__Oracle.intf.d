lib/core/oracle.mli: Algebra Database Eval Relalg Tuple Value
