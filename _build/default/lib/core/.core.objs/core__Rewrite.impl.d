lib/core/rewrite.ml: Algebra Database List Pp Pschema Relalg Relation Schema Scope Strategy Tuple Value
