lib/core/analysis.ml: Array Buffer Hashtbl List Printf Pschema Relalg Relation Scope String Tuple Value
