lib/core/analysis.mli: Algebra Database Pschema Relalg Relation Tuple
