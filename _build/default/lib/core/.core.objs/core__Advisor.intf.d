lib/core/advisor.mli: Algebra Database Perm Relalg Strategy
