(** The four sublink rewrite strategies of Section 3.

    [Gen] applies to every query (correlated and nested sublinks
    included) at CrossBase cost; [Left] and [Move] require uncorrelated
    sublinks; [Unn] un-nests [EXISTS] / equality-[ANY] forms (extended
    here to equality-correlated [EXISTS], [NOT EXISTS] and [NOT IN] —
    see DESIGN.md). *)

type t = Gen | Left | Move | Unn

(** Raised when a strategy's applicability conditions are violated or a
    construct has no provenance rewrite (e.g. LIMIT). *)
exception Unsupported of string

(** [unsupported fmt ...] raises {!Unsupported} with a formatted
    message. *)
val unsupported : ('a, Format.formatter, unit, 'b) format4 -> 'a

val to_string : t -> string

(** Raises [Invalid_argument] on unknown names. *)
val of_string : string -> t

(** All strategies, Gen first. *)
val all : t list
