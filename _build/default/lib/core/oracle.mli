(** Direct (non-rewriting) provenance computation — the test oracle.

    Computes, by enumeration, the provenance relation prescribed by
    Definitions 1 and 2: one row per result tuple and combination of
    contributing base tuples, with the sublink witness sets [Tsub*] of
    Figure 2 under the extended Definition 2. Shares only the
    expression evaluator with the rewriter, so agreement between
    [Eval (Rewrite q)] and [Oracle q] is a meaningful end-to-end check
    of Theorems 1–4. *)

open Relalg

exception Unsupported of string

(** One provenance row: result tuple plus flattened witness values
    (NULL = the relation access did not contribute). *)
type prow = { pt : Tuple.t; pw : Value.t array }

(** Number of witness slots of [q]'s provenance, matching the
    rewriter's provenance schema. *)
val width : Database.t -> Algebra.query -> int

(** [rows db env q] is the provenance rows of [q] under correlation
    environment [env]. *)
val rows : Database.t -> Eval.env -> Algebra.query -> prow list

(** [provenance db q] is the oracle's provenance for [q] as bare rows
    (result tuple concatenated with witness values), comparable with
    the rewriter's output by content. *)
val provenance : Database.t -> Algebra.query -> Tuple.t list
