lib/synthetic/workload.mli: Algebra Core Database Random Relalg Relation Schema
