lib/synthetic/workload.ml: Algebra Core Database Float List Random Relalg Relation Schema Tuple Value Vtype
