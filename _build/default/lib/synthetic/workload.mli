(** The synthetic workload of Section 4.2.2: two-integer-column tables
    with Gaussian values, random fixed-width range predicates, and the
    templates [q1] (equality ANY) and [q2] (inequality ALL). *)

open Relalg

val table_schema : Schema.t

(** [make_table st ~size] draws a [size]-row Gaussian table. *)
val make_table : Random.State.t -> size:int -> Relation.t

(** [make_db ?seed ~n1 ~n2 ()]: tables [r1] (selection input) and [r2]
    (sublink relation). Deterministic in [seed]. *)
val make_db : ?seed:int -> n1:int -> n2:int -> unit -> Database.t

type instance = {
  query : Algebra.query;
  n1 : int;  (** size of the selection input relation *)
  n2 : int;  (** size of the sublink relation *)
}

(** [q1 ?seed ~n1 ~n2 ()] instantiates the equality-ANY template. *)
val q1 : ?seed:int -> n1:int -> n2:int -> unit -> instance

(** [q2 ?seed ~n1 ~n2 ()] instantiates the inequality-ALL template. *)
val q2 : ?seed:int -> n1:int -> n2:int -> unit -> instance

(** Strategies applicable per template, as in the paper: all four for
    [q1]; Unn has no rule for [q2]'s ALL-sublink. *)
val strategies_for : [ `Q1 | `Q2 ] -> Core.Strategy.t list
