(** The synthetic workload of Section 4.2.2: tables with two integer
    attributes [a] and [b] whose values follow a Gaussian distribution,
    random fixed-width range predicates on [b], and the two parameterized
    query templates

    - [q1 = sigma_{range /\ a = ANY (sigma_{range2}(R2))}(R1)]
      (equality ANY-sublink), and
    - [q2 = sigma_{range /\ a < ALL (sigma_{range2}(R2))}(R1)]
      (inequality ALL-sublink).

    The paper draws values "from a gaussian distribution with a fixed
    mean and a standard deviation of 100 times the table size"; with
    that spread an equality ANY never matches at realistic sizes, so we
    use a standard deviation equal to the table size — the strategies'
    relative cost is unaffected (see DESIGN.md). *)

open Relalg

let mean = 0.

let stddev size = float_of_int (max 10 size)

(* Box–Muller transform. *)
let gaussian st ~mu ~sigma =
  let u1 = max epsilon_float (Random.State.float st 1.0) in
  let u2 = Random.State.float st 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let table_schema =
  Schema.of_list [ Schema.attr "a" Vtype.TInt; Schema.attr "b" Vtype.TInt ]

(** [make_table st ~size] draws a [size]-row table with Gaussian [a]
    and [b] columns. *)
let make_table st ~size : Relation.t =
  let sigma = stddev size in
  let draw () = Value.Int (int_of_float (gaussian st ~mu:mean ~sigma)) in
  Relation.make table_schema
    (List.init size (fun _ -> Tuple.of_list [ draw (); draw () ]))

(** [make_db ?seed ~n1 ~n2 ()] is a database with tables [r1] (the
    selection input, [n1] rows) and [r2] (the sublink relation, [n2]
    rows). Deterministic in [seed]. *)
let make_db ?(seed = 1) ~n1 ~n2 () : Database.t =
  let st = Random.State.make [| seed; n1; n2 |] in
  Database.of_list
    [ ("r1", make_table st ~size:n1); ("r2", make_table st ~size:n2) ]

(* A random fixed-width range on attribute [b]: roughly a fifth of a
   standard deviation wide, centered at a Gaussian draw — the paper's
   "random range with a fixed size of values from attribute b". *)
let range_condition st ~size attr_name =
  let sigma = stddev size in
  let center = int_of_float (gaussian st ~mu:mean ~sigma) in
  let width = max 5 (int_of_float (sigma /. 5.)) in
  Algebra.(
    And
      ( Cmp (Geq, attr attr_name, int (center - width)),
        Cmp (Leq, attr attr_name, int (center + width)) ))

type instance = {
  query : Algebra.query;
  n1 : int;  (** size of the selection input relation *)
  n2 : int;  (** size of the sublink relation *)
}

let sublink_query st ~n2 =
  Algebra.(
    project [ (attr "a", "sub_a") ]
      (Select (range_condition st ~size:n2 "b", Base "r2")))

(** [q1 ?seed ~n1 ~n2 ()] instantiates the equality-ANY template. *)
let q1 ?(seed = 2) ~n1 ~n2 () : instance =
  let st = Random.State.make [| seed; n1; n2; 1 |] in
  let query =
    Algebra.(
      Select
        ( And
            ( range_condition st ~size:n1 "b",
              any_op Eq (attr "a") (sublink_query st ~n2) ),
          Base "r1" ))
  in
  { query; n1; n2 }

(** [q2 ?seed ~n1 ~n2 ()] instantiates the inequality-ALL template. *)
let q2 ?(seed = 2) ~n1 ~n2 () : instance =
  let st = Random.State.make [| seed; n1; n2; 2 |] in
  let query =
    Algebra.(
      Select
        ( And
            ( range_condition st ~size:n1 "b",
              all_op Lt (attr "a") (sublink_query st ~n2) ),
          Base "r1" ))
  in
  { query; n1; n2 }

(** Strategies applicable to each template, as in the paper: all four
    for [q1]; Unn provides no rule for [q2]'s ALL-sublink. *)
let strategies_for = function
  | `Q1 -> Core.Strategy.[ Gen; Left; Move; Unn ]
  | `Q2 -> Core.Strategy.[ Gen; Left; Move ]
