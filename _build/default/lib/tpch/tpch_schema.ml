(** Schemas of the eight TPC-H tables (full column sets of the
    specification; dates are ISO strings, money/quantities floats). *)

open Relalg

let a name ty = Schema.attr name ty
let int_ = Vtype.TInt
let float_ = Vtype.TFloat
let string_ = Vtype.TString

let region =
  Schema.of_list
    [ a "r_regionkey" int_; a "r_name" string_; a "r_comment" string_ ]

let nation =
  Schema.of_list
    [
      a "n_nationkey" int_; a "n_name" string_; a "n_regionkey" int_;
      a "n_comment" string_;
    ]

let supplier =
  Schema.of_list
    [
      a "s_suppkey" int_; a "s_name" string_; a "s_address" string_;
      a "s_nationkey" int_; a "s_phone" string_; a "s_acctbal" float_;
      a "s_comment" string_;
    ]

let customer =
  Schema.of_list
    [
      a "c_custkey" int_; a "c_name" string_; a "c_address" string_;
      a "c_nationkey" int_; a "c_phone" string_; a "c_acctbal" float_;
      a "c_mktsegment" string_; a "c_comment" string_;
    ]

let part =
  Schema.of_list
    [
      a "p_partkey" int_; a "p_name" string_; a "p_mfgr" string_;
      a "p_brand" string_; a "p_type" string_; a "p_size" int_;
      a "p_container" string_; a "p_retailprice" float_; a "p_comment" string_;
    ]

let partsupp =
  Schema.of_list
    [
      a "ps_partkey" int_; a "ps_suppkey" int_; a "ps_availqty" int_;
      a "ps_supplycost" float_; a "ps_comment" string_;
    ]

let orders =
  Schema.of_list
    [
      a "o_orderkey" int_; a "o_custkey" int_; a "o_orderstatus" string_;
      a "o_totalprice" float_; a "o_orderdate" string_;
      a "o_orderpriority" string_; a "o_clerk" string_; a "o_shippriority" int_;
      a "o_comment" string_;
    ]

let lineitem =
  Schema.of_list
    [
      a "l_orderkey" int_; a "l_partkey" int_; a "l_suppkey" int_;
      a "l_linenumber" int_; a "l_quantity" float_; a "l_extendedprice" float_;
      a "l_discount" float_; a "l_tax" float_; a "l_returnflag" string_;
      a "l_linestatus" string_; a "l_shipdate" string_; a "l_commitdate" string_;
      a "l_receiptdate" string_; a "l_shipinstruct" string_;
      a "l_shipmode" string_; a "l_comment" string_;
    ]

(** All tables in generation order (parents before children). *)
let all =
  [
    ("region", region); ("nation", nation); ("supplier", supplier);
    ("customer", customer); ("part", part); ("partsupp", partsupp);
    ("orders", orders); ("lineitem", lineitem);
  ]
