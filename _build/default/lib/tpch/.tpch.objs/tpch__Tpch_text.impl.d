lib/tpch/tpch_text.ml: Array List Random String
