lib/tpch/tpch_queries.mli:
