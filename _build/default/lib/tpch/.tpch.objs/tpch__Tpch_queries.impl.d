lib/tpch/tpch_queries.ml: Array Dates List Printf Random String Tpch_text
