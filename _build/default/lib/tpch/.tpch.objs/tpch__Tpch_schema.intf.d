lib/tpch/tpch_schema.mli: Relalg Schema
