lib/tpch/tpch_gen.ml: Array Database Dates Float List Printf Random Relalg Relation Tpch_schema Tpch_text Value
