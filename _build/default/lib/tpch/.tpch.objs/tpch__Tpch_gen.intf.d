lib/tpch/tpch_gen.mli: Relalg
