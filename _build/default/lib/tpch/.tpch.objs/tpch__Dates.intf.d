lib/tpch/dates.mli: Random
