lib/tpch/tpch_schema.ml: Relalg Schema Vtype
