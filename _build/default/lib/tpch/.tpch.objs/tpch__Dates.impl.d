lib/tpch/dates.ml: Printf Random Scanf
