(** The nine TPC-H query templates with sublinks used in the paper's
    evaluation (Section 4.2.1): Q2, Q4, Q11, Q15, Q16, Q17, Q20, Q21 and
    Q22. Q11, Q15 and Q16 contain only uncorrelated sublinks and are the
    ones the Left and Move strategies additionally apply to, exactly as
    in the paper. [instantiate] substitutes random parameters like the
    TPC-H qgen (ORDER BY / LIMIT clauses are dropped: the paper measures
    provenance computation, and LIMIT has no provenance rewrite). *)

type query = {
  number : int;
  correlated : bool;  (** does the query contain correlated sublinks? *)
  sql : string;  (** SQL text, without the PROVENANCE marker *)
}

let pick st arr = arr.(Random.State.int st (Array.length arr))

let q2 st =
  let size = 1 + Random.State.int st 50 in
  let metal = pick st Tpch_text.type_syllable_3 in
  let region = pick st Tpch_text.regions in
  Printf.sprintf
    {|SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = %d AND p_type LIKE '%%%s'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = '%s'
  AND ps_supplycost = (SELECT min(ps_supplycost)
                       FROM partsupp, supplier, nation, region
                       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
                         AND s_nationkey = n_nationkey
                         AND n_regionkey = r_regionkey AND r_name = '%s')|}
    size metal region region

let q4 st =
  let d1 = Printf.sprintf "%d-%02d-01" (1993 + Random.State.int st 5) (1 + Random.State.int st 10) in
  let d2 = Dates.add_days d1 90 in
  Printf.sprintf
    {|SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= '%s' AND o_orderdate < '%s'
  AND EXISTS (SELECT * FROM lineitem
              WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority|}
    d1 d2

let q11 st =
  let nation = fst (pick st Tpch_text.nations) in
  let fraction = 0.01 in
  Printf.sprintf
    {|SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '%s'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) >
       (SELECT sum(ps_supplycost * ps_availqty) * %f
        FROM partsupp, supplier, nation
        WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '%s')|}
    nation fraction nation

let q15 st =
  let d1 = Printf.sprintf "%d-%02d-01" (1993 + Random.State.int st 4) (1 + Random.State.int st 10) in
  let d2 = Dates.add_days d1 90 in
  let revenue alias =
    Printf.sprintf
      {|(SELECT l_suppkey AS supplier_no, sum(l_extendedprice * (1 - l_discount)) AS total_revenue
   FROM lineitem WHERE l_shipdate >= '%s' AND l_shipdate < '%s'
   GROUP BY l_suppkey) AS %s|}
      d1 d2 alias
  in
  Printf.sprintf
    {|SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, %s
WHERE s_suppkey = supplier_no
  AND total_revenue = (SELECT max(total_revenue) FROM %s)|}
    (revenue "revenue") (revenue "revenue_copy")

let q16 st =
  let mfgr = 1 + Random.State.int st 5 in
  let brand = Printf.sprintf "Brand#%d%d" mfgr (1 + Random.State.int st 5) in
  let prefix =
    pick st Tpch_text.type_syllable_1 ^ " " ^ pick st Tpch_text.type_syllable_2
  in
  let sizes =
    let rec draw acc =
      if List.length acc >= 8 then acc
      else
        let s = 1 + Random.State.int st 50 in
        if List.mem s acc then draw acc else draw (s :: acc)
    in
    draw []
  in
  Printf.sprintf
    {|SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> '%s' AND p_type NOT LIKE '%s%%'
  AND p_size IN (%s)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%%Customer%%Complaints%%')
GROUP BY p_brand, p_type, p_size|}
    brand prefix
    (String.concat ", " (List.map string_of_int sizes))

let q17 st =
  let mfgr = 1 + Random.State.int st 5 in
  let brand = Printf.sprintf "Brand#%d%d" mfgr (1 + Random.State.int st 5) in
  let container =
    pick st Tpch_text.containers_1 ^ " " ^ pick st Tpch_text.containers_2
  in
  Printf.sprintf
    {|SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey AND p_brand = '%s' AND p_container = '%s'
  AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM lineitem
                    WHERE l_partkey = p_partkey)|}
    brand container

let q20 st =
  let color = pick st Tpch_text.colors in
  let nation = fst (pick st Tpch_text.nations) in
  let d1 = Printf.sprintf "%d-01-01" (1993 + Random.State.int st 5) in
  let d2 = Dates.add_days d1 365 in
  Printf.sprintf
    {|SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN
      (SELECT ps_suppkey FROM partsupp
       WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE '%s%%')
         AND ps_availqty > (SELECT 0.5 * sum(l_quantity) FROM lineitem
                            WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
                              AND l_shipdate >= '%s' AND l_shipdate < '%s'))
  AND s_nationkey = n_nationkey AND n_name = '%s'|}
    color d1 d2 nation

let q21 st =
  let nation = fst (pick st Tpch_text.nations) in
  Printf.sprintf
    {|SELECT s_name, count(*) AS numwait
FROM supplier, lineitem AS l1, orders, nation
WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (SELECT * FROM lineitem AS l2
              WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (SELECT * FROM lineitem AS l3
                  WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey
                    AND l3.l_receiptdate > l3.l_commitdate)
  AND s_nationkey = n_nationkey AND n_name = '%s'
GROUP BY s_name|}
    nation

let q22 st =
  let codes =
    let rec draw acc =
      if List.length acc >= 7 then acc
      else
        let c = Printf.sprintf "%d" (10 + Random.State.int st 25) in
        if List.mem c acc then draw acc else draw (c :: acc)
    in
    draw []
  in
  let code_list = String.concat ", " (List.map (Printf.sprintf "'%s'") codes) in
  Printf.sprintf
    {|SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (SELECT substring(c_phone, 1, 2) AS cntrycode, c_acctbal
      FROM customer
      WHERE substring(c_phone, 1, 2) IN (%s)
        AND c_acctbal > (SELECT avg(c_acctbal) FROM customer
                         WHERE c_acctbal > 0.0 AND substring(c_phone, 1, 2) IN (%s))
        AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)) AS custsale
GROUP BY cntrycode|}
    code_list code_list

(** Query numbers with sublinks, in the paper's order. *)
let numbers = [ 2; 4; 11; 15; 16; 17; 20; 21; 22 ]

(** The three uncorrelated queries of the paper (Left/Move applicable). *)
let uncorrelated_numbers = [ 11; 15; 16 ]

(** [instantiate ?seed n] draws one random parameterization of query
    [n], like the TPC-H qgen. *)
let instantiate ?(seed = 7) n : query =
  let st = Random.State.make [| seed; n |] in
  let sql =
    match n with
    | 2 -> q2 st
    | 4 -> q4 st
    | 11 -> q11 st
    | 15 -> q15 st
    | 16 -> q16 st
    | 17 -> q17 st
    | 20 -> q20 st
    | 21 -> q21 st
    | 22 -> q22 st
    | _ -> invalid_arg (Printf.sprintf "TPC-H query %d is not a sublink query" n)
  in
  { number = n; correlated = not (List.mem n uncorrelated_numbers); sql }

(** [with_provenance q] marks the query for provenance rewriting. *)
let with_provenance (q : query) : string =
  (* insert PROVENANCE after the first SELECT *)
  let prefix = "SELECT" in
  let len = String.length prefix in
  if String.length q.sql >= len && String.sub q.sql 0 len = prefix then
    prefix ^ " PROVENANCE" ^ String.sub q.sql len (String.length q.sql - len)
  else invalid_arg "query does not start with SELECT"

(* ------------------------------------------------------------------ *)
(* Standard (sublink-free) TPC-H queries                                *)
(* ------------------------------------------------------------------ *)

(* Beyond the paper's evaluation set: eight classic TPC-H queries
   without sublinks, used as integration tests of the SQL subset and of
   the standard provenance rewrite rules (R1-R5) at realistic query
   complexity. *)

let q1 st =
  let delta = 60 + Random.State.int st 60 in
  let cutoff = Dates.add_days "1998-12-01" (-delta) in
  Printf.sprintf
    {|SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc, count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '%s'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus|}
    cutoff

let q3 st =
  let segment = pick st Tpch_text.segments in
  let date = Printf.sprintf "1995-03-%02d" (1 + Random.State.int st 28) in
  Printf.sprintf
    {|SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = '%s' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate < '%s' AND l_shipdate > '%s'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate|}
    segment date date

let q5 st =
  let region = pick st Tpch_text.regions in
  let d1 = Printf.sprintf "%d-01-01" (1993 + Random.State.int st 5) in
  let d2 = Dates.add_days d1 365 in
  Printf.sprintf
    {|SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey AND r_name = '%s'
  AND o_orderdate >= '%s' AND o_orderdate < '%s'
GROUP BY n_name
ORDER BY revenue DESC|}
    region d1 d2

let q6 st =
  let d1 = Printf.sprintf "%d-01-01" (1993 + Random.State.int st 5) in
  let d2 = Dates.add_days d1 365 in
  let disc = float_of_int (2 + Random.State.int st 7) /. 100. in
  let qty = 24 + Random.State.int st 2 in
  Printf.sprintf
    {|SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '%s' AND l_shipdate < '%s'
  AND l_discount BETWEEN %f AND %f AND l_quantity < %d|}
    d1 d2 (disc -. 0.01) (disc +. 0.01) qty

let q10 st =
  let d1 =
    Printf.sprintf "%d-%02d-01" (1993 + Random.State.int st 2)
      (1 + Random.State.int st 10)
  in
  let d2 = Dates.add_days d1 90 in
  Printf.sprintf
    {|SELECT c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= '%s' AND o_orderdate < '%s'
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC|}
    d1 d2

let q12 st =
  let m1 = pick st Tpch_text.ship_modes in
  let m2 = pick st Tpch_text.ship_modes in
  let d1 = Printf.sprintf "%d-01-01" (1993 + Random.State.int st 5) in
  let d2 = Dates.add_days d1 365 in
  Printf.sprintf
    {|SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('%s', '%s')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= '%s' AND l_receiptdate < '%s'
GROUP BY l_shipmode
ORDER BY l_shipmode|}
    m1 m2 d1 d2

let q14 st =
  let d1 =
    Printf.sprintf "%d-%02d-01" (1993 + Random.State.int st 5)
      (1 + Random.State.int st 12)
  in
  let d2 = Dates.add_days d1 30 in
  Printf.sprintf
    {|SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%%'
                              THEN l_extendedprice * (1 - l_discount)
                              ELSE 0.0 END)
         / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey AND l_shipdate >= '%s' AND l_shipdate < '%s'|}
    d1 d2

let q19 st =
  let brand k = Printf.sprintf "Brand#%d%d" (1 + Random.State.int st 5) k in
  let b1 = brand (1 + Random.State.int st 5) and b2 = brand (1 + Random.State.int st 5) in
  Printf.sprintf
    {|SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE (p_partkey = l_partkey AND p_brand = '%s'
       AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5
       AND l_shipmode IN ('AIR', 'REG AIR'))
   OR (p_partkey = l_partkey AND p_brand = '%s'
       AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10
       AND l_shipmode IN ('AIR', 'REG AIR'))|}
    b1 b2

(** Sublink-free TPC-H queries included beyond the paper's evaluation
    set, as integration coverage for the SQL subset. *)
let standard_numbers = [ 1; 3; 5; 6; 10; 12; 14; 19 ]

(** [instantiate_standard ?seed n] draws one parameterization of a
    sublink-free query from {!standard_numbers}. *)
let instantiate_standard ?(seed = 7) n : query =
  let st = Random.State.make [| seed; 1000 + n |] in
  let sql =
    match n with
    | 1 -> q1 st
    | 3 -> q3 st
    | 5 -> q5 st
    | 6 -> q6 st
    | 10 -> q10 st
    | 12 -> q12 st
    | 14 -> q14 st
    | 19 -> q19 st
    | _ -> invalid_arg (Printf.sprintf "TPC-H query %d is not in the standard set" n)
  in
  { number = n; correlated = false; sql }
