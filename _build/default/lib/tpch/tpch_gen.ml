(** Deterministic, scaled TPC-H data generator (the dbgen substitute —
    see DESIGN.md). Cardinality ratios follow the official dbgen
    (supplier : part : partsupp : customer : orders : lineitem =
    10k : 200k : 800k : 150k : 1.5M : ~6M per official scale factor);
    one unit of our scale factor is 1/1000 of an official unit, so
    [generate ~sf:1.0] yields roughly 8 700 tuples. The same seed always
    produces the same database. *)

open Relalg

type cardinalities = {
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

let cardinalities ~sf =
  let scale base = max 2 (int_of_float (float_of_int base *. sf)) in
  {
    suppliers = scale 10;
    parts = scale 200;
    customers = scale 150;
    orders = scale 1500;
  }

let iv n = Value.Int n
let fv f = Value.Float f
let sv s = Value.String s

let money st lo hi = Float.round ((lo +. Random.State.float st (hi -. lo)) *. 100.) /. 100.

let phone st nationkey =
  Printf.sprintf "%02d-%03d-%03d-%04d" (10 + nationkey)
    (100 + Random.State.int st 900)
    (100 + Random.State.int st 900)
    (1000 + Random.State.int st 9000)

(** [generate ?seed ~sf ()] builds the eight TPC-H tables at scale [sf]
    and returns them as a {!Relalg.Database.t}. *)
let generate ?(seed = 42) ~sf () : Database.t =
  let st = Random.State.make [| seed; int_of_float (sf *. 1000.) |] in
  let c = cardinalities ~sf in
  let db = Database.create () in

  (* region *)
  let region_rows =
    List.init (Array.length Tpch_text.regions) (fun k ->
        [ iv k; sv Tpch_text.regions.(k); sv (Tpch_text.comment st 4) ])
  in
  Database.add db "region" (Relation.of_values Tpch_schema.region region_rows);

  (* nation *)
  let nation_rows =
    List.init (Array.length Tpch_text.nations) (fun k ->
        let name, region = Tpch_text.nations.(k) in
        [ iv k; sv name; iv region; sv (Tpch_text.comment st 4) ])
  in
  Database.add db "nation" (Relation.of_values Tpch_schema.nation nation_rows);

  let n_nations = Array.length Tpch_text.nations in

  (* supplier; roughly 1 in 20 suppliers carries the Q16 complaint marker. *)
  let supplier_rows =
    List.init c.suppliers (fun k ->
        let key = k + 1 in
        let nation = Random.State.int st n_nations in
        let comment =
          if Random.State.int st 20 = 0 then
            Tpch_text.comment st 2 ^ " Customer extra Complaints "
            ^ Tpch_text.comment st 2
          else Tpch_text.comment st 5
        in
        [
          iv key;
          sv (Printf.sprintf "Supplier#%09d" key);
          sv (Tpch_text.comment st 2);
          iv nation;
          sv (phone st nation);
          fv (money st (-999.99) 9999.99);
          sv comment;
        ])
  in
  Database.add db "supplier" (Relation.of_values Tpch_schema.supplier supplier_rows);

  (* customer *)
  let customer_rows =
    List.init c.customers (fun k ->
        let key = k + 1 in
        let nation = Random.State.int st n_nations in
        [
          iv key;
          sv (Printf.sprintf "Customer#%09d" key);
          sv (Tpch_text.comment st 2);
          iv nation;
          sv (phone st nation);
          fv (money st (-999.99) 9999.99);
          sv (Tpch_text.pick st Tpch_text.segments);
          sv (Tpch_text.comment st 5);
        ])
  in
  Database.add db "customer" (Relation.of_values Tpch_schema.customer customer_rows);

  (* part *)
  let part_rows =
    List.init c.parts (fun k ->
        let key = k + 1 in
        let name =
          Tpch_text.pick st Tpch_text.colors ^ " " ^ Tpch_text.pick st Tpch_text.colors
        in
        let mfgr = 1 + Random.State.int st 5 in
        let brand = Printf.sprintf "Brand#%d%d" mfgr (1 + Random.State.int st 5) in
        let ptype =
          Tpch_text.pick st Tpch_text.type_syllable_1
          ^ " "
          ^ Tpch_text.pick st Tpch_text.type_syllable_2
          ^ " "
          ^ Tpch_text.pick st Tpch_text.type_syllable_3
        in
        [
          iv key;
          sv name;
          sv (Printf.sprintf "Manufacturer#%d" mfgr);
          sv brand;
          sv ptype;
          iv (1 + Random.State.int st 50);
          sv
            (Tpch_text.pick st Tpch_text.containers_1
            ^ " "
            ^ Tpch_text.pick st Tpch_text.containers_2);
          fv (money st 900. 2000.);
          sv (Tpch_text.comment st 3);
        ])
  in
  Database.add db "part" (Relation.of_values Tpch_schema.part part_rows);

  (* partsupp: 4 suppliers per part, distinct suppliers per part. *)
  let partsupp_rows =
    List.concat
      (List.init c.parts (fun k ->
           let part = k + 1 in
           List.init (min 4 c.suppliers) (fun j ->
               let supp = 1 + ((k + (j * (c.suppliers / 4)) + j) mod c.suppliers) in
               [
                 iv part;
                 iv supp;
                 iv (1 + Random.State.int st 9999);
                 fv (money st 1. 1000.);
                 sv (Tpch_text.comment st 4);
               ])))
  in
  Database.add db "partsupp" (Relation.of_values Tpch_schema.partsupp partsupp_rows);

  (* orders *)
  let order_dates = Array.make (c.orders + 1) "" in
  let orders_rows =
    List.init c.orders (fun k ->
        let key = k + 1 in
        let date = Dates.random_date st "1992-01-01" "1998-08-02" in
        order_dates.(key) <- date;
        [
          iv key;
          iv (1 + Random.State.int st c.customers);
          sv [| "F"; "O"; "P" |].(Random.State.int st 3);
          fv (money st 1000. 400000.);
          sv date;
          sv (Tpch_text.pick st Tpch_text.priorities);
          sv (Printf.sprintf "Clerk#%09d" (1 + Random.State.int st 1000));
          iv 0;
          sv (Tpch_text.comment st 5);
        ])
  in
  Database.add db "orders" (Relation.of_values Tpch_schema.orders orders_rows);

  (* lineitem: 1..7 lines per order (4 on average). *)
  let lineitem_rows =
    List.concat
      (List.init c.orders (fun k ->
           let okey = k + 1 in
           let odate = order_dates.(okey) in
           let nlines = 1 + Random.State.int st 7 in
           List.init nlines (fun line ->
               let qty = float_of_int (1 + Random.State.int st 50) in
               let price = money st 900. 10000. in
               let ship = Dates.add_days odate (1 + Random.State.int st 121) in
               let commit = Dates.add_days odate (30 + Random.State.int st 61) in
               let receipt = Dates.add_days ship (1 + Random.State.int st 30) in
               [
                 iv okey;
                 iv (1 + Random.State.int st c.parts);
                 iv (1 + Random.State.int st c.suppliers);
                 iv (line + 1);
                 fv qty;
                 fv (Float.round (qty *. price) /. 100.);
                 fv (float_of_int (Random.State.int st 11) /. 100.);
                 fv (float_of_int (Random.State.int st 9) /. 100.);
                 sv [| "R"; "A"; "N" |].(Random.State.int st 3);
                 sv [| "O"; "F" |].(Random.State.int st 2);
                 sv ship;
                 sv commit;
                 sv receipt;
                 sv (Tpch_text.pick st Tpch_text.ship_instructs);
                 sv (Tpch_text.pick st Tpch_text.ship_modes);
                 sv (Tpch_text.comment st 4);
               ])))
  in
  Database.add db "lineitem" (Relation.of_values Tpch_schema.lineitem lineitem_rows);
  db
