(** The nine TPC-H sublink query templates of the paper's evaluation
    (Q2, Q4, Q11, Q15, Q16, Q17, Q20, Q21, Q22), with qgen-style random
    parameter instantiation. *)

type query = {
  number : int;
  correlated : bool;  (** contains correlated sublinks? *)
  sql : string;  (** SQL text, without the PROVENANCE marker *)
}

(** Query numbers with sublinks, in the paper's order. *)
val numbers : int list

(** The three uncorrelated queries (Left/Move applicable): 11, 15, 16. *)
val uncorrelated_numbers : int list

(** [instantiate ?seed n] draws one random parameterization of query
    [n]; raises [Invalid_argument] for other numbers. *)
val instantiate : ?seed:int -> int -> query

(** [with_provenance q] inserts the PROVENANCE marker. *)
val with_provenance : query -> string

(** Sublink-free TPC-H queries included beyond the paper's evaluation
    set (Q1, Q3, Q5, Q6, Q10, Q12, Q14, Q19). *)
val standard_numbers : int list

(** [instantiate_standard ?seed n] draws one parameterization of a
    query from {!standard_numbers}. *)
val instantiate_standard : ?seed:int -> int -> query
