(** Deterministic, scaled TPC-H data generator (the dbgen substitute).

    Cardinality ratios follow the official dbgen; one unit of this scale
    factor is 1/1000 of an official unit ([generate ~sf:1.0] is roughly
    8 700 tuples). The same seed always produces the same database. *)

type cardinalities = {
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

(** Row counts at scale [sf] (region is always 5, nation 25, partsupp
    [min 4 suppliers] per part, lineitem 1–7 per order). *)
val cardinalities : sf:float -> cardinalities

(** [generate ?seed ~sf ()] builds the eight TPC-H tables. *)
val generate : ?seed:int -> sf:float -> unit -> Relalg.Database.t
