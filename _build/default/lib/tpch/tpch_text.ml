(** Word lists for the TPC-H text columns, following the value domains
    of the official dbgen (Clause 4.2.2.13 of the specification),
    trimmed where the full list is irrelevant to the workload. *)

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* nation name, region index — the official 25 nations. *)
let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1);
    ("EGYPT", 4); ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3);
    ("INDIA", 2); ("INDONESIA", 2); ("IRAN", 4); ("IRAQ", 4);
    ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0); ("MOROCCO", 0);
    ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3);
    ("UNITED KINGDOM", 3); ("UNITED STATES", 1);
  |]

let colors =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black";
    "blanched"; "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse";
    "chiffon"; "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream"; "cyan";
    "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick"; "floral"; "forest";
    "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green"; "grey"; "honeydew";
    "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon";
    "light"; "lime"; "linen"; "magenta"; "maroon"; "medium"; "metallic"; "midnight";
    "mint"; "misty"; "moccasin"; "navajo"; "navy"; "olive"; "orange"; "orchid";
    "pale"; "papaya"; "peach"; "peru"; "pink"; "plum"; "powder"; "puff"; "purple";
    "red"; "rose"; "rosy"; "royal"; "saddle"; "salmon"; "sandy"; "seashell";
    "sienna"; "sky"; "slate"; "smoke"; "snow"; "spring"; "steel"; "tan"; "thistle";
    "tomato"; "turquoise"; "violet"; "wheat"; "white"; "yellow";
  |]

let type_syllable_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syllable_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let containers_1 = [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]
let containers_2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let comment_words =
  [|
    "carefully"; "quickly"; "furiously"; "slyly"; "blithely"; "ironic"; "final";
    "regular"; "express"; "special"; "pending"; "bold"; "even"; "silent";
    "requests"; "deposits"; "packages"; "accounts"; "instructions"; "theodolites";
    "pinto"; "beans"; "foxes"; "dependencies"; "platelets"; "realms"; "courts";
    "sleep"; "wake"; "nag"; "haggle"; "cajole"; "detect"; "integrate"; "boost";
  |]

let pick st (arr : string array) = arr.(Random.State.int st (Array.length arr))

(** A short pseudo-comment of [n] words. *)
let comment st n =
  String.concat " " (List.init n (fun _ -> pick st comment_words))
