(** Calendar dates represented as ISO-8601 strings ("YYYY-MM-DD"), so
    that lexicographic comparison is chronological — the only date
    operation the TPC-H workload needs besides offsetting, which is done
    here via civil-day arithmetic (Howard Hinnant's algorithm). *)

(** [days_of_civil ~y ~m ~d] is the number of days since 1970-01-01. *)
let days_of_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(** Inverse of {!days_of_civil}. *)
let civil_of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let to_string (y, m, d) = Printf.sprintf "%04d-%02d-%02d" y m d

let of_string s =
  Scanf.sscanf s "%d-%d-%d" (fun y m d -> (y, m, d))

(** [add_days date n] offsets an ISO date string by [n] days. *)
let add_days s n =
  let y, m, d = of_string s in
  to_string (civil_of_days (days_of_civil ~y ~m ~d + n))

(** [random_date st lo hi] draws a uniform date between the ISO dates
    [lo] and [hi] (inclusive). *)
let random_date st lo hi =
  let ly, lm, ld = of_string lo and hy, hm, hd = of_string hi in
  let a = days_of_civil ~y:ly ~m:lm ~d:ld in
  let b = days_of_civil ~y:hy ~m:hm ~d:hd in
  to_string (civil_of_days (a + Random.State.int st (b - a + 1)))
