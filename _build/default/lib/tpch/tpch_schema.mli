(** Schemas of the eight TPC-H tables (full column sets; dates as ISO
    strings, money/quantities as floats). *)

open Relalg

val region : Schema.t
val nation : Schema.t
val supplier : Schema.t
val customer : Schema.t
val part : Schema.t
val partsupp : Schema.t
val orders : Schema.t
val lineitem : Schema.t

(** All tables in generation order (parents before children). *)
val all : (string * Schema.t) list
