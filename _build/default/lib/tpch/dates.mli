(** Calendar dates as ISO-8601 strings ("YYYY-MM-DD"); lexicographic
    comparison is chronological. *)

(** Days since 1970-01-01 (civil-day arithmetic). *)
val days_of_civil : y:int -> m:int -> d:int -> int

(** Inverse of {!days_of_civil}: (year, month, day). *)
val civil_of_days : int -> int * int * int

val to_string : int * int * int -> string
val of_string : string -> int * int * int

(** [add_days date n] offsets an ISO date string by [n] days. *)
val add_days : string -> int -> string

(** [random_date st lo hi] draws a uniform date in [lo, hi]. *)
val random_date : Random.State.t -> string -> string -> string
