(** Static types of SQL values. Dates are ISO-8601 strings ([TString]):
    lexicographic comparison coincides with chronological order. *)

type t = TInt | TFloat | TString | TBool

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Types usable in arithmetic. *)
val is_numeric : t -> bool

(** Arithmetic result type with int/float promotion; raises
    [Invalid_argument] on non-numeric input. *)
val promote : t -> t -> t

(** May values of the two types be compared? (int/float mix allowed) *)
val compatible : t -> t -> bool
