(** Rule-based plan rewrites mirroring the PostgreSQL facilities the
    paper's measurements rely on: conjunct splitting, selection pushdown
    (into join/product sides and through rename-only projections),
    selection-over-product to join conversion, and merging of adjacent
    projections. Semantics-preserving; property-tested against the
    unoptimized plans. *)

(** [optimize db q] rewrites [q] into an equivalent, typically faster
    plan. Sublink queries embedded in conditions are optimized too. *)
val optimize : Database.t -> Algebra.query -> Algebra.query
