(** A database: a catalog of named base relations, plus a catalog of
    named views (stored algebra queries, inlined by the SQL analyzer —
    which is how Perm lets provenance queries be stored and reused). *)

type t = {
  catalog : (string, Relation.t) Hashtbl.t;
  views : (string, Algebra.query) Hashtbl.t;
}

exception Unknown_relation of string

let create () = { catalog = Hashtbl.create 16; views = Hashtbl.create 4 }

(** [add db name rel] registers or replaces relation [name]. *)
let add db name rel = Hashtbl.replace db.catalog name rel

let of_list pairs =
  let db = create () in
  List.iter (fun (name, rel) -> add db name rel) pairs;
  db

let mem db name = Hashtbl.mem db.catalog name

let find db name =
  match Hashtbl.find_opt db.catalog name with
  | Some rel -> rel
  | None -> raise (Unknown_relation name)

let find_opt db name = Hashtbl.find_opt db.catalog name

let names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.catalog [] |> List.sort compare

(** {1 Views} *)

(** [add_view db name q] registers or replaces view [name]. *)
let add_view db name q = Hashtbl.replace db.views name q

let find_view db name = Hashtbl.find_opt db.views name
let mem_view db name = Hashtbl.mem db.views name

let view_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.views [] |> List.sort compare

(** [drop db name] removes a table or view; [false] when neither exists. *)
let drop db name =
  if Hashtbl.mem db.catalog name then begin
    Hashtbl.remove db.catalog name;
    true
  end
  else if Hashtbl.mem db.views name then begin
    Hashtbl.remove db.views name;
    true
  end
  else false

(** Total number of tuples across all relations (bench reporting). *)
let total_tuples db =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinality rel) db.catalog 0
