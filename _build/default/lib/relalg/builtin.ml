(** Scalar and aggregate builtin functions.

    Scalar functions follow SQL convention: they return [Null] when any
    argument is [Null] (except [coalesce]). Aggregates ignore NULLs,
    except [count( * )]. *)

exception Unknown_function of string

(* ------------------------------------------------------------------ *)
(* Scalar functions                                                    *)
(* ------------------------------------------------------------------ *)

let strict1 f = function
  | [ Value.Null ] -> Value.Null
  | [ v ] -> f v
  | args -> Value.type_clash "expected 1 argument, got %d" (List.length args)

let scalar_abs =
  strict1 (function
    | Value.Int i -> Value.Int (abs i)
    | Value.Float f -> Value.Float (Float.abs f)
    | v -> Value.type_clash "abs(%s)" (Value.to_string v))

let scalar_sqrt = strict1 (fun v -> Value.Float (sqrt (Value.as_float v)))

let scalar_round =
  strict1 (fun v -> Value.Float (Float.round (Value.as_float v)))

let scalar_floor = strict1 (fun v -> Value.Float (Float.of_int (int_of_float (floor (Value.as_float v)))))
let scalar_ceil = strict1 (fun v -> Value.Float (Float.of_int (int_of_float (ceil (Value.as_float v)))))

let scalar_upper =
  strict1 (function
    | Value.String s -> Value.String (String.uppercase_ascii s)
    | v -> Value.type_clash "upper(%s)" (Value.to_string v))

let scalar_lower =
  strict1 (function
    | Value.String s -> Value.String (String.lowercase_ascii s)
    | v -> Value.type_clash "lower(%s)" (Value.to_string v))

let scalar_length =
  strict1 (function
    | Value.String s -> Value.Int (String.length s)
    | v -> Value.type_clash "length(%s)" (Value.to_string v))

(* SQL substring: 1-based start, clamped to the string bounds. *)
let scalar_substring = function
  | [ Value.Null; _; _ ] | [ _; Value.Null; _ ] | [ _; _; Value.Null ] -> Value.Null
  | [ Value.String s; Value.Int start; Value.Int len ] ->
      let n = String.length s in
      let from = max 0 (start - 1) in
      let upto = min n (from + max 0 len) in
      if from >= n then Value.String ""
      else Value.String (String.sub s from (upto - from))
  | args ->
      Value.type_clash "substring: bad arguments (%s)"
        (String.concat ", " (List.map Value.to_string args))

let scalar_coalesce args =
  match List.find_opt (fun v -> not (Value.is_null v)) args with
  | Some v -> v
  | None -> Value.Null

let scalar_table : (string, Value.t list -> Value.t) Hashtbl.t = Hashtbl.create 16

let () =
  List.iter
    (fun (name, f) -> Hashtbl.replace scalar_table name f)
    [
      ("abs", scalar_abs);
      ("sqrt", scalar_sqrt);
      ("round", scalar_round);
      ("floor", scalar_floor);
      ("ceil", scalar_ceil);
      ("upper", scalar_upper);
      ("lower", scalar_lower);
      ("length", scalar_length);
      ("substring", scalar_substring);
      ("coalesce", scalar_coalesce);
    ]

(** [apply_scalar name args] evaluates the builtin [name]. *)
let apply_scalar name args =
  match Hashtbl.find_opt scalar_table name with
  | Some f -> f args
  | None -> raise (Unknown_function name)

(** Result type of scalar builtin [name] on argument types [arg_tys]. *)
let scalar_result_type name (arg_tys : Vtype.t list) : Vtype.t =
  match (name, arg_tys) with
  | "abs", [ t ] when Vtype.is_numeric t -> t
  | ("sqrt" | "round" | "floor" | "ceil"), [ t ] when Vtype.is_numeric t ->
      Vtype.TFloat
  | ("upper" | "lower"), [ Vtype.TString ] -> Vtype.TString
  | "length", [ Vtype.TString ] -> Vtype.TInt
  | "substring", [ Vtype.TString; Vtype.TInt; Vtype.TInt ] -> Vtype.TString
  | "coalesce", t :: rest when List.for_all (Vtype.compatible t) rest -> t
  | _, _ ->
      if Hashtbl.mem scalar_table name then
        Value.type_clash "function %s: bad argument types (%s)" name
          (String.concat ", " (List.map Vtype.to_string arg_tys))
      else raise (Unknown_function name)

(* ------------------------------------------------------------------ *)
(* Aggregate functions                                                 *)
(* ------------------------------------------------------------------ *)

let is_aggregate = function
  | "sum" | "count" | "avg" | "min" | "max" -> true
  | _ -> false

(** [apply_aggregate func ~distinct values] computes aggregate [func]
    over a group's argument values. [values] excludes NULLs already for
    SQL conformance — the caller filters. [count] of an empty group is 0;
    other aggregates return NULL on empty input. *)
let apply_aggregate func ~distinct values =
  let values =
    if distinct then begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun v ->
          let k = Value.hash v in
          let bucket = Hashtbl.find_all seen k in
          if List.exists (Value.equal_null v) bucket then false
          else begin
            Hashtbl.add seen k v;
            true
          end)
        values
    end
    else values
  in
  match func with
  | "count" -> Value.Int (List.length values)
  | "sum" -> (
      match values with
      | [] -> Value.Null
      | v :: vs -> List.fold_left Value.add v vs)
  | "avg" -> (
      match values with
      | [] -> Value.Null
      | vs ->
          let total = List.fold_left (fun acc v -> acc +. Value.as_float v) 0. vs in
          Value.Float (total /. float_of_int (List.length vs)))
  | "min" -> (
      match values with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left
            (fun acc x -> if Value.cmp_sql x acc = Some (-1) then x else acc)
            v vs)
  | "max" -> (
      match values with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left
            (fun acc x -> if Value.cmp_sql x acc = Some 1 then x else acc)
            v vs)
  | _ -> raise (Unknown_function func)

(** Result type of aggregate [func] on argument type [arg_ty]
    ([None] for [count( * )]). *)
let aggregate_result_type func (arg_ty : Vtype.t option) : Vtype.t =
  match (func, arg_ty) with
  | "count", _ -> Vtype.TInt
  | "sum", Some t when Vtype.is_numeric t -> t
  | "avg", Some t when Vtype.is_numeric t -> Vtype.TFloat
  | ("min" | "max"), Some t -> t
  | ("sum" | "avg"), Some t ->
      Value.type_clash "%s over non-numeric type %s" func (Vtype.to_string t)
  | ("sum" | "avg" | "min" | "max"), None ->
      Value.type_clash "%s requires an argument" func
  | _ -> raise (Unknown_function func)

(* ------------------------------------------------------------------ *)
(* LIKE pattern matching                                               *)
(* ------------------------------------------------------------------ *)

(** [like_match ~pattern s] implements SQL LIKE: [%] matches any
    sequence, [_] any single character; other characters literally. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Classic two-pointer algorithm with backtracking on the last '%'. *)
  let rec go pi si star_pi star_si =
    if si = ns then
      (* consume trailing '%'s *)
      let rec only_percents i = i >= np || (pattern.[i] = '%' && only_percents (i + 1)) in
      if only_percents pi then true
      else if star_pi >= 0 then false
      else false
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si pi si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)
