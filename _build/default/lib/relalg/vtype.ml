(** Static types of SQL values.

    Dates are represented as ISO-8601 strings ([TString]); lexicographic
    comparison coincides with chronological order, which is all the TPC-H
    workload needs (see DESIGN.md). *)

type t =
  | TInt
  | TFloat
  | TString
  | TBool

let equal (a : t) (b : t) = a = b

let to_string = function
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TBool -> "bool"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** [is_numeric t] holds for types usable in arithmetic. *)
let is_numeric = function
  | TInt | TFloat -> true
  | TString | TBool -> false

(** Result type of an arithmetic operation over two numeric types
    (int/float promotion). Raises [Invalid_argument] on non-numeric input. *)
let promote a b =
  match (a, b) with
  | TInt, TInt -> TInt
  | (TInt | TFloat), (TInt | TFloat) -> TFloat
  | _ -> invalid_arg "Vtype.promote: non-numeric type"

(** [compatible a b] holds when values of the two types may be compared. *)
let compatible a b =
  match (a, b) with
  | TInt, TFloat | TFloat, TInt -> true
  | a, b -> equal a b
