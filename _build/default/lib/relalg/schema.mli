(** Relation schemas: ordered, uniquely named, typed attributes.

    The SQL analyzer qualifies attribute names ("alias.column"), which
    makes name-based correlation resolution unambiguous. *)

type attr = { name : string; ty : Vtype.t }

type t

exception Schema_error of string

val schema_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [attr name ty] is a single attribute. *)
val attr : string -> Vtype.t -> attr

(** [of_list attrs] builds a schema; raises {!Schema_error} on duplicate
    names. *)
val of_list : attr list -> t

val to_list : t -> attr list
val arity : t -> int
val attr_at : t -> int -> attr
val names : t -> string list
val types : t -> Vtype.t list

(** [find s name] is the position of [name], if present. *)
val find : t -> string -> int option

val mem : t -> string -> bool

(** Like {!find} but raises {!Schema_error} when absent. *)
val position_exn : t -> string -> int

val type_of_exn : t -> string -> Vtype.t

(** [concat a b] juxtaposes two schemas; duplicate names rejected. *)
val concat : t -> t -> t

(** [rename s f] renames every attribute through [f]. *)
val rename : t -> (string -> string) -> t

(** [rename_positional s names] assigns fresh names positionally. *)
val rename_positional : t -> string list -> t

(** Arity and pointwise type compatibility (set-operation check). *)
val equal_types : t -> t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
