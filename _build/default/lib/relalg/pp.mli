(** Pretty-printing of expressions and algebra trees. *)

val binop_symbol : Algebra.binop -> string
val cmpop_symbol : Algebra.cmpop -> string

(** Compact one-line expression rendering. *)
val pp_expr : Format.formatter -> Algebra.expr -> unit

(** One-line query rendering (for embedding in messages). *)
val pp_query_flat : Format.formatter -> Algebra.query -> unit

(** Indented multi-line plan rendering. *)
val pp_query : Format.formatter -> Algebra.query -> unit

val expr_to_string : Algebra.expr -> string
val query_to_string : Algebra.query -> string
val query_to_line : Algebra.query -> string
