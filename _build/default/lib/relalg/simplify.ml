(** Expression and plan simplification: constant folding, boolean
    identities and comparison negation, all chosen to be exact under
    SQL's three-valued logic (e.g. [NOT (a < b)] is [a >= b] even for
    NULLs, and [x AND FALSE] is [FALSE] regardless of [x]).

    The provenance rewrites are fertile ground for these rules: the Gen
    and Left strategies build conditions like
    [(C =n true) OR NOT (... =n true)] around constant sub-terms, and
    the [Jsub] of an EXISTS sublink is the constant [true]. *)

open Algebra

let vtrue = Const Value.vtrue
let vfalse = Const Value.vfalse

let is_const = function Const _ | TypedNull _ -> true | _ -> false

let const_value = function
  | Const v -> v
  | TypedNull _ -> Value.Null
  | _ -> invalid_arg "const_value"

(* Constant-fold a pure operation, keeping the original expression if
   evaluation raises (e.g. division by zero must stay a runtime error
   for rows that actually reach it). *)
let try_fold original f = try f () with Value.Type_clash _ -> original

let negate_cmp = function
  | Eq -> Some Neq
  | Neq -> Some Eq
  | Lt -> Some Geq
  | Leq -> Some Gt
  | Gt -> Some Leq
  | Geq -> Some Lt
  | EqNull -> None (* =n is two-valued; NOT (a =n b) has no cmpop form *)

let rec expr (e : Algebra.expr) : Algebra.expr =
  match e with
  | Const _ | TypedNull _ | Attr _ -> e
  | Binop (op, a, b) -> (
      let a = expr a and b = expr b in
      let folded = Binop (op, a, b) in
      match (a, b) with
      | (Const _ | TypedNull _), (Const _ | TypedNull _) ->
          try_fold folded (fun () ->
              let va = const_value a and vb = const_value b in
              Const
                (match op with
                | Add -> Value.add va vb
                | Sub -> Value.sub va vb
                | Mul -> Value.mul va vb
                | Div -> Value.div va vb
                | Mod -> Value.modulo va vb
                | Concat -> Value.concat va vb))
      | _ -> folded)
  | Cmp (op, a, b) -> (
      let a = expr a and b = expr b in
      let folded = Cmp (op, a, b) in
      match (a, b) with
      | (Const _ | TypedNull _), (Const _ | TypedNull _) ->
          try_fold folded (fun () ->
              Const (Eval.cmp3 op (const_value a) (const_value b)))
      | _ -> folded)
  | And (a, b) -> (
      match (expr a, expr b) with
      | Const (Value.Bool false), _ | _, Const (Value.Bool false) -> vfalse
      | Const (Value.Bool true), x | x, Const (Value.Bool true) -> x
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (expr a, expr b) with
      | Const (Value.Bool true), _ | _, Const (Value.Bool true) -> vtrue
      | Const (Value.Bool false), x | x, Const (Value.Bool false) -> x
      | a, b -> Or (a, b))
  | Not a -> (
      match expr a with
      | Const v -> try_fold (Not (Const v)) (fun () -> Const (Value.not3 v))
      | Not inner -> inner
      | Cmp (op, x, y) as cmp -> (
          match negate_cmp op with
          | Some op' -> Cmp (op', x, y)
          | None -> Not cmp)
      | a -> Not a)
  | IsNull a -> (
      match expr a with
      | (Const _ | TypedNull _) as c -> Const (Value.Bool (Value.is_null (const_value c)))
      | a -> IsNull a)
  | Case (whens, els) -> (
      let els = Option.map expr els in
      (* drop branches with constant-false conditions; stop at the first
         constant-true condition *)
      let rec prune = function
        | [] -> ([], els)
        | (c, x) :: rest -> (
            match expr c with
            | Const (Value.Bool true) -> ([], Some (expr x))
            | Const (Value.Bool false) | Const Value.Null | TypedNull _ -> prune rest
            | c ->
                let whens, final = prune rest in
                ((c, expr x) :: whens, final))
      in
      match prune whens with
      | [], Some e -> e
      | [], None -> Const Value.Null
      | whens, final -> Case (whens, final))
  | Like (a, pattern) -> (
      match expr a with
      | Const (Value.String s) -> Const (Value.Bool (Builtin.like_match ~pattern s))
      | Const Value.Null | TypedNull _ -> Const Value.Null
      | a -> Like (a, pattern))
  | InList (a, es) -> (
      let a = expr a and es = List.map expr es in
      let folded = InList (a, es) in
      if is_const a && List.for_all is_const es then
        try_fold folded (fun () ->
            let x = const_value a in
            Const
              (List.fold_left
                 (fun acc e -> Value.or3 acc (Eval.cmp3 Eq x (const_value e)))
                 Value.vfalse es))
      else folded)
  | FunCall (name, args) -> FunCall (name, List.map expr args)
  | Sublink s -> Sublink { s with kind = sublink_kind s.kind }

and sublink_kind = function
  | (Exists | Scalar) as k -> k
  | AnyOp (op, lhs) -> AnyOp (op, expr lhs)
  | AllOp (op, lhs) -> AllOp (op, expr lhs)

(** [query q] simplifies every expression in the plan (including inside
    sublink queries) and drops selections whose condition folded to
    [TRUE]. *)
let rec query (q : Algebra.query) : Algebra.query =
  let q = map_queries query q in
  let q =
    match q with
    | Select (c, input) -> (
        match expr (map_expr_query query c) with
        | Const (Value.Bool true) -> input
        | c -> Select (c, input))
    | Project p ->
        Project
          {
            p with
            cols = List.map (fun (e, n) -> (expr (map_expr_query query e), n)) p.cols;
          }
    | Join (c, a, b) -> (
        match expr (map_expr_query query c) with
        | Const (Value.Bool true) -> Cross (a, b)
        | c -> Join (c, a, b))
    | LeftJoin (c, a, b) -> LeftJoin (expr (map_expr_query query c), a, b)
    | Agg spec ->
        Agg
          {
            spec with
            group_by = List.map (fun (e, n) -> (expr e, n)) spec.group_by;
            aggs =
              List.map
                (fun call -> { call with agg_arg = Option.map expr call.agg_arg })
                spec.aggs;
          }
    | Order (keys, input) ->
        Order (List.map (fun (e, d) -> (expr e, d)) keys, input)
    | q -> q
  in
  q
