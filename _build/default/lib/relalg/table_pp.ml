(** ASCII rendering of relations, for the CLI and the examples. *)

let render ?(max_rows = 50) (rel : Relation.t) : string =
  let schema = Relation.schema rel in
  let headers = Schema.names schema in
  let all = Relation.tuples rel in
  let total = List.length all in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let shown = take max_rows all in
  let rows =
    List.map (fun t -> List.map Value.to_string (Tuple.to_list t)) shown
  in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let render_row row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell + 1) ' ');
        Buffer.add_char buf '|')
      row;
    Buffer.add_char buf '\n'
  in
  sep ();
  render_row headers;
  sep ();
  List.iter render_row rows;
  sep ();
  if total > max_rows then
    Buffer.add_string buf
      (Printf.sprintf "... %d more row(s) (%d total)\n" (total - max_rows) total)
  else Buffer.add_string buf (Printf.sprintf "(%d row(s))\n" total);
  Buffer.contents buf

let print ?max_rows rel = print_string (render ?max_rows rel)
