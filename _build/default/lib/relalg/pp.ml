(** Pretty-printing of expressions and algebra trees.

    Two renderings: a compact one-line form for expressions (used in
    error messages and plan labels) and an indented tree for plans,
    matching the operator names of Figure 1 (Π, σ, ×, ⋈, α, ...). *)

open Algebra

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Concat -> "||"

let cmpop_symbol = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="
  | EqNull -> "=n"

let rec pp_expr ppf (e : expr) =
  match e with
  | Const v -> Format.pp_print_string ppf (Value.to_literal v)
  | TypedNull ty -> Format.fprintf ppf "NULL::%a" Vtype.pp ty
  | Attr name -> Format.pp_print_string ppf name
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Cmp (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (cmpop_symbol op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp_expr a
  | IsNull a -> Format.fprintf ppf "(%a IS NULL)" pp_expr a
  | Case (whens, els) ->
      Format.fprintf ppf "CASE";
      List.iter
        (fun (c, e) -> Format.fprintf ppf " WHEN %a THEN %a" pp_expr c pp_expr e)
        whens;
      Option.iter (fun e -> Format.fprintf ppf " ELSE %a" pp_expr e) els;
      Format.fprintf ppf " END"
  | Like (a, pattern) ->
      Format.fprintf ppf "(%a LIKE %s)" pp_expr a
        (Value.to_literal (Value.String pattern))
  | InList (a, es) ->
      Format.fprintf ppf "(%a IN (%a))" pp_expr a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        es
  | FunCall (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args
  | Sublink s -> pp_sublink ppf s

and pp_sublink ppf (s : sublink) =
  match s.kind with
  | Exists -> Format.fprintf ppf "EXISTS[%a]" pp_query_flat s.query
  | Scalar -> Format.fprintf ppf "SCALAR[%a]" pp_query_flat s.query
  | AnyOp (op, lhs) ->
      Format.fprintf ppf "(%a %s ANY [%a])" pp_expr lhs (cmpop_symbol op)
        pp_query_flat s.query
  | AllOp (op, lhs) ->
      Format.fprintf ppf "(%a %s ALL [%a])" pp_expr lhs (cmpop_symbol op)
        pp_query_flat s.query

(* One-line rendering of a query, for embedding in expressions. *)
and pp_query_flat ppf (q : query) =
  match q with
  | Base name -> Format.pp_print_string ppf name
  | TableExpr rel ->
      Format.fprintf ppf "<table:%d rows>" (Relation.cardinality rel)
  | Select (c, input) ->
      Format.fprintf ppf "Sel{%a}(%a)" pp_expr c pp_query_flat input
  | Project { distinct; cols; proj_input } ->
      Format.fprintf ppf "Proj%s{%a}(%a)"
        (if distinct then "D" else "")
        pp_cols cols pp_query_flat proj_input
  | Cross (a, b) -> Format.fprintf ppf "(%a x %a)" pp_query_flat a pp_query_flat b
  | Join (c, a, b) ->
      Format.fprintf ppf "(%a Join{%a} %a)" pp_query_flat a pp_expr c pp_query_flat b
  | LeftJoin (c, a, b) ->
      Format.fprintf ppf "(%a LeftJoin{%a} %a)" pp_query_flat a pp_expr c
        pp_query_flat b
  | Agg { group_by; aggs; agg_input } ->
      Format.fprintf ppf "Agg{%a; %a}(%a)" pp_cols group_by pp_aggs aggs
        pp_query_flat agg_input
  | Union (sem, a, b) ->
      Format.fprintf ppf "(%a U%s %a)" pp_query_flat a (sem_tag sem) pp_query_flat b
  | Inter (sem, a, b) ->
      Format.fprintf ppf "(%a I%s %a)" pp_query_flat a (sem_tag sem) pp_query_flat b
  | Diff (sem, a, b) ->
      Format.fprintf ppf "(%a -%s %a)" pp_query_flat a (sem_tag sem) pp_query_flat b
  | Order (keys, input) ->
      Format.fprintf ppf "Ord{%a}(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (e, d) ->
             Format.fprintf ppf "%a %s" pp_expr e
               (match d with Asc -> "asc" | Desc -> "desc")))
        keys pp_query_flat input
  | Limit (n, input) -> Format.fprintf ppf "Limit{%d}(%a)" n pp_query_flat input

and sem_tag = function Bag -> "b" | SetSem -> "s"

and pp_cols ppf cols =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf (e, name) ->
      match e with
      | Attr a when a = name -> Format.pp_print_string ppf name
      | _ -> Format.fprintf ppf "%a->%s" pp_expr e name)
    ppf cols

and pp_aggs ppf aggs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf c ->
      Format.fprintf ppf "%s(%s%s)->%s" c.agg_func
        (if c.agg_distinct then "distinct " else "")
        (match c.agg_arg with
        | None -> "*"
        | Some e -> Format.asprintf "%a" pp_expr e)
        c.agg_name)
    ppf aggs

(** Indented multi-line plan rendering. *)
let pp_query ppf q =
  let rec go indent q =
    let pad = String.make indent ' ' in
    let line fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@.") pad in
    match q with
    | Base name -> line "Base %s" name
    | TableExpr rel -> line "Table (%d rows)" (Relation.cardinality rel)
    | Select (c, input) ->
        line "Select %a" pp_expr c;
        go (indent + 2) input
    | Project { distinct; cols; proj_input } ->
        line "Project%s [%a]" (if distinct then " distinct" else "") pp_cols cols;
        go (indent + 2) proj_input
    | Cross (a, b) ->
        line "Cross";
        go (indent + 2) a;
        go (indent + 2) b
    | Join (c, a, b) ->
        line "Join %a" pp_expr c;
        go (indent + 2) a;
        go (indent + 2) b
    | LeftJoin (c, a, b) ->
        line "LeftJoin %a" pp_expr c;
        go (indent + 2) a;
        go (indent + 2) b
    | Agg { group_by; aggs; agg_input } ->
        line "Aggregate group[%a] aggs[%a]" pp_cols group_by pp_aggs aggs;
        go (indent + 2) agg_input
    | Union (sem, a, b) ->
        line "Union(%s)" (sem_tag sem);
        go (indent + 2) a;
        go (indent + 2) b
    | Inter (sem, a, b) ->
        line "Intersect(%s)" (sem_tag sem);
        go (indent + 2) a;
        go (indent + 2) b
    | Diff (sem, a, b) ->
        line "Except(%s)" (sem_tag sem);
        go (indent + 2) a;
        go (indent + 2) b
    | Order (keys, input) ->
        line "Order (%d keys)" (List.length keys);
        go (indent + 2) input
    | Limit (n, input) ->
        line "Limit %d" n;
        go (indent + 2) input
  in
  go 0 q

let expr_to_string e = Format.asprintf "%a" pp_expr e
let query_to_string q = Format.asprintf "%a" pp_query q
let query_to_line q = Format.asprintf "%a" pp_query_flat q
