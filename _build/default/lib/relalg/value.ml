(** Runtime SQL values with [NULL] and three-valued logic.

    The module provides the two equality notions the paper relies on:
    - SQL equality ([cmp_sql Eq]-style), where any comparison involving
      [Null] is unknown, and
    - the null-aware equality [=n] from Section 3.3 of the paper
      ([equal_null]), where [Null =n Null] is true. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

exception Type_clash of string

let type_clash fmt = Format.kasprintf (fun s -> raise (Type_clash s)) fmt

(** {1 Construction and inspection} *)

let of_int i = Int i
let of_float f = Float f
let of_string s = String s
let of_bool b = Bool b
let vtrue = Bool true
let vfalse = Bool false

let is_null = function Null -> true | Int _ | Float _ | String _ | Bool _ -> false

(** Dynamic type of a value; [None] for [Null] (which inhabits all types). *)
let vtype_of = function
  | Null -> None
  | Int _ -> Some Vtype.TInt
  | Float _ -> Some Vtype.TFloat
  | String _ -> Some Vtype.TString
  | Bool _ -> Some Vtype.TBool

(** [zero_of ty] is the neutral value used to seed numeric aggregates. *)
let zero_of = function
  | Vtype.TInt -> Int 0
  | Vtype.TFloat -> Float 0.
  | ty -> type_clash "no zero for type %s" (Vtype.to_string ty)

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      (* Avoid "3." which the SQL lexer would not round-trip. *)
      let s = Printf.sprintf "%.6g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
  | String s -> s
  | Bool b -> if b then "true" else "false"

(** SQL-literal rendering: strings are quoted and escaped. *)
let to_literal = function
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)

(** {1 Numeric coercion} *)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_clash "expected a number, got %s" (to_string v)

(** {1 Comparison} *)

(** SQL comparison: [None] when either operand is [Null], otherwise
    [Some c] with [c] the usual negative/zero/positive convention.
    Int/float operands are compared numerically. *)
let cmp_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | (Int _ | Float _), (Int _ | Float _) -> Some (compare (as_float a) (as_float b))
  | String x, String y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | _ -> type_clash "cannot compare %s with %s" (to_string a) (to_string b)

(** Total order used for ORDER BY and canonical sorting: [Null] sorts
    first, then values ordered within their type, types ordered
    bool < int/float < string. Never raises. *)
let compare_total a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | String _ -> 3
  in
  match (a, b) with
  | Null, Null -> 0
  | (Int _ | Float _), (Int _ | Float _) -> compare (as_float a) (as_float b)
  | _ when rank a <> rank b -> compare (rank a) (rank b)
  | _ -> compare a b

(** Structural equality treating [Null] as equal to [Null] and [Int i]
    equal to [Float f] when numerically equal. This is the tuple-identity
    notion used for grouping, duplicate elimination and bag counting. *)
let equal_null a b =
  match (a, b) with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> cmp_sql a b = Some 0

(** {1 Three-valued logic}

    Truth values are encoded as [Bool true], [Bool false] and [Null]
    (unknown). *)

let is_true = function Bool true -> true | _ -> false
let is_false = function Bool false -> true | _ -> false

let and3 a b =
  match (a, b) with
  | Bool false, _ | _, Bool false -> Bool false
  | Bool true, Bool true -> Bool true
  | (Null | Bool true), (Null | Bool true) -> Null
  | _ -> type_clash "AND over non-boolean %s / %s" (to_string a) (to_string b)

let or3 a b =
  match (a, b) with
  | Bool true, _ | _, Bool true -> Bool true
  | Bool false, Bool false -> Bool false
  | (Null | Bool false), (Null | Bool false) -> Null
  | _ -> type_clash "OR over non-boolean %s / %s" (to_string a) (to_string b)

let not3 = function
  | Bool b -> Bool (not b)
  | Null -> Null
  | v -> type_clash "NOT over non-boolean %s" (to_string v)

(** {1 Arithmetic} *)

let arith op_name int_op float_op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (as_float a) (as_float b))
  | _ ->
      type_clash "%s over non-numeric %s / %s" op_name (to_string a) (to_string b)

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> type_clash "division by zero"
  | _, Float 0. -> type_clash "division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a /. as_float b)
  | _ -> type_clash "/ over non-numeric %s / %s" (to_string a) (to_string b)

let modulo a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _, Int 0 -> type_clash "modulo by zero"
  | Int x, Int y -> Int (x mod y)
  | _ -> type_clash "%% over non-integer %s / %s" (to_string a) (to_string b)

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | String x, String y -> String (x ^ y)
  | _ -> String (to_string a ^ to_string b)

(** {1 Hashing}

    Hash compatible with [equal_null]: numerically equal ints and floats
    hash alike, which lets hash joins mix the two numeric types. *)
let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
