lib/relalg/csv.ml: Buffer Format List Relation Schema String Tuple Value Vtype
