lib/relalg/schema.mli: Format Vtype
