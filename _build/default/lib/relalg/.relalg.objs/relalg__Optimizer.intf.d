lib/relalg/optimizer.mli: Algebra Database
