lib/relalg/pp.mli: Algebra Format
