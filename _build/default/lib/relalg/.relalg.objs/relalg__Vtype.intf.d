lib/relalg/vtype.mli: Format
