lib/relalg/vtype.ml: Format
