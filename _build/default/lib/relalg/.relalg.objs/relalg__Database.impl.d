lib/relalg/database.ml: Algebra Hashtbl List Relation
