lib/relalg/table_pp.ml: Array Buffer List Printf Relation Schema String Tuple Value
