lib/relalg/eval.mli: Algebra Database Relation Schema Tuple Value
