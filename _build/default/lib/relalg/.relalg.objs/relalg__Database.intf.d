lib/relalg/database.mli: Algebra Relation
