lib/relalg/optimizer.ml: Algebra List Option Scope Simplify Value
