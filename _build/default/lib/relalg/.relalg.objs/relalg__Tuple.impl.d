lib/relalg/tuple.ml: Array Format Hashtbl Value
