lib/relalg/schema.ml: Array Format Hashtbl List String Vtype
