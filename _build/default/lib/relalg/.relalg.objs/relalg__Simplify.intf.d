lib/relalg/simplify.mli: Algebra
