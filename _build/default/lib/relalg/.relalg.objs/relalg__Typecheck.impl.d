lib/relalg/typecheck.ml: Algebra Builtin Database Format List Option Relation Schema String Value Vtype
