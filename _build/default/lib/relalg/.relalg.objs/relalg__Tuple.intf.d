lib/relalg/tuple.mli: Format Hashtbl Value
