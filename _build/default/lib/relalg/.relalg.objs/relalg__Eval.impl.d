lib/relalg/eval.ml: Algebra Builtin Database Format Hashtbl List Option Printf Relation Schema Scope Tuple Typecheck Value Vtype
