lib/relalg/relation.ml: Format List Schema Tuple
