lib/relalg/simplify.ml: Algebra Builtin Eval List Option Value
