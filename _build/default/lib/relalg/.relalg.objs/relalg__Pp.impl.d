lib/relalg/pp.ml: Algebra Format List Option Relation String Value Vtype
