lib/relalg/relation.mli: Format Schema Tuple Value
