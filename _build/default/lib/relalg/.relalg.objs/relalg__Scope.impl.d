lib/relalg/scope.ml: Algebra Database List Option Relation Schema Set String
