lib/relalg/value.mli: Format Vtype
