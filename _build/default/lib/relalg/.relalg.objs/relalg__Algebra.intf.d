lib/relalg/algebra.mli: Relation Schema Value Vtype
