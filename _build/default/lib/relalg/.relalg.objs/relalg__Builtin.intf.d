lib/relalg/builtin.mli: Value Vtype
