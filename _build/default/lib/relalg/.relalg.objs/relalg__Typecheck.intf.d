lib/relalg/typecheck.mli: Algebra Database Schema Vtype
