lib/relalg/scope.mli: Algebra Database
