lib/relalg/table_pp.mli: Relation
