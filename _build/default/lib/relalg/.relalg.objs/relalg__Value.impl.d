lib/relalg/value.ml: Buffer Format Hashtbl Printf String Vtype
