lib/relalg/algebra.ml: List Option Relation Schema Value Vtype
