lib/relalg/csv.mli: Relation
