lib/relalg/builtin.ml: Float Hashtbl List String Value Vtype
