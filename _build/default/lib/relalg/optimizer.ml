(** Rule-based plan rewrites, mirroring the PostgreSQL facilities the
    paper's measurements rely on:

    - split conjunctive selections and push each conjunct as deep as its
      attribute references allow (into the sides of products and joins);
    - merge a residual selection over a product into a join, so the
      evaluator can run it as a hash join / streaming nested loop.

    The rewrites never look inside [Project]/[Agg] (no renaming-aware
    pushdown) — enough for the plans produced by the provenance rewriter,
    whose hot paths are selections over products and joins. *)

open Algebra

(* A conjunct can move to a side of a binary operator when all its
   attribute references are produced by that side. References to
   attributes of neither side are correlated (bound by an enclosing
   sublink scope) and do not block the move. *)
let movable_to db side_names e =
  let refs = Scope.refs_of_expr db e in
  ignore refs;
  (* A conjunct is movable to [side] iff none of its references belong to
     the opposite side; the caller passes the names of the opposite side. *)
  not (List.exists (fun n -> List.mem n side_names) (Scope.refs_of_expr db e))

(* Rewrite attribute references through a projection's renaming map.
   Only valid on sublink-free expressions whose references are all in
   the map. *)
let rec rename_attrs map (e : expr) : expr =
  match e with
  | Attr n -> (
      match List.assoc_opt n map with Some src -> Attr src | None -> Attr n)
  | Const _ | TypedNull _ -> e
  | Binop (op, a, b) -> Binop (op, rename_attrs map a, rename_attrs map b)
  | Cmp (op, a, b) -> Cmp (op, rename_attrs map a, rename_attrs map b)
  | And (a, b) -> And (rename_attrs map a, rename_attrs map b)
  | Or (a, b) -> Or (rename_attrs map a, rename_attrs map b)
  | Not a -> Not (rename_attrs map a)
  | IsNull a -> IsNull (rename_attrs map a)
  | Case (whens, els) ->
      Case
        ( List.map (fun (c, x) -> (rename_attrs map c, rename_attrs map x)) whens,
          Option.map (rename_attrs map) els )
  | Like (a, p) -> Like (rename_attrs map a, p)
  | InList (a, es) -> InList (rename_attrs map a, List.map (rename_attrs map) es)
  | FunCall (f, es) -> FunCall (f, List.map (rename_attrs map) es)
  | Sublink _ -> invalid_arg "rename_attrs: sublink"

let rec push_select db (conds : expr list) (q : query) : query =
  match q with
  | Cross (a, b) | Join (Const (Value.Bool true), a, b) ->
      distribute db conds a b ~mk:(fun residual a b ->
          match residual with
          | [] -> Cross (a, b)
          | cs -> Join (conj cs, a, b))
  | Join (c, a, b) ->
      distribute db (conds @ conjuncts c) a b ~mk:(fun residual a b ->
          Join (conj residual, a, b))
  | LeftJoin (c, a, b) ->
      (* Only push into the left (preserved) side: conditions on the
         nullable side would change outer-join semantics. The join
         condition itself stays put. *)
      let a_names = Scope.out_names db a in
      let b_names = Scope.out_names db b in
      ignore a_names;
      let to_left, residual =
        List.partition (fun e -> movable_to db b_names e) conds
      in
      let a' = push_select db to_left (optimize db a) in
      let b' = optimize db b in
      let inner = LeftJoin (c, a', b') in
      if residual = [] then inner else Select (conj residual, inner)
  | Select (c, input) -> push_select db (conds @ conjuncts c) input
  | Project p ->
      (* Push conjuncts whose references all map to rename-only columns
         through the projection (filtering before or after a pure
         rename/dedup is equivalent). Sublink conjuncts stay above: the
         substitution cannot see into sublink scopes. *)
      let rename_map =
        List.filter_map
          (fun (e, n) -> match e with Attr src -> Some (n, src) | _ -> None)
          p.cols
      in
      let pushable, rest =
        List.partition
          (fun c ->
            (not (has_sublink c))
            && List.for_all
                 (fun n -> List.mem_assoc n rename_map)
                 (Scope.refs_of_expr db c))
          conds
      in
      let renamed = List.map (rename_attrs rename_map) pushable in
      let inner = push_select db renamed p.proj_input in
      let cols =
        List.map (fun (e, n) -> (map_expr_query (optimize db) e, n)) p.cols
      in
      let projected = Project { p with cols; proj_input = inner } in
      if rest = [] then projected else Select (conj rest, projected)
  | _ ->
      let q' = optimize_children db q in
      if conds = [] then q' else Select (conj conds, q')

and distribute db conds a b ~mk =
  let a_names = Scope.out_names db a and b_names = Scope.out_names db b in
  let to_a, rest = List.partition (fun e -> movable_to db b_names e) conds in
  let to_b, residual = List.partition (fun e -> movable_to db a_names e) rest in
  let a' = push_select db to_a (optimize db a) in
  let b' = push_select db to_b (optimize db b) in
  mk residual a' b'

and optimize_children db q = map_queries (optimize db) q

(* Merge Project-over-Project when the outer projection only reorders,
   renames or drops columns (plain attribute references) and the inner
   one performs no duplicate elimination. The provenance rewriter's
   final normalization projection creates exactly this pattern. *)
and merge_projects q =
  match q with
  | Project
      ({ cols = outer_cols; proj_input = Project inner; distinct = _ } as outer)
    when (not inner.distinct)
         && List.for_all (fun (e, _) -> match e with Attr _ -> true | _ -> false)
              outer_cols ->
      let resolve = function
        | Attr n, out_name -> (
            match List.assoc_opt n (List.map (fun (e, m) -> (m, e)) inner.cols) with
            | Some e -> (e, out_name)
            | None -> (Attr n, out_name) (* correlated reference *))
        | other -> other
      in
      merge_projects
        (Project
           {
             outer with
             cols = List.map resolve outer_cols;
             proj_input = inner.proj_input;
           })
  | q -> q

(** [optimize db q] rewrites [q] into an equivalent, typically faster
    plan. Sublink queries embedded in conditions are optimized too. *)
and optimize db (q : query) : query =
  match merge_projects q with
  | Select (c, input) ->
      let c = map_expr_query (optimize db) c in
      push_select db (conjuncts c) input
  | (Cross _ | Join _ | LeftJoin _) as q -> push_select db [] q
  | q -> optimize_children db q

(* Entry point: simplify first (constant folding may expose TRUE/FALSE
   selections and negation-free comparisons), then push selections. *)
let optimize db q = optimize db (Simplify.query q)
