(** Minimal CSV import/export for relations.

    The first line is the header; column types are inferred (int, then
    float, then bool, else string); empty cells are NULL. Quoting
    follows RFC 4180. *)

exception Csv_error of string

(** [of_lines lines] parses a header line plus data rows. *)
val of_lines : string list -> Relation.t

(** [load path] reads a relation from a CSV file. *)
val load : string -> Relation.t

(** [to_string rel] renders CSV text (NULL as empty cell). *)
val to_string : Relation.t -> string

(** [save path rel] writes a relation to a CSV file. *)
val save : string -> Relation.t -> unit
