(** ASCII rendering of relations, for the CLI and the examples. *)

(** [render ?max_rows rel] draws an ASCII table (default 50 rows shown;
    a trailer reports the total). *)
val render : ?max_rows:int -> Relation.t -> string

val print : ?max_rows:int -> Relation.t -> unit
