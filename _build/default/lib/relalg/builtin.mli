(** Scalar and aggregate builtin functions.

    Scalar functions are NULL-strict except [coalesce]; aggregates
    follow SQL (NULLs ignored, [count] of empty is 0, other aggregates
    of empty are NULL). *)

exception Unknown_function of string

(** [apply_scalar name args] evaluates builtin [name]; raises
    {!Unknown_function} or {!Relalg.Value.Type_clash}. Available:
    abs, sqrt, round, floor, ceil, upper, lower, length,
    substring(s, from, len), coalesce. *)
val apply_scalar : string -> Value.t list -> Value.t

(** Result type of scalar builtin [name] on the given argument types. *)
val scalar_result_type : string -> Vtype.t list -> Vtype.t

(** Recognized aggregate names: sum, count, avg, min, max. *)
val is_aggregate : string -> bool

(** [apply_aggregate func ~distinct values] computes an aggregate over
    a group's (already NULL-filtered) argument values. *)
val apply_aggregate : string -> distinct:bool -> Value.t list -> Value.t

(** Result type of aggregate [func]; [None] argument type encodes
    [count( * )]. *)
val aggregate_result_type : string -> Vtype.t option -> Vtype.t

(** SQL LIKE: [%] matches any sequence, [_] any single character. *)
val like_match : pattern:string -> string -> bool
