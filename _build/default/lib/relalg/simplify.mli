(** Expression and plan simplification, exact under SQL's three-valued
    logic: constant folding, boolean identities ([x AND FALSE] = FALSE,
    double negation), comparison negation ([NOT (a < b)] = [a >= b]),
    CASE pruning, and removal of constant-TRUE selections/joins.
    Run by {!Optimizer.optimize} before pushdown. *)

val expr : Algebra.expr -> Algebra.expr

(** [query q] simplifies every expression in the plan, including inside
    sublink queries. *)
val query : Algebra.query -> Algebra.query
