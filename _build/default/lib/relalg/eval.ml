(** Evaluator for the extended algebra of Figure 1.

    Design points that matter for reproducing the paper's performance
    shape (these mirror what PostgreSQL gives the original Perm):
    - equi-join conjuncts (including the null-aware [=n]) are executed as
      hash joins;
    - sublink results are memoized per binding of their correlated
      attributes (PostgreSQL's hashed/materialized subplans);
    - [ANY]/[ALL] sublinks are answered from a constant-size summary
      (value set, min/max, null flags) instead of re-scanning the
      materialized sublink;
    - a selection directly above a cross product is evaluated as a join,
      streaming pairs instead of materializing the product.

    Everything else is naive: cross products enumerate, non-equi joins
    are nested loops — which is exactly why the Gen strategy's
    [CrossBase] plans are expensive here, as they are in the paper. *)

open Algebra

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(** {1 Environments} *)

type frame = { f_schema : Schema.t; f_tuple : Tuple.t }

type env = frame list

let frame schema tuple = { f_schema = schema; f_tuple = tuple }
let schemas_of_env env = List.map (fun f -> f.f_schema) env

(** [lookup env name] resolves an attribute innermost-first. *)
let lookup (env : env) name =
  let rec go = function
    | [] -> eval_error "unknown attribute %S at evaluation time" name
    | f :: rest -> (
        match Schema.find f.f_schema name with
        | Some i -> Tuple.get f.f_tuple i
        | None -> go rest)
  in
  go env

(** {1 Three-valued comparison} *)

(** [cmp3 op a b] is the truth value ([Bool]/[Null]) of [a op b]. *)
let cmp3 (op : cmpop) a b : Value.t =
  match op with
  | EqNull -> Value.Bool (Value.equal_null a b)
  | _ -> (
      match Value.cmp_sql a b with
      | None -> Value.Null
      | Some c ->
          Value.Bool
            (match op with
            | Eq -> c = 0
            | Neq -> c <> 0
            | Lt -> c < 0
            | Leq -> c <= 0
            | Gt -> c > 0
            | Geq -> c >= 0
            | EqNull -> assert false))

(** {1 ANY/ALL semantics}

    [naive_any]/[naive_all] are the reference 3VL folds from Figure 1
    (existential / universal quantification); the summary-based versions
    below are the fast path. Property tests check their agreement. *)

let naive_any op lhs values =
  List.fold_left (fun acc v -> Value.or3 acc (cmp3 op lhs v)) Value.vfalse values

let naive_all op lhs values =
  List.fold_left (fun acc v -> Value.and3 acc (cmp3 op lhs v)) Value.vtrue values

type summary = {
  s_empty : bool;
  s_has_null : bool;
  s_min : Value.t option;  (** min over non-null values *)
  s_max : Value.t option;
  s_set : unit Tuple.Tbl.t;  (** distinct non-null values, as 1-ary tuples *)
  s_distinct : int;
  s_sample : Value.t option;  (** an arbitrary non-null value *)
}

let summarize values =
  let set = Tuple.Tbl.create 64 in
  let has_null = ref false in
  let min_v = ref None and max_v = ref None and sample = ref None in
  List.iter
    (fun v ->
      if Value.is_null v then has_null := true
      else begin
        if !sample = None then sample := Some v;
        (match !min_v with
        | Some m when Value.cmp_sql v m <> Some (-1) -> ()
        | _ -> min_v := Some v);
        (match !max_v with
        | Some m when Value.cmp_sql v m <> Some 1 -> ()
        | _ -> max_v := Some v);
        let key = [| v |] in
        if not (Tuple.Tbl.mem set key) then Tuple.Tbl.add set key ()
      end)
    values;
  {
    s_empty = values = [];
    s_has_null = !has_null;
    s_min = !min_v;
    s_max = !max_v;
    s_set = set;
    s_distinct = Tuple.Tbl.length set;
    s_sample = !sample;
  }

let set_mem s v = Tuple.Tbl.mem s.s_set [| v |]

let unknown_or s base = if s.s_has_null then Value.Null else base

(** [any_of_summary op lhs s] = [lhs op ANY Tsub] from the summary. *)
let any_of_summary op lhs s : Value.t =
  if s.s_empty then Value.vfalse
  else if op = EqNull then begin
    (* =n is two-valued: NULL matches NULL. *)
    if Value.is_null lhs then Value.Bool s.s_has_null
    else Value.Bool (set_mem s lhs)
  end
  else if Value.is_null lhs then Value.Null
  else
    match op with
    | Eq -> if set_mem s lhs then Value.vtrue else unknown_or s Value.vfalse
    | Neq ->
        if s.s_distinct >= 2 then Value.vtrue
        else if
          s.s_distinct = 1 && not (Value.equal_null (Option.get s.s_sample) lhs)
        then Value.vtrue
        else unknown_or s Value.vfalse
    | Lt | Leq ->
        (* exists v with lhs < v  <=>  lhs < max *)
        let sat =
          match s.s_max with
          | None -> false
          | Some m -> Value.is_true (cmp3 op lhs m)
        in
        if sat then Value.vtrue else unknown_or s Value.vfalse
    | Gt | Geq ->
        let sat =
          match s.s_min with
          | None -> false
          | Some m -> Value.is_true (cmp3 op lhs m)
        in
        if sat then Value.vtrue else unknown_or s Value.vfalse
    | EqNull -> assert false

(** [all_of_summary op lhs s] = [lhs op ALL Tsub] from the summary. *)
let all_of_summary op lhs s : Value.t =
  if s.s_empty then Value.vtrue
  else if op = EqNull then begin
    if Value.is_null lhs then Value.Bool (s.s_distinct = 0)
    else
      Value.Bool
        (s.s_distinct = 1
        && (not s.s_has_null)
        && Value.equal_null (Option.get s.s_sample) lhs)
  end
  else if Value.is_null lhs then Value.Null
  else
    match op with
    | Eq ->
        if s.s_distinct >= 2 then Value.vfalse
        else if
          s.s_distinct = 1 && not (Value.equal_null (Option.get s.s_sample) lhs)
        then Value.vfalse
        else if s.s_distinct = 0 then Value.Null (* only NULLs *)
        else unknown_or s Value.vtrue
    | Neq -> if set_mem s lhs then Value.vfalse else unknown_or s Value.vtrue
    | Lt | Leq ->
        (* forall v: lhs < v  <=>  lhs < min; a single violating v makes
           it definitely false regardless of NULLs. *)
        let violated =
          match s.s_min with
          | None -> false
          | Some m -> Value.is_false (cmp3 op lhs m)
        in
        if violated then Value.vfalse
        else if s.s_has_null || s.s_min = None then Value.Null
        else Value.vtrue
    | Gt | Geq ->
        let violated =
          match s.s_max with
          | None -> false
          | Some m -> Value.is_false (cmp3 op lhs m)
        in
        if violated then Value.vfalse
        else if s.s_has_null || s.s_max = None then Value.Null
        else Value.vtrue
    | EqNull -> assert false

(** {1 Evaluation context} *)

(** Execution counters, in the spirit of EXPLAIN ANALYZE: how the
    evaluator actually executed a plan. *)
type stats = {
  mutable st_hash_joins : int;  (** joins executed via hashing *)
  mutable st_nested_loop_joins : int;  (** joins without usable equi-pairs *)
  mutable st_nested_pairs : int;  (** tuple pairs examined by nested loops *)
  mutable st_sublink_evals : int;  (** sublink materializations (cache misses) *)
  mutable st_sublink_hits : int;  (** sublink memoization hits *)
  mutable st_rows_emitted : int;  (** rows produced across all operators *)
}

let fresh_stats () =
  {
    st_hash_joins = 0;
    st_nested_loop_joins = 0;
    st_nested_pairs = 0;
    st_sublink_evals = 0;
    st_sublink_hits = 0;
    st_rows_emitted = 0;
  }

let stats_to_string st =
  Printf.sprintf
    "hash joins: %d | nested-loop joins: %d (%d pairs) | sublink evals: %d (%d memo hits) | rows emitted: %d"
    st.st_hash_joins st.st_nested_loop_joins st.st_nested_pairs
    st.st_sublink_evals st.st_sublink_hits st.st_rows_emitted

type ctx = {
  db : Database.t;
  sub_results : (int * Value.t list, Relation.t) Hashtbl.t;
  sub_summaries : (int * Value.t list, summary) Hashtbl.t;
  sub_free : (int, string list) Hashtbl.t;
  stats : stats;
}

let mk_ctx db =
  {
    db;
    sub_results = Hashtbl.create 64;
    sub_summaries = Hashtbl.create 64;
    sub_free = Hashtbl.create 16;
    stats = fresh_stats ();
  }

let free_names ctx (s : sublink) =
  match Hashtbl.find_opt ctx.sub_free s.id with
  | Some names -> names
  | None ->
      let names = Scope.free_of_query ctx.db s.query in
      Hashtbl.add ctx.sub_free s.id names;
      names

(** {1 Expression evaluation} *)

let rec eval_expr ctx (env : env) (e : expr) : Value.t =
  match e with
  | Const v -> v
  | TypedNull _ -> Value.Null
  | Attr name -> lookup env name
  | Binop (op, a, b) -> (
      let va = eval_expr ctx env a and vb = eval_expr ctx env b in
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.modulo va vb
      | Concat -> Value.concat va vb)
  | Cmp (op, a, b) -> cmp3 op (eval_expr ctx env a) (eval_expr ctx env b)
  | And (a, b) ->
      let va = eval_expr ctx env a in
      if Value.is_false va then Value.vfalse else Value.and3 va (eval_expr ctx env b)
  | Or (a, b) ->
      let va = eval_expr ctx env a in
      if Value.is_true va then Value.vtrue else Value.or3 va (eval_expr ctx env b)
  | Not a -> Value.not3 (eval_expr ctx env a)
  | IsNull a -> Value.Bool (Value.is_null (eval_expr ctx env a))
  | Case (whens, els) -> (
      let rec go = function
        | (c, e) :: rest ->
            if Value.is_true (eval_expr ctx env c) then eval_expr ctx env e
            else go rest
        | [] -> ( match els with Some e -> eval_expr ctx env e | None -> Value.Null)
      in
      go whens)
  | Like (a, pattern) -> (
      match eval_expr ctx env a with
      | Value.Null -> Value.Null
      | Value.String s -> Value.Bool (Builtin.like_match ~pattern s)
      | v -> eval_error "LIKE over non-string %s" (Value.to_string v))
  | InList (a, es) ->
      let x = eval_expr ctx env a in
      let rec go acc = function
        | [] -> acc
        | e :: rest ->
            let r = cmp3 Eq x (eval_expr ctx env e) in
            if Value.is_true r then Value.vtrue else go (Value.or3 acc r) rest
      in
      go Value.vfalse es
  | FunCall (name, args) ->
      if Builtin.is_aggregate name then
        eval_error "aggregate function %s in scalar context" name
      else Builtin.apply_scalar name (List.map (eval_expr ctx env) args)
  | Sublink s -> eval_sublink ctx env s

and eval_sublink ctx env (s : sublink) : Value.t =
  let key = (s.id, List.map (lookup env) (free_names ctx s)) in
  match s.kind with
  | Exists -> Value.Bool (not (Relation.is_empty (materialize ctx env key s)))
  | Scalar -> (
      let rel = materialize ctx env key s in
      match Relation.tuples rel with
      | [] -> Value.Null
      | [ t ] -> Tuple.get t 0
      | _ -> eval_error "scalar sublink returned more than one row")
  | AnyOp (op, lhs) ->
      any_of_summary op (eval_expr ctx env lhs) (summary ctx env key s)
  | AllOp (op, lhs) ->
      all_of_summary op (eval_expr ctx env lhs) (summary ctx env key s)

and materialize ctx env key (s : sublink) : Relation.t =
  match Hashtbl.find_opt ctx.sub_results key with
  | Some rel ->
      ctx.stats.st_sublink_hits <- ctx.stats.st_sublink_hits + 1;
      rel
  | None ->
      ctx.stats.st_sublink_evals <- ctx.stats.st_sublink_evals + 1;
      let rel = eval_query ctx env s.query in
      Hashtbl.add ctx.sub_results key rel;
      rel

and summary ctx env key s : summary =
  match Hashtbl.find_opt ctx.sub_summaries key with
  | Some sm -> sm
  | None ->
      let rel = materialize ctx env key s in
      let sm =
        summarize (List.map (fun t -> Tuple.get t 0) (Relation.tuples rel))
      in
      Hashtbl.add ctx.sub_summaries key sm;
      sm

(** {1 Query evaluation} *)

and eval_query ctx (env : env) (q : query) : Relation.t =
  match q with
  | Base name -> Database.find ctx.db name
  | TableExpr rel -> rel
  (* Fuse a selection over a product/join so pairs stream instead of the
     product being materialized first. *)
  | Select (cond, Cross (a, b)) -> eval_join ctx env ~outer:false cond a b
  | Select (cond, Join (c, a, b)) ->
      eval_join ctx env ~outer:false (And (c, cond)) a b
  | Select (cond, input) ->
      let rel = eval_query ctx env input in
      let schema = Relation.schema rel in
      let keep =
        List.filter
          (fun t -> Value.is_true (eval_expr ctx (frame schema t :: env) cond))
          (Relation.tuples rel)
      in
      Relation.make schema keep
  | Project { distinct; cols; proj_input } ->
      let rel = eval_query ctx env proj_input in
      let in_schema = Relation.schema rel in
      let out_schema = projection_schema ctx env in_schema cols in
      let exprs = List.map fst cols in
      let rows =
        List.map
          (fun t ->
            let fenv = frame in_schema t :: env in
            Tuple.of_list (List.map (eval_expr ctx fenv) exprs))
          (Relation.tuples rel)
      in
      let out = Relation.make out_schema rows in
      if distinct then Relation.distinct out else out
  | Cross (a, b) ->
      let ra = eval_query ctx env a and rb = eval_query ctx env b in
      let schema = Schema.concat (Relation.schema ra) (Relation.schema rb) in
      let rows =
        List.concat_map
          (fun ta ->
            List.map (fun tb -> Tuple.concat ta tb) (Relation.tuples rb))
          (Relation.tuples ra)
      in
      Relation.make schema rows
  | Join (cond, a, b) -> eval_join ctx env ~outer:false cond a b
  | LeftJoin (cond, a, b) -> eval_join ctx env ~outer:true cond a b
  | Agg spec -> eval_agg ctx env spec
  | Union (sem, a, b) ->
      let op = match sem with Bag -> Relation.union_bag | SetSem -> Relation.union_set in
      op (eval_query ctx env a) (eval_query ctx env b)
  | Inter (sem, a, b) ->
      let op = match sem with Bag -> Relation.inter_bag | SetSem -> Relation.inter_set in
      op (eval_query ctx env a) (eval_query ctx env b)
  | Diff (sem, a, b) ->
      let op = match sem with Bag -> Relation.diff_bag | SetSem -> Relation.diff_set in
      op (eval_query ctx env a) (eval_query ctx env b)
  | Order (keys, input) ->
      let rel = eval_query ctx env input in
      let schema = Relation.schema rel in
      let decorated =
        List.map
          (fun t ->
            let fenv = frame schema t :: env in
            (List.map (fun (e, d) -> (eval_expr ctx fenv e, d)) keys, t))
          (Relation.tuples rel)
      in
      let cmp (ka, _) (kb, _) =
        let rec go = function
          | [] -> 0
          | ((va, d), (vb, _)) :: rest ->
              let c = Value.compare_total va vb in
              let c = match d with Asc -> c | Desc -> -c in
              if c <> 0 then c else go rest
        in
        go (List.combine ka kb)
      in
      Relation.make schema (List.map snd (List.stable_sort cmp decorated))
  | Limit (n, input) ->
      let rel = eval_query ctx env input in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | t :: rest -> t :: take (n - 1) rest
      in
      Relation.make (Relation.schema rel) (take n (Relation.tuples rel))

and projection_schema ctx env in_schema cols =
  let tys = in_schema :: schemas_of_env env in
  Schema.of_list
    (List.map
       (fun (e, name) ->
         let ty =
           Option.value ~default:Vtype.TString (Typecheck.infer_expr ctx.db tys e)
         in
         Schema.attr name ty)
       cols)

(* ---------------- joins ---------------- *)

and eval_join ctx env ~outer cond a b : Relation.t =
  let ra = eval_query ctx env a and rb = eval_query ctx env b in
  let sa = Relation.schema ra and sb = Relation.schema rb in
  let schema = Schema.concat sa sb in
  let pairs, residual = split_equi ctx sa sb cond in
  let rows =
    if pairs = [] then begin
      ctx.stats.st_nested_loop_joins <- ctx.stats.st_nested_loop_joins + 1;
      ctx.stats.st_nested_pairs <-
        ctx.stats.st_nested_pairs
        + (Relation.cardinality ra * Relation.cardinality rb);
      nested_loop ctx env ~outer schema sa sb ra rb cond
    end
    else begin
      ctx.stats.st_hash_joins <- ctx.stats.st_hash_joins + 1;
      hash_join ctx env ~outer schema sa sb ra rb pairs residual
    end
  in
  ctx.stats.st_rows_emitted <- ctx.stats.st_rows_emitted + List.length rows;
  Relation.make schema rows

(* Classify each conjunct as a hashable equi-pair (left-expr, right-expr,
   null_safe) or a residual condition. *)
and split_equi ctx sa sb cond =
  let left_names = Schema.names sa and right_names = Schema.names sb in
  let touches names e =
    List.exists (fun n -> List.mem n names) (Scope.refs_of_expr ctx.db e)
  in
  List.fold_left
    (fun (pairs, residual) conjunct ->
      match conjunct with
      | Cmp (((Eq | EqNull) as op), e1, e2)
        when (not (has_sublink e1)) && not (has_sublink e2) -> (
          let null_safe = op = EqNull in
          match (touches right_names e1, touches left_names e2) with
          | false, false -> (pairs @ [ (e1, e2, null_safe) ], residual)
          | true, true when (not (touches left_names e1)) && not (touches right_names e2)
            ->
              (pairs @ [ (e2, e1, null_safe) ], residual)
          | _ -> (pairs, residual @ [ conjunct ]))
      | c -> (pairs, residual @ [ c ]))
    ([], []) (conjuncts cond)

and hash_join ctx env ~outer schema sa sb ra rb pairs residual =
  let residual_cond = conj residual in
  let key_of fschema t exprs =
    let fenv = frame fschema t :: env in
    List.map (fun e -> eval_expr ctx fenv e) exprs
  in
  let left_exprs = List.map (fun (e, _, _) -> e) pairs in
  let right_exprs = List.map (fun (_, e, _) -> e) pairs in
  let safe_flags = List.map (fun (_, _, s) -> s) pairs in
  (* A NULL in a non-null-safe key position can never match. *)
  let usable key = List.for_all2 (fun v safe -> safe || not (Value.is_null v)) key safe_flags in
  let table = Tuple.Tbl.create (max 16 (Relation.cardinality rb)) in
  List.iter
    (fun tb ->
      let key = key_of sb tb right_exprs in
      if usable key then begin
        let k = Tuple.of_list key in
        let existing = try Tuple.Tbl.find table k with Not_found -> [] in
        Tuple.Tbl.replace table k (tb :: existing)
      end)
    (Relation.tuples rb);
  let pad = Tuple.nulls (Schema.arity sb) in
  let emit_left acc ta =
    let key = key_of sa ta left_exprs in
    let matches =
      if usable key then
        match Tuple.Tbl.find_opt table (Tuple.of_list key) with
        | Some tbs -> List.rev tbs
        | None -> []
      else []
    in
    let hits =
      List.filter_map
        (fun tb ->
          let combined = Tuple.concat ta tb in
          if Value.is_true (eval_expr ctx (frame schema combined :: env) residual_cond)
          then Some combined
          else None)
        matches
    in
    match hits with
    | [] -> if outer then Tuple.concat ta pad :: acc else acc
    | hs -> List.rev_append hs acc
  in
  List.rev (List.fold_left emit_left [] (Relation.tuples ra))

and nested_loop ctx env ~outer schema sa sb ra rb cond =
  ignore sa;
  let pad = Tuple.nulls (Schema.arity sb) in
  ignore sb;
  let emit_left acc ta =
    let hits =
      List.filter_map
        (fun tb ->
          let combined = Tuple.concat ta tb in
          if Value.is_true (eval_expr ctx (frame schema combined :: env) cond) then
            Some combined
          else None)
        (Relation.tuples rb)
    in
    match hits with
    | [] -> if outer then Tuple.concat ta pad :: acc else acc
    | hs -> List.rev_append hs acc
  in
  List.rev (List.fold_left emit_left [] (Relation.tuples ra))

(* ---------------- aggregation ---------------- *)

and eval_agg ctx env { group_by; aggs; agg_input } : Relation.t =
  let rel = eval_query ctx env agg_input in
  let in_schema = Relation.schema rel in
  let tys = in_schema :: schemas_of_env env in
  let group_attrs =
    List.map
      (fun (e, name) ->
        let ty =
          Option.value ~default:Vtype.TString (Typecheck.infer_expr ctx.db tys e)
        in
        Schema.attr name ty)
      group_by
  in
  let agg_attrs =
    List.map
      (fun call ->
        let arg_ty =
          Option.map
            (fun e ->
              Option.value ~default:Vtype.TString (Typecheck.infer_expr ctx.db tys e))
            call.agg_arg
        in
        Schema.attr call.agg_name
          (Builtin.aggregate_result_type call.agg_func arg_ty))
      aggs
  in
  let out_schema = Schema.of_list (group_attrs @ agg_attrs) in
  let group_exprs = List.map fst group_by in
  let groups = Tuple.Tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun t ->
      let fenv = frame in_schema t :: env in
      let key = Tuple.of_list (List.map (eval_expr ctx fenv) group_exprs) in
      match Tuple.Tbl.find_opt groups key with
      | Some members -> Tuple.Tbl.replace groups key (t :: members)
      | None ->
          Tuple.Tbl.add groups key [ t ];
          order := key :: !order)
    (Relation.tuples rel);
  let keys =
    if group_by = [] && Relation.is_empty rel then [ Tuple.of_list [] ]
    else List.rev !order
  in
  let compute_group key =
    let members =
      match Tuple.Tbl.find_opt groups key with
      | Some ms -> List.rev ms
      | None -> []
    in
    let agg_values =
      List.map
        (fun call ->
          let raw =
            match call.agg_arg with
            | None -> List.map (fun _ -> Value.Int 1) members (* COUNT( * ) *)
            | Some e ->
                List.filter_map
                  (fun t ->
                    let v = eval_expr ctx (frame in_schema t :: env) e in
                    if Value.is_null v then None else Some v)
                  members
          in
          Builtin.apply_aggregate call.agg_func ~distinct:call.agg_distinct raw)
        aggs
    in
    Tuple.concat key (Tuple.of_list agg_values)
  in
  Relation.make out_schema (List.map compute_group keys)

(** {1 Public API} *)

(** [query db q] evaluates [q] against [db] with a fresh context. *)
let query ?(env = []) db q = eval_query (mk_ctx db) env q

(** [query_stats db q] additionally reports the execution counters —
    an EXPLAIN-ANALYZE-style summary of how the plan ran. *)
let query_stats ?(env = []) db q =
  let ctx = mk_ctx db in
  let rel = eval_query ctx env q in
  (rel, ctx.stats)

(** [expr db env e] evaluates a scalar expression (used by tests and the
    provenance oracle). *)
let expr ?(env = []) db e = eval_expr (mk_ctx db) env e
