(** Runtime SQL values with [NULL] and three-valued logic.

    Two equality notions coexist, both needed by the paper:
    - SQL comparison ({!cmp_sql}), where any comparison involving [Null]
      is unknown;
    - the null-aware [=n] of Section 3.3 ({!equal_null}), where
      [Null =n Null] holds. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

(** Raised on dynamically ill-typed operations (also division by zero). *)
exception Type_clash of string

(** [type_clash fmt ...] raises {!Type_clash} with a formatted message. *)
val type_clash : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Construction and inspection} *)

val of_int : int -> t
val of_float : float -> t
val of_string : string -> t
val of_bool : bool -> t

val vtrue : t
val vfalse : t

val is_null : t -> bool

(** Dynamic type; [None] for [Null], which inhabits every type. *)
val vtype_of : t -> Vtype.t option

(** [zero_of ty] is the numeric zero of [ty]; raises on non-numeric. *)
val zero_of : Vtype.t -> t

val to_string : t -> string

(** SQL-literal rendering: strings quoted and escaped. *)
val to_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Numeric coercion; raises {!Type_clash} on non-numbers. *)
val as_float : t -> float

(** {1 Comparison} *)

(** SQL comparison: [None] if either operand is [Null], otherwise the
    sign convention of [compare]. Int/float compare numerically. *)
val cmp_sql : t -> t -> int option

(** Total order for sorting: [Null] first, then by type, numerics
    compared numerically. Never raises. *)
val compare_total : t -> t -> int

(** Null-aware structural equality ([=n]): [Null] equals [Null],
    numerically equal ints and floats are equal. *)
val equal_null : t -> t -> bool

(** {1 Three-valued logic} — truth values are [Bool _] or [Null]. *)

val is_true : t -> bool
val is_false : t -> bool
val and3 : t -> t -> t
val or3 : t -> t -> t
val not3 : t -> t

(** {1 Arithmetic} — NULL-strict; int/float promotion. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t
val concat : t -> t -> t

(** Hash compatible with {!equal_null}. *)
val hash : t -> int
