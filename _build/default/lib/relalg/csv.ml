(** Minimal CSV import/export for relations.

    The first line is the header. Types are inferred per column from the
    data rows (int if every non-empty cell parses as an int, else float,
    else bool, else string); empty cells are NULL. Quoting follows RFC
    4180: fields may be enclosed in double quotes, with [""] escaping. *)

exception Csv_error of string

let csv_error fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* Split one CSV record (line) into fields. *)
let split_record line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec field i =
    if i >= n then finish i
    else if line.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n || line.[i] = ',' then finish i
    else begin
      Buffer.add_char buf line.[i];
      plain (i + 1)
    end
  and quoted i =
    if i >= n then csv_error "unterminated quoted field"
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else plain (i + 1)
    else begin
      Buffer.add_char buf line.[i];
      quoted (i + 1)
    end
  and finish i =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    if i < n && line.[i] = ',' then field (i + 1)
  in
  if n = 0 then fields := [ "" ] else field 0;
  List.rev !fields

let infer_type cells : Vtype.t =
  let non_empty = List.filter (fun c -> c <> "") cells in
  let all p = non_empty <> [] && List.for_all p non_empty in
  if all (fun c -> int_of_string_opt c <> None) then Vtype.TInt
  else if all (fun c -> float_of_string_opt c <> None) then Vtype.TFloat
  else if all (fun c -> c = "true" || c = "false") then Vtype.TBool
  else Vtype.TString

let cell_value ty (c : string) : Value.t =
  if c = "" then Value.Null
  else
    match ty with
    | Vtype.TInt -> Value.Int (int_of_string c)
    | Vtype.TFloat -> Value.Float (float_of_string c)
    | Vtype.TBool -> Value.Bool (c = "true")
    | Vtype.TString -> Value.String c

(** [of_lines lines] parses a header plus data rows. *)
let of_lines = function
  | [] -> csv_error "empty CSV input"
  | header :: data ->
      let names = split_record header in
      let rows = List.map split_record data in
      let ncols = List.length names in
      List.iteri
        (fun k row ->
          if List.length row <> ncols then
            csv_error "row %d has %d fields, expected %d" (k + 2)
              (List.length row) ncols)
        rows;
      let columns =
        List.mapi (fun i _ -> List.map (fun row -> List.nth row i) rows) names
      in
      let types = List.map infer_type columns in
      let schema =
        Schema.of_list (List.map2 (fun n ty -> Schema.attr n ty) names types)
      in
      let tuples =
        List.map
          (fun row -> Tuple.of_list (List.map2 cell_value types row))
          rows
      in
      Relation.make schema tuples

(** [load path] reads a relation from a CSV file. *)
let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line =
         (* tolerate CRLF *)
         if String.length line > 0 && line.[String.length line - 1] = '\r' then
           String.sub line 0 (String.length line - 1)
         else line
       in
       if line <> "" then lines := line :: !lines
     done
   with End_of_file -> close_in ic);
  of_lines (List.rev !lines)

let quote_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** [to_string rel] renders a relation as CSV text (NULL = empty cell). *)
let to_string rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map quote_field (Schema.names (Relation.schema rel))));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      let cells =
        List.map
          (fun v -> if Value.is_null v then "" else quote_field (Value.to_string v))
          (Tuple.to_list t)
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    (Relation.tuples rel);
  Buffer.contents buf

(** [save path rel] writes a relation to a CSV file. *)
let save path rel =
  let oc = open_out path in
  output_string oc (to_string rel);
  close_out oc
