(** Relation schemas: ordered lists of named, typed attributes.

    Attribute names are plain strings; the SQL analyzer qualifies them
    ("alias.column") so that every schema an operator sees has unique
    names, which is what makes name-based correlation resolution sound. *)

type attr = { name : string; ty : Vtype.t }

type t = {
  attrs : attr array;
  index : (string, int) Hashtbl.t; (* name -> position *)
}

exception Schema_error of string

let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let attr name ty = { name; ty }

(** [of_list attrs] builds a schema, rejecting duplicate attribute names. *)
let of_list attrs =
  let arr = Array.of_list attrs in
  let index = Hashtbl.create (max 8 (Array.length arr)) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem index a.name then
        schema_error "duplicate attribute name %S in schema" a.name
      else Hashtbl.add index a.name i)
    arr;
  { attrs = arr; index }

let to_list s = Array.to_list s.attrs
let arity s = Array.length s.attrs
let attr_at s i = s.attrs.(i)
let names s = Array.to_list (Array.map (fun a -> a.name) s.attrs)
let types s = Array.to_list (Array.map (fun a -> a.ty) s.attrs)

(** [find s name] is the position of attribute [name], if any. *)
let find s name = Hashtbl.find_opt s.index name

let mem s name = Hashtbl.mem s.index name

(** [position_exn s name] is like [find] but raises [Schema_error]. *)
let position_exn s name =
  match find s name with
  | Some i -> i
  | None ->
      schema_error "unknown attribute %S (schema: %s)" name
        (String.concat ", " (names s))

let type_of_exn s name = (attr_at s (position_exn s name)).ty

(** [concat a b] juxtaposes two schemas; duplicate names are rejected. *)
let concat a b = of_list (to_list a @ to_list b)

(** [rename s f] renames every attribute through [f]. *)
let rename s f = of_list (List.map (fun a -> { a with name = f a.name }) (to_list s))

(** [rename_positional s new_names] assigns fresh names positionally. *)
let rename_positional s new_names =
  if List.length new_names <> arity s then
    schema_error "rename: %d names for arity %d" (List.length new_names) (arity s);
  of_list (List.map2 (fun a n -> { a with name = n }) (to_list s) new_names)

(** [equal_types a b] holds when both schemas have the same arity and
    pointwise compatible types (used to validate set operations). *)
let equal_types a b =
  arity a = arity b
  && List.for_all2 (fun x y -> Vtype.compatible x.ty y.ty) (to_list a) (to_list b)

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun x y -> String.equal x.name y.name && Vtype.equal x.ty y.ty)
       (to_list a) (to_list b)

let pp ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%a" a.name Vtype.pp a.ty))
    (to_list s)

let to_string s = Format.asprintf "%a" pp s
