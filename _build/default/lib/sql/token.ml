(** Tokens of the SQL dialect. Keywords are case-insensitive and carried
    uppercase; identifiers are lowercased (PostgreSQL folding). *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercase keyword *)
  | SYM of string  (** operator / punctuation *)
  | EOF

(** The reserved words recognized by the lexer. [PROVENANCE] is the Perm
    language extension that triggers provenance rewriting. *)
let keywords =
  [
    "SELECT"; "DISTINCT"; "ALL"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING";
    "ORDER"; "LIMIT"; "ASC"; "DESC"; "AS"; "ON"; "JOIN"; "INNER"; "LEFT";
    "OUTER"; "CROSS"; "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "ANY"; "SOME";
    "BETWEEN"; "LIKE"; "IS"; "NULL"; "TRUE"; "FALSE"; "CASE"; "WHEN"; "THEN";
    "ELSE"; "END"; "UNION"; "INTERSECT"; "EXCEPT"; "PROVENANCE";
    "CREATE"; "VIEW"; "TABLE"; "DROP";
  ]

let keyword_set : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword upper = Hashtbl.mem keyword_set upper

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | KW k -> Printf.sprintf "keyword %s" k
  | SYM s -> Printf.sprintf "%S" s
  | EOF -> "end of input"
