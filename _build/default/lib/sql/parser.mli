(** Recursive-descent SQL parser over {!Lexer} tokens. *)

(** Raised with a message and the source line/column of the offending
    token. *)
exception Parse_error of string * int * int

(** [parse src] parses a single SELECT (optional trailing [;]);
    trailing input is an error. *)
val parse : string -> Ast.select

(** [parse_statement src] parses one statement: SELECT, CREATE VIEW,
    CREATE TABLE ... AS, or DROP [TABLE|VIEW]. *)
val parse_statement : string -> Ast.statement

(** [parse_script src] parses a [;]-separated statement sequence. *)
val parse_script : string -> Ast.statement list
