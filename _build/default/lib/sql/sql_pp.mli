(** Rendering of the SQL AST back to SQL text; the output parses back to
    the same AST (round-trip property-tested). *)

val expr_str : Ast.expr -> string
val select_str : Ast.select -> string

(** [print sel] is canonical SQL text for [sel]. *)
val print : Ast.select -> string
