(** Hand-rolled SQL lexer: line/block comments, quoted strings with ['']
    escaping, numeric literals, multi-character operators. *)

type positioned = { tok : Token.t; pos : int; line : int; col : int }

(** Message, line, column. *)
exception Lex_error of string * int * int

(** [tokenize src] is the token stream of [src], ending with [EOF]. *)
val tokenize : string -> positioned list
