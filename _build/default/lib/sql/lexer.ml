(** Hand-rolled SQL lexer.

    Handles line comments ([--]), block comments ([/* ... */]),
    single-quoted strings with [''] escaping, numeric literals, and the
    multi-character operators [<=], [>=], [<>], [!=] and [||]. Every
    token carries its source position for error reporting. *)

type positioned = { tok : Token.t; pos : int; line : int; col : int }

exception Lex_error of string * int * int  (** message, line, column *)

let lex_error line col fmt =
  Format.kasprintf (fun s -> raise (Lex_error (s, line, col))) fmt

type state = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.i < String.length st.src then Some st.src.[st.i] else None

let peek2 st =
  if st.i + 1 < String.length st.src then Some st.src.[st.i + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.i <- st.i + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let start_line = st.line and start_col = st.col in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            to_close ()
        | None, _ -> lex_error start_line start_col "unterminated block comment"
      in
      to_close ();
      skip_trivia st
  | _ -> ()

let lex_string st =
  let line = st.line and col = st.col in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> lex_error line col "unterminated string literal"
    | Some '\'' when peek2 st = Some '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        go ()
    | Some '\'' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let lex_number st =
  let line = st.line and col = st.col in
  let start = st.i in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with
      | Some ('+' | '-') -> advance st
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.i - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Token.FLOAT f
    | None -> lex_error line col "invalid numeric literal %S" text
  else
    match int_of_string_opt text with
    | Some i -> Token.INT i
    | None -> lex_error line col "invalid integer literal %S" text

let lex_word st =
  let start = st.i in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.i - start) in
  let upper = String.uppercase_ascii text in
  if Token.is_keyword upper then Token.KW upper
  else Token.IDENT (String.lowercase_ascii text)

let lex_symbol st =
  let line = st.line and col = st.col in
  let two a b sym =
    if peek st = Some a && peek2 st = Some b then begin
      advance st;
      advance st;
      Some (Token.SYM sym)
    end
    else None
  in
  let candidates =
    [
      lazy (two '<' '=' "<=");
      lazy (two '>' '=' ">=");
      lazy (two '<' '>' "<>");
      lazy (two '!' '=' "<>");
      lazy (two '|' '|' "||");
    ]
  in
  match List.find_map (fun c -> Lazy.force c) candidates with
  | Some tok -> tok
  | None -> (
      match peek st with
      | Some (('(' | ')' | ',' | '.' | ';' | '*' | '+' | '-' | '/' | '%' | '=' | '<' | '>') as c) ->
          advance st;
          Token.SYM (String.make 1 c)
      | Some c -> lex_error line col "unexpected character %C" c
      | None -> Token.EOF)

(** [tokenize src] is the token stream of [src], ending with [EOF]. *)
let tokenize (src : string) : positioned list =
  let st = { src; i = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_trivia st;
    let pos = st.i and line = st.line and col = st.col in
    match peek st with
    | None -> List.rev ({ tok = Token.EOF; pos; line; col } :: acc)
    | Some '\'' -> go ({ tok = lex_string st; pos; line; col } :: acc)
    | Some c when is_digit c -> go ({ tok = lex_number st; pos; line; col } :: acc)
    | Some c when is_ident_start c -> go ({ tok = lex_word st; pos; line; col } :: acc)
    | Some _ -> go ({ tok = lex_symbol st; pos; line; col } :: acc)
  in
  go []
