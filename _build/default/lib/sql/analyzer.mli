(** Name resolution and translation from the SQL AST to the algebra of
    {!Relalg.Algebra}.

    Every attribute an operator produces is given a qualified, unique
    name ("alias.column"); a reference that does not resolve in the
    current query level becomes a correlated reference to an enclosing
    level (Section 2.2). Aggregated queries are translated to an [Agg]
    node with grouping expressions and hoisted aggregate calls. *)

open Relalg

exception Analyze_error of string

type analyzed = {
  query : Algebra.query;
  wants_provenance : bool;  (** the SELECT carried the PROVENANCE marker *)
}

(** [analyze db sel] resolves and translates a parsed statement, then
    typechecks the result. *)
val analyze : Database.t -> Ast.select -> analyzed

(** [analyze_string db sql] parses and analyzes [sql]. *)
val analyze_string : Database.t -> string -> analyzed
