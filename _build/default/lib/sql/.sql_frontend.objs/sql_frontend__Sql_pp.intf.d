lib/sql/sql_pp.mli: Ast
