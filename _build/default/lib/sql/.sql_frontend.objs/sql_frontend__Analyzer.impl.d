lib/sql/analyzer.ml: Algebra Ast Builtin Database Format Hashtbl List Option Parser Printf Relalg Relation Schema Scope Typecheck Value
