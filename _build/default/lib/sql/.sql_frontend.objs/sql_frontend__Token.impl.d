lib/sql/token.ml: Hashtbl List Printf
