lib/sql/parser.ml: Array Ast Format Lexer List Option Token
