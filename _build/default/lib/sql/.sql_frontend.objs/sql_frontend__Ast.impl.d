lib/sql/ast.ml:
