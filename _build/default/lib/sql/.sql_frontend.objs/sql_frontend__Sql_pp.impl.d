lib/sql/sql_pp.ml: Ast Buffer List Option Printf String
