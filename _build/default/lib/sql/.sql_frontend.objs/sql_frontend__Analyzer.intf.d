lib/sql/analyzer.mli: Algebra Ast Database Relalg
