lib/sql/token.mli:
