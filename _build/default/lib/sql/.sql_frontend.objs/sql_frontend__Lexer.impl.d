lib/sql/lexer.ml: Buffer Format Lazy List String Token
