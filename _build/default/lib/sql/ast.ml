(** Abstract syntax of the SQL dialect (before name resolution).

    The dialect covers the constructs the paper's workloads need:
    SELECT [DISTINCT] [PROVENANCE] with FROM/WHERE/GROUP BY/HAVING/
    ORDER BY/LIMIT, derived tables, explicit joins, set operations, and
    all four sublink forms ([EXISTS], [IN]/[NOT IN], [op ANY/SOME],
    [op ALL], scalar) in any expression position. *)

type binop = Plus | Minus | Times | Div | Mod | Concat
type cmpop = CEq | CNeq | CLt | CLeq | CGt | CGeq
type order_dir = OAsc | ODesc

type expr =
  | ENull
  | EInt of int
  | EFloat of float
  | EString of string
  | EBool of bool
  | EColumn of string option * string  (** optional qualifier, column *)
  | EBinop of binop * expr * expr
  | ECmp of cmpop * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | ENot of expr
  | EIsNull of { negated : bool; arg : expr }
  | EBetween of { negated : bool; arg : expr; lo : expr; hi : expr }
  | EInList of { negated : bool; arg : expr; elems : expr list }
  | ELike of { negated : bool; arg : expr; pattern : string }
  | ECase of (expr * expr) list * expr option
  | EFun of { name : string; distinct : bool; star : bool; args : expr list }
      (** scalar or aggregate call; [star] encodes [count( * )] *)
  | ESub of sub_kind * select  (** sublink *)

and sub_kind =
  | SExists of bool  (** negated? *)
  | SScalar
  | SIn of expr * bool  (** lhs, negated? *)
  | SAnyCmp of cmpop * expr
  | SAllCmp of cmpop * expr

and select_item =
  | ItemStar  (** [*] *)
  | ItemQualStar of string  (** [alias.*] *)
  | ItemExpr of expr * string option  (** expression [AS name] *)

and from_item =
  | FTable of { table : string; alias : string option }
  | FSubquery of { sub : select; alias : string }
  | FJoin of { kind : join_kind; left : from_item; right : from_item; on : expr option }

and join_kind = JInner | JLeft | JCross

and setop_kind = SUnion | SIntersect | SExcept

and select = {
  sel_provenance : bool;  (** Perm's [SELECT PROVENANCE] marker *)
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : from_item list;
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;
  sel_order_by : (expr * order_dir) list;
  sel_limit : int option;
  sel_setop : (setop_kind * bool (* ALL? *) * select) option;
      (** trailing set operation: [this UNION [ALL] that] *)
}

(** Top-level statements: queries plus the small DDL surface used to
    store and reuse (provenance) results. *)
type statement =
  | Stmt_select of select
  | Stmt_create_view of string * select
  | Stmt_create_table_as of string * select
      (** materializes the result at creation time *)
  | Stmt_drop of string  (** drops a table or view *)

let empty_select =
  {
    sel_provenance = false;
    sel_distinct = false;
    sel_items = [];
    sel_from = [];
    sel_where = None;
    sel_group_by = [];
    sel_having = None;
    sel_order_by = [];
    sel_limit = None;
    sel_setop = None;
  }

(** Structural equality on selects — sublinks compare by structure, so
    this is usable for parser round-trip tests. *)
let equal_select (a : select) (b : select) = a = b
